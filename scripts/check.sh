#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, and the full test suite in
# both telemetry configurations. Run from anywhere inside the repo.
#
#   scripts/check.sh          # everything (fmt, clippy, tests x2)
#   scripts/check.sh fast     # skip the --no-default-features test pass
#
# Everything runs --offline: this workspace vendors its few dependencies
# under crates/vendor/ and must build without network access.
set -euo pipefail
cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

mode="${1:-full}"

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "layering guard: planning stays in crates/access"
# Transports must plan through the access layer: no private plan structs
# and no hand-rolled replan loops in the transport crates.
guard_hits=$(grep -rnE "'replan|struct (ReadPlan|BlockReadPlan|DegradedPlan|RepairPlan|PlanCache)" \
  crates/filestore/src crates/dfs/src crates/cluster/src || true)
if [ -n "$guard_hits" ]; then
  printf 'transport crates must not define plans or replan loops:\n%s\n' "$guard_hits" >&2
  exit 1
fi

step "concurrency guard: client-side fan-out goes through workloads::parallel"
# Wire concurrency on the client/transport side must use the shared
# ParallelCtx pool (and its pipeline helper), not hand-rolled threads —
# that is what keeps fan-out width a single knob and tallies race-free.
# crates/cluster/src/datanode.rs and crates/cluster/src/repair.rs are the
# two exclusions: a datanode is a *server* and legitimately owns its
# accept/connection/heartbeat threads, and the background repair
# scheduler owns its long-lived worker/monitor threads (its *clients*
# still fan out through ParallelCtx).
guard_hits=$(grep -rnE "thread::(spawn|scope|Builder)" \
  crates/cluster/src crates/dfs/src crates/filestore/src crates/access/src \
  | grep -vE 'crates/cluster/src/(datanode|repair)\.rs' || true)
if [ -n "$guard_hits" ]; then
  printf 'use workloads::parallel (ParallelCtx / pipeline) instead of raw threads:\n%s\n' "$guard_hits" >&2
  exit 1
fi

step "kernel guard: everything goes through the kernel engine"
# The slice free functions (mul_slice & co.) were deprecated shims and are
# now deleted; nothing anywhere — gf256 included — may reintroduce them.
guard_hits=$(grep -rnE "\b(mul_slice|mul_acc_slice|add_assign_slice|mul_slice_in_place)\b" \
  --include='*.rs' src tests examples \
  crates/access crates/bench crates/cluster crates/core crates/dfs crates/erasure \
  crates/filestore crates/gf256 crates/lrc crates/mapreduce crates/msr crates/rs \
  crates/simcore crates/telemetry crates/workloads || true)
if [ -n "$guard_hits" ]; then
  printf 'use gf256::kernel() instead of the deprecated slice helpers:\n%s\n' "$guard_hits" >&2
  exit 1
fi

step "unsafe guard: intrinsics stay in gf256::kernel::simd"
# The SIMD kernels are the workspace's only sanctioned unsafe: every
# intrinsic lives behind a #[target_feature] function in
# crates/gf256/src/kernel/simd.rs, and kernels are registered only after
# runtime CPU-feature detection. Nothing else may contain unsafe code
# (attribute mentions like deny(unsafe_code) and comments are fine).
guard_hits=$(grep -rnE '\bunsafe\b' --include='*.rs' src tests examples \
  crates/access crates/bench crates/cluster crates/core crates/dfs crates/erasure \
  crates/filestore crates/gf256 crates/lrc crates/mapreduce crates/msr crates/rs \
  crates/simcore crates/telemetry crates/workloads \
  | grep -v 'crates/gf256/src/kernel/simd\.rs' \
  | grep -vE 'unsafe_code|:[0-9]+:\s*//' || true)
if [ -n "$guard_hits" ]; then
  printf 'unsafe code is confined to crates/gf256/src/kernel/simd.rs:\n%s\n' "$guard_hits" >&2
  exit 1
fi

step "object-store guard: everything goes through the ObjectStore trait"
# The free-standing put_file/get_file signatures are pub(crate) plumbing
# inside the cluster client now; every consumer — tool, tests, benches,
# transports — uses the ObjectStore trait (put_opts/get/write_range/
# append/delete) instead.
guard_hits=$(grep -rnE "\.(put_file|get_file)\(" \
  --include='*.rs' src tests examples \
  crates/access crates/bench crates/cluster crates/core crates/dfs crates/erasure \
  crates/filestore crates/gf256 crates/lrc crates/mapreduce crates/msr crates/rs \
  crates/simcore crates/telemetry crates/workloads \
  | grep -v 'crates/cluster/src/client\.rs' || true)
if [ -n "$guard_hits" ]; then
  printf 'use the ObjectStore trait (put_opts/get) instead of put_file/get_file:\n%s\n' "$guard_hits" >&2
  exit 1
fi

step "cargo clippy (default features, -D warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

step "cargo clippy (--no-default-features, -D warnings)"
cargo clippy --workspace --all-targets --no-default-features --offline -- -D warnings

# Vendored third-party crates are excluded from the doc gate; only our
# own crates must document cleanly.
doc_excludes=(--exclude rand --exclude proptest --exclude criterion)

step "cargo doc (default features, warnings as errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps "${doc_excludes[@]}" --offline -q

step "cargo doc (--no-default-features, warnings as errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps "${doc_excludes[@]}" --no-default-features --offline -q

step "cargo test (default features: telemetry on)"
cargo test --workspace --offline -q

step "cluster loopback smoke test (telemetry on)"
cargo test --offline -q --test cluster_loopback

step "kernel bench smoke + JSONL schema check (telemetry on)"
metrics_on=$(mktemp /tmp/carousel-metrics-on.XXXXXX.jsonl)
cargo run --release --offline -p carousel-bench --bin ext_kernels -- --smoke --metrics "$metrics_on"
cargo run --release --offline -p carousel-bench --bin jsonl_check -- "$metrics_on"
rm -f "$metrics_on"

step "wire-parallelism bench smoke (telemetry on)"
cargo run --release --offline -p carousel-bench --bin ext_pipeline -- --smoke

step "observability bench smoke (telemetry on)"
cargo run --release --offline -p carousel-bench --bin ext_observe -- --smoke

step "repair-storm bench smoke (telemetry on)"
cargo run --release --offline -p carousel-bench --bin ext_repair_storm -- --smoke

step "metadata scale-out bench smoke + JSONL schema check (telemetry on)"
meta_on=$(mktemp /tmp/carousel-meta-on.XXXXXX.jsonl)
cargo run --release --offline -p carousel-bench --bin ext_metadata -- --smoke --metrics "$meta_on"
cargo run --release --offline -p carousel-bench --bin jsonl_check -- "$meta_on"
rm -f "$meta_on"

step "update/packing bench smoke + JSONL schema check (telemetry on)"
upd_on=$(mktemp /tmp/carousel-update-on.XXXXXX.jsonl)
cargo run --release --offline -p carousel-bench --bin ext_update -- --smoke --metrics "$upd_on"
cargo run --release --offline -p carousel-bench --bin jsonl_check -- "$upd_on"
rm -f "$upd_on"

if [ "$mode" != "fast" ]; then
  step "cargo test (--no-default-features: telemetry compiled out)"
  cargo test --workspace --no-default-features --offline -q

  step "cluster loopback smoke test (telemetry off)"
  cargo test --offline -q --no-default-features --test cluster_loopback

  step "kernel bench smoke + JSONL schema check (telemetry off)"
  metrics_off=$(mktemp /tmp/carousel-metrics-off.XXXXXX.jsonl)
  cargo run --release --offline -p carousel-bench --no-default-features --bin ext_kernels -- --smoke --metrics "$metrics_off"
  cargo run --release --offline -p carousel-bench --no-default-features --bin jsonl_check -- "$metrics_off"
  rm -f "$metrics_off"

  step "wire-parallelism bench smoke (telemetry off)"
  cargo run --release --offline -p carousel-bench --no-default-features --bin ext_pipeline -- --smoke

  step "observability bench smoke (telemetry off)"
  cargo run --release --offline -p carousel-bench --no-default-features --bin ext_observe -- --smoke

  step "repair-storm bench smoke (telemetry off)"
  cargo run --release --offline -p carousel-bench --no-default-features --bin ext_repair_storm -- --smoke

  step "metadata scale-out bench smoke + JSONL schema check (telemetry off)"
  meta_off=$(mktemp /tmp/carousel-meta-off.XXXXXX.jsonl)
  cargo run --release --offline -p carousel-bench --no-default-features --bin ext_metadata -- --smoke --metrics "$meta_off"
  cargo run --release --offline -p carousel-bench --no-default-features --bin jsonl_check -- "$meta_off"
  rm -f "$meta_off"

  step "update/packing bench smoke + JSONL schema check (telemetry off)"
  upd_off=$(mktemp /tmp/carousel-update-off.XXXXXX.jsonl)
  cargo run --release --offline -p carousel-bench --no-default-features --bin ext_update -- --smoke --metrics "$upd_off"
  cargo run --release --offline -p carousel-bench --no-default-features --bin jsonl_check -- "$upd_off"
  rm -f "$upd_off"
fi

step "cross-compile gate: aarch64 NEON kernel path"
# The NEON kernel cannot run on x86 CI, but it must at least keep
# compiling; `cargo check` for the aarch64 target catches intrinsic or
# cfg rot. Falls back with a warning when the target's std isn't
# installed (e.g. a fresh toolchain without `rustup target add`).
if rustup target list --installed 2>/dev/null | grep -q '^aarch64-unknown-linux-gnu$'; then
  cargo check -p carousel-gf256 --target aarch64-unknown-linux-gnu --offline -q
else
  echo "warning: aarch64-unknown-linux-gnu target not installed; skipping NEON cross-check"
fi

step "build ext_cluster (real-TCP experiment binary)"
cargo build --release --offline -p carousel-bench --bin ext_cluster

step "all checks passed"
