#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, and the full test suite in
# both telemetry configurations. Run from anywhere inside the repo.
#
#   scripts/check.sh          # everything (fmt, clippy, tests x2)
#   scripts/check.sh fast     # skip the --no-default-features test pass
#
# Everything runs --offline: this workspace vendors its few dependencies
# under crates/vendor/ and must build without network access.
set -euo pipefail
cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

mode="${1:-full}"

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy (default features, -D warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

step "cargo clippy (--no-default-features, -D warnings)"
cargo clippy --workspace --all-targets --no-default-features --offline -- -D warnings

step "cargo test (default features: telemetry on)"
cargo test --workspace --offline -q

step "cluster loopback smoke test (telemetry on)"
cargo test --offline -q --test cluster_loopback

if [ "$mode" != "fast" ]; then
  step "cargo test (--no-default-features: telemetry compiled out)"
  cargo test --workspace --no-default-features --offline -q

  step "cluster loopback smoke test (telemetry off)"
  cargo test --offline -q --no-default-features --test cluster_loopback
fi

step "build ext_cluster (real-TCP experiment binary)"
cargo build --release --offline -p carousel-bench --bin ext_cluster

step "all checks passed"
