//! Umbrella crate for the Carousel codes reproduction; see the member crates.
pub use carousel;
pub use dfs;
pub use erasure;
pub use gf256;
pub use lrc;
pub use mapreduce;
pub use msr;
pub use rs_code;
pub use simcore;
pub use workloads;
