//! `carousel-tool` — encode, inspect, damage, repair and decode real files
//! with Carousel or Reed-Solomon codes, using the on-disk block format of
//! the `carousel-filestore` crate.
//!
//! ```text
//! carousel-tool encode <input> <dir> [--code carousel(n,k,d,p)|rs(n,k)|msr(n,k,d)|mbr(n,k,d)] [--block-bytes N] [--threads N]
//! carousel-tool decode <dir> <output> [--threads N]
//! carousel-tool inspect <dir>
//! carousel-tool drop <dir> <stripe> <block>
//! carousel-tool repair <dir | manifest> [--file NAME]
//! carousel-tool verify <dir>
//! carousel-tool range <dir> <offset> <len>
//! carousel-tool write <dir> <offset> <patch-file>
//! carousel-tool serve <store-dir> [--addr HOST:PORT] [--id N]
//! carousel-tool put <input> <manifest> --nodes addr,addr,... [--code SPEC] [--block-bytes N] [--threads N] [--seed N]
//! carousel-tool get <manifest> <output> [--file NAME]
//! carousel-tool delete <manifest> [--file NAME]
//! carousel-tool manifest dump <manifest>
//! carousel-tool manifest compact <manifest>
//! carousel-tool stats <addr>
//! carousel-tool repair-status <addr>
//! carousel-tool kernels
//! ```
//!
//! The cluster commands run against a *live* TCP cluster: `serve`
//! starts a foreground datanode, `put` encodes + places + uploads a file
//! across datanodes while appending every registration and placement to
//! a durable metadata record log (the *manifest*), `get` replays that
//! log and reads the file back (degrading transparently if nodes died),
//! `stats` scrapes one node's telemetry registry over the wire, and
//! `repair-status` reads the process-wide background-repair scoreboard
//! (queue depth, in-flight rebuilds, completion counters). `repair` is
//! polymorphic: given a block directory it repairs locally, given a
//! manifest log it rebuilds missing blocks over the network, committing
//! every re-homed block back to the log. `manifest dump` prints the
//! log's surviving records and current placements; `manifest compact`
//! collapses its history into a snapshot.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use access::{ObjectStore, PutOptions};
use cluster::{ClusterClient, Coordinator, DataNodeConfig};
use erasure::ErasureCode;
use filestore::format::{self, AnyCode, CodeSpec};
use filestore::{FileCodec, FileError};
use workloads::parallel::ParallelCtx;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("usage:");
            eprintln!("  carousel-tool encode <input> <dir> [--code carousel(n,k,d,p)|rs(n,k)|msr(n,k,d)|mbr(n,k,d)] [--block-bytes N] [--threads N]");
            eprintln!("  carousel-tool decode <dir> <output> [--threads N]");
            eprintln!("  carousel-tool inspect <dir>");
            eprintln!("  carousel-tool drop <dir> <stripe> <block>");
            eprintln!("  carousel-tool repair <dir | manifest> [--file NAME]");
            eprintln!("  carousel-tool verify <dir>");
            eprintln!("  carousel-tool range <dir> <offset> <len>");
            eprintln!("  carousel-tool write <dir> <offset> <patch-file>");
            eprintln!("  carousel-tool serve <store-dir> [--addr HOST:PORT] [--id N]");
            eprintln!("  carousel-tool put <input> <manifest> --nodes addr,addr,... [--code SPEC] [--block-bytes N] [--threads N] [--seed N]");
            eprintln!("  carousel-tool get <manifest> <output> [--file NAME]");
            eprintln!("  carousel-tool delete <manifest> [--file NAME]");
            eprintln!("  carousel-tool manifest dump <manifest>");
            eprintln!("  carousel-tool manifest compact <manifest>");
            eprintln!("  carousel-tool stats <addr>");
            eprintln!("  carousel-tool repair-status <addr>");
            eprintln!("  carousel-tool kernels");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing command")?;
    match cmd.as_str() {
        "encode" => encode(&args[1..]),
        "decode" => decode(&args[1..]),
        "inspect" => inspect(&args[1..]),
        "drop" => drop_block(&args[1..]),
        "repair" => repair(&args[1..]),
        "verify" => verify(&args[1..]),
        "range" => range(&args[1..]),
        "write" => write_cmd(&args[1..]),
        "serve" => serve(&args[1..]),
        "put" => put_cluster(&args[1..]),
        "get" => get_cluster(&args[1..]),
        "delete" => delete_cluster(&args[1..]),
        "manifest" => manifest_cmd(&args[1..]),
        "stats" => stats_cluster(&args[1..]),
        "repair-status" => repair_status_cluster(&args[1..]),
        "kernels" => kernels_cmd(&args[1..]),
        other => Err(format!("unknown command {other:?}")),
    }
}

fn err_str(e: impl std::fmt::Display) -> String {
    e.to_string()
}

fn encode(args: &[String]) -> Result<(), String> {
    let input = args.first().ok_or("encode: missing <input>")?;
    let dir = args.get(1).ok_or("encode: missing <dir>")?;
    let mut spec = CodeSpec::Carousel {
        n: 12,
        k: 6,
        d: 10,
        p: 12,
    };
    let mut block_bytes: Option<usize> = None;
    let mut ctx = ParallelCtx::sequential();
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--code" => {
                let v = args.get(i + 1).ok_or("--code needs a value")?;
                spec = CodeSpec::parse(v).map_err(err_str)?;
                i += 2;
            }
            "--block-bytes" => {
                let v = args.get(i + 1).ok_or("--block-bytes needs a value")?;
                block_bytes = Some(v.parse().map_err(|_| "invalid --block-bytes")?);
                i += 2;
            }
            "--threads" => {
                ctx = parse_threads(args.get(i + 1))?;
                i += 2;
            }
            other => return Err(format!("encode: unknown flag {other:?}")),
        }
    }
    let data = std::fs::read(input).map_err(err_str)?;
    let code = spec.build().map_err(err_str)?;
    let sub = code.linear().sub();
    // Default block size: data spread over k blocks, rounded up to units.
    let block_bytes = block_bytes
        .unwrap_or_else(|| (data.len().div_ceil(code.k())).max(sub))
        .next_multiple_of(sub);
    let codec = FileCodec::new(code, block_bytes).map_err(err_str)?;
    let encoded = workloads::parallel::encode_file(&codec, &data, &ctx).map_err(err_str)?;
    format::save(Path::new(dir), spec, &encoded).map_err(err_str)?;
    println!(
        "encoded {} bytes with {spec}: {} stripe(s) x {} blocks of {} bytes -> {dir} ({} thread(s))",
        data.len(),
        encoded.stripes(),
        encoded.meta().n,
        block_bytes,
        ctx.threads()
    );
    Ok(())
}

/// Parses a `--threads` value into a parallel context; `0` means "all
/// available cores" (resolved once by the builder).
fn parse_threads(value: Option<&String>) -> Result<ParallelCtx, String> {
    let v: usize = value
        .ok_or("--threads needs a value")?
        .parse()
        .map_err(|_| "invalid --threads")?;
    Ok(ParallelCtx::builder().threads(v).build())
}

fn load_dir(args: &[String]) -> Result<(PathBuf, filestore::EncodedFile<AnyCode>), String> {
    let dir = PathBuf::from(args.first().ok_or("missing <dir>")?);
    let file = format::load(&dir).map_err(err_str)?;
    Ok((dir, file))
}

fn decode(args: &[String]) -> Result<(), String> {
    let (_, file) = load_dir(args)?;
    let output = args.get(1).ok_or("decode: missing <output>")?;
    let mut ctx = ParallelCtx::sequential();
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                ctx = parse_threads(args.get(i + 1))?;
                i += 2;
            }
            other => return Err(format!("decode: unknown flag {other:?}")),
        }
    }
    let data = workloads::parallel::decode_file(&file, &ctx).map_err(err_str)?;
    std::fs::write(output, &data).map_err(err_str)?;
    println!(
        "decoded {} bytes -> {output} ({} thread(s))",
        data.len(),
        ctx.threads()
    );
    Ok(())
}

fn inspect(args: &[String]) -> Result<(), String> {
    let dir = PathBuf::from(args.first().ok_or("inspect: missing <dir>")?);
    let (spec, meta) = format::read_meta(&dir).map_err(err_str)?;
    let file = format::load(&dir).map_err(err_str)?;
    let code = spec.build().map_err(err_str)?;
    println!("code:        {}", code.name());
    println!("file length: {} bytes", meta.file_len);
    println!("block size:  {} bytes", meta.block_bytes);
    println!(
        "stripes:     {} ({} blocks each, {} data)",
        meta.stripes, meta.n, meta.k
    );
    println!(
        "parallelism: {} data-bearing blocks per stripe",
        code.parallelism()
    );
    println!(
        "storage:     {:.2}x overhead, tolerates {} failures per stripe",
        meta.n as f64 / meta.k as f64,
        meta.n - meta.k
    );
    for s in 0..meta.stripes {
        let live = file.live_blocks(s);
        let missing: Vec<usize> = (0..meta.n).filter(|b| !live.contains(b)).collect();
        if missing.is_empty() {
            println!("stripe {s}: all {} blocks present", meta.n);
        } else {
            println!("stripe {s}: missing blocks {missing:?}");
        }
    }
    Ok(())
}

fn drop_block(args: &[String]) -> Result<(), String> {
    let dir = PathBuf::from(args.first().ok_or("drop: missing <dir>")?);
    let stripe: usize = args
        .get(1)
        .ok_or("drop: missing <stripe>")?
        .parse()
        .map_err(|_| "invalid stripe index")?;
    let block: usize = args
        .get(2)
        .ok_or("drop: missing <block>")?
        .parse()
        .map_err(|_| "invalid block index")?;
    let path = dir.join(format!("s{stripe:05}_b{block:03}.blk"));
    std::fs::remove_file(&path).map_err(err_str)?;
    println!("removed {}", path.display());
    Ok(())
}

/// Polymorphic repair: a directory is a local block store (repair in
/// process), a file is a cluster manifest (repair over the network).
fn repair(args: &[String]) -> Result<(), String> {
    let target = Path::new(args.first().ok_or("repair: missing <dir | manifest>")?);
    if target.is_file() {
        return repair_cluster(args);
    }
    let (dir, mut file) = load_dir(args)?;
    let (spec, meta) = format::read_meta(&dir).map_err(err_str)?;
    let mut repaired = 0;
    for s in 0..meta.stripes {
        let live = file.live_blocks(s);
        for b in 0..meta.n {
            if !live.contains(&b) {
                file.repair_block(s, b)
                    .map_err(|e| format!("stripe {s} block {b}: {e}"))?;
                repaired += 1;
            }
        }
    }
    if repaired == 0 {
        println!("nothing to repair");
        return Ok(());
    }
    format::save(&dir, spec, &file).map_err(err_str)?;
    println!("repaired {repaired} block(s) in {}", dir.display());
    Ok(())
}

/// Scrub: verify every block against its recorded CRC and report the
/// recovery headroom of each stripe. With `--deep`, additionally runs the
/// checksum-free consistency check (subset-vote corruption localization).
fn verify(args: &[String]) -> Result<(), String> {
    let dir = PathBuf::from(args.first().ok_or("verify: missing <dir>")?);
    let deep = args.iter().any(|a| a == "--deep");
    let (_, meta) = format::read_meta(&dir).map_err(err_str)?;
    // `load` quarantines corrupt blocks, so live_blocks reflects integrity.
    let file = format::load(&dir).map_err(err_str)?;
    let mut worst = meta.n;
    let mut damaged = 0usize;
    for s in 0..meta.stripes {
        let live = file.live_blocks(s).len();
        worst = worst.min(live);
        if live < meta.n {
            damaged += 1;
            println!("stripe {s}: {live}/{} blocks healthy", meta.n);
        }
    }
    if damaged == 0 {
        println!("all {} stripe(s) fully healthy", meta.stripes);
    }
    if worst < meta.k {
        return Err(format!(
            "DATA LOSS: a stripe has only {worst} healthy blocks (need {})",
            meta.k
        ));
    }
    println!(
        "recoverable: worst stripe has {worst} healthy blocks (need {}), \
         can lose {} more",
        meta.k,
        worst - meta.k
    );
    if deep {
        for (s, health) in file.scrub().into_iter().enumerate() {
            match health {
                Some(filestore::StripeHealth::Consistent) => {}
                Some(filestore::StripeHealth::Corrupt(blocks)) => {
                    println!("deep scrub: stripe {s} blocks {blocks:?} inconsistent");
                }
                Some(filestore::StripeHealth::Undecidable) => {
                    println!("deep scrub: stripe {s} undecidable");
                }
                None => println!("deep scrub: stripe {s} skipped (missing blocks)"),
            }
        }
        println!("deep scrub complete");
    }
    Ok(())
}

fn range(args: &[String]) -> Result<(), String> {
    let (_, file) = load_dir(args)?;
    let offset: u64 = args
        .get(1)
        .ok_or("range: missing <offset>")?
        .parse()
        .map_err(|_| "invalid offset")?;
    let len: u64 = args
        .get(2)
        .ok_or("range: missing <len>")?
        .parse()
        .map_err(|_| "invalid length")?;
    let bytes = file.read_range(offset, len).map_err(err_str)?;
    use std::io::Write;
    std::io::stdout().write_all(&bytes).map_err(err_str)?;
    Ok(())
}

/// In-place overwrite at an offset: data blocks and parity are updated via
/// delta writes (no re-encode), then saved back with fresh checksums.
fn write_cmd(args: &[String]) -> Result<(), String> {
    let (dir, mut file) = load_dir(args)?;
    let offset: u64 = args
        .get(1)
        .ok_or("write: missing <offset>")?
        .parse()
        .map_err(|_| "invalid offset")?;
    let patch_path = args.get(2).ok_or("write: missing <patch-file>")?;
    let patch = std::fs::read(patch_path).map_err(err_str)?;
    file.write_range(offset, &patch).map_err(err_str)?;
    let (spec, _) = format::read_meta(&dir).map_err(err_str)?;
    format::save(&dir, spec, &file).map_err(err_str)?;
    println!(
        "wrote {} bytes at offset {offset} (parity updated in place)",
        patch.len()
    );
    Ok(())
}

/// Runs one datanode in the foreground, printing its bound address (so
/// wrappers can use `--addr 127.0.0.1:0` for an ephemeral port).
fn serve(args: &[String]) -> Result<(), String> {
    let root = args.first().ok_or("serve: missing <store-dir>")?;
    let mut addr = String::from("127.0.0.1:0");
    let mut id = 0usize;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                addr = args.get(i + 1).ok_or("--addr needs a value")?.clone();
                i += 2;
            }
            "--id" => {
                id = args
                    .get(i + 1)
                    .ok_or("--id needs a value")?
                    .parse()
                    .map_err(|_| "invalid --id")?;
                i += 2;
            }
            other => return Err(format!("serve: unknown flag {other:?}")),
        }
    }
    cluster::serve_forever(&addr, DataNodeConfig::new(id, root)).map_err(err_str)
}

/// Builds a coordinator with a fresh record log at `manifest` and
/// registers the explicitly-listed datanode addresses (each
/// registration is the log's first records).
fn coordinator_for(nodes: &str, manifest: &Path) -> Result<Arc<Coordinator>, String> {
    let coord = Coordinator::create_log(manifest).map_err(err_str)?;
    for (id, addr) in nodes.split(',').enumerate() {
        let addr = addr
            .trim()
            .parse()
            .map_err(|_| format!("invalid node address {addr:?}"))?;
        coord.register(id, addr);
    }
    Ok(Arc::new(coord))
}

/// Replays a record-log manifest and pings the recovered nodes:
/// replayed registrations start *dead*, so a live probe is what
/// separates the nodes still serving from the ones that went away.
fn open_manifest(manifest: &Path) -> Result<Arc<Coordinator>, String> {
    let coord = Coordinator::open_log(manifest).map_err(err_str)?;
    coord.verify_nodes(std::time::Duration::from_secs(2));
    Ok(Arc::new(coord))
}

/// Encodes, places and uploads a file across live datanodes, writing the
/// cluster manifest that `get` and `repair` consume.
fn put_cluster(args: &[String]) -> Result<(), String> {
    let input = args.first().ok_or("put: missing <input>")?;
    let manifest = args.get(1).ok_or("put: missing <manifest>")?;
    let mut nodes: Option<String> = None;
    let mut spec = CodeSpec::Carousel {
        n: 9,
        k: 6,
        d: 6,
        p: 9,
    };
    let mut block_bytes: Option<usize> = None;
    let mut ctx = ParallelCtx::sequential();
    let mut seed = 17u64;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--nodes" => {
                nodes = Some(args.get(i + 1).ok_or("--nodes needs a value")?.clone());
                i += 2;
            }
            "--code" => {
                let v = args.get(i + 1).ok_or("--code needs a value")?;
                spec = CodeSpec::parse(v).map_err(err_str)?;
                i += 2;
            }
            "--block-bytes" => {
                let v = args.get(i + 1).ok_or("--block-bytes needs a value")?;
                block_bytes = Some(v.parse().map_err(|_| "invalid --block-bytes")?);
                i += 2;
            }
            "--threads" => {
                ctx = parse_threads(args.get(i + 1))?;
                i += 2;
            }
            "--seed" => {
                seed = args
                    .get(i + 1)
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "invalid --seed")?;
                i += 2;
            }
            other => return Err(format!("put: unknown flag {other:?}")),
        }
    }
    let nodes = nodes.ok_or("put: --nodes addr,addr,... is required")?;
    let coord = coordinator_for(&nodes, Path::new(manifest))?;
    let data = std::fs::read(input).map_err(err_str)?;
    let code = spec.build().map_err(err_str)?;
    let sub = code.linear().sub();
    let block_bytes = block_bytes
        .unwrap_or_else(|| (data.len().div_ceil(code.k())).max(sub))
        .next_multiple_of(sub);
    let name = Path::new(input)
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or("put: input has no usable file name")?;
    let mut client = ClusterClient::new(Arc::clone(&coord))
        .with_fanout(ctx)
        .with_seed(seed);
    let opts = PutOptions::new()
        .code(&spec.to_string())
        .block_bytes(block_bytes);
    client.put_opts(name, &data, &opts).map_err(err_str)?;
    let fp = coord.file(name).ok_or("put: placement vanished")?;
    println!(
        "stored {name:?} ({} bytes) with {spec}: {} stripe(s) over {} node(s) -> {manifest}",
        data.len(),
        fp.stripes,
        coord.nodes().len()
    );
    Ok(())
}

/// Parses the shared `[--file NAME]` flag (starting at `args[start]`)
/// and resolves the default (the manifest's only file, or an explicit
/// name when it has several).
fn manifest_file_arg(
    coord: &Coordinator,
    args: &[String],
    start: usize,
    cmd: &str,
) -> Result<String, String> {
    let mut name: Option<String> = None;
    let mut i = start;
    while i < args.len() {
        match args[i].as_str() {
            "--file" => {
                name = Some(args.get(i + 1).ok_or("--file needs a value")?.clone());
                i += 2;
            }
            other => return Err(format!("{cmd}: unknown flag {other:?}")),
        }
    }
    match name {
        Some(n) => Ok(n),
        None => {
            let files = coord.files();
            match files.as_slice() {
                [only] => Ok(only.clone()),
                [] => Err(format!("{cmd}: manifest lists no files")),
                _ => Err(format!(
                    "{cmd}: manifest lists several files ({files:?}); pass --file NAME"
                )),
            }
        }
    }
}

/// Reads a file back from the cluster described by a manifest log.
fn get_cluster(args: &[String]) -> Result<(), String> {
    let manifest = args.first().ok_or("get: missing <manifest>")?;
    let output = args.get(1).ok_or("get: missing <output>")?;
    let coord = open_manifest(Path::new(manifest))?;
    let name = manifest_file_arg(&coord, args, 2, "get")?;
    let mut client = ClusterClient::new(coord);
    let data = client.get(&name).map_err(err_str)?;
    std::fs::write(output, &data).map_err(err_str)?;
    println!("read {name:?}: {} bytes -> {output}", data.len());
    Ok(())
}

/// Deletes a file from the cluster: blocks are reclaimed best-effort on
/// the reachable datanodes, and the removal is committed to the manifest
/// log (a `FileDeleted` record), so a later `get` refuses the name.
fn delete_cluster(args: &[String]) -> Result<(), String> {
    let manifest = Path::new(args.first().ok_or("delete: missing <manifest>")?);
    let coord = open_manifest(manifest)?;
    let name = manifest_file_arg(&coord, args, 1, "delete")?;
    let mut client = ClusterClient::new(coord);
    if client.delete(&name).map_err(err_str)? {
        println!("deleted {name:?}");
    } else {
        println!("{name:?} does not exist");
    }
    Ok(())
}

/// Rebuilds a manifest-described file's missing blocks over the
/// network; every re-homed block is committed to the manifest log as it
/// happens, so there is nothing to rewrite afterwards.
fn repair_cluster(args: &[String]) -> Result<(), String> {
    let manifest = Path::new(args.first().ok_or("repair: missing <manifest>")?);
    let coord = open_manifest(manifest)?;
    let name = manifest_file_arg(&coord, args, 1, "repair")?;
    let mut client = ClusterClient::new(Arc::clone(&coord));
    let report = client.repair_file(&name).map_err(err_str)?;
    if report.blocks_repaired == 0 {
        println!("nothing to repair in {name:?}");
    } else {
        println!(
            "repaired {} block(s) of {name:?}: {} helper payload bytes ({} on the wire)",
            report.blocks_repaired, report.helper_payload_bytes, report.wire_bytes
        );
    }
    Ok(())
}

/// `manifest dump <log>` / `manifest compact <log>`: offline inspection
/// and maintenance of a metadata record log, no cluster required.
fn manifest_cmd(args: &[String]) -> Result<(), String> {
    let sub = args.first().ok_or("manifest: missing dump|compact")?;
    let path = Path::new(args.get(1).ok_or("manifest: missing <manifest> log path")?);
    match sub.as_str() {
        "dump" => manifest_dump(path),
        "compact" => manifest_compact(path),
        other => Err(format!("manifest: unknown subcommand {other:?}")),
    }
}

/// Prints every surviving record of a metadata log, then the placements
/// they replay to. The `place_<file>_<stripe>=` lines are the stable,
/// machine-parseable part (tests and scripts read node ids off them).
fn manifest_dump(path: &Path) -> Result<(), String> {
    use cluster::metalog;
    use cluster::MetaRecord;
    use std::collections::BTreeMap;

    let (records, valid, total) = metalog::read_records(path).map_err(err_str)?;
    println!(
        "log {}: {} record(s), {valid} of {total} bytes valid",
        path.display(),
        records.len()
    );
    if valid < total {
        println!(
            "(torn tail: the last {} bytes are unreadable)",
            total - valid
        );
    }
    let mut files: BTreeMap<String, cluster::FilePlacement> = BTreeMap::new();
    for rec in &records {
        match rec {
            MetaRecord::NodeRegistered { id, addr } => println!("  node {id} @ {addr}"),
            MetaRecord::FilePlaced(fp) => {
                println!(
                    "  placed {:?} {} ({} bytes, {} stripe(s))",
                    fp.name, fp.spec, fp.file_len, fp.stripes
                );
                files.insert(fp.name.clone(), fp.clone());
            }
            MetaRecord::PlacementCommitted {
                file,
                stripe,
                role,
                node,
            } => {
                println!("  commit {file:?} stripe {stripe} role {role} -> node {node}");
                if let Some(fp) = files.get_mut(file) {
                    if let Some(slot) = fp
                        .nodes
                        .get_mut(*stripe as usize)
                        .and_then(|row| row.get_mut(*role as usize))
                    {
                        *slot = *node as usize;
                    }
                }
            }
            MetaRecord::FileDeleted { file } => {
                println!("  deleted {file:?}");
                files.remove(file);
            }
            MetaRecord::FileExtended {
                file,
                file_len,
                added,
            } => {
                println!(
                    "  extended {file:?} to {file_len} bytes (+{} stripe(s))",
                    added.len()
                );
                if let Some(fp) = files.get_mut(file) {
                    fp.file_len = *file_len;
                    fp.stripes += added.len();
                    fp.nodes.extend(added.iter().cloned());
                }
            }
            MetaRecord::ObjectPacked {
                object,
                pack,
                offset,
                len,
            } => println!("  packed {object:?} -> {pack:?} @{offset}+{len}"),
            MetaRecord::ObjectDeleted { object } => println!("  unpacked {object:?}"),
        }
    }
    for (idx, fp) in files.values().enumerate() {
        println!(
            "file_{idx}={} spec={} len={} block_bytes={} stripes={}",
            fp.name, fp.spec, fp.file_len, fp.block_bytes, fp.stripes
        );
        for (s, row) in fp.nodes.iter().enumerate() {
            let ids: Vec<String> = row.iter().map(|n| n.to_string()).collect();
            println!("place_{idx}_{s}={}", ids.join(","));
        }
    }
    Ok(())
}

/// Collapses a metadata log's history into a snapshot of its current
/// state (same replay result, minimal size).
fn manifest_compact(path: &Path) -> Result<(), String> {
    let before = std::fs::metadata(path).map_err(err_str)?.len();
    let coord = Coordinator::open_log(path).map_err(err_str)?;
    coord.compact_log().map_err(err_str)?;
    let after = std::fs::metadata(path).map_err(err_str)?.len();
    println!("compacted {}: {before} -> {after} bytes", path.display());
    Ok(())
}

/// Scrapes one datanode's telemetry registry over the wire
/// ([`cluster::Request::Stats`]) and prints every metric.
fn stats_cluster(args: &[String]) -> Result<(), String> {
    use cluster::protocol;
    use cluster::{Request, Response};

    let addr = args.first().ok_or("stats: missing <addr>")?;
    let addr: std::net::SocketAddr = addr
        .parse()
        .map_err(|_| format!("invalid node address {addr:?}"))?;
    let timeout = std::time::Duration::from_secs(5);
    let mut stream = std::net::TcpStream::connect_timeout(&addr, timeout).map_err(err_str)?;
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    protocol::write_request(&mut stream, &Request::Stats).map_err(err_str)?;
    let mut scratch = Vec::new();
    let reply = protocol::read_response_into(&mut stream, &mut scratch)
        .map_err(err_str)?
        .ok_or("stats: node closed the connection without replying")?;
    let snap = match reply.0 {
        Response::Data(bytes) => protocol::decode_stats(&bytes).map_err(err_str)?,
        Response::Error(message) => return Err(format!("stats: node error: {message}")),
        other => return Err(format!("stats: unexpected reply {other:?}")),
    };
    if snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty() {
        println!("{addr}: no metrics (node built without the telemetry feature?)");
        return Ok(());
    }
    for (name, v) in &snap.counters {
        println!("counter   {name} = {v}");
    }
    for (name, v) in &snap.gauges {
        println!("gauge     {name} = {v}");
    }
    for (name, h) in &snap.histograms {
        if h.is_empty() {
            println!("histogram {name}: empty");
        } else {
            println!(
                "histogram {name}: count={} mean={:.1} p50={} p95={} p99={} min={} max={}",
                h.count,
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99(),
                h.min,
                h.max
            );
        }
    }
    Ok(())
}

/// Reads the background-repair scoreboard over the wire
/// ([`cluster::Request::RepairStatus`]) and prints it. Unlike `stats`,
/// this works even when the node was built without the telemetry
/// feature: the scoreboard is plain atomics.
fn repair_status_cluster(args: &[String]) -> Result<(), String> {
    use cluster::protocol;
    use cluster::{Request, Response};

    let addr = args.first().ok_or("repair-status: missing <addr>")?;
    let addr: std::net::SocketAddr = addr
        .parse()
        .map_err(|_| format!("invalid node address {addr:?}"))?;
    let timeout = std::time::Duration::from_secs(5);
    let mut stream = std::net::TcpStream::connect_timeout(&addr, timeout).map_err(err_str)?;
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    protocol::write_request(&mut stream, &Request::RepairStatus).map_err(err_str)?;
    let mut scratch = Vec::new();
    let reply = protocol::read_response_into(&mut stream, &mut scratch)
        .map_err(err_str)?
        .ok_or("repair-status: node closed the connection without replying")?;
    let report = match reply.0 {
        Response::Data(bytes) => protocol::decode_repair_status(&bytes).map_err(err_str)?,
        Response::Error(message) => return Err(format!("repair-status: node error: {message}")),
        other => return Err(format!("repair-status: unexpected reply {other:?}")),
    };
    println!("queue depth:     {}", report.queue_depth);
    println!("in flight:       {}", report.in_flight);
    println!("enqueued:        {}", report.enqueued);
    println!("completed:       {}", report.completed);
    println!("requeued:        {}", report.requeued);
    println!("cancelled:       {}", report.cancelled);
    println!("abandoned:       {}", report.abandoned);
    println!("blocks rebuilt:  {}", report.blocks_rebuilt);
    println!("helper bytes:    {}", report.helper_bytes);
    println!("wire bytes:      {}", report.wire_bytes);
    Ok(())
}

/// `kernels` — prints the GF(2⁸) kernel registry: every kernel runtime
/// CPU-feature detection registered on this machine, the probed features,
/// which kernel is the active process default, and why (detected best vs a
/// `CAROUSEL_KERNEL` override).
fn kernels_cmd(args: &[String]) -> Result<(), String> {
    if let Some(flag) = args.first() {
        return Err(format!("kernels: unknown flag {flag:?}"));
    }
    let active = gf256::kernel();
    let best = gf256::detected_best();
    println!("registered kernels (ascending speed order):");
    for k in gf256::kernels() {
        let mut notes = Vec::new();
        if k.name() == "scalar" {
            notes.push("reference");
        }
        if k.name() == best.name() {
            notes.push("detected best");
        }
        if k.name() == active.name() {
            notes.push("active default");
        }
        let notes = if notes.is_empty() {
            String::new()
        } else {
            format!("  ({})", notes.join(", "))
        };
        println!("  {}{notes}", k.name());
    }
    println!("detected CPU features:");
    for (feature, on) in gf256::detected_features() {
        println!("  {feature}: {}", if on { "yes" } else { "no" });
    }
    match std::env::var("CAROUSEL_KERNEL") {
        Ok(name) if !name.is_empty() => {
            println!(
                "CAROUSEL_KERNEL={name:?} -> active kernel {:?}",
                active.name()
            );
        }
        _ => println!(
            "CAROUSEL_KERNEL unset -> active kernel {:?} (detected best)",
            active.name()
        ),
    }
    Ok(())
}

// Keep FileError in the public signature path used above.
#[allow(dead_code)]
fn _assert_error_conversion(e: FileError) -> String {
    err_str(e)
}
