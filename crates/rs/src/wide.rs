//! Wide Reed-Solomon: systematic `(n, k)` codes over GF(2¹⁶), for
//! deployments with more than 255 blocks per stripe.
//!
//! The paper fixes one symbol = one byte ("typically, a symbol is simply a
//! byte") but notes the field size is a parameter in practice. This module
//! instantiates the same systematized-Vandermonde construction over
//! [`Gf65536`], lifting the stripe-width limit to 65535 blocks. Payload
//! symbols are little-endian `u16` pairs.

use erasure::CodeError;
use gf256::{Field, Gf65536, MatrixOf};

/// A systematic `(n, k)` Reed-Solomon code over GF(2¹⁶).
///
/// # Examples
///
/// ```
/// use rs_code::wide::WideReedSolomon;
///
/// // 300 blocks per stripe — impossible over GF(2^8).
/// let code = WideReedSolomon::new(300, 200)?;
/// let stripe = code.encode(b"wide-stripe payload")?;
/// let nodes: Vec<usize> = (100..300).collect();
/// let blocks: Vec<&[u8]> = nodes.iter().map(|&i| &stripe[i][..]).collect();
/// let out = code.decode_nodes(&nodes, &blocks)?;
/// assert_eq!(&out[..19], b"wide-stripe payload");
/// # Ok::<(), erasure::CodeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct WideReedSolomon {
    n: usize,
    k: usize,
    generator: MatrixOf<Gf65536>,
}

impl WideReedSolomon {
    /// Constructs the code.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParameters`] unless `0 < k ≤ n ≤ 65535`.
    pub fn new(n: usize, k: usize) -> Result<Self, CodeError> {
        if k == 0 || k > n {
            return Err(CodeError::InvalidParameters {
                reason: format!("require 0 < k <= n, got n = {n}, k = {k}"),
            });
        }
        if n > 65535 {
            return Err(CodeError::InvalidParameters {
                reason: format!("n = {n} exceeds the GF(2^16) limit of 65535 blocks"),
            });
        }
        let v: MatrixOf<Gf65536> = MatrixOf::vandermonde(n, k);
        let top: Vec<usize> = (0..k).collect();
        let inv = v
            .select_rows(&top)
            .inverse()
            .ok_or(CodeError::SingularSelection)?;
        let generator = &v * &inv;
        Ok(WideReedSolomon { n, k, generator })
    }

    /// Blocks per stripe.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Data blocks per stripe.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The `n × k` generator over GF(2¹⁶).
    pub fn generator(&self) -> &MatrixOf<Gf65536> {
        &self.generator
    }

    /// Encodes `data` into `n` blocks. Data is padded to `2k·w` bytes
    /// (16-bit symbols); each block is `2w` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InsufficientData`] for empty input.
    pub fn encode(&self, data: &[u8]) -> Result<Vec<Vec<u8>>, CodeError> {
        if data.is_empty() {
            return Err(CodeError::InsufficientData { needed: 1, got: 0 });
        }
        let symbols = to_symbols(data);
        let w = symbols.len().div_ceil(self.k).max(1);
        let mut padded = symbols;
        padded.resize(self.k * w, Gf65536::ZERO);
        let mut blocks = vec![vec![Gf65536::ZERO; w]; self.n];
        for (i, block) in blocks.iter_mut().enumerate() {
            for (j, &coeff) in self.generator.row(i).iter().enumerate() {
                if coeff.is_zero() {
                    continue;
                }
                let src = &padded[j * w..(j + 1) * w];
                for (dst, &s) in block.iter_mut().zip(src) {
                    *dst += coeff * s;
                }
            }
        }
        Ok(blocks.into_iter().map(|b| from_symbols(&b)).collect())
    }

    /// Decodes the original (padded) bytes from any `k` distinct blocks.
    ///
    /// # Errors
    ///
    /// Mirrors the GF(2⁸) [`LinearCode`](erasure::LinearCode) errors:
    /// wrong counts, duplicates, out-of-range indices, size mismatches.
    pub fn decode_nodes(&self, nodes: &[usize], blocks: &[&[u8]]) -> Result<Vec<u8>, CodeError> {
        if nodes.len() != self.k || blocks.len() != self.k {
            return Err(CodeError::InsufficientData {
                needed: self.k,
                got: nodes.len().min(blocks.len()),
            });
        }
        for (i, &nd) in nodes.iter().enumerate() {
            if nd >= self.n {
                return Err(CodeError::NodeOutOfRange {
                    node: nd,
                    n: self.n,
                });
            }
            if nodes[i + 1..].contains(&nd) {
                return Err(CodeError::DuplicateNode { node: nd });
            }
        }
        let len = blocks[0].len();
        for b in blocks {
            if b.len() != len || !len.is_multiple_of(2) {
                return Err(CodeError::BlockSizeMismatch {
                    expected: len,
                    actual: b.len(),
                });
            }
        }
        let inverse = self
            .generator
            .select_rows(nodes)
            .inverse()
            .ok_or(CodeError::SingularSelection)?;
        let w = len / 2;
        let symbol_blocks: Vec<Vec<Gf65536>> = blocks.iter().map(|b| to_symbols(b)).collect();
        let mut out = vec![Gf65536::ZERO; self.k * w];
        for r in 0..self.k {
            let row = inverse.row(r);
            let dst = &mut out[r * w..(r + 1) * w];
            for (coeff, src) in row.iter().zip(&symbol_blocks) {
                if coeff.is_zero() {
                    continue;
                }
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d += *coeff * s;
                }
            }
        }
        Ok(from_symbols(&out))
    }

    /// Checks that a subset of blocks can decode (full rank).
    pub fn can_decode(&self, nodes: &[usize]) -> bool {
        nodes.len() >= self.k
            && nodes.iter().all(|&nd| nd < self.n)
            && self.generator.select_rows(nodes).rank() == self.k
    }
}

fn to_symbols(data: &[u8]) -> Vec<Gf65536> {
    let mut out = Vec::with_capacity(data.len().div_ceil(2));
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        out.push(Gf65536::new(u16::from_le_bytes([c[0], c[1]])));
    }
    if let [last] = chunks.remainder() {
        out.push(Gf65536::new(*last as u16));
    }
    out
}

fn from_symbols(symbols: &[Gf65536]) -> Vec<u8> {
    let mut out = Vec::with_capacity(symbols.len() * 2);
    for s in symbols {
        out.extend_from_slice(&s.value().to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    #[test]
    fn parameter_validation() {
        assert!(WideReedSolomon::new(0, 0).is_err());
        assert!(WideReedSolomon::new(4, 5).is_err());
        assert!(WideReedSolomon::new(65536, 10).is_err());
        assert!(WideReedSolomon::new(300, 200).is_ok());
    }

    #[test]
    fn systematic_prefix() {
        let code = WideReedSolomon::new(10, 4).unwrap();
        let data: Vec<u8> = (0..64).map(|i| (i * 11 + 1) as u8).collect();
        let blocks = code.encode(&data).unwrap();
        let w2 = blocks[0].len();
        for i in 0..4 {
            assert_eq!(&blocks[i][..], &data[i * w2..(i + 1) * w2], "block {i}");
        }
    }

    #[test]
    fn decode_from_any_k_beyond_gf256_limit() {
        // n = 400 blocks: impossible over GF(2^8).
        let code = WideReedSolomon::new(400, 80).unwrap();
        let data: Vec<u8> = (0..960).map(|i| (i * 7 + 3) as u8).collect();
        let blocks = code.encode(&data).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let mut nodes: Vec<usize> = (0..400).collect();
        nodes.shuffle(&mut rng);
        nodes.truncate(80);
        let refs: Vec<&[u8]> = nodes.iter().map(|&i| &blocks[i][..]).collect();
        let out = code.decode_nodes(&nodes, &refs).unwrap();
        assert_eq!(&out[..data.len()], &data[..]);
    }

    #[test]
    fn odd_length_data_round_trips() {
        let code = WideReedSolomon::new(6, 3).unwrap();
        let data: Vec<u8> = (0..33).map(|i| i as u8).collect();
        let blocks = code.encode(&data).unwrap();
        let nodes = [5usize, 1, 3];
        let refs: Vec<&[u8]> = nodes.iter().map(|&i| &blocks[i][..]).collect();
        let out = code.decode_nodes(&nodes, &refs).unwrap();
        assert_eq!(&out[..data.len()], &data[..]);
    }

    #[test]
    fn sampled_mds_check() {
        let code = WideReedSolomon::new(40, 10).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let mut nodes: Vec<usize> = (0..40).collect();
            nodes.shuffle(&mut rng);
            nodes.truncate(10);
            assert!(code.can_decode(&nodes), "{nodes:?}");
        }
        assert!(!code.can_decode(&[0, 1]));
    }

    #[test]
    fn decode_validates_inputs() {
        let code = WideReedSolomon::new(6, 3).unwrap();
        let data = vec![1u8; 30];
        let blocks = code.encode(&data).unwrap();
        let refs: Vec<&[u8]> = blocks[..3].iter().map(|b| &b[..]).collect();
        assert!(code.decode_nodes(&[0, 0, 1], &refs).is_err());
        assert!(code.decode_nodes(&[0, 1, 9], &refs).is_err());
        assert!(code.decode_nodes(&[0, 1], &refs[..2]).is_err());
        assert!(code.encode(&[]).is_err());
    }
}
