//! Systematic `(n, k)` Reed-Solomon codes (paper §IV).
//!
//! The generator is a systematized Vandermonde matrix: an `n × k`
//! Vandermonde matrix on distinct points right-multiplied by the inverse of
//! its top `k × k` block, so the first `k` blocks are verbatim data blocks
//! and any `k` of the `n` blocks decode (MDS).
//!
//! Repair is repair-by-decode (equation (2) of the paper): `k` helpers each
//! send their whole block, so repairing one block costs `k` block transfers
//! — the inefficiency that motivates MSR and, by extension, Carousel codes.
//!
//! # Examples
//!
//! ```
//! use erasure::ErasureCode;
//! use rs_code::ReedSolomon;
//!
//! let rs = ReedSolomon::new(6, 4)?;
//! let stripe = rs.linear().encode(b"data to protect")?;
//! // Lose two blocks, decode from any four.
//! let nodes = [0, 2, 4, 5];
//! let blocks: Vec<&[u8]> = nodes.iter().map(|&i| &stripe.blocks[i][..]).collect();
//! let out = rs.linear().decode_nodes(&nodes, &blocks)?;
//! assert_eq!(&out[..15], b"data to protect");
//! # Ok::<(), erasure::CodeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod wide;

use erasure::{CodeError, DataLayout, ErasureCode, HelperTask, LinearCode, RepairPlan};
use gf256::builders::systematize;
use gf256::Matrix;

/// A systematic `(n, k)` Reed-Solomon code over GF(2⁸).
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    code: LinearCode,
}

impl ReedSolomon {
    /// Constructs the code.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParameters`] unless `0 < k ≤ n ≤ 255`.
    pub fn new(n: usize, k: usize) -> Result<Self, CodeError> {
        if k == 0 || k > n {
            return Err(CodeError::InvalidParameters {
                reason: format!("require 0 < k <= n, got n = {n}, k = {k}"),
            });
        }
        if n > 255 {
            return Err(CodeError::InvalidParameters {
                reason: format!("n = {n} exceeds the GF(2^8) limit of 255 blocks"),
            });
        }
        let generator = systematize(&Matrix::vandermonde(n, k));
        let code = LinearCode::new(n, k, 1, generator)?;
        Ok(ReedSolomon { code })
    }
}

impl ErasureCode for ReedSolomon {
    fn name(&self) -> String {
        format!("RS({},{})", self.n(), self.k())
    }

    fn linear(&self) -> &LinearCode {
        &self.code
    }

    fn d(&self) -> usize {
        self.k()
    }

    fn data_layout(&self) -> DataLayout {
        DataLayout::systematic(self.n(), self.k(), 1)
    }

    /// Repair-by-decode: the `k` helpers ship their whole blocks and the
    /// newcomer recomputes `g_failed · F` (paper eq. (2)).
    fn repair_plan(&self, failed: usize, helpers: &[usize]) -> Result<RepairPlan, CodeError> {
        if failed >= self.n() {
            return Err(CodeError::NodeOutOfRange {
                node: failed,
                n: self.n(),
            });
        }
        if helpers.contains(&failed) {
            return Err(CodeError::BadHelperSet {
                reason: format!("helper set contains the failed block {failed}"),
            });
        }
        if helpers.len() != self.k() {
            return Err(CodeError::BadHelperSet {
                reason: format!(
                    "RS repair needs exactly k = {} helpers, got {}",
                    self.k(),
                    helpers.len()
                ),
            });
        }
        // The failed block is g_failed · F, and from the helpers' stacked
        // generator rows S we have F = S⁻¹ · (helper units), so the newcomer
        // combines with g_failed · S⁻¹ while helpers ship whole blocks.
        let stacked_inv = self
            .code
            .generator()
            .select_rows(helpers)
            .inverse()
            .ok_or(CodeError::SingularSelection)?;
        let g_failed = self.code.node_generator(failed);
        let combine = &g_failed * &stacked_inv;
        let tasks = helpers
            .iter()
            .map(|&node| HelperTask {
                node,
                coeffs: Matrix::identity(1),
            })
            .collect();
        Ok(RepairPlan {
            failed,
            helpers: tasks,
            combine,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use erasure::mds::verify_mds;
    use proptest::prelude::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(ReedSolomon::new(4, 0).is_err());
        assert!(ReedSolomon::new(3, 4).is_err());
        assert!(ReedSolomon::new(256, 8).is_err());
        assert!(ReedSolomon::new(255, 255).is_ok());
    }

    #[test]
    fn is_mds_for_paper_parameters() {
        // The paper's cluster experiments use (12, 6); Fig 6 sweeps n = 2k.
        for (n, k) in [(6, 4), (12, 6), (4, 2), (8, 4)] {
            let rs = ReedSolomon::new(n, k).unwrap();
            assert!(verify_mds(rs.linear(), 2_000).is_mds(), "RS({n},{k})");
        }
    }

    #[test]
    fn systematic_layout() {
        let rs = ReedSolomon::new(6, 4).unwrap();
        let layout = rs.data_layout();
        assert_eq!(layout.data_bearing_nodes(), 4);
        assert_eq!(rs.parallelism(), 4);
        assert!(layout.is_contiguous_per_node());
    }

    #[test]
    fn repair_every_block_from_every_helper_window() {
        let rs = ReedSolomon::new(6, 4).unwrap();
        let data: Vec<u8> = (0..96).map(|i| (i * 29 + 3) as u8).collect();
        let stripe = rs.linear().encode(&data).unwrap();
        for failed in 0..6 {
            let helpers: Vec<usize> = (0..6).filter(|&i| i != failed).take(4).collect();
            let plan = rs.repair_plan(failed, &helpers).unwrap();
            let blocks: Vec<&[u8]> = helpers.iter().map(|&i| &stripe.blocks[i][..]).collect();
            let (rebuilt, traffic) = plan.run(&blocks).unwrap();
            assert_eq!(rebuilt, stripe.blocks[failed], "block {failed}");
            // RS repair moves k full blocks.
            assert_eq!(traffic, 4 * stripe.block_bytes());
            assert!((plan.traffic_blocks(1) - 4.0).abs() < 1e-12);
        }
    }

    #[test]
    fn repair_from_nonconsecutive_helpers() {
        let rs = ReedSolomon::new(8, 4).unwrap();
        let data: Vec<u8> = (0..32).map(|i| i as u8).collect();
        let stripe = rs.linear().encode(&data).unwrap();
        let plan = rs.repair_plan(2, &[7, 0, 5, 3]).unwrap();
        let blocks: Vec<&[u8]> = [7usize, 0, 5, 3]
            .iter()
            .map(|&i| &stripe.blocks[i][..])
            .collect();
        let (rebuilt, _) = plan.run(&blocks).unwrap();
        assert_eq!(rebuilt, stripe.blocks[2]);
    }

    #[test]
    fn repair_rejects_bad_helper_sets() {
        let rs = ReedSolomon::new(6, 4).unwrap();
        assert!(matches!(
            rs.repair_plan(0, &[0, 1, 2, 3]),
            Err(CodeError::BadHelperSet { .. })
        ));
        assert!(matches!(
            rs.repair_plan(0, &[1, 2, 3]),
            Err(CodeError::BadHelperSet { .. })
        ));
        assert!(matches!(
            rs.repair_plan(9, &[1, 2, 3, 4]),
            Err(CodeError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn name_and_dims() {
        let rs = ReedSolomon::new(9, 6).unwrap();
        assert_eq!(rs.name(), "RS(9,6)");
        assert_eq!(rs.n(), 9);
        assert_eq!(rs.k(), 6);
        assert_eq!(rs.d(), 6);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_round_trip_random_subsets(
            k in 2usize..7,
            extra in 1usize..5,
            data in proptest::collection::vec(any::<u8>(), 1..400),
            seed in any::<u64>(),
        ) {
            use rand::seq::SliceRandom;
            use rand::SeedableRng;
            let n = k + extra;
            let rs = ReedSolomon::new(n, k).unwrap();
            let stripe = rs.linear().encode(&data).unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut nodes: Vec<usize> = (0..n).collect();
            nodes.shuffle(&mut rng);
            nodes.truncate(k);
            let blocks: Vec<&[u8]> = nodes.iter().map(|&i| &stripe.blocks[i][..]).collect();
            let out = rs.linear().decode_nodes(&nodes, &blocks).unwrap();
            prop_assert_eq!(&out[..data.len()], &data[..]);
        }
    }
}
