//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Implements the macro and builder surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, benchmark groups, throughput
//! annotations) with a simple wall-clock measurement loop: a short warm-up,
//! then `sample_size` timed batches whose per-iteration mean, minimum and
//! maximum are printed to stdout. No statistics engine, plots or HTML
//! reports — just honest timings, so `cargo bench` works offline.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark (printed alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A two-part benchmark identifier, `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }

    /// Builds a bare parameter id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// The per-benchmark timing driver handed to closures as `b`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it many times per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_size: usize,
    warm_up: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            warm_up: Duration::from_millis(200),
        }
    }
}

/// The benchmark manager (a minimal mirror of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up time (accepted for API compatibility).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.settings.warm_up = d;
        self
    }

    /// Sets the measurement time (accepted and ignored).
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let settings = self.settings;
        run_one(&id.to_string(), None, settings, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let mut settings = self.criterion.settings;
        if let Some(n) = self.sample_size {
            settings.sample_size = n;
        }
        run_one(
            &format!("{}/{}", self.name, id),
            self.throughput,
            settings,
            f,
        );
        self
    }

    /// Benchmarks a function with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (printing nothing extra; for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    throughput: Option<Throughput>,
    settings: Settings,
    mut f: F,
) {
    // Warm up and calibrate the per-sample iteration count so one sample
    // lasts roughly 10 ms (bounded to keep total time sane).
    let mut iters: u64 = 1;
    let warm_start = Instant::now();
    let per_iter;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if warm_start.elapsed() >= settings.warm_up || b.elapsed > Duration::from_millis(50) {
            per_iter = b
                .elapsed
                .checked_div(iters as u32)
                .unwrap_or(Duration::ZERO);
            break;
        }
        iters = iters.saturating_mul(2).min(1 << 24);
    }
    let target = Duration::from_millis(10);
    if per_iter > Duration::ZERO {
        iters = (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;
    }

    let mut samples: Vec<f64> = Vec::with_capacity(settings.sample_size);
    for _ in 0..settings.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(0.0f64, f64::max);
    let tp = match throughput {
        Some(Throughput::Bytes(b)) if mean > 0.0 => {
            format!("  {:>10.1} MiB/s", b as f64 / mean / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(e)) if mean > 0.0 => {
            format!("  {:>10.0} elem/s", e as f64 / mean)
        }
        _ => String::new(),
    };
    println!(
        "{name:<48} time: [{} {} {}]{tp}",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max)
    );
}

fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; a plain
            // `--help`-style filter interface is not implemented.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default().sample_size(2);
        let mut count = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                count += 1;
            })
        });
        assert!(count > 0);
    }

    #[test]
    fn group_with_input_and_throughput() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(1024));
        g.sample_size(2);
        let data = [1u8; 64];
        g.bench_with_input(BenchmarkId::new("sum", "64"), &data[..], |b, d| {
            b.iter(|| d.iter().map(|&x| x as u64).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", "k=2").to_string(), "f/k=2");
    }
}
