//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, range and
//! tuple strategies, [`Just`], `prop_map`/`prop_flat_map`,
//! `collection::vec`, `sample::select` and `ProptestConfig::with_cases`.
//!
//! Differences from upstream: cases are generated from a fixed
//! deterministic seed (per test name length, varied per case), and there
//! is **no shrinking** — a failing case panics with the generated values
//! left to the assertion message.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::Rng;

#[doc(hidden)]
pub use rand as __rand;

/// A source of random test values.
pub type TestRng = StdRng;

/// Generates values of `Self::Value` for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then draws from the strategy `f` builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy (API compatibility).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, dynamically-dispatched strategy.
pub struct BoxedStrategy<T>(Box<dyn StrategyObj<Value = T>>);

trait StrategyObj {
    type Value;
    fn generate_obj(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> StrategyObj for S {
    type Value = S::Value;
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_obj(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let mid = self.inner.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// `any::<T>()` support: the full-range strategy for a type.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A strategy for `Vec`s with element strategy `elem` and a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::seq::SliceRandom;

    /// A strategy drawing uniformly from a fixed set of options.
    pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options.choose(rng).expect("non-empty").clone()
        }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// Controls how many cases each property test runs.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    /// Upstream name for [`Config`].
    pub type ProptestConfig = Config;

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps offline CI fast while
            // still exercising the generators.
            Config { cases: 64 }
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (@body ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            // Deterministic per-test seed; varied per case below.
            let seed = stringify!($name).len() as u64 ^ 0x5EED_CA55_E77E_0001;
            for case in 0..cfg.cases as u64 {
                let mut rng = <$crate::TestRng as $crate::__rand::SeedableRng>::seed_from_u64(
                    seed.wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                );
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @body ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            @body (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, usize)> {
        (1usize..=5).prop_flat_map(|a| (Just(a), a..=(a + 3)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..9, y in 0u8..=255) {
            prop_assert!((3..9).contains(&x));
            let _ = y;
        }

        #[test]
        fn vec_strategy_len(data in crate::collection::vec(any::<u8>(), 2..7)) {
            prop_assert!((2..7).contains(&data.len()));
        }

        #[test]
        fn flat_map_dependent_values((a, b) in pair()) {
            prop_assert!(b >= a && b <= a + 3);
        }

        #[test]
        fn select_picks_member(v in crate::sample::select(vec![2usize, 4, 8])) {
            prop_assert!(v == 2 || v == 4 || v == 8);
        }
    }

    #[test]
    fn default_config_runs() {
        // The non-configured form of the macro compiles and runs.
        mod inner {
            proptest! {
                #[test]
                fn trivially_true(x in 0usize..10) {
                    prop_assert!(x < 10);
                }
            }
            pub fn run() {
                trivially_true();
            }
        }
        inner::run();
    }
}
