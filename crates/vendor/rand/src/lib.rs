//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small API subset it actually uses: seedable
//! deterministic generators (`rngs::StdRng`), the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), and `seq::SliceRandom::shuffle`.
//!
//! The generator is xoshiro256** seeded via SplitMix64 — the same
//! construction `rand`'s `SmallRng` family uses — so streams are of high
//! statistical quality for simulation purposes, but they are **not** the
//! byte-identical streams of upstream `StdRng` (ChaCha12) and are not
//! cryptographically secure.

#![forbid(unsafe_code)]

use std::ops::Range;

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that a generic [`Rng::gen`] call can produce.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single(self, rng: &mut (impl RngCore + ?Sized)) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u128;
                // Widening-multiply rejection-free mapping; the bias is
                // < 2^-64 per draw, irrelevant for simulation use.
                self.start + ((rng.next_u64() as u128 * span) >> 64) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u128 + 1;
                lo + ((rng.next_u64() as u128 * span) >> 64) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + ((rng.next_u64() as u128 * span) >> 64) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + ((rng.next_u64() as u128 * span) >> 64) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_sint!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single(self, rng: &mut (impl RngCore + ?Sized)) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f64::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single(self, rng: &mut (impl RngCore + ?Sized)) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f32::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic seeding.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias used by code written against `SmallRng`.
    pub type SmallRng = StdRng;
}

/// Sequence helpers.
pub mod seq {
    use super::RngCore;

    /// Slice shuffling and selection.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element (`None` if empty).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = ((rng.next_u64() as u128 * (i as u128 + 1)) >> 64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let j = ((rng.next_u64() as u128 * self.len() as u128) >> 64) as usize;
                Some(&self[j])
            }
        }
    }
}

/// Prelude matching `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let w: usize = rng.gen_range(2..=5);
            assert!((2..=5).contains(&w));
        }
    }

    #[test]
    fn gen_range_through_dyn_rngcore() {
        let mut rng = rngs::StdRng::seed_from_u64(2);
        let dynr: &mut dyn RngCore = &mut rng;
        let u: f64 = Rng::gen_range(dynr, f64::MIN_POSITIVE..1.0);
        assert!(u > 0.0 && u < 1.0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = rngs::StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
