//! Cluster experiment drivers: Figures 9, 10 and 11.
//!
//! All three use the paper's setup: a 30-slave cluster of 2-core nodes, a
//! 3 GB file in 512 MB blocks, `(12, 6)` stripes.

use dfs::reader::{download_replicated, download_striped};
use dfs::{ClusterSpec, CodingRates, Namenode, Policy};
use mapreduce::{run_job, JobStats, WorkloadProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The 3 GB / 512 MB-block file of §VIII-C/D.
pub const FILE_MB: f64 = 3072.0;
/// HDFS block size used throughout the evaluation.
pub const BLOCK_MB: f64 = 512.0;

/// One bar group of Fig. 9: a workload × code combination.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Row {
    /// Workload name (`terasort` / `wordcount`).
    pub workload: String,
    /// Code name (`RS(12,6)` / `Carousel(12,6,10,12)`).
    pub code: String,
    /// Job statistics.
    pub stats: JobStats,
}

/// Runs Fig. 9: terasort and wordcount on RS(12,6) vs Carousel(12,6,10,12).
pub fn fig9(seed: u64) -> Vec<Fig9Row> {
    let spec = ClusterSpec::r3_large_cluster();
    let mut out = Vec::new();
    for profile in [WorkloadProfile::terasort(), WorkloadProfile::wordcount()] {
        for (code_name, policy) in [
            ("RS(12,6)".to_string(), Policy::Rs { n: 12, k: 6 }),
            (
                "Carousel(12,6,10,12)".to_string(),
                Policy::Carousel {
                    n: 12,
                    k: 6,
                    d: 10,
                    p: 12,
                },
            ),
        ] {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut nn = Namenode::new(spec.nodes);
            let file = nn.store("input", FILE_MB, BLOCK_MB, policy, &mut rng);
            let stats = run_job(&spec, &file.map_splits(), &profile);
            out.push(Fig9Row {
                workload: profile.name.clone(),
                code: code_name,
                stats,
            });
        }
    }
    out
}

/// One bar of Fig. 10: a storage scheme's job completion time.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10Row {
    /// Scheme label (`1x replication`, `Carousel p = 8`, …).
    pub scheme: String,
    /// terasort job completion time, seconds.
    pub terasort_s: f64,
    /// wordcount job completion time, seconds.
    pub wordcount_s: f64,
}

/// Runs Fig. 10: job completion vs `p ∈ {6, 8, 10, 12}` plus 1×/2×
/// replication.
pub fn fig10(seed: u64) -> Vec<Fig10Row> {
    let spec = ClusterSpec::r3_large_cluster();
    let schemes: Vec<(String, Policy)> = std::iter::once((
        "1x replication".to_string(),
        Policy::Replication { copies: 1 },
    ))
    .chain([6usize, 8, 10, 12].into_iter().map(|p| {
        (
            format!("Carousel p = {p}"),
            Policy::Carousel {
                n: 12,
                k: 6,
                d: 10,
                p,
            },
        )
    }))
    .chain(std::iter::once((
        "2x replication".to_string(),
        Policy::Replication { copies: 2 },
    )))
    .collect();

    schemes
        .into_iter()
        .map(|(scheme, policy)| {
            let run = |profile: &WorkloadProfile| {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut nn = Namenode::new(spec.nodes);
                let file = nn.store("input", FILE_MB, BLOCK_MB, policy, &mut rng);
                run_job(&spec, &file.map_splits(), profile).job_s
            };
            Fig10Row {
                scheme,
                terasort_s: run(&WorkloadProfile::terasort()),
                wordcount_s: run(&WorkloadProfile::wordcount()),
            }
        })
        .collect()
}

/// One bar group of Fig. 11: retrieval time of a 3 GB file.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11Row {
    /// Scheme label.
    pub scheme: String,
    /// Retrieval time with all blocks available, seconds.
    pub no_failure_s: f64,
    /// Retrieval time with one data-bearing block removed, seconds.
    pub one_failure_s: f64,
    /// Servers read from in the no-failure case.
    pub servers: usize,
}

/// Runs Fig. 11: 3 GB retrieval under 3× replication (`hadoop fs -get`),
/// RS(12,6) and Carousel(12,6,10,10), with and without one failure.
/// Datanode reads are capped at 300 Mbps as in the paper.
pub fn fig11(seed: u64, rates: CodingRates) -> Vec<Fig11Row> {
    let spec = ClusterSpec::r3_large_cluster().with_disk_read_mbps(37.5);
    let mut out = Vec::new();
    let schemes: [(&str, Policy); 3] = [
        ("HDFS (3x replication)", Policy::Replication { copies: 3 }),
        ("RS(12,6)", Policy::Rs { n: 12, k: 6 }),
        (
            "Carousel(12,6,10,10)",
            Policy::Carousel {
                n: 12,
                k: 6,
                d: 10,
                p: 10,
            },
        ),
    ];
    for (label, policy) in schemes {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut nn = Namenode::new(spec.nodes);
        nn.store("f", FILE_MB, BLOCK_MB, policy, &mut rng);

        let download = |nn: &Namenode| {
            let file = nn.file("f").expect("stored");
            match policy {
                Policy::Replication { .. } => download_replicated(&spec, file),
                _ => download_striped(&spec, file, rates),
            }
            .expect("download")
        };
        let ok = download(&nn);
        // Remove one block that contains original data (role 0 of stripe 0).
        nn.fail_block("f", 0, 0);
        let degraded = download(&nn);
        out.push(Fig11Row {
            scheme: label.to_string(),
            no_failure_s: ok.seconds,
            one_failure_s: degraded.seconds,
            servers: ok.servers,
        });
    }
    out
}

/// Fig. 9 with repetition statistics: runs the experiment over many seeds
/// (placement randomness) and summarizes each metric as the paper does
/// ("run repetitively for 20 times and we show the mean with the 10th and
/// 90th percentiles").
pub fn fig9_repeated(seeds: &[u64]) -> Vec<Fig9StatRow> {
    use crate::stats::Percentiles;
    assert!(!seeds.is_empty(), "need at least one seed");
    // (workload, code, map-time, reduce-time, job-time samples)
    type Acc = (String, String, Vec<f64>, Vec<f64>, Vec<f64>);
    let mut acc: Vec<Acc> = Vec::new();
    for &seed in seeds {
        for row in fig9(seed) {
            let entry = acc
                .iter_mut()
                .find(|(w, c, ..)| *w == row.workload && *c == row.code);
            let entry = match entry {
                Some(e) => e,
                None => {
                    acc.push((
                        row.workload.clone(),
                        row.code.clone(),
                        vec![],
                        vec![],
                        vec![],
                    ));
                    acc.last_mut().expect("just pushed")
                }
            };
            entry.2.push(row.stats.avg_map_s);
            entry.3.push(row.stats.avg_reduce_s);
            entry.4.push(row.stats.job_s);
        }
    }
    acc.into_iter()
        .map(|(workload, code, map, reduce, job)| Fig9StatRow {
            workload,
            code,
            map: Percentiles::of(&map),
            reduce: Percentiles::of(&reduce),
            job: Percentiles::of(&job),
        })
        .collect()
}

/// One summarized bar group of Fig. 9.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9StatRow {
    /// Workload name.
    pub workload: String,
    /// Code name.
    pub code: String,
    /// Map-task time summary.
    pub map: crate::stats::Percentiles,
    /// Reduce-task time summary.
    pub reduce: crate::stats::Percentiles,
    /// Job completion summary.
    pub job: crate::stats::Percentiles,
}

/// One row of the network-oversubscription extension experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct OversubRow {
    /// Core-switch bandwidth label.
    pub switch: String,
    /// terasort job completion, seconds.
    pub terasort_s: f64,
    /// wordcount job completion, seconds.
    pub wordcount_s: f64,
}

/// Extension experiment: job completion under core-switch oversubscription
/// (all cross-node traffic shares one fabric). Shuffle-heavy terasort
/// degrades as the switch tightens; map-local wordcount barely notices.
pub fn ext_oversubscription(seed: u64) -> Vec<OversubRow> {
    let policy = Policy::Carousel {
        n: 12,
        k: 6,
        d: 10,
        p: 12,
    };
    [None, Some(2000.0), Some(500.0), Some(125.0)]
        .into_iter()
        .map(|switch| {
            let spec = match switch {
                None => ClusterSpec::r3_large_cluster(),
                Some(mbps) => ClusterSpec::r3_large_cluster().with_core_switch(mbps),
            };
            let run = |profile: &WorkloadProfile| {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut nn = Namenode::new(spec.nodes);
                let file = nn.store("input", FILE_MB, BLOCK_MB, policy, &mut rng);
                run_job(&spec, &file.map_splits(), profile).job_s
            };
            OversubRow {
                switch: switch.map_or("non-blocking".into(), |m| format!("{m:.0} MB/s")),
                terasort_s: run(&WorkloadProfile::terasort()),
                wordcount_s: run(&WorkloadProfile::wordcount()),
            }
        })
        .collect()
}

/// One row of the straggler extension experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct StragglerRow {
    /// Scheme label.
    pub scheme: String,
    /// Job completion on a uniform cluster, seconds.
    pub uniform_s: f64,
    /// Job completion with stragglers, seconds.
    pub straggler_s: f64,
}

/// Extension experiment: job completion on a heterogeneous cluster. A
/// third of the nodes run 2× slower (disk and CPU); smaller Carousel map
/// tasks hedge the straggler penalty in absolute terms because every
/// task — including the one stuck on a slow node — is `k/p` the size.
pub fn ext_stragglers(seeds: &[u64]) -> Vec<StragglerRow> {
    let uniform = ClusterSpec::r3_large_cluster();
    let hetero = ClusterSpec::r3_large_cluster().with_stragglers(10, 2.0);
    let profile = WorkloadProfile::wordcount();
    [
        ("RS(12,6)".to_string(), Policy::Rs { n: 12, k: 6 }),
        (
            "Carousel(12,6,10,12)".to_string(),
            Policy::Carousel {
                n: 12,
                k: 6,
                d: 10,
                p: 12,
            },
        ),
    ]
    .into_iter()
    .map(|(scheme, policy)| {
        let mean = |spec: &ClusterSpec| {
            let total: f64 = seeds
                .iter()
                .map(|&seed| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let mut nn = Namenode::new(spec.nodes);
                    let file = nn.store("input", FILE_MB, BLOCK_MB, policy, &mut rng);
                    run_job(spec, &file.map_splits(), &profile).job_s
                })
                .sum();
            total / seeds.len() as f64
        };
        StragglerRow {
            scheme,
            uniform_s: mean(&uniform),
            straggler_s: mean(&hetero),
        }
    })
    .collect()
}

/// One row of the degraded-job extension experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedJobRow {
    /// Scheme label.
    pub scheme: String,
    /// Job completion with all blocks healthy, seconds.
    pub healthy_s: f64,
    /// Job completion with one data-bearing block dead (its map task must
    /// reconstruct its input), seconds.
    pub degraded_s: f64,
}

/// Extension experiment: MapReduce under a block failure. One data-bearing
/// block is removed before the job starts; the affected map task performs a
/// degraded read (`k` blocks of fetch for RS, the `k/p` affected share of
/// `k` blocks for Carousel). Related to the degraded-read literature the
/// paper discusses in §III.
pub fn ext_degraded_job(seed: u64) -> Vec<DegradedJobRow> {
    let spec = ClusterSpec::r3_large_cluster();
    let profile = WorkloadProfile::wordcount();
    [
        ("RS(12,6)".to_string(), Policy::Rs { n: 12, k: 6 }),
        (
            "Carousel(12,6,10,12)".to_string(),
            Policy::Carousel {
                n: 12,
                k: 6,
                d: 10,
                p: 12,
            },
        ),
    ]
    .into_iter()
    .map(|(scheme, policy)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut nn = Namenode::new(spec.nodes);
        nn.store("input", FILE_MB, BLOCK_MB, policy, &mut rng);
        let healthy_s = run_job(
            &spec,
            &nn.file("input").expect("stored").map_splits(),
            &profile,
        )
        .job_s;
        nn.fail_block("input", 0, 0);
        let degraded_s = run_job(
            &spec,
            &nn.file("input").expect("stored").map_splits(),
            &profile,
        )
        .job_s;
        DegradedJobRow {
            scheme,
            healthy_s,
            degraded_s,
        }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_carousel_halves_map_time_approximately() {
        let rows = fig9(42);
        assert_eq!(rows.len(), 4);
        for w in ["terasort", "wordcount"] {
            let rs = rows
                .iter()
                .find(|r| r.workload == w && r.code.starts_with("RS"))
                .unwrap();
            let ca = rows
                .iter()
                .find(|r| r.workload == w && r.code.starts_with("Carousel"))
                .unwrap();
            assert_eq!(rs.stats.map_tasks, 6);
            assert_eq!(ca.stats.map_tasks, 12);
            let saving = 1.0 - ca.stats.avg_map_s / rs.stats.avg_map_s;
            // Paper: 39.7% (terasort) and 46.8% (wordcount); theory caps at 50%.
            assert!(
                (0.30..=0.50).contains(&saving),
                "{w}: map saving {saving} out of expected band"
            );
            assert!(ca.stats.job_s < rs.stats.job_s, "{w}: job time improves");
        }
        // Wordcount's job-level saving exceeds terasort's (map-dominated).
        let job_saving = |w: &str| {
            let rs = rows
                .iter()
                .find(|r| r.workload == w && r.code.starts_with("RS"))
                .unwrap();
            let ca = rows
                .iter()
                .find(|r| r.workload == w && r.code.starts_with("Carousel"))
                .unwrap();
            1.0 - ca.stats.job_s / rs.stats.job_s
        };
        assert!(job_saving("wordcount") > job_saving("terasort"));
    }

    #[test]
    fn fig10_job_time_decreases_with_p() {
        let rows = fig10(7);
        assert_eq!(rows.len(), 6);
        let carousel: Vec<&Fig10Row> = rows
            .iter()
            .filter(|r| r.scheme.starts_with("Carousel"))
            .collect();
        for pair in carousel.windows(2) {
            assert!(
                pair[1].terasort_s <= pair[0].terasort_s + 1e-9,
                "terasort should not get worse as p grows: {:?}",
                rows
            );
            assert!(pair[1].wordcount_s <= pair[0].wordcount_s + 1e-9);
        }
        // p = 6 behaves like 1x replication; p = 12 approaches 2x replication.
        let one_x = &rows[0];
        let p6 = &rows[1];
        let p12 = &rows[4];
        let two_x = &rows[5];
        assert!((p6.wordcount_s - one_x.wordcount_s).abs() / one_x.wordcount_s < 0.15);
        assert!((p12.wordcount_s - two_x.wordcount_s).abs() / two_x.wordcount_s < 0.15);
    }

    #[test]
    fn experiments_are_deterministic_given_a_seed() {
        assert_eq!(fig9(123), fig9(123));
        assert_eq!(fig10(9), fig10(9));
        assert_eq!(
            fig11(4, CodingRates::default()),
            fig11(4, CodingRates::default())
        );
    }

    #[test]
    fn oversubscription_hurts_shuffle_heavy_jobs_most() {
        let rows = ext_oversubscription(5);
        let free = &rows[0];
        let tight = rows.last().unwrap();
        // terasort (full-volume shuffle) degrades substantially...
        assert!(tight.terasort_s > free.terasort_s * 1.2, "{rows:?}");
        // ...while wordcount (tiny shuffle) is barely affected.
        assert!(tight.wordcount_s < free.wordcount_s * 1.1, "{rows:?}");
    }

    #[test]
    fn straggler_penalty_smaller_for_carousel_in_absolute_terms() {
        let rows = ext_stragglers(&[1, 2, 3]);
        let rs = &rows[0];
        let ca = &rows[1];
        assert!(rs.straggler_s > rs.uniform_s);
        assert!(ca.straggler_s > ca.uniform_s);
        let rs_penalty = rs.straggler_s - rs.uniform_s;
        let ca_penalty = ca.straggler_s - ca.uniform_s;
        assert!(
            ca_penalty < rs_penalty,
            "smaller tasks hedge stragglers: {ca_penalty} vs {rs_penalty}"
        );
        assert!(ca.straggler_s < rs.straggler_s);
    }

    #[test]
    fn degraded_job_penalty_smaller_for_carousel() {
        let rows = ext_degraded_job(11);
        let rs = &rows[0];
        let ca = &rows[1];
        assert!(rs.degraded_s > rs.healthy_s, "failure must cost something");
        assert!(ca.degraded_s >= ca.healthy_s);
        let rs_penalty = rs.degraded_s - rs.healthy_s;
        let ca_penalty = ca.degraded_s - ca.healthy_s;
        assert!(
            ca_penalty < rs_penalty,
            "Carousel reconstructs a smaller share: {ca_penalty} vs {rs_penalty}"
        );
        assert!(ca.degraded_s < rs.degraded_s);
    }

    #[test]
    fn fig11_ordering_matches_paper() {
        let rows = fig11(3, CodingRates::default());
        let rep = &rows[0];
        let rs = &rows[1];
        let ca = &rows[2];
        assert_eq!(rs.servers, 6);
        assert_eq!(ca.servers, 10);
        // No failure: parallel beats sequential; Carousel beats RS.
        assert!(rs.no_failure_s < rep.no_failure_s / 2.0);
        assert!(ca.no_failure_s < rs.no_failure_s);
        // One failure: everybody slower (except replication, which just uses
        // another replica), ordering preserved.
        assert!(ca.one_failure_s > ca.no_failure_s);
        assert!(ca.one_failure_s < rs.one_failure_s);
        // Carousel saves a large fraction vs the built-in sequential reader.
        assert!(ca.one_failure_s < 0.4 * rep.one_failure_s);
    }
}
