//! Experiment drivers for the paper's evaluation section.
//!
//! Each public function regenerates the data behind one figure of the
//! paper; the `carousel-bench` crate's binaries print them as tables, and
//! the integration tests assert the qualitative claims (who wins, by
//! roughly what factor).
//!
//! | Paper figure | Here |
//! |---|---|
//! | Fig. 5 (generating matrices)        | [`coding_bench::fig5_matrices`] |
//! | Fig. 6 (encode/decode throughput)   | [`coding_bench::measure_encode`], [`coding_bench::measure_decode`] |
//! | Fig. 7 (reconstruction traffic)     | [`coding_bench::repair_traffic_mb`] |
//! | Fig. 8 (reconstruction time)        | [`coding_bench::measure_repair`] |
//! | Fig. 9 (Hadoop jobs, RS vs Carousel)| [`experiments::fig9`] |
//! | Fig. 10 (job time vs `p`, replication) | [`experiments::fig10`] |
//! | Fig. 11 (3 GB retrieval)            | [`experiments::fig11`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod coding_bench;
pub mod experiments;
pub mod parallel;
pub mod stats;
