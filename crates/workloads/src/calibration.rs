//! Calibration of the cluster simulator's coding CPU costs.
//!
//! The Fig. 9–11 simulations charge decode work at a MB/s rate. Rather
//! than invent numbers, the rates are measured from this repository's own
//! kernels (the `calibrate` binary in `carousel-bench` prints them); this
//! module provides the measurement and a conservative default for test
//! environments where a release-mode measurement is unavailable.

use dfs::CodingRates;

use crate::coding_bench::{self, CodeFamily};

/// Measures [`CodingRates`] from the real kernels at the paper's cluster
/// parameters (`k = 6`, `n = 12`), using `mb` megabytes of data per trial.
///
/// Debug builds are an order of magnitude slower than release builds; use
/// release mode when producing numbers for the figures.
///
/// # Panics
///
/// Panics if the codes cannot be constructed (impossible for these fixed
/// parameters).
pub fn measure(mb: usize, reps: usize) -> CodingRates {
    let rs = CodeFamily::Rs.build(6).expect("RS(12,6)");
    let data_rs = coding_bench::payload(rs.as_ref(), mb << 20);
    // The Fig. 11 degraded path for Carousel is a p-block parallel read
    // with one data-bearing block replaced by parity — measure exactly
    // that, not a worst-case dense decode.
    let ca = carousel::Carousel::new(12, 6, 10, 10).expect("Carousel(12,6,10,10)");
    let data_ca = coding_bench::payload(&ca, mb << 20);
    CodingRates {
        rs_decode_mbps: coding_bench::measure_decode(rs.as_ref(), &data_rs, reps),
        carousel_decode_mbps: coding_bench::measure_parallel_read(&ca, &data_ca, reps, 1),
    }
}

/// The default rates used by tests and quick runs, set from a release-mode
/// run of [`measure`] on the reference machine (RS ≈ 400 MB/s full-stripe
/// degraded decode; Carousel ≈ 330 MB/s degraded parallel read — slower
/// because the lost block's carousel copies mix contributions from all `p`
/// fetched blocks).
pub fn default_rates() -> CodingRates {
    CodingRates::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_rates_are_positive() {
        // Tiny sizes: this is a smoke test, not a benchmark; the two rates'
        // relative order is machine- and build-dependent at this size.
        let rates = measure(1, 1);
        assert!(rates.rs_decode_mbps > 0.0);
        assert!(rates.carousel_decode_mbps > 0.0);
    }

    #[test]
    fn default_rates_sane() {
        let r = default_rates();
        assert!(r.rs_decode_mbps > r.carousel_decode_mbps);
    }
}
