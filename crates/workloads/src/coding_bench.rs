//! Measurement harness for the coding-level experiments (Figs. 5–8).
//!
//! The paper benchmarks four codes at `n = 2k` for `k ∈ {2, 4, 6, 8, 10}`:
//! RS, MSR with `d = 2k−1`, and Carousel codes built from each (`d = k` and
//! `d = 2k−1`), with `p = 2k`. [`fig6_codes`] builds that family; the
//! `measure_*` functions time the real kernels.

use std::time::Instant;

use carousel::Carousel;
use erasure::{CodeError, ErasureCode, SparseEncoder};
use msr::ProductMatrixMsr;
use rs_code::ReedSolomon;

/// The four code families compared in Figs. 6–8, in the paper's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodeFamily {
    /// Systematic `(2k, k)` Reed-Solomon.
    Rs,
    /// `(2k, k, 2k−1)` product-matrix MSR.
    Msr,
    /// `(2k, k, k, 2k)` Carousel (RS base).
    CarouselRsBase,
    /// `(2k, k, 2k−1, 2k)` Carousel (MSR base).
    CarouselMsrBase,
}

impl CodeFamily {
    /// The paper's legend label.
    pub fn label(self) -> &'static str {
        match self {
            CodeFamily::Rs => "RS",
            CodeFamily::Msr => "MSR (d=2k-1)",
            CodeFamily::CarouselRsBase => "Carousel (d=k)",
            CodeFamily::CarouselMsrBase => "Carousel (d=2k-1)",
        }
    }

    /// Builds the family member for a given `k` (with `n = 2k`).
    ///
    /// # Errors
    ///
    /// Propagates construction errors for unrepresentable parameters.
    pub fn build(self, k: usize) -> Result<Box<dyn ErasureCode>, CodeError> {
        let n = 2 * k;
        Ok(match self {
            CodeFamily::Rs => Box::new(ReedSolomon::new(n, k)?),
            CodeFamily::Msr => Box::new(ProductMatrixMsr::new(n, k, 2 * k - 1)?),
            CodeFamily::CarouselRsBase => Box::new(Carousel::new(n, k, k, n)?),
            CodeFamily::CarouselMsrBase => Box::new(Carousel::new(n, k, 2 * k - 1, n)?),
        })
    }

    /// All four families, in plot order.
    pub fn all() -> [CodeFamily; 4] {
        [
            CodeFamily::Rs,
            CodeFamily::CarouselRsBase,
            CodeFamily::Msr,
            CodeFamily::CarouselMsrBase,
        ]
    }
}

/// One labelled code instance, as built for a figure's comparison set.
pub type LabelledCode = (CodeFamily, Box<dyn ErasureCode>);

/// Builds all four Fig. 6 codes for one `k`.
///
/// # Errors
///
/// Propagates construction failures (e.g. `k = 1` has no MSR variant).
pub fn fig6_codes(k: usize) -> Result<Vec<LabelledCode>, CodeError> {
    CodeFamily::all()
        .into_iter()
        .map(|f| Ok((f, f.build(k)?)))
        .collect()
}

/// Deterministic pseudo-random payload of `bytes` bytes, sized to a
/// multiple of the code's message units.
pub fn payload(code: &dyn ErasureCode, bytes: usize) -> Vec<u8> {
    let units = code.linear().message_units();
    let len = bytes.next_multiple_of(units).max(units);
    let mut state = 0x243F6A8885A308D3u64;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 56) as u8
        })
        .collect()
}

/// Measures encoding throughput in MB of original data per second.
///
/// # Panics
///
/// Panics if `reps` is zero or encoding fails (construction bug).
pub fn measure_encode(code: &dyn ErasureCode, data: &[u8], reps: usize) -> f64 {
    assert!(reps > 0);
    let encoder = SparseEncoder::new(code.linear());
    // Warm-up pass (page in tables, allocate).
    let _ = encoder.encode(data).expect("encode");
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(encoder.encode(std::hint::black_box(data)).expect("encode"));
    }
    let secs = t0.elapsed().as_secs_f64();
    mb(data.len()) * reps as f64 / secs
}

/// Measures decoding throughput (MB of original data recovered per second)
/// in the paper's scenario: one data block lost, decode from blocks
/// `1..=k` (i.e. `k−1` data blocks plus one parity block).
///
/// # Panics
///
/// Panics if `reps` is zero or the code cannot decode from that subset.
pub fn measure_decode(code: &dyn ErasureCode, data: &[u8], reps: usize) -> f64 {
    assert!(reps > 0);
    let stripe = code.linear().encode(data).expect("encode");
    let nodes: Vec<usize> = (1..=code.k()).collect();
    let blocks: Vec<&[u8]> = nodes.iter().map(|&i| &stripe.blocks[i][..]).collect();
    let plan = erasure::DecodePlan::for_nodes(code.linear(), &nodes).expect("plan");
    let _ = plan.decode(&blocks).expect("decode");
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(plan.decode(std::hint::black_box(&blocks)).expect("decode"));
    }
    let secs = t0.elapsed().as_secs_f64();
    mb(data.len()) * reps as f64 / secs
}

/// Result of timing one reconstruction (paper Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairTiming {
    /// Wall time of one helper's encode-and-send computation, seconds.
    pub helper_s: f64,
    /// Wall time of the newcomer's combine computation, seconds.
    pub newcomer_s: f64,
    /// Bytes shipped helper→newcomer, MB (Fig. 7's quantity).
    pub traffic_mb: f64,
}

/// Times the repair of block 0 from helpers `1..=d` on a stripe encoded
/// from `data`.
///
/// # Panics
///
/// Panics on construction/repair failures (would indicate a bug).
pub fn measure_repair(code: &dyn ErasureCode, data: &[u8], reps: usize) -> RepairTiming {
    assert!(reps > 0);
    let stripe = code.linear().encode(data).expect("encode");
    let helpers: Vec<usize> = (1..=code.d()).collect();
    let plan = code.repair_plan(0, &helpers).expect("repair plan");
    let helper_blocks: Vec<&[u8]> = helpers.iter().map(|&i| &stripe.blocks[i][..]).collect();

    // Helper side: average the per-helper compute over all helpers.
    let t0 = Instant::now();
    for _ in 0..reps {
        for (task, block) in plan.helpers.iter().zip(&helper_blocks) {
            std::hint::black_box(task.run(std::hint::black_box(block)).expect("helper"));
        }
    }
    let helper_s = t0.elapsed().as_secs_f64() / (reps * plan.helpers.len()) as f64;

    // Newcomer side.
    let payloads: Vec<Vec<u8>> = plan
        .helpers
        .iter()
        .zip(&helper_blocks)
        .map(|(task, block)| task.run(block).expect("helper"))
        .collect();
    let traffic_mb = mb(payloads.iter().map(Vec::len).sum::<usize>());
    let t1 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(
            plan.combine_payloads(std::hint::black_box(&payloads))
                .expect("combine"),
        );
    }
    let newcomer_s = t1.elapsed().as_secs_f64() / reps as f64;

    RepairTiming {
        helper_s,
        newcomer_s,
        traffic_mb,
    }
}

/// Measures whole-file read throughput of a Carousel code using **all `p`
/// data-bearing blocks** (with `failures` of them dead, replaced by parity
/// blocks) — the paper's future-work direction of §VIII-B: "a higher
/// throughput can be achieved with Carousel codes if more than k blocks can
/// be visited". With zero failures this is a pure parallel read (no GF
/// arithmetic), so it vastly outperforms the `k`-block decode of
/// [`measure_decode`].
///
/// # Panics
///
/// Panics if `reps` is zero or the read plan cannot be built.
pub fn measure_parallel_read(
    code: &carousel::Carousel,
    data: &[u8],
    reps: usize,
    failures: usize,
) -> f64 {
    use erasure::ErasureCode as _;
    assert!(reps > 0);
    let stripe = code.linear().encode(data).expect("encode");
    let available: Vec<usize> = (failures..code.n()).collect();
    let plan = code.plan_read(&available).expect("read plan");
    let blocks: Vec<Option<&[u8]>> = (0..code.n())
        .map(|i| (i >= failures).then(|| &stripe.blocks[i][..]))
        .collect();
    let _ = plan.execute(&blocks).expect("read");
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(plan.execute(std::hint::black_box(&blocks)).expect("read"));
    }
    let secs = t0.elapsed().as_secs_f64();
    mb(data.len()) * reps as f64 / secs
}

/// Reconstruction network traffic for a given block size (paper Fig. 7):
/// repair block 0 from helpers `1..=d` and count the bytes the plan ships.
///
/// # Panics
///
/// Panics if the plan cannot be built (construction bug).
pub fn repair_traffic_mb(code: &dyn ErasureCode, block_mb: f64) -> f64 {
    let helpers: Vec<usize> = (1..=code.d()).collect();
    let plan = code.repair_plan(0, &helpers).expect("repair plan");
    plan.traffic_blocks(code.linear().sub()) * block_mb
}

/// The generating matrices of Fig. 5: `(3,2)` RS vs `(3,2,2,3)` Carousel,
/// rendered with their sparsity statistics.
///
/// # Panics
///
/// Never, for these fixed valid parameters.
pub fn fig5_matrices() -> String {
    use erasure::sparsity::{render_pattern, stats};
    let rs = ReedSolomon::new(3, 2).expect("valid");
    let ca = Carousel::new(3, 2, 2, 3).expect("valid");
    let mut out = String::new();
    for (name, code) in [
        ("(3,2) RS", rs.linear()),
        ("(3,2,2,3) Carousel", ca.linear()),
    ] {
        let g = code.generator();
        let s = stats(g);
        out.push_str(&format!(
            "{name}: {}x{} generator, {} nonzeros (density {:.2}), max row weight {}\n{}\n",
            s.shape.0,
            s.shape.1,
            s.nonzeros,
            s.density,
            s.max_row_weight,
            render_pattern(g)
        ));
    }
    out
}

fn mb(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_family_builds_for_paper_ks() {
        for k in [2usize, 4, 6, 8, 10] {
            let codes = fig6_codes(k).unwrap();
            assert_eq!(codes.len(), 4);
            for (fam, code) in codes {
                assert_eq!(code.n(), 2 * k, "{:?}", fam);
                assert_eq!(code.k(), k);
            }
        }
    }

    #[test]
    fn carousel_has_full_parallelism_in_family() {
        let code = CodeFamily::CarouselMsrBase.build(4).unwrap();
        assert_eq!(code.parallelism(), 8);
        let rs = CodeFamily::Rs.build(4).unwrap();
        assert_eq!(rs.parallelism(), 4);
    }

    #[test]
    fn measurements_are_positive_and_round_trip() {
        let code = CodeFamily::CarouselMsrBase.build(2).unwrap();
        let data = payload(code.as_ref(), 1 << 18);
        assert!(measure_encode(code.as_ref(), &data, 2) > 0.0);
        assert!(measure_decode(code.as_ref(), &data, 2) > 0.0);
        let t = measure_repair(code.as_ref(), &data, 2);
        assert!(t.helper_s >= 0.0 && t.newcomer_s >= 0.0);
        assert!(t.traffic_mb > 0.0);
    }

    #[test]
    fn traffic_matches_theory() {
        // RS: k blocks; MSR/Carousel(d=2k-1): d/(d-k+1) = (2k-1)/k blocks.
        let k = 4;
        let block_mb = 512.0;
        let rs = CodeFamily::Rs.build(k).unwrap();
        assert!((repair_traffic_mb(rs.as_ref(), block_mb) - 4.0 * 512.0).abs() < 1e-6);
        for fam in [CodeFamily::Msr, CodeFamily::CarouselMsrBase] {
            let c = fam.build(k).unwrap();
            let expect = (2 * k - 1) as f64 / k as f64 * block_mb;
            assert!(
                (repair_traffic_mb(c.as_ref(), block_mb) - expect).abs() < 1e-6,
                "{:?}",
                fam
            );
        }
        let crs = CodeFamily::CarouselRsBase.build(k).unwrap();
        assert!((repair_traffic_mb(crs.as_ref(), block_mb) - 4.0 * 512.0).abs() < 1e-6);
    }

    #[test]
    fn fig5_shows_sparsity() {
        let s = fig5_matrices();
        assert!(s.contains("(3,2) RS"));
        assert!(s.contains("Carousel"));
        // The Carousel matrix is 9x6 with max row weight 2 (= k), the
        // paper's sparsity observation.
        assert!(s.contains("9x6"));
        assert!(s.contains("max row weight 2"));
    }
}
