//! Small statistics helpers: the paper reports "the mean with the 10th and
//! 90th percentiles" over 20 repetitions; the simulator's randomness is
//! block placement, driven by the seed.

/// Mean and 10th/90th percentiles of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Arithmetic mean.
    pub mean: f64,
    /// 10th percentile (nearest-rank).
    pub p10: f64,
    /// 90th percentile (nearest-rank).
    pub p90: f64,
}

impl Percentiles {
    /// Computes the summary of a non-empty sample.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample.
    pub fn of(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "empty sample");
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
        let rank = |p: f64| {
            let idx = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[idx - 1]
        };
        Percentiles {
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p10: rank(0.10),
            p90: rank(0.90),
        }
    }

    /// Formats as `mean [p10, p90]` with one decimal.
    pub fn display(&self) -> String {
        format!("{:.1} [{:.1}, {:.1}]", self.mean, self.p10, self.p90)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let samples: Vec<f64> = (1..=10).map(|v| v as f64).collect();
        let p = Percentiles::of(&samples);
        assert!((p.mean - 5.5).abs() < 1e-12);
        assert_eq!(p.p10, 1.0);
        assert_eq!(p.p90, 9.0);
    }

    #[test]
    fn single_sample() {
        let p = Percentiles::of(&[3.0]);
        assert_eq!((p.mean, p.p10, p.p90), (3.0, 3.0, 3.0));
    }

    #[test]
    fn unsorted_input_handled() {
        let p = Percentiles::of(&[9.0, 1.0, 5.0]);
        assert_eq!(p.p10, 1.0);
        assert_eq!(p.p90, 9.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_rejected() {
        let _ = Percentiles::of(&[]);
    }
}
