//! A reusable std-thread worker pool for per-stripe fan-out.
//!
//! Stripes of a file are independent under every code in this workspace,
//! so encode and decode parallelize trivially across them. This module
//! gives the write path of the networked cluster (`crates/cluster`),
//! `carousel-tool --threads` and the bench binaries a dependency-free way
//! to use all cores: a [`ParallelCtx`] handle, built once per process via
//! [`ParallelCtx::builder`], that runs work-stealing index loops over
//! scoped threads — no channels, no unsafe, no allocation beyond the
//! result vector.
//!
//! The handle resolves its thread count once (including the
//! `available_parallelism` probe for `threads(0)`) and is then passed by
//! reference through every parallel entry point, replacing the old
//! per-call `threads: usize` parameter threading.

use std::sync::atomic::{AtomicUsize, Ordering};

use access::AccessCode;
use erasure::ErasureCode;
use filestore::{EncodedFile, FileCodec, FileError, FileMeta};

/// Number of worker threads to use by default: the machine's available
/// parallelism, or 1 when that cannot be determined.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A reusable parallel-execution context.
///
/// Build one per process with [`ParallelCtx::builder`] and pass it by
/// reference to [`encode_file`], [`decode_file`] and [`ParallelCtx::run`].
/// Construction is where the thread-count policy lives (explicit count, or
/// the `available_parallelism` probe for `0`/unset); execution reuses that
/// decision for every call.
///
/// # Examples
///
/// ```
/// use workloads::parallel::ParallelCtx;
///
/// let ctx = ParallelCtx::builder().threads(4).build();
/// assert_eq!(ctx.threads(), 4);
/// let squares = ctx.run(5, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
#[derive(Debug, Clone)]
pub struct ParallelCtx {
    threads: usize,
}

/// Builder for [`ParallelCtx`]. Obtained from [`ParallelCtx::builder`].
#[derive(Debug, Default, Clone)]
pub struct ParallelCtxBuilder {
    threads: Option<usize>,
}

impl ParallelCtxBuilder {
    /// Sets the worker-thread count. `0` (and not calling this at all)
    /// means "use all available cores", resolved once at [`build`] time.
    ///
    /// [`build`]: ParallelCtxBuilder::build
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Resolves the configuration into a ready-to-share context.
    pub fn build(self) -> ParallelCtx {
        let threads = match self.threads {
            Some(0) | None => available_threads(),
            Some(t) => t,
        };
        ParallelCtx { threads }
    }
}

impl Default for ParallelCtx {
    /// A context using all available cores.
    fn default() -> Self {
        ParallelCtx::builder().build()
    }
}

impl ParallelCtx {
    /// Starts building a context.
    pub fn builder() -> ParallelCtxBuilder {
        ParallelCtxBuilder::default()
    }

    /// A single-threaded context (everything runs inline on the caller).
    pub fn sequential() -> Self {
        ParallelCtx { threads: 1 }
    }

    /// The resolved worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every index in `0..items` on the context's workers,
    /// returning the results in index order. Workers pull the next index
    /// from a shared atomic, so uneven item costs balance automatically.
    /// With one thread (or fewer than two items) this runs inline with no
    /// thread spawns.
    ///
    /// # Panics
    ///
    /// Propagates a panic from `f` (the scope joins all workers first).
    pub fn run<R, F>(&self, items: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let threads = self.threads.clamp(1, items.max(1));
        if threads <= 1 || items <= 1 {
            return (0..items).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items {
                                break;
                            }
                            out.push((i, f(i)));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });
        let mut slots: Vec<Option<R>> = (0..items).map(|_| None).collect();
        for (i, r) in per_worker.into_iter().flatten() {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|r| r.expect("every index produced a result"))
            .collect()
    }
}

/// Runs a two-stage producer/consumer pipeline over a bounded channel of
/// depth `depth` — the primitive behind the cluster client's stripe
/// pipelining, where the fetch (or encode) of stripe `i+1` overlaps the
/// decode (or send) of stripe `i`.
///
/// The producer runs on one scoped worker thread and receives the sending
/// half; the consumer runs inline on the caller with the receiving half.
/// At most `depth` items sit in the channel, bounding memory to
/// `depth + 2` stripes regardless of file size. If the consumer drops its
/// receiver early (e.g. on a decode error), the producer's next `send`
/// fails and it can stop — no deadlock, no leak: the scope still joins the
/// producer before returning. Both closures' results come back to the
/// caller.
///
/// # Panics
///
/// Propagates a panic from the producer (the scope joins it first).
pub fn pipeline<T, P, C, PR, CR>(depth: usize, producer: P, consumer: C) -> (PR, CR)
where
    T: Send,
    PR: Send,
    P: FnOnce(std::sync::mpsc::SyncSender<T>) -> PR + Send,
    C: FnOnce(std::sync::mpsc::Receiver<T>) -> CR,
{
    let (tx, rx) = std::sync::mpsc::sync_channel(depth.max(1));
    std::thread::scope(|scope| {
        let handle = scope.spawn(move || producer(tx));
        let consumed = consumer(rx);
        (handle.join().expect("pipeline producer panicked"), consumed)
    })
}

/// Encodes a whole file with per-stripe fan-out on `ctx`'s workers.
/// Produces exactly the same [`EncodedFile`] as [`FileCodec::encode`].
///
/// # Errors
///
/// Same as [`FileCodec::encode`]: rejects empty input and propagates
/// per-stripe geometry failures.
pub fn encode_file<C>(
    codec: &FileCodec<C>,
    data: &[u8],
    ctx: &ParallelCtx,
) -> Result<EncodedFile<C>, FileError>
where
    C: ErasureCode + Clone + Sync,
{
    if data.is_empty() {
        return Err(FileError::BadGeometry {
            reason: "cannot encode an empty file".into(),
        });
    }
    let sdb = codec.stripe_data_bytes();
    let chunks: Vec<&[u8]> = data.chunks(sdb).collect();
    let stripes = ctx.run(chunks.len(), |s| codec.encode_stripe(chunks[s]));
    let meta = FileMeta {
        file_len: data.len() as u64,
        block_bytes: codec.block_bytes(),
        n: codec.code().n(),
        k: codec.code().k(),
        stripes: chunks.len(),
        stripe_data_bytes: sdb,
        code_name: codec.code().name(),
    };
    let mut file = EncodedFile::empty(codec.clone(), meta);
    for (s, blocks) in stripes.into_iter().enumerate() {
        for (b, bytes) in blocks?.into_iter().enumerate() {
            file.set_block(s, b, bytes);
        }
    }
    Ok(file)
}

/// Decodes a whole file with per-stripe fan-out on `ctx`'s workers.
/// Produces exactly the same bytes as [`EncodedFile::decode`].
///
/// # Errors
///
/// Returns [`FileError::StripeUnrecoverable`] naming the first
/// unrecoverable stripe, like the sequential path.
pub fn decode_file<C>(file: &EncodedFile<C>, ctx: &ParallelCtx) -> Result<Vec<u8>, FileError>
where
    C: AccessCode + Sync,
{
    let parts = ctx.run(file.stripes(), |s| file.decode_stripe_at(s));
    let mut out = Vec::with_capacity(file.meta().file_len as usize);
    for part in parts {
        out.extend_from_slice(&part?);
    }
    out.truncate(file.meta().file_len as usize);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use carousel::Carousel;
    use rs_code::ReedSolomon;

    fn data(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 131 + 7) as u8).collect()
    }

    fn ctx(threads: usize) -> ParallelCtx {
        ParallelCtx::builder().threads(threads).build()
    }

    #[test]
    fn builder_resolves_thread_count_once() {
        assert_eq!(ctx(3).threads(), 3);
        assert_eq!(ParallelCtx::sequential().threads(), 1);
        // 0 and "unset" both mean "all cores", probed at build time.
        assert_eq!(ctx(0).threads(), available_threads());
        assert_eq!(
            ParallelCtx::builder().build().threads(),
            available_threads()
        );
        assert_eq!(ParallelCtx::default().threads(), available_threads());
    }

    #[test]
    fn run_preserves_order_and_covers_all() {
        for threads in [1, 2, 3, 8, 64] {
            let got = ctx(threads).run(100, |i| i * i);
            let want: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
        assert!(ctx(4).run(0, |i| i).is_empty());
    }

    #[test]
    fn context_is_reusable_across_calls() {
        let ctx = ctx(4);
        for _ in 0..3 {
            assert_eq!(ctx.run(10, |i| i + 1), (1..=10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pipeline_preserves_order_and_returns_both_results() {
        for depth in [1, 2, 7] {
            let (sent, got) = pipeline(
                depth,
                |tx| {
                    for i in 0..50 {
                        if tx.send(i).is_err() {
                            return i;
                        }
                    }
                    50
                },
                |rx| rx.iter().collect::<Vec<i32>>(),
            );
            assert_eq!(sent, 50, "depth={depth}");
            assert_eq!(got, (0..50).collect::<Vec<_>>(), "depth={depth}");
        }
    }

    #[test]
    fn pipeline_survives_early_consumer_exit() {
        // Consumer bails after 3 items; the producer sees the send error
        // and stops instead of deadlocking on the bounded channel.
        let (sent, got) = pipeline(
            1,
            |tx| {
                let mut sent = 0;
                while tx.send(sent).is_ok() {
                    sent += 1;
                }
                sent
            },
            |rx| {
                let got: Vec<i32> = rx.iter().take(3).collect();
                drop(rx);
                got
            },
        );
        assert_eq!(got, vec![0, 1, 2]);
        assert!(sent >= 3);
    }

    #[test]
    fn parallel_encode_matches_sequential() {
        let codec = FileCodec::new(Carousel::new(6, 3, 3, 6).unwrap(), 120).unwrap();
        let file = data(3000);
        let seq = codec.encode(&file).unwrap();
        let par = encode_file(&codec, &file, &ctx(4)).unwrap();
        assert_eq!(par.meta(), seq.meta());
        for s in 0..seq.stripes() {
            for b in 0..seq.meta().n {
                assert_eq!(par.block(s, b), seq.block(s, b), "stripe {s} block {b}");
            }
        }
    }

    #[test]
    fn parallel_decode_matches_source_with_failures() {
        let codec = FileCodec::new(ReedSolomon::new(6, 4).unwrap(), 64).unwrap();
        let file = data(2000);
        let mut enc = codec.encode(&file).unwrap();
        for s in 0..enc.stripes() {
            enc.drop_block(s, (s * 2) % 6);
        }
        assert_eq!(decode_file(&enc, &ctx(4)).unwrap(), file);
        assert_eq!(decode_file(&enc, &ParallelCtx::sequential()).unwrap(), file);
    }

    #[test]
    fn parallel_errors_propagate() {
        let codec = FileCodec::new(ReedSolomon::new(4, 2).unwrap(), 64).unwrap();
        assert!(encode_file(&codec, &[], &ctx(4)).is_err());
        let mut enc = codec.encode(&data(400)).unwrap();
        for b in 0..3 {
            enc.drop_block(1, b);
        }
        match decode_file(&enc, &ctx(4)) {
            Err(FileError::StripeUnrecoverable { stripe, .. }) => assert_eq!(stripe, 1),
            other => panic!("expected StripeUnrecoverable, got {other:?}"),
        }
    }
}
