//! A small std-thread worker pool for per-stripe fan-out.
//!
//! Stripes of a file are independent under every code in this workspace,
//! so encode and decode parallelize trivially across them. This module
//! gives the write path of the networked cluster (`crates/cluster`) and
//! `carousel-tool --threads` a dependency-free way to use all cores: a
//! work-stealing index loop over scoped threads — no channels, no unsafe,
//! no allocation beyond the result vector.

use std::sync::atomic::{AtomicUsize, Ordering};

use access::AccessCode;
use erasure::ErasureCode;
use filestore::{EncodedFile, FileCodec, FileError, FileMeta};

/// Number of worker threads to use by default: the machine's available
/// parallelism, or 1 when that cannot be determined.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every index in `0..items` on up to `threads` scoped
/// worker threads, returning the results in index order. Workers pull the
/// next index from a shared atomic, so uneven item costs balance
/// automatically. With `threads <= 1` (or fewer than two items) this runs
/// inline with no thread spawns.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn parallel_map<R, F>(threads: usize, items: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.clamp(1, items.max(1));
    if threads <= 1 || items <= 1 {
        return (0..items).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });
    let mut slots: Vec<Option<R>> = (0..items).map(|_| None).collect();
    for (i, r) in per_worker.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|r| r.expect("every index produced a result"))
        .collect()
}

/// Encodes a whole file with per-stripe fan-out across `threads` workers.
/// Produces exactly the same [`EncodedFile`] as [`FileCodec::encode`].
///
/// # Errors
///
/// Same as [`FileCodec::encode`]: rejects empty input and propagates
/// per-stripe geometry failures.
pub fn encode_file<C>(
    codec: &FileCodec<C>,
    data: &[u8],
    threads: usize,
) -> Result<EncodedFile<C>, FileError>
where
    C: ErasureCode + Clone + Sync,
{
    if data.is_empty() {
        return Err(FileError::BadGeometry {
            reason: "cannot encode an empty file".into(),
        });
    }
    let sdb = codec.stripe_data_bytes();
    let chunks: Vec<&[u8]> = data.chunks(sdb).collect();
    let stripes = parallel_map(threads, chunks.len(), |s| codec.encode_stripe(chunks[s]));
    let meta = FileMeta {
        file_len: data.len() as u64,
        block_bytes: codec.block_bytes(),
        n: codec.code().n(),
        k: codec.code().k(),
        stripes: chunks.len(),
        stripe_data_bytes: sdb,
        code_name: codec.code().name(),
    };
    let mut file = EncodedFile::empty(codec.clone(), meta);
    for (s, blocks) in stripes.into_iter().enumerate() {
        for (b, bytes) in blocks?.into_iter().enumerate() {
            file.set_block(s, b, bytes);
        }
    }
    Ok(file)
}

/// Decodes a whole file with per-stripe fan-out across `threads` workers.
/// Produces exactly the same bytes as [`EncodedFile::decode`].
///
/// # Errors
///
/// Returns [`FileError::StripeUnrecoverable`] naming the first
/// unrecoverable stripe, like the sequential path.
pub fn decode_file<C>(file: &EncodedFile<C>, threads: usize) -> Result<Vec<u8>, FileError>
where
    C: AccessCode + Sync,
{
    let parts = parallel_map(threads, file.stripes(), |s| file.decode_stripe_at(s));
    let mut out = Vec::with_capacity(file.meta().file_len as usize);
    for part in parts {
        out.extend_from_slice(&part?);
    }
    out.truncate(file.meta().file_len as usize);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use carousel::Carousel;
    use rs_code::ReedSolomon;

    fn data(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 131 + 7) as u8).collect()
    }

    #[test]
    fn parallel_map_preserves_order_and_covers_all() {
        for threads in [1, 2, 3, 8, 64] {
            let got = parallel_map(threads, 100, |i| i * i);
            let want: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
        assert!(parallel_map(4, 0, |i| i).is_empty());
    }

    #[test]
    fn parallel_encode_matches_sequential() {
        let codec = FileCodec::new(Carousel::new(6, 3, 3, 6).unwrap(), 120).unwrap();
        let file = data(3000);
        let seq = codec.encode(&file).unwrap();
        let par = encode_file(&codec, &file, 4).unwrap();
        assert_eq!(par.meta(), seq.meta());
        for s in 0..seq.stripes() {
            for b in 0..seq.meta().n {
                assert_eq!(par.block(s, b), seq.block(s, b), "stripe {s} block {b}");
            }
        }
    }

    #[test]
    fn parallel_decode_matches_source_with_failures() {
        let codec = FileCodec::new(ReedSolomon::new(6, 4).unwrap(), 64).unwrap();
        let file = data(2000);
        let mut enc = codec.encode(&file).unwrap();
        for s in 0..enc.stripes() {
            enc.drop_block(s, (s * 2) % 6);
        }
        assert_eq!(decode_file(&enc, 4).unwrap(), file);
        assert_eq!(decode_file(&enc, 1).unwrap(), file);
    }

    #[test]
    fn parallel_errors_propagate() {
        let codec = FileCodec::new(ReedSolomon::new(4, 2).unwrap(), 64).unwrap();
        assert!(encode_file(&codec, &[], 4).is_err());
        let mut enc = codec.encode(&data(400)).unwrap();
        for b in 0..3 {
            enc.drop_block(1, b);
        }
        match decode_file(&enc, 4) {
            Err(FileError::StripeUnrecoverable { stripe, .. }) => assert_eq!(stripe, 1),
            other => panic!("expected StripeUnrecoverable, got {other:?}"),
        }
    }
}
