//! The ingestion path: encoding a file and distributing its blocks.
//!
//! The paper's prototype includes "a tool that converts the original data
//! into blocks encoded with Carousel codes" (§VIII-A). This module
//! simulates that conversion inside the cluster: a writer node reads the
//! original data from its disk, encodes stripe by stripe (CPU cost at the
//! measured encode rate), and ships each encoded block to its target
//! datanode, which writes it to disk. Replication ships `copies` replicas
//! of each block instead.

use std::sync::LazyLock;

use simcore::Engine;

use crate::namenode::StoredFile;
use crate::policy::Policy;
use crate::topology::{ClusterSpec, Topology};

static INGESTS: LazyLock<&'static telemetry::Counter> =
    LazyLock::new(|| telemetry::counter("dfs.ingests"));
static INGEST_MB: LazyLock<&'static telemetry::Histogram> =
    LazyLock::new(|| telemetry::histogram("dfs.ingest.network_mb"));
static INGEST_ENCODED_MB: LazyLock<&'static telemetry::Counter> =
    LazyLock::new(|| telemetry::counter("dfs.ingest.encoded_mb"));

/// Coding CPU throughputs for ingestion, MB of original data per second.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncodeRates {
    /// Systematic RS encode throughput.
    pub rs_encode_mbps: f64,
    /// Carousel encode throughput (≈ RS thanks to generator sparsity —
    /// the paper's Fig. 6a observation).
    pub carousel_encode_mbps: f64,
}

impl Default for EncodeRates {
    fn default() -> Self {
        // Release-mode figures from this repository's kernels at k = 6.
        EncodeRates {
            rs_encode_mbps: 165.0,
            carousel_encode_mbps: 174.0,
        }
    }
}

/// Outcome of a simulated ingestion.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestReport {
    /// Wall-clock completion (all blocks durable), seconds.
    pub seconds: f64,
    /// Bytes shipped from the writer to datanodes, MB.
    pub network_mb: f64,
    /// Bytes of encoding CPU work charged, MB.
    pub encoded_mb: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    /// Stripe read + encoded; start distributing its blocks.
    StripeEncoded(usize),
    /// One block landed on its datanode; start the disk write.
    BlockArrived(usize),
    /// Block durable.
    BlockWritten,
}

/// Simulates writing `file` into the cluster from `writer_node`.
///
/// Stripes are pipelined: each stripe is read + encoded (serially, one
/// core), then its blocks fan out over the network concurrently with the
/// next stripe's encoding.
///
/// # Panics
///
/// Panics if `writer_node` is out of range.
pub fn ingest_file(
    spec: &ClusterSpec,
    file: &StoredFile,
    writer_node: usize,
    rates: EncodeRates,
) -> IngestReport {
    assert!(writer_node < spec.nodes, "writer node out of range");
    let mut engine: Engine<Ev> = Engine::new();
    let topo = Topology::build(spec, &mut engine);

    let (encode_rate, encoded_per_stripe) = match file.policy {
        Policy::Replication { .. } => (f64::INFINITY, 0.0),
        Policy::Rs { k, .. } => (rates.rs_encode_mbps, k as f64 * file.block_mb),
        Policy::Carousel { k, .. } => (rates.carousel_encode_mbps, k as f64 * file.block_mb),
    };
    let stripe_data_mb = file.policy.stripe_data_blocks() as f64 * file.block_mb;

    // Destination node per (stripe, role).
    let targets: Vec<Vec<usize>> = file
        .stripes
        .iter()
        .map(|s| s.blocks.iter().map(|b| b.node).collect())
        .collect();

    // Kick off the first stripe: read from the writer's disk + encode CPU.
    let start_stripe = |engine: &mut Engine<Ev>, s: usize| {
        // Read the stripe's data and charge the encode CPU as one pipeline
        // stage: the work is max(read, encode) in a streaming encoder; we
        // model it as a read flow followed at the slower of the two rates,
        // i.e. a flow of stripe_data_mb through the disk plus a CPU flow.
        let read = stripe_data_mb;
        let cpu_s = if encode_rate.is_finite() {
            stripe_data_mb / encode_rate
        } else {
            0.0
        };
        // Encode modeled as CPU-capped flow; completion fires when both the
        // disk read and the CPU work are done — approximated by chaining
        // the slower one via two flows and counting completions.
        engine.start_flow(
            read,
            &topo.local_read(writer_node),
            None,
            Ev::StripeEncoded(s),
        );
        engine.start_flow(
            cpu_s,
            &[topo.cpu(writer_node)],
            Some(1.0),
            Ev::StripeEncoded(s),
        );
    };
    start_stripe(&mut engine, 0);

    let mut stripe_parts = vec![2u8; file.stripes.len()];
    let mut network_mb = 0.0;
    let mut encoded_mb = 0.0;
    let mut last_t = 0.0;
    while let Some((t, ev)) = engine.next_event() {
        last_t = t;
        match ev {
            Ev::StripeEncoded(s) => {
                stripe_parts[s] -= 1;
                if stripe_parts[s] > 0 {
                    continue;
                }
                encoded_mb += encoded_per_stripe;
                // Fan the blocks out.
                for &dst in &targets[s] {
                    if dst == writer_node {
                        engine.start_flow(0.0, &topo.local_read(dst), None, Ev::BlockArrived(dst));
                    } else {
                        let path = topo
                            .transfer(writer_node, dst)
                            .expect("distinct nodes transfer");
                        engine.start_flow(file.block_mb, &path, None, Ev::BlockArrived(dst));
                        network_mb += file.block_mb;
                    }
                }
                // Pipeline: encode the next stripe while blocks ship.
                if s + 1 < file.stripes.len() {
                    start_stripe(&mut engine, s + 1);
                }
            }
            Ev::BlockArrived(dst) => {
                engine.start_flow(
                    file.block_mb,
                    &topo.local_write(dst),
                    None,
                    Ev::BlockWritten,
                );
            }
            Ev::BlockWritten => {}
        }
    }
    if telemetry::ENABLED {
        INGESTS.inc();
        INGEST_MB.record_f64(network_mb);
        INGEST_ENCODED_MB.add(encoded_mb.round() as u64);
    }
    IngestReport {
        seconds: last_t,
        network_mb,
        encoded_mb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::namenode::Namenode;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(31)
    }

    fn stored(policy: Policy) -> (ClusterSpec, StoredFile) {
        let spec = ClusterSpec::r3_large_cluster();
        let mut nn = Namenode::new(spec.nodes);
        let f = nn.store("f", 3072.0, 512.0, policy, &mut rng()).clone();
        (spec, f)
    }

    #[test]
    fn carousel_ingest_costs_like_rs() {
        // Paper Fig. 6a: Carousel encoding throughput ≈ RS, so ingestion
        // time is comparable.
        let (spec, rs) = stored(Policy::Rs { n: 12, k: 6 });
        let (_, ca) = stored(Policy::Carousel {
            n: 12,
            k: 6,
            d: 10,
            p: 12,
        });
        let r_rs = ingest_file(&spec, &rs, 0, EncodeRates::default());
        let r_ca = ingest_file(&spec, &ca, 0, EncodeRates::default());
        assert!(r_rs.seconds > 0.0 && r_ca.seconds > 0.0);
        let ratio = r_ca.seconds / r_rs.seconds;
        assert!((0.8..1.2).contains(&ratio), "ratio {ratio}");
        // Both ship n blocks per stripe (minus any landing on the writer).
        assert!(r_ca.network_mb >= 11.0 * 512.0);
        assert_eq!(r_ca.encoded_mb, 3072.0);
    }

    #[test]
    fn replication_ships_more_bytes_than_coding() {
        let (spec, rep) = stored(Policy::Replication { copies: 3 });
        let (_, ca) = stored(Policy::Carousel {
            n: 12,
            k: 6,
            d: 10,
            p: 12,
        });
        let r_rep = ingest_file(&spec, &rep, 0, EncodeRates::default());
        let r_ca = ingest_file(&spec, &ca, 0, EncodeRates::default());
        // 3x replication ships 3 copies = 9216 MB; (12,6) coding ships
        // 2x = 6144 MB (minus writer-local blocks).
        assert!(r_rep.network_mb > r_ca.network_mb);
        assert_eq!(r_rep.encoded_mb, 0.0);
    }

    #[test]
    #[should_panic(expected = "writer node out of range")]
    fn bad_writer_rejected() {
        let (spec, f) = stored(Policy::Rs { n: 12, k: 6 });
        ingest_file(&spec, &f, 99, EncodeRates::default());
    }
}
