//! Block placement policies: where a stripe's blocks land.
//!
//! HDFS spreads replicas across racks so a rack-level failure (switch,
//! PDU) cannot take out a whole stripe. The same logic applies to coded
//! stripes: with `n` blocks spread over `r` racks, losing one rack kills
//! at most `⌈n/r⌉` blocks, which an `(n, k)` code survives as long as
//! `⌈n/r⌉ ≤ n − k`.

use rand::seq::SliceRandom;
use rand::Rng;

/// How stripes map onto nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Uniformly random distinct nodes (the default elsewhere).
    Random,
    /// Nodes are grouped into `racks` equal racks; a stripe's blocks are
    /// spread round-robin across racks (and randomly within each rack).
    RackAware {
        /// Number of racks; must divide into the cluster at least 1 node
        /// per rack.
        racks: usize,
    },
}

impl Placement {
    /// Picks `width` distinct nodes out of `nodes` according to the policy.
    ///
    /// # Panics
    ///
    /// Panics if `width > nodes`, or for [`Placement::RackAware`] if
    /// `racks` is zero or exceeds the node count.
    pub fn place(&self, nodes: usize, width: usize, rng: &mut impl Rng) -> Vec<usize> {
        assert!(width <= nodes, "stripe wider than the cluster");
        match *self {
            Placement::Random => {
                let mut all: Vec<usize> = (0..nodes).collect();
                all.shuffle(rng);
                all.truncate(width);
                all
            }
            Placement::RackAware { racks } => {
                assert!(racks > 0 && racks <= nodes, "invalid rack count");
                // Partition nodes into racks by index stripes, shuffle
                // within each rack, then deal blocks round-robin.
                let mut per_rack: Vec<Vec<usize>> = (0..racks)
                    .map(|r| (0..nodes).filter(|&nd| nd % racks == r).collect())
                    .collect();
                for rack in &mut per_rack {
                    rack.shuffle(rng);
                }
                let mut order: Vec<usize> = (0..racks).collect();
                order.shuffle(rng);
                let mut out = Vec::with_capacity(width);
                let mut round = 0;
                while out.len() < width {
                    for &r in &order {
                        if let Some(&nd) = per_rack[r].get(round) {
                            out.push(nd);
                            if out.len() == width {
                                break;
                            }
                        }
                    }
                    round += 1;
                    assert!(round <= nodes, "placement failed to fill the stripe (bug)");
                }
                out
            }
        }
    }

    /// The rack of a node under this policy (`None` for random placement).
    pub fn rack_of(&self, node: usize) -> Option<usize> {
        match *self {
            Placement::Random => None,
            Placement::RackAware { racks } => Some(node % racks),
        }
    }

    /// Worst-case blocks lost from one stripe when a whole rack fails.
    pub fn max_blocks_per_rack(&self, width: usize) -> usize {
        match *self {
            Placement::Random => width,
            Placement::RackAware { racks } => width.div_ceil(racks),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(3)
    }

    #[test]
    fn random_places_distinct_nodes() {
        let mut r = rng();
        let nodes = Placement::Random.place(30, 12, &mut r);
        let mut sorted = nodes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 12);
    }

    #[test]
    fn rack_aware_spreads_evenly() {
        let mut r = rng();
        let policy = Placement::RackAware { racks: 6 };
        for _ in 0..20 {
            let nodes = policy.place(30, 12, &mut r);
            // 12 blocks over 6 racks: exactly 2 per rack.
            let mut per_rack = [0usize; 6];
            for nd in nodes {
                per_rack[policy.rack_of(nd).unwrap()] += 1;
            }
            assert!(per_rack.iter().all(|&c| c == 2), "{per_rack:?}");
        }
        assert_eq!(policy.max_blocks_per_rack(12), 2);
    }

    #[test]
    fn rack_failure_survivable_iff_spread_suffices() {
        // (12, 6): tolerates 6 losses. 6 racks -> 2 per rack (fine);
        // 1 rack -> all 12 blocks colocated (fatal).
        let six = Placement::RackAware { racks: 6 };
        let one = Placement::RackAware { racks: 1 };
        assert!(six.max_blocks_per_rack(12) <= 6);
        assert!(one.max_blocks_per_rack(12) > 6);
    }

    #[test]
    fn uneven_width_still_fills() {
        let mut r = rng();
        let policy = Placement::RackAware { racks: 5 };
        let nodes = policy.place(30, 12, &mut r);
        let mut sorted = nodes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 12);
        // 12 over 5 racks: at most ceil(12/5) = 3 per rack.
        let mut per_rack = [0usize; 5];
        for nd in nodes {
            per_rack[nd % 5] += 1;
        }
        assert!(per_rack.iter().all(|&c| c <= 3), "{per_rack:?}");
    }

    #[test]
    #[should_panic(expected = "wider than the cluster")]
    fn width_validation() {
        let mut r = rng();
        Placement::Random.place(4, 5, &mut r);
    }
}
