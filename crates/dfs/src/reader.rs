//! Client download paths — the substrate of the paper's Fig. 11.
//!
//! Three ways to fetch a whole file to an external client:
//!
//! * [`download_replicated`] — the built-in `hadoop fs -get` behaviour:
//!   each block is downloaded from a (single) datanode **sequentially**;
//! * [`download_striped`] — the paper's custom parallel reader for RS and
//!   Carousel files: original data is fetched from all data-bearing blocks
//!   in parallel (k servers for RS, p for Carousel);
//! * the same striped reader in **degraded** mode when a block is dead: it
//!   fetches parity from replacement blocks and decodes, with the decode
//!   cost charged at the measured throughput of the respective code
//!   (Carousel decoding is more expensive than RS — paper §VIII-D).
//!
//! Model notes: downloads are flow-simulated (disk, uplink and client
//! downlink contention all emerge from max-min sharing); the decode of
//! degraded stripes is charged *after* the download completes, covering one
//! full pass over the stripe's original data. This serialized-decode model
//! is what reproduces the visible one-failure penalty in Fig. 11.

use std::sync::LazyLock;

use access::{AccessCode, PlanCache, ReadMode};
use carousel::Carousel;
use erasure::CodeError;
use rs_code::ReedSolomon;
use simcore::Engine;

use crate::namenode::StoredFile;
use crate::policy::{CodingRates, Policy};
use crate::topology::{ClusterSpec, Topology};

static DOWNLOADS: LazyLock<&'static telemetry::Counter> =
    LazyLock::new(|| telemetry::counter("dfs.downloads"));
static DOWNLOAD_MB: LazyLock<&'static telemetry::Histogram> =
    LazyLock::new(|| telemetry::histogram("dfs.download.traffic_mb"));
static DOWNLOAD_MS: LazyLock<&'static telemetry::Histogram> =
    LazyLock::new(|| telemetry::histogram("dfs.download.ms"));
static DECODE_MB: LazyLock<&'static telemetry::Counter> =
    LazyLock::new(|| telemetry::counter("dfs.decode.mb"));

/// Feeds one finished download into the per-download metrics.
fn record_download(res: &DownloadResult) {
    if telemetry::ENABLED {
        DOWNLOADS.inc();
        DOWNLOAD_MB.record_f64(res.downloaded_mb);
        DOWNLOAD_MS.record_f64(res.seconds * 1e3);
        DECODE_MB.add(res.decoded_mb.round() as u64);
    }
}

/// Outcome of a simulated download.
#[derive(Debug, Clone, PartialEq)]
pub struct DownloadResult {
    /// Wall-clock completion time, seconds.
    pub seconds: f64,
    /// Bytes that crossed the network, MB.
    pub downloaded_mb: f64,
    /// Original-data volume that had to pass through a decoder, MB.
    pub decoded_mb: f64,
    /// Distinct datanodes read from.
    pub servers: usize,
}

/// Sequential whole-block replica fetch (`hadoop fs -get`).
///
/// # Errors
///
/// Returns [`CodeError::InsufficientData`] if some block has no live
/// replica, and [`CodeError::InvalidParameters`] if the file is not
/// replicated.
pub fn download_replicated(
    spec: &ClusterSpec,
    file: &StoredFile,
) -> Result<DownloadResult, CodeError> {
    let Policy::Replication { .. } = file.policy else {
        return Err(CodeError::InvalidParameters {
            reason: "download_replicated requires a replicated file".into(),
        });
    };
    let mut engine: Engine<usize> = Engine::new();
    let topo = Topology::build(spec, &mut engine);
    // Pick the first live replica of every block, in order.
    let mut sources = Vec::with_capacity(file.stripes.len());
    for stripe in &file.stripes {
        let role = stripe
            .alive_roles()
            .into_iter()
            .next()
            .ok_or(CodeError::InsufficientData { needed: 1, got: 0 })?;
        sources.push(stripe.blocks[role].node);
    }
    // Sequential: start block i+1 when block i completes.
    let mut iter = sources.iter();
    if let Some(&first) = iter.next() {
        engine.start_flow(file.block_mb, &topo.client_read(first), None, 0);
    }
    let mut last_t = 0.0;
    while let Some((t, _)) = engine.next_event() {
        last_t = t;
        if let Some(&next) = iter.next() {
            engine.start_flow(file.block_mb, &topo.client_read(next), None, 0);
        }
    }
    let mut servers: Vec<usize> = sources.clone();
    servers.sort_unstable();
    servers.dedup();
    let res = DownloadResult {
        seconds: last_t,
        downloaded_mb: file.block_mb * sources.len() as f64,
        decoded_mb: 0.0,
        servers: servers.len(),
    };
    record_download(&res);
    Ok(res)
}

/// Parallel striped download for RS and Carousel files, with degraded-read
/// support.
///
/// # Errors
///
/// Returns [`CodeError::InvalidParameters`] for replicated files and
/// [`CodeError::InsufficientData`] if a stripe has fewer than `k` live
/// blocks.
pub fn download_striped(
    spec: &ClusterSpec,
    file: &StoredFile,
    rates: CodingRates,
) -> Result<DownloadResult, CodeError> {
    // One code and one plan cache per file: every stripe shares the
    // geometry, so stripes with the same liveness pattern replan for free.
    let (code, code_rate): (Box<dyn AccessCode>, f64) = match file.policy {
        Policy::Replication { .. } => {
            return Err(CodeError::InvalidParameters {
                reason: "download_striped requires a coded file".into(),
            })
        }
        Policy::Rs { n, k } => (Box::new(ReedSolomon::new(n, k)?), rates.rs_decode_mbps),
        Policy::Carousel { n, k, d, p } => (
            Box::new(Carousel::new(n, k, d, p)?),
            rates.carousel_decode_mbps,
        ),
    };
    let k = code.k();
    let unit_mb = file.block_mb / code.linear().sub() as f64;
    let plans = PlanCache::new(file.stripes.len().max(1));

    let mut engine: Engine<usize> = Engine::new();
    let topo = Topology::build(spec, &mut engine);
    let mut downloaded_mb = 0.0;
    let mut decoded_mb = 0.0;
    let mut decode_rate = f64::INFINITY;
    let mut servers: Vec<usize> = Vec::new();

    for stripe in &file.stripes {
        let alive = stripe.alive_roles();
        let plan = plans.read_plan(code.as_ref(), &alive)?;
        if plan.mode() != ReadMode::Direct {
            decoded_mb += k as f64 * file.block_mb;
            decode_rate = decode_rate.min(code_rate);
        }
        for (role, units) in plan.units_per_node() {
            let mb = units as f64 * unit_mb;
            let node = stripe.blocks[role].node;
            engine.start_flow(mb, &topo.client_read(node), None, 0);
            downloaded_mb += mb;
            if !servers.contains(&node) {
                servers.push(node);
            }
        }
    }

    let mut last_t = 0.0;
    while let Some((t, _)) = engine.next_event() {
        last_t = t;
    }
    let decode_s = if decoded_mb > 0.0 {
        decoded_mb / decode_rate
    } else {
        0.0
    };
    let res = DownloadResult {
        seconds: last_t + decode_s,
        downloaded_mb,
        decoded_mb,
        servers: servers.len(),
    };
    record_download(&res);
    Ok(res)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::namenode::Namenode;
    use rand::SeedableRng;

    fn fig11_spec() -> ClusterSpec {
        // Paper Fig. 11: datanode reads capped at 300 Mbps = 37.5 MB/s.
        ClusterSpec::r3_large_cluster().with_disk_read_mbps(37.5)
    }

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    #[test]
    fn replicated_download_is_sequential() {
        let spec = fig11_spec();
        let mut nn = Namenode::new(30);
        let f = nn
            .store(
                "f",
                3072.0,
                512.0,
                Policy::Replication { copies: 3 },
                &mut rng(),
            )
            .clone();
        let r = download_replicated(&spec, &f).unwrap();
        // 6 blocks x 512 MB at 37.5 MB/s, one at a time: ~81.9 s.
        assert!(
            (r.seconds - 6.0 * 512.0 / 37.5).abs() < 1e-6,
            "{}",
            r.seconds
        );
        assert_eq!(r.decoded_mb, 0.0);
    }

    #[test]
    fn rs_parallel_download_beats_replication() {
        let spec = fig11_spec();
        let mut nn = Namenode::new(30);
        let rep = nn
            .store(
                "rep",
                3072.0,
                512.0,
                Policy::Replication { copies: 3 },
                &mut rng(),
            )
            .clone();
        let rs = nn
            .store("rs", 3072.0, 512.0, Policy::Rs { n: 12, k: 6 }, &mut rng())
            .clone();
        let t_rep = download_replicated(&spec, &rep).unwrap().seconds;
        let t_rs = download_striped(&spec, &rs, CodingRates::default())
            .unwrap()
            .seconds;
        assert!(t_rs < t_rep / 3.0, "parallel {t_rs} vs sequential {t_rep}");
    }

    #[test]
    fn carousel_download_beats_rs() {
        // The paper's headline Fig. 11 ordering (no failure).
        let spec = fig11_spec();
        let mut nn = Namenode::new(30);
        let rs = nn
            .store("rs", 3072.0, 512.0, Policy::Rs { n: 12, k: 6 }, &mut rng())
            .clone();
        let ca = nn
            .store(
                "ca",
                3072.0,
                512.0,
                Policy::Carousel {
                    n: 12,
                    k: 6,
                    d: 10,
                    p: 10,
                },
                &mut rng(),
            )
            .clone();
        let t_rs = download_striped(&spec, &rs, CodingRates::default()).unwrap();
        let t_ca = download_striped(&spec, &ca, CodingRates::default()).unwrap();
        assert_eq!(t_rs.servers, 6);
        assert_eq!(t_ca.servers, 10);
        assert!(t_ca.seconds < t_rs.seconds);
        // Same bytes cross the network either way (k blocks' worth).
        assert!((t_rs.downloaded_mb - t_ca.downloaded_mb).abs() < 1e-6);
    }

    #[test]
    fn degraded_reads_decode_and_still_order_correctly() {
        let spec = fig11_spec();
        let mut nn = Namenode::new(30);
        nn.store("rs", 3072.0, 512.0, Policy::Rs { n: 12, k: 6 }, &mut rng());
        nn.store(
            "ca",
            3072.0,
            512.0,
            Policy::Carousel {
                n: 12,
                k: 6,
                d: 10,
                p: 10,
            },
            &mut rng(),
        );
        // Kill one data-bearing block of each file.
        nn.fail_block("rs", 0, 0);
        nn.fail_block("ca", 0, 0);
        let rs = nn.file("rs").unwrap();
        let ca = nn.file("ca").unwrap();
        let r_rs = download_striped(&spec, rs, CodingRates::default()).unwrap();
        let r_ca = download_striped(&spec, ca, CodingRates::default()).unwrap();
        assert!(r_rs.decoded_mb > 0.0);
        assert!(r_ca.decoded_mb > 0.0);
        // Paper: with one failure Carousel is slower than without, but still
        // faster than RS.
        assert!(r_ca.seconds < r_rs.seconds);
    }

    #[test]
    fn multi_stripe_files_download_all_stripes_in_parallel() {
        let spec = fig11_spec();
        let mut nn = Namenode::new(30);
        // 9 GB = 3 stripes of (12,6).
        let f = nn
            .store(
                "big",
                3.0 * 3072.0,
                512.0,
                Policy::Rs { n: 12, k: 6 },
                &mut rng(),
            )
            .clone();
        assert_eq!(f.stripes.len(), 3);
        let r = download_striped(&spec, &f, CodingRates::default()).unwrap();
        assert!((r.downloaded_mb - 3.0 * 6.0 * 512.0).abs() < 1e-6);
        // All stripes stream concurrently, but shared disks/links make a
        // 3-stripe download slower than one stripe and much faster than 3x.
        let one = nn
            .store("one", 3072.0, 512.0, Policy::Rs { n: 12, k: 6 }, &mut rng())
            .clone();
        let r1 = download_striped(&spec, &one, CodingRates::default()).unwrap();
        assert!(r.seconds > r1.seconds);
        assert!(r.seconds < 3.5 * r1.seconds);
    }

    #[test]
    fn insufficient_blocks_error() {
        let spec = fig11_spec();
        let mut nn = Namenode::new(30);
        nn.store("f", 1024.0, 512.0, Policy::Rs { n: 3, k: 2 }, &mut rng());
        nn.fail_block("f", 0, 0);
        nn.fail_block("f", 0, 1);
        let f = nn.file("f").unwrap();
        assert!(download_striped(&spec, f, CodingRates::default()).is_err());
    }

    #[test]
    fn wrong_policy_rejected() {
        let spec = fig11_spec();
        let mut nn = Namenode::new(10);
        let rep = nn
            .store(
                "r",
                512.0,
                512.0,
                Policy::Replication { copies: 2 },
                &mut rng(),
            )
            .clone();
        assert!(download_striped(&spec, &rep, CodingRates::default()).is_err());
        let rs = nn
            .store("s", 512.0, 512.0, Policy::Rs { n: 4, k: 2 }, &mut rng())
            .clone();
        assert!(download_replicated(&spec, &rs).is_err());
    }
}
