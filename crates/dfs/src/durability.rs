//! Long-horizon durability: does faster repair actually save data?
//!
//! Repair traffic (paper Fig. 7) is not just a bandwidth bill — it sets the
//! *repair window*, and stripes lose data when failures pile up faster than
//! repairs complete. This module runs an event-driven Monte-Carlo: nodes
//! fail with exponential inter-arrival times, every lost block starts a
//! repair whose duration is proportional to the scheme's repair traffic,
//! and a stripe dies permanently once fewer than `k` of its blocks are
//! live. Comparing RS (repair = `k` blocks) with Carousel/MSR (repair =
//! `d/(d−k+1)` blocks) at identical storage makes the reliability value of
//! regenerating codes concrete.

use rand::Rng;
use simcore::Engine;

use crate::namenode::{Namenode, StoredFile};
use crate::policy::Policy;

/// Parameters of a durability simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct DurabilityParams {
    /// Mean time between failures of one node, hours (exponential).
    pub node_mtbf_hours: f64,
    /// Cluster-wide bandwidth available to each repair, MB/s.
    pub repair_mbps: f64,
    /// Simulated horizon, hours.
    pub horizon_hours: f64,
    /// Optional rack-correlated failures: `(racks, rack_mtbf_hours)`.
    /// A rack failure kills every node `nd` with `nd % racks == rack`
    /// simultaneously; nodes come back (replaced) immediately, but their
    /// blocks must be repaired.
    pub rack_failures: Option<(usize, f64)>,
}

impl Default for DurabilityParams {
    fn default() -> Self {
        DurabilityParams {
            // Aggressive failure rate so effects show in short simulations.
            node_mtbf_hours: 500.0,
            repair_mbps: 50.0,
            horizon_hours: 24.0 * 365.0,
            rack_failures: None,
        }
    }
}

/// Outcome of one durability run.
#[derive(Debug, Clone, PartialEq)]
pub struct DurabilityReport {
    /// Stripes that dropped below `k` live blocks (permanent data loss).
    pub stripes_lost: usize,
    /// Total stripes simulated.
    pub stripes_total: usize,
    /// Node failures injected.
    pub failures: usize,
    /// Block repairs completed.
    pub repairs: usize,
    /// Duration of one block repair, hours.
    pub repair_hours: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    NodeFails(usize),
    RackFails(usize),
    RepairDone { stripe: usize, role: usize },
    End,
}

/// Repair traffic of one lost block under `policy`, in block-sizes.
fn repair_traffic_blocks(policy: Policy) -> f64 {
    match policy {
        Policy::Replication { .. } => 1.0,
        Policy::Rs { k, .. } => k as f64,
        Policy::Carousel { k, d, .. } => d as f64 / (d - k + 1) as f64,
    }
}

/// Runs the Monte-Carlo for one stored file.
///
/// Failed nodes are replaced immediately (infinite spare pool); each lost
/// block's repair completes after `traffic / repair_mbps`; a stripe that
/// ever has fewer than `k` live blocks is counted lost and abandoned.
///
/// # Panics
///
/// Panics on non-positive parameters.
pub fn simulate(
    nn: &Namenode,
    file: &StoredFile,
    params: &DurabilityParams,
    rng: &mut impl Rng,
) -> DurabilityReport {
    assert!(params.node_mtbf_hours > 0.0 && params.repair_mbps > 0.0);
    assert!(params.horizon_hours > 0.0);
    let nodes = nn.nodes();
    let needed = file.policy.stripe_data_blocks();
    let traffic_mb = repair_traffic_blocks(file.policy) * file.block_mb;
    let repair_hours = traffic_mb / params.repair_mbps / 3600.0;

    // Live-state copy: stripe -> role -> (node, alive); lost stripes -> None.
    let mut state: Vec<Option<Vec<(usize, bool)>>> = file
        .stripes
        .iter()
        .map(|s| Some(s.blocks.iter().map(|b| (b.node, b.alive)).collect()))
        .collect();
    let stripes_total = state.len();

    let mut engine: Engine<Ev> = Engine::new();
    let exp = |rng: &mut dyn rand::RngCore, mean: f64| -> f64 {
        let u: f64 = rand::Rng::gen_range(rng, f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    };
    for node in 0..nodes {
        let dt = exp(rng, params.node_mtbf_hours);
        engine.schedule(dt, Ev::NodeFails(node));
    }
    if let Some((racks, mtbf)) = params.rack_failures {
        for rack in 0..racks {
            let dt = exp(rng, mtbf);
            engine.schedule(dt, Ev::RackFails(rack));
        }
    }
    engine.schedule(params.horizon_hours, Ev::End);

    // Killing a node's blocks and scheduling their repairs, shared by node
    // and rack failure events.
    let kill_node = |node: usize,
                     state: &mut Vec<Option<Vec<(usize, bool)>>>,
                     engine: &mut Engine<Ev>,
                     stripes_lost: &mut usize| {
        for (stripe, entry) in state.iter_mut().enumerate() {
            let Some(blocks) = entry else { continue };
            let mut newly_dead = Vec::new();
            for (role, (nd, alive)) in blocks.iter_mut().enumerate() {
                if *nd == node && *alive {
                    *alive = false;
                    newly_dead.push(role);
                }
            }
            let live = blocks.iter().filter(|(_, a)| *a).count();
            if live < needed {
                *entry = None;
                *stripes_lost += 1;
            } else {
                for role in newly_dead {
                    engine.schedule(repair_hours, Ev::RepairDone { stripe, role });
                }
            }
        }
    };

    let mut failures = 0usize;
    let mut repairs = 0usize;
    let mut stripes_lost = 0usize;
    while let Some((_, ev)) = engine.next_event() {
        match ev {
            Ev::End => break,
            Ev::NodeFails(node) => {
                failures += 1;
                kill_node(node, &mut state, &mut engine, &mut stripes_lost);
                // The node is replaced; its next failure clock restarts.
                let dt = exp(rng, params.node_mtbf_hours);
                engine.schedule(dt, Ev::NodeFails(node));
            }
            Ev::RackFails(rack) => {
                let (racks, mtbf) = params.rack_failures.expect("rack event implies config");
                failures += 1;
                for node in (0..nodes).filter(|nd| nd % racks == rack) {
                    kill_node(node, &mut state, &mut engine, &mut stripes_lost);
                }
                let dt = exp(rng, mtbf);
                engine.schedule(dt, Ev::RackFails(rack));
            }
            Ev::RepairDone { stripe, role } => {
                if let Some(blocks) = state[stripe].as_mut() {
                    if !blocks[role].1 {
                        blocks[role].1 = true;
                        repairs += 1;
                    }
                }
            }
        }
    }
    DurabilityReport {
        stripes_lost,
        stripes_total,
        failures,
        repairs,
        repair_hours,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn run(policy: Policy, mtbf: f64, repair_mbps: f64, seed: u64) -> DurabilityReport {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut nn = Namenode::new(30);
        // 100 stripes of data.
        let data_mb = policy.stripe_data_blocks() as f64 * 512.0 * 100.0;
        let file = nn.store("f", data_mb, 512.0, policy, &mut rng).clone();
        simulate(
            &nn,
            &file,
            &DurabilityParams {
                node_mtbf_hours: mtbf,
                repair_mbps,
                horizon_hours: 24.0 * 365.0,
                rack_failures: None,
            },
            &mut rng,
        )
    }

    #[test]
    fn rack_aware_placement_survives_rack_storms() {
        use crate::placement::Placement;
        // Only rack failures (no independent node failures). Rack-aware
        // (12,6) stripes lose <= 2 blocks per rack event and always recover;
        // single-rack placement loses everything at once.
        let run_with = |placement: Placement, seed: u64| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut nn = Namenode::new(30);
            let policy = Policy::Rs { n: 12, k: 6 };
            let file = nn
                .store_with("f", 6.0 * 512.0 * 50.0, 512.0, policy, placement, &mut rng)
                .clone();
            simulate(
                &nn,
                &file,
                &DurabilityParams {
                    node_mtbf_hours: 1e12,
                    repair_mbps: 5.0,
                    horizon_hours: 24.0 * 365.0,
                    rack_failures: Some((6, 200.0)),
                },
                &mut rng,
            )
        };
        let mut aware = 0;
        let mut colocated = 0;
        for seed in 0..4 {
            aware += run_with(Placement::RackAware { racks: 6 }, seed).stripes_lost;
            // Adversarial: racks = 30 means rack i is exactly node i; use
            // rack-aware over 1 "rack" to colocate whole stripes per rack
            // grouping... instead approximate colocated placement by 2
            // racks: 6 of 12 blocks per rack, so any rack failure leaves
            // exactly k and a second event during repair is fatal.
            colocated += run_with(Placement::RackAware { racks: 2 }, seed).stripes_lost;
        }
        assert_eq!(aware, 0, "2 losses per rack event are always repairable");
        assert!(colocated > 0, "6 losses per rack event eventually overlap");
    }

    #[test]
    fn repair_windows_match_traffic() {
        assert_eq!(
            repair_traffic_blocks(Policy::Replication { copies: 3 }),
            1.0
        );
        assert_eq!(repair_traffic_blocks(Policy::Rs { n: 12, k: 6 }), 6.0);
        assert_eq!(
            repair_traffic_blocks(Policy::Carousel {
                n: 12,
                k: 6,
                d: 10,
                p: 12
            }),
            2.0
        );
    }

    #[test]
    fn low_failure_rate_loses_nothing() {
        let r = run(Policy::Rs { n: 12, k: 6 }, 1e9, 50.0, 7);
        assert_eq!(r.stripes_lost, 0);
        assert_eq!(r.failures + r.repairs, r.failures + r.repairs); // shape only
    }

    #[test]
    fn failures_do_occur_and_get_repaired() {
        let r = run(
            Policy::Carousel {
                n: 12,
                k: 6,
                d: 10,
                p: 12,
            },
            500.0,
            50.0,
            7,
        );
        assert!(r.failures > 100, "a year at MTBF 500h should fail often");
        assert!(r.repairs > 0);
        assert!(r.repair_hours < 1.0);
    }

    #[test]
    fn faster_repair_loses_fewer_stripes() {
        // A repair pipe slow enough (0.2 MB/s) that RS's 6-block windows
        // stretch to ~4.3 h while Carousel's 2-block windows are ~1.4 h.
        // With node MTBF 50 h the multi-hour RS windows overlap enough
        // failures to kill stripes; Carousel's shorter windows rarely do.
        // Aggregate over seeds to dodge Monte-Carlo noise.
        let mut rs_losses = 0;
        let mut ca_losses = 0;
        for seed in 0..8 {
            rs_losses += run(Policy::Rs { n: 12, k: 6 }, 50.0, 0.2, seed).stripes_lost;
            ca_losses += run(
                Policy::Carousel {
                    n: 12,
                    k: 6,
                    d: 10,
                    p: 12,
                },
                50.0,
                0.2,
                seed,
            )
            .stripes_lost;
        }
        assert!(rs_losses > 0, "slow repairs must overwhelm RS eventually");
        assert!(
            ca_losses < rs_losses,
            "carousel {ca_losses} vs rs {rs_losses}"
        );
    }
}
