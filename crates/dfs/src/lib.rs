//! A simulated HDFS-like distributed storage system.
//!
//! This crate substitutes for the Hadoop/HDFS + EC2 testbed of the paper's
//! §VIII-C/D. It provides:
//!
//! * [`ClusterSpec`] / [`Topology`] — per-node disk, NIC up/down links and
//!   CPU pools wired into a [`simcore::Engine`], plus a remote client;
//! * [`Policy`] — the three storage schemes compared in the paper:
//!   `r`-way replication, systematic RS, and Carousel codes;
//! * [`Namenode`] — file → stripe → block metadata with failure-domain-aware
//!   placement (one block per node within a stripe) and failure injection;
//! * [`reader`] — the client download paths of Fig. 11: the sequential
//!   `hadoop fs -get` replica reader, and the parallel striped reader with
//!   its degraded (one-failure) variant that fetches parity and decodes.
//!
//! Coding CPU costs are parameters (see `workloads::calibration`) measured
//! from the real kernels in this repository, so the simulated decode
//! penalty in the one-failure case tracks the actual implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod namenode;
mod placement;
mod policy;
mod topology;

pub mod durability;
pub mod reader;
pub mod repairer;
pub mod simstore;
pub mod writer;

pub use namenode::{MapSplit, Namenode, PlacedBlock, StoredFile, Stripe};
pub use placement::Placement;
pub use policy::{CodingRates, Policy, SplitSpec};
pub use simstore::{SimExtent, SimNodes, SimObjects, SimStore};
pub use topology::{ClusterSpec, Topology};
