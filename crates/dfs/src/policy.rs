//! Storage policies: replication, systematic RS, and Carousel codes.

/// A storage scheme for one file — the three schemes compared throughout
/// the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// `copies`-way replication (HDFS default is 3).
    Replication {
        /// Number of replicas of every block.
        copies: usize,
    },
    /// Systematic `(n, k)` Reed-Solomon striping.
    Rs {
        /// Blocks per stripe.
        n: usize,
        /// Data blocks per stripe.
        k: usize,
    },
    /// `(n, k, d, p)` Carousel coding.
    Carousel {
        /// Blocks per stripe.
        n: usize,
        /// Data blocks per stripe.
        k: usize,
        /// Repair degree.
        d: usize,
        /// Data-parallelism degree.
        p: usize,
    },
}

impl Policy {
    /// Placed blocks per stripe.
    pub fn stripe_width(&self) -> usize {
        match *self {
            Policy::Replication { copies } => copies,
            Policy::Rs { n, .. } | Policy::Carousel { n, .. } => n,
        }
    }

    /// Original data per stripe, in block-sizes.
    pub fn stripe_data_blocks(&self) -> usize {
        match *self {
            Policy::Replication { .. } => 1,
            Policy::Rs { k, .. } | Policy::Carousel { k, .. } => k,
        }
    }

    /// Stored bytes per original byte (3.0 for 3-way replication, `n/k` for
    /// the codes) — the storage-overhead axis of the paper's trade-off.
    pub fn storage_overhead(&self) -> f64 {
        match *self {
            Policy::Replication { copies } => copies as f64,
            Policy::Rs { n, k } | Policy::Carousel { n, k, .. } => n as f64 / k as f64,
        }
    }

    /// Number of block failures the scheme tolerates per stripe.
    pub fn failures_tolerated(&self) -> usize {
        match *self {
            Policy::Replication { copies } => copies - 1,
            Policy::Rs { n, k } | Policy::Carousel { n, k, .. } => n - k,
        }
    }

    /// The degree of data parallelism: how many placed blocks per stripe
    /// serve original data locally (paper §I/§II).
    pub fn data_parallelism(&self) -> usize {
        match *self {
            // Every replica can host a map task over some share of the block.
            Policy::Replication { copies } => copies,
            Policy::Rs { k, .. } => k,
            Policy::Carousel { p, .. } => p,
        }
    }

    /// MapReduce input splits for one stripe of `block_mb`-sized blocks:
    /// `(split size, candidate block roles)`.
    ///
    /// * RS: one split per data block (`k` splits of a full block — parity
    ///   blocks cannot host map tasks, the paper's core observation);
    /// * Carousel: one split per data-bearing block (`p` splits of
    ///   `k/p` of a block — the data region);
    /// * replication: the block is divided among its `copies` replicas so
    ///   parallelism scales with the replication factor (paper Fig. 10's
    ///   1×/2× replication bars).
    pub fn splits(&self, block_mb: f64) -> Vec<SplitSpec> {
        match *self {
            Policy::Replication { copies } => (0..copies)
                .map(|c| SplitSpec {
                    size_mb: block_mb / copies as f64,
                    candidates: vec![c],
                })
                .collect(),
            Policy::Rs { k, .. } => (0..k)
                .map(|i| SplitSpec {
                    size_mb: block_mb,
                    candidates: vec![i],
                })
                .collect(),
            Policy::Carousel { k, p, .. } => (0..p)
                .map(|i| SplitSpec {
                    size_mb: block_mb * k as f64 / p as f64,
                    candidates: vec![i],
                })
                .collect(),
        }
    }
}

impl core::fmt::Display for Policy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            Policy::Replication { copies } => write!(f, "{copies}x replication"),
            Policy::Rs { n, k } => write!(f, "RS({n},{k})"),
            Policy::Carousel { n, k, d, p } => write!(f, "Carousel({n},{k},{d},{p})"),
        }
    }
}

/// One MapReduce input split: its size and the stripe-block roles that hold
/// it locally.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitSpec {
    /// Input bytes of the split, MB.
    pub size_mb: f64,
    /// Block roles (indices into the stripe) that can serve it locally.
    pub candidates: Vec<usize>,
}

/// Coding CPU throughputs used by the simulator, in MB of original data per
/// second per core.
///
/// Defaults come from a release-mode run of the real kernels in this
/// repository (`cargo run --release -p carousel-bench --bin calibrate`);
/// re-measure on your machine and construct this struct from the output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodingRates {
    /// RS degraded decode throughput (stripe from k−1 data + 1 parity).
    pub rs_decode_mbps: f64,
    /// Carousel degraded parallel-read throughput (`p` blocks, one
    /// data-bearing block replaced by parity). Lower than the RS rate: the
    /// lost block's carousel copies mix contributions from all `p` blocks.
    pub carousel_decode_mbps: f64,
}

impl Default for CodingRates {
    fn default() -> Self {
        CodingRates {
            rs_decode_mbps: 400.0,
            carousel_decode_mbps: 330.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_and_tolerance() {
        let r3 = Policy::Replication { copies: 3 };
        let rs = Policy::Rs { n: 6, k: 4 };
        let ca = Policy::Carousel {
            n: 6,
            k: 4,
            d: 4,
            p: 6,
        };
        assert_eq!(r3.storage_overhead(), 3.0);
        assert_eq!(rs.storage_overhead(), 1.5);
        assert_eq!(ca.storage_overhead(), 1.5);
        assert_eq!(r3.failures_tolerated(), 2);
        assert_eq!(rs.failures_tolerated(), 2);
        assert_eq!(ca.failures_tolerated(), 2);
    }

    #[test]
    fn parallelism_ordering_matches_paper() {
        // The paper's motivating comparison: RS caps parallelism at k;
        // Carousel reaches n at the same storage overhead.
        let rs = Policy::Rs { n: 12, k: 6 };
        let ca = Policy::Carousel {
            n: 12,
            k: 6,
            d: 10,
            p: 12,
        };
        assert_eq!(rs.data_parallelism(), 6);
        assert_eq!(ca.data_parallelism(), 12);
        assert_eq!(rs.storage_overhead(), ca.storage_overhead());
    }

    #[test]
    fn display_labels() {
        assert_eq!(
            Policy::Replication { copies: 3 }.to_string(),
            "3x replication"
        );
        assert_eq!(Policy::Rs { n: 12, k: 6 }.to_string(), "RS(12,6)");
        assert_eq!(
            Policy::Carousel {
                n: 12,
                k: 6,
                d: 10,
                p: 12
            }
            .to_string(),
            "Carousel(12,6,10,12)"
        );
    }

    #[test]
    fn splits_shapes() {
        let rs = Policy::Rs { n: 12, k: 6 }.splits(512.0);
        assert_eq!(rs.len(), 6);
        assert_eq!(rs[0].size_mb, 512.0);

        let ca = Policy::Carousel {
            n: 12,
            k: 6,
            d: 10,
            p: 12,
        }
        .splits(512.0);
        assert_eq!(ca.len(), 12);
        assert!((ca[0].size_mb - 256.0).abs() < 1e-9);
        // Total input covered is identical.
        let total: f64 = ca.iter().map(|s| s.size_mb).sum();
        assert!((total - 6.0 * 512.0).abs() < 1e-9);

        let rep = Policy::Replication { copies: 2 }.splits(512.0);
        assert_eq!(rep.len(), 2);
        assert!((rep[0].size_mb - 256.0).abs() < 1e-9);
    }
}
