//! Namenode metadata: files, stripes, block placement and failures.

use rand::Rng;

use crate::placement::Placement;
use crate::policy::{Policy, SplitSpec};

/// One placed block of a stripe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacedBlock {
    /// Datanode hosting the block.
    pub node: usize,
    /// Whether the block is currently readable.
    pub alive: bool,
}

/// A stripe: `stripe_width` blocks placed on distinct nodes. For coded
/// policies, index `i` is code role `i` (data-bearing roles first); for
/// replication, index `i` is replica `i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stripe {
    /// The placed blocks, indexed by code role / replica number.
    pub blocks: Vec<PlacedBlock>,
}

impl Stripe {
    /// Roles whose blocks are readable.
    pub fn alive_roles(&self) -> Vec<usize> {
        self.blocks
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.alive.then_some(i))
            .collect()
    }
}

/// A stored file: size, policy and stripe placements.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredFile {
    /// File name.
    pub name: String,
    /// Logical size, MB.
    pub size_mb: f64,
    /// HDFS block size, MB (512 in the paper's experiments).
    pub block_mb: f64,
    /// Storage policy.
    pub policy: Policy,
    /// Stripe placements.
    pub stripes: Vec<Stripe>,
}

impl StoredFile {
    /// Physical bytes stored, MB.
    pub fn stored_mb(&self) -> f64 {
        self.size_mb * self.policy.storage_overhead()
    }

    /// MapReduce input splits with their candidate *nodes* (locality).
    ///
    /// Splits whose every holder is dead become *degraded*: the task still
    /// runs, but must fetch the reconstruction inputs instead of the split
    /// — `k` blocks for RS, the affected `k/p` share of `k` blocks for
    /// Carousel codes, or nothing extra for replication (another replica
    /// would have been used; with all replicas dead the data is simply
    /// unavailable, which we surface as `read_mb = size_mb` remote).
    pub fn map_splits(&self) -> Vec<MapSplit> {
        let per_stripe: Vec<SplitSpec> = self.policy.splits(self.block_mb);
        let degraded_fetch = match self.policy {
            Policy::Replication { .. } => None,
            Policy::Rs { k, .. } => Some(k as f64 * self.block_mb),
            Policy::Carousel { k, p, .. } => Some(k as f64 * self.block_mb * k as f64 / p as f64),
        };
        let mut out = Vec::new();
        for stripe in &self.stripes {
            for spec in &per_stripe {
                let nodes: Vec<usize> = spec
                    .candidates
                    .iter()
                    .filter(|&&role| stripe.blocks[role].alive)
                    .map(|&role| stripe.blocks[role].node)
                    .collect();
                let (read_mb, decode_mb) = if nodes.is_empty() {
                    match degraded_fetch {
                        Some(fetch) => (fetch, fetch),
                        None => (spec.size_mb, 0.0),
                    }
                } else {
                    (spec.size_mb, 0.0)
                };
                out.push(MapSplit {
                    size_mb: spec.size_mb,
                    local_nodes: nodes,
                    read_mb,
                    decode_mb,
                });
            }
        }
        out
    }
}

/// A map task's input: size and the nodes that hold it locally (empty if
/// every replica is dead — the task must read degraded/remote).
#[derive(Debug, Clone, PartialEq)]
pub struct MapSplit {
    /// Input size, MB.
    pub size_mb: f64,
    /// Nodes holding the split's data locally.
    pub local_nodes: Vec<usize>,
    /// Bytes that must actually be fetched to produce the input. Equals
    /// `size_mb` for a healthy split; larger for a degraded read, where the
    /// split is reconstructed from other blocks (`k` blocks for RS, the
    /// affected `k/p` share of `k` blocks for Carousel codes).
    pub read_mb: f64,
    /// Bytes that must pass through the erasure decoder (0 for healthy
    /// splits and for replication).
    pub decode_mb: f64,
}

/// Central metadata service: places blocks, tracks files and failures.
///
/// # Examples
///
/// ```
/// use dfs::{Namenode, Policy};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let mut nn = Namenode::new(30);
/// nn.store("f", 3072.0, 512.0, Policy::Rs { n: 12, k: 6 }, &mut rng);
/// let file = nn.file("f").unwrap();
/// assert_eq!(file.stripes.len(), 1);
/// assert_eq!(file.map_splits().len(), 6);
/// ```
#[derive(Debug)]
pub struct Namenode {
    nodes: usize,
    files: Vec<StoredFile>,
}

impl Namenode {
    /// Creates a namenode managing `nodes` datanodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "cluster needs at least one node");
        Namenode {
            nodes,
            files: Vec::new(),
        }
    }

    /// Stores a file: splits it into stripes and places each stripe's
    /// blocks on distinct, randomly chosen nodes (HDFS-style failure
    /// domains).
    ///
    /// # Panics
    ///
    /// Panics if the stripe width exceeds the cluster size or inputs are
    /// non-positive.
    pub fn store(
        &mut self,
        name: &str,
        size_mb: f64,
        block_mb: f64,
        policy: Policy,
        rng: &mut impl Rng,
    ) -> &StoredFile {
        self.store_with(name, size_mb, block_mb, policy, Placement::Random, rng)
    }

    /// Like [`Namenode::store`] with an explicit [`Placement`] policy
    /// (e.g. rack-aware spreading).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Namenode::store`].
    pub fn store_with(
        &mut self,
        name: &str,
        size_mb: f64,
        block_mb: f64,
        policy: Policy,
        placement: Placement,
        rng: &mut impl Rng,
    ) -> &StoredFile {
        assert!(size_mb > 0.0 && block_mb > 0.0, "sizes must be positive");
        let width = policy.stripe_width();
        assert!(
            width <= self.nodes,
            "stripe width {width} exceeds cluster size {}",
            self.nodes
        );
        let stripe_data_mb = policy.stripe_data_blocks() as f64 * block_mb;
        let stripes = (size_mb / stripe_data_mb).ceil().max(1.0) as usize;
        let mut placed = Vec::with_capacity(stripes);
        for _ in 0..stripes {
            placed.push(Stripe {
                blocks: placement
                    .place(self.nodes, width, rng)
                    .into_iter()
                    .map(|node| PlacedBlock { node, alive: true })
                    .collect(),
            });
        }
        self.files.push(StoredFile {
            name: name.to_string(),
            size_mb,
            block_mb,
            policy,
            stripes: placed,
        });
        self.files.last().expect("just pushed")
    }

    /// Looks up a file by name.
    pub fn file(&self, name: &str) -> Option<&StoredFile> {
        self.files.iter().find(|f| f.name == name)
    }

    /// Marks every block on `node` unreadable (node failure).
    pub fn fail_node(&mut self, node: usize) {
        for f in &mut self.files {
            for s in &mut f.stripes {
                for b in &mut s.blocks {
                    if b.node == node {
                        b.alive = false;
                    }
                }
            }
        }
    }

    /// Fails every node of one rack under a rack-aware layout of `racks`
    /// racks (node `nd` belongs to rack `nd % racks`).
    pub fn fail_rack(&mut self, rack: usize, racks: usize) {
        for nd in 0..self.nodes {
            if nd % racks == rack {
                self.fail_node(nd);
            }
        }
    }

    /// Marks one specific block dead (the paper's Fig. 11 "randomly
    /// removing one block that contains original data").
    ///
    /// # Panics
    ///
    /// Panics on unknown file or out-of-range indices.
    pub fn fail_block(&mut self, name: &str, stripe: usize, role: usize) {
        let f = self
            .files
            .iter_mut()
            .find(|f| f.name == name)
            .expect("unknown file");
        f.stripes[stripe].blocks[role].alive = false;
    }

    /// Number of datanodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1)
    }

    #[test]
    fn store_places_blocks_on_distinct_nodes() {
        let mut nn = Namenode::new(30);
        let f = nn.store(
            "f",
            3072.0,
            512.0,
            Policy::Carousel {
                n: 12,
                k: 6,
                d: 10,
                p: 12,
            },
            &mut rng(),
        );
        assert_eq!(f.stripes.len(), 1, "3 GB / (6 x 512 MB) = 1 stripe");
        let stripe = &f.stripes[0];
        assert_eq!(stripe.blocks.len(), 12);
        let mut nodes: Vec<usize> = stripe.blocks.iter().map(|b| b.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), 12, "blocks on distinct nodes");
    }

    #[test]
    fn replication_stripes_per_block() {
        let mut nn = Namenode::new(10);
        let f = nn.store(
            "r",
            3072.0,
            512.0,
            Policy::Replication { copies: 3 },
            &mut rng(),
        );
        assert_eq!(f.stripes.len(), 6, "one stripe per 512 MB block");
        assert_eq!(f.stripes[0].blocks.len(), 3);
        assert_eq!(f.stored_mb(), 3.0 * 3072.0);
    }

    #[test]
    fn map_splits_reflect_policy() {
        let mut nn = Namenode::new(30);
        nn.store("rs", 3072.0, 512.0, Policy::Rs { n: 12, k: 6 }, &mut rng());
        nn.store(
            "ca",
            3072.0,
            512.0,
            Policy::Carousel {
                n: 12,
                k: 6,
                d: 10,
                p: 12,
            },
            &mut rng(),
        );
        let rs = nn.file("rs").unwrap().map_splits();
        let ca = nn.file("ca").unwrap().map_splits();
        assert_eq!(rs.len(), 6);
        assert_eq!(ca.len(), 12);
        assert!((ca[0].size_mb - 256.0).abs() < 1e-9);
        assert_eq!(ca[0].local_nodes.len(), 1);
    }

    #[test]
    fn failures_update_liveness_and_splits() {
        let mut nn = Namenode::new(30);
        nn.store("f", 3072.0, 512.0, Policy::Rs { n: 12, k: 6 }, &mut rng());
        let victim = nn.file("f").unwrap().stripes[0].blocks[0].node;
        nn.fail_node(victim);
        let f = nn.file("f").unwrap();
        assert!(!f.stripes[0].blocks[0].alive);
        assert_eq!(f.stripes[0].alive_roles().len(), 11);
        let splits = f.map_splits();
        assert!(
            splits[0].local_nodes.is_empty(),
            "split lost its local node"
        );
    }

    #[test]
    fn fail_block_is_targeted() {
        let mut nn = Namenode::new(15);
        nn.store("f", 1024.0, 512.0, Policy::Rs { n: 6, k: 2 }, &mut rng());
        nn.fail_block("f", 0, 3);
        let f = nn.file("f").unwrap();
        assert!(!f.stripes[0].blocks[3].alive);
        assert!(f.stripes[0].blocks[2].alive);
    }

    #[test]
    fn rack_aware_placement_survives_rack_failure() {
        let mut nn = Namenode::new(30);
        nn.store_with(
            "f",
            3072.0,
            512.0,
            Policy::Rs { n: 12, k: 6 },
            Placement::RackAware { racks: 6 },
            &mut rng(),
        );
        // Kill a whole rack: at most 2 of the stripe's 12 blocks die.
        nn.fail_rack(0, 6);
        let f = nn.file("f").unwrap();
        let alive = f.stripes[0].alive_roles().len();
        assert!(alive >= 10, "rack failure killed too many blocks: {alive}");
        assert!(alive >= 6, "stripe remains decodable");
    }

    #[test]
    #[should_panic(expected = "exceeds cluster size")]
    fn store_rejects_wide_stripes() {
        let mut nn = Namenode::new(4);
        nn.store("f", 100.0, 10.0, Policy::Rs { n: 6, k: 3 }, &mut rng());
    }
}
