//! A simulated datanode block store served through the `access` layer.
//!
//! Where [`crate::reader`] and [`crate::repairer`] model *time* (flows over
//! disks, NICs and CPUs), this module models *bytes*: it actually encodes a
//! file into per-stripe blocks, injects failures, and serves the blocks
//! through the same [`BlockSource`] contract the in-memory filestore and the
//! TCP cluster use. That makes the simulated DFS a third transport the
//! consistency proptests can compare byte-for-byte against the other two.

use access::{AccessCode, BatchRequest, BlockSource, ExecError, Fetch, PlanCache, PlanExecutor};
use erasure::{CodeError, SparseEncoder};

/// Collapses an executor error over an infallible transport into the
/// underlying [`CodeError`].
fn flatten_exec(e: ExecError<std::convert::Infallible>) -> CodeError {
    match e {
        ExecError::Source(never) => match never {},
        ExecError::Code(e) => e,
        ExecError::ReplansExhausted { attempts } => CodeError::InvalidParameters {
            reason: format!("gave up after {attempts} replans"),
        },
    }
}

/// One stripe's blocks plus per-role liveness.
#[derive(Debug, Clone)]
struct SimStripe {
    blocks: Vec<Vec<u8>>,
    alive: Vec<bool>,
}

/// A file encoded onto simulated datanodes: real bytes, injectable
/// failures, all reads and repairs planned through the `access` layer.
pub struct SimStore {
    code: Box<dyn AccessCode>,
    block_bytes: usize,
    file_len: usize,
    stripes: Vec<SimStripe>,
}

impl std::fmt::Debug for SimStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimStore")
            .field("code", &self.code.name())
            .field("block_bytes", &self.block_bytes)
            .field("file_len", &self.file_len)
            .field("stripes", &self.stripes.len())
            .finish()
    }
}

impl SimStore {
    /// Encodes `data` into stripes of `block_bytes`-sized blocks under
    /// `code`, all blocks initially alive.
    ///
    /// # Errors
    ///
    /// Rejects empty input and a `block_bytes` that is zero or not a
    /// multiple of the code's sub-packetization.
    pub fn encode(
        code: Box<dyn AccessCode>,
        block_bytes: usize,
        data: &[u8],
    ) -> Result<Self, CodeError> {
        let sub = code.linear().sub();
        if block_bytes == 0 || !block_bytes.is_multiple_of(sub) {
            return Err(CodeError::InvalidParameters {
                reason: format!(
                    "block_bytes {block_bytes} must be a positive multiple of sub = {sub}"
                ),
            });
        }
        if data.is_empty() {
            return Err(CodeError::InvalidParameters {
                reason: "cannot store an empty file".into(),
            });
        }
        let encoder = SparseEncoder::new(code.linear());
        let w = block_bytes / sub;
        let n = code.n();
        let stripe_data_bytes = code.k() * block_bytes;
        let mut stripes = Vec::new();
        for chunk in data.chunks(stripe_data_bytes) {
            let stripe = encoder.encode_with_unit_bytes(chunk, w)?;
            stripes.push(SimStripe {
                blocks: stripe.blocks,
                alive: vec![true; n],
            });
        }
        Ok(SimStore {
            code,
            block_bytes,
            file_len: data.len(),
            stripes,
        })
    }

    /// The code this file is striped under.
    pub fn code(&self) -> &dyn AccessCode {
        self.code.as_ref()
    }

    /// Original file length in bytes.
    pub fn file_len(&self) -> usize {
        self.file_len
    }

    /// Size of every stored block in bytes.
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    /// Number of stripes.
    pub fn stripes(&self) -> usize {
        self.stripes.len()
    }

    /// The stored block at `(stripe, role)` (present even while dead — a
    /// dead node's disk still holds the bytes, it just won't serve them).
    pub fn block(&self, stripe: usize, role: usize) -> &[u8] {
        &self.stripes[stripe].blocks[role]
    }

    /// Whether the block at `(stripe, role)` is being served.
    pub fn is_alive(&self, stripe: usize, role: usize) -> bool {
        self.stripes[stripe].alive[role]
    }

    /// Marks one block dead.
    pub fn fail_block(&mut self, stripe: usize, role: usize) {
        self.stripes[stripe].alive[role] = false;
    }

    /// Marks `role` dead in every stripe — a whole-datanode failure under
    /// identity placement.
    pub fn fail_role(&mut self, role: usize) {
        for stripe in &mut self.stripes {
            stripe.alive[role] = false;
        }
    }

    /// A [`BlockSource`] view of one stripe's datanodes.
    pub fn stripe_source(&self, stripe: usize) -> SimNodes<'_> {
        SimNodes {
            stripe: &self.stripes[stripe],
            sub: self.code.linear().sub(),
            unit_bytes: self.block_bytes / self.code.linear().sub(),
        }
    }

    /// Downloads the whole file through `plans`, degrading around dead
    /// blocks stripe by stripe.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InsufficientData`] when some stripe has fewer
    /// than `k` live blocks.
    pub fn download(&self, plans: &PlanCache) -> Result<Vec<u8>, CodeError> {
        let executor = PlanExecutor::new(plans).with_max_replans(self.code.n());
        let mut out = Vec::with_capacity(self.file_len);
        for s in 0..self.stripes.len() {
            let mut source = self.stripe_source(s);
            let read = executor
                .read_stripe(self.code.as_ref(), &mut source)
                .map_err(flatten_exec)?;
            out.extend_from_slice(&read.data);
        }
        out.truncate(self.file_len);
        Ok(out)
    }

    /// Rebuilds the dead block at `(stripe, role)` from `d` live helpers
    /// and brings it back into service.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InsufficientData`] with fewer than `d` live
    /// helpers, and [`CodeError::InvalidParameters`] if the block is alive.
    pub fn repair_block(
        &mut self,
        stripe: usize,
        role: usize,
        plans: &PlanCache,
    ) -> Result<(), CodeError> {
        if self.stripes[stripe].alive[role] {
            return Err(CodeError::InvalidParameters {
                reason: format!("block ({stripe}, {role}) is not dead"),
            });
        }
        let outcome = {
            let executor = PlanExecutor::new(plans).with_max_replans(self.code.n());
            let mut source = self.stripe_source(stripe);
            executor
                .repair_block(self.code.as_ref(), role, &mut source)
                .map_err(flatten_exec)?
        };
        let st = &mut self.stripes[stripe];
        st.blocks[role] = outcome.block;
        st.alive[role] = true;
        Ok(())
    }
}

/// [`BlockSource`] over one [`SimStore`] stripe: dead roles answer
/// [`Fetch::Unavailable`], live ones serve their stored units.
#[derive(Debug)]
pub struct SimNodes<'a> {
    stripe: &'a SimStripe,
    sub: usize,
    unit_bytes: usize,
}

impl BlockSource for SimNodes<'_> {
    type Error = std::convert::Infallible;

    fn block_count(&self) -> usize {
        self.stripe.blocks.len()
    }

    fn unit_bytes(&self) -> usize {
        self.unit_bytes
    }

    fn available(&mut self) -> Vec<usize> {
        (0..self.stripe.alive.len())
            .filter(|&i| self.stripe.alive[i])
            .collect()
    }

    fn fetch_units(&mut self, node: usize, units: &[usize]) -> Result<Fetch, Self::Error> {
        Ok(self.serve_units(node, units))
    }

    /// Native batch entry mirroring `MemorySource`: the simulated
    /// datanodes are plain memory, so the whole batch is answered in one
    /// pass, with repair requests running their helper task directly on
    /// the stored block.
    fn fetch_batch(&mut self, requests: &[BatchRequest<'_>]) -> Result<Vec<Fetch>, Self::Error> {
        Ok(requests
            .iter()
            .map(|request| match request {
                BatchRequest::Units { node, units } => self.serve_units(*node, units),
                BatchRequest::Repair { node, task } => match self.live_block(*node) {
                    Some(block) => task.run(block).map_or(Fetch::Unavailable, Fetch::Data),
                    None => Fetch::Unavailable,
                },
            })
            .collect())
    }
}

impl SimNodes<'_> {
    /// The block at `node`, if that simulated datanode is alive.
    fn live_block(&self, node: usize) -> Option<&[u8]> {
        self.stripe
            .alive
            .get(node)
            .copied()
            .unwrap_or(false)
            .then(|| self.stripe.blocks[node].as_slice())
    }

    fn serve_units(&self, node: usize, units: &[usize]) -> Fetch {
        let Some(block) = self.live_block(node) else {
            return Fetch::Unavailable;
        };
        let w = self.unit_bytes;
        let mut out = Vec::with_capacity(units.len() * w);
        for &u in units {
            if u >= self.sub {
                return Fetch::Unavailable;
            }
            out.extend_from_slice(&block[u * w..(u + 1) * w]);
        }
        Fetch::Data(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carousel::Carousel;
    use rs_code::ReedSolomon;

    fn bytes(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 131 + 17) as u8).collect()
    }

    #[test]
    fn round_trip_with_failures() {
        let code = Carousel::new(6, 3, 3, 6).unwrap();
        let data = bytes(1000);
        let mut store = SimStore::encode(Box::new(code), 60, &data).unwrap();
        let plans = PlanCache::new(8);
        assert_eq!(store.download(&plans).unwrap(), data);
        store.fail_role(2);
        assert_eq!(store.download(&plans).unwrap(), data);
        store.fail_block(0, 5);
        assert_eq!(store.download(&plans).unwrap(), data);
    }

    #[test]
    fn too_many_failures_reported() {
        let code = ReedSolomon::new(4, 2).unwrap();
        let mut store = SimStore::encode(Box::new(code), 16, &bytes(100)).unwrap();
        for role in 0..3 {
            store.fail_role(role);
        }
        assert!(matches!(
            store.download(&PlanCache::new(4)),
            Err(CodeError::InsufficientData { needed: 2, got: 1 })
        ));
    }

    #[test]
    fn repair_restores_the_exact_block() {
        let code = Carousel::new(8, 4, 6, 8).unwrap();
        let data = bytes(4096);
        let mut store = SimStore::encode(Box::new(code), 120, &data).unwrap();
        let plans = PlanCache::new(8);
        let original = store.block(1, 3).to_vec();
        store.fail_block(1, 3);
        store.repair_block(1, 3, &plans).unwrap();
        assert!(store.is_alive(1, 3));
        assert_eq!(store.block(1, 3), &original[..]);
        // Repairing a live block is rejected.
        assert!(store.repair_block(1, 3, &plans).is_err());
    }

    #[test]
    fn identical_failure_patterns_share_cached_plans() {
        let code = Carousel::new(6, 3, 3, 6).unwrap();
        let mut store = SimStore::encode(Box::new(code), 60, &bytes(2000)).unwrap();
        assert!(store.stripes() > 2);
        store.fail_role(1);
        let plans = PlanCache::new(8);
        store.download(&plans).unwrap();
        // One miss for the shared degraded pattern, hits for every other stripe.
        assert_eq!(plans.misses(), 1);
        assert_eq!(plans.hits() as usize, store.stripes() - 1);
    }

    #[test]
    fn bad_geometry_rejected() {
        let code = Carousel::new(6, 3, 3, 6).unwrap();
        assert!(SimStore::encode(Box::new(code), 61, &bytes(100)).is_err());
        let code = Carousel::new(6, 3, 3, 6).unwrap();
        assert!(SimStore::encode(Box::new(code), 60, &[]).is_err());
    }
}
