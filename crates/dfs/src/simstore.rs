//! A simulated datanode block store served through the `access` layer.
//!
//! Where [`crate::reader`] and [`crate::repairer`] model *time* (flows over
//! disks, NICs and CPUs), this module models *bytes*: it actually encodes a
//! file into per-stripe blocks, injects failures, and serves the blocks
//! through the same [`BlockSource`] contract the in-memory filestore and the
//! TCP cluster use. That makes the simulated DFS a third transport the
//! consistency proptests can compare byte-for-byte against the other two.

use std::collections::HashMap;

use access::{
    AccessCode, BatchRequest, BlockSource, ExecError, Fetch, ObjectStore, PlanCache, PlanExecutor,
    PutOptions,
};
use erasure::{CodeError, ColumnUpdater, SparseEncoder};

/// Collapses an executor error over an infallible transport into the
/// underlying [`CodeError`].
fn flatten_exec(e: ExecError<std::convert::Infallible>) -> CodeError {
    match e {
        ExecError::Source(never) => match never {},
        ExecError::Code(e) => e,
        ExecError::ReplansExhausted { attempts } => CodeError::InvalidParameters {
            reason: format!("gave up after {attempts} replans"),
        },
    }
}

/// One stripe's blocks plus per-role liveness.
#[derive(Debug, Clone)]
struct SimStripe {
    blocks: Vec<Vec<u8>>,
    alive: Vec<bool>,
}

/// A file encoded onto simulated datanodes: real bytes, injectable
/// failures, all reads and repairs planned through the `access` layer.
pub struct SimStore {
    code: Box<dyn AccessCode>,
    block_bytes: usize,
    file_len: usize,
    stripes: Vec<SimStripe>,
}

impl std::fmt::Debug for SimStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimStore")
            .field("code", &self.code.name())
            .field("block_bytes", &self.block_bytes)
            .field("file_len", &self.file_len)
            .field("stripes", &self.stripes.len())
            .finish()
    }
}

impl SimStore {
    /// Encodes `data` into stripes of `block_bytes`-sized blocks under
    /// `code`, all blocks initially alive.
    ///
    /// # Errors
    ///
    /// Rejects empty input and a `block_bytes` that is zero or not a
    /// multiple of the code's sub-packetization.
    pub fn encode(
        code: Box<dyn AccessCode>,
        block_bytes: usize,
        data: &[u8],
    ) -> Result<Self, CodeError> {
        let sub = code.linear().sub();
        if block_bytes == 0 || !block_bytes.is_multiple_of(sub) {
            return Err(CodeError::InvalidParameters {
                reason: format!(
                    "block_bytes {block_bytes} must be a positive multiple of sub = {sub}"
                ),
            });
        }
        if data.is_empty() {
            return Err(CodeError::InvalidParameters {
                reason: "cannot store an empty file".into(),
            });
        }
        let encoder = SparseEncoder::new(code.linear());
        let w = block_bytes / sub;
        let n = code.n();
        let stripe_data_bytes = code.k() * block_bytes;
        let mut stripes = Vec::new();
        for chunk in data.chunks(stripe_data_bytes) {
            let stripe = encoder.encode_with_unit_bytes(chunk, w)?;
            stripes.push(SimStripe {
                blocks: stripe.blocks,
                alive: vec![true; n],
            });
        }
        Ok(SimStore {
            code,
            block_bytes,
            file_len: data.len(),
            stripes,
        })
    }

    /// The code this file is striped under.
    pub fn code(&self) -> &dyn AccessCode {
        self.code.as_ref()
    }

    /// Original file length in bytes.
    pub fn file_len(&self) -> usize {
        self.file_len
    }

    /// Size of every stored block in bytes.
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    /// Number of stripes.
    pub fn stripes(&self) -> usize {
        self.stripes.len()
    }

    /// The stored block at `(stripe, role)` (present even while dead — a
    /// dead node's disk still holds the bytes, it just won't serve them).
    pub fn block(&self, stripe: usize, role: usize) -> &[u8] {
        &self.stripes[stripe].blocks[role]
    }

    /// Whether the block at `(stripe, role)` is being served.
    pub fn is_alive(&self, stripe: usize, role: usize) -> bool {
        self.stripes[stripe].alive[role]
    }

    /// Marks one block dead.
    pub fn fail_block(&mut self, stripe: usize, role: usize) {
        self.stripes[stripe].alive[role] = false;
    }

    /// Marks `role` dead in every stripe — a whole-datanode failure under
    /// identity placement.
    pub fn fail_role(&mut self, role: usize) {
        for stripe in &mut self.stripes {
            stripe.alive[role] = false;
        }
    }

    /// A [`BlockSource`] view of one stripe's datanodes.
    pub fn stripe_source(&self, stripe: usize) -> SimNodes<'_> {
        SimNodes {
            stripe: &self.stripes[stripe],
            sub: self.code.linear().sub(),
            unit_bytes: self.block_bytes / self.code.linear().sub(),
        }
    }

    /// Downloads the whole file through `plans`, degrading around dead
    /// blocks stripe by stripe.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InsufficientData`] when some stripe has fewer
    /// than `k` live blocks.
    pub fn download(&self, plans: &PlanCache) -> Result<Vec<u8>, CodeError> {
        let executor = PlanExecutor::new(plans).with_max_replans(self.code.n());
        let mut out = Vec::with_capacity(self.file_len);
        for s in 0..self.stripes.len() {
            let mut source = self.stripe_source(s);
            let read = executor
                .read_stripe(self.code.as_ref(), &mut source)
                .map_err(flatten_exec)?;
            out.extend_from_slice(&read.data);
        }
        out.truncate(self.file_len);
        Ok(out)
    }

    /// Reads `len` bytes at `offset` by downloading the touched stripes
    /// through `plans` (degrading around dead blocks) and slicing.
    ///
    /// # Errors
    ///
    /// Rejects ranges past EOF; propagates decode failures.
    pub fn read_range(
        &self,
        offset: usize,
        len: usize,
        plans: &PlanCache,
    ) -> Result<Vec<u8>, CodeError> {
        if offset + len > self.file_len {
            return Err(CodeError::InvalidParameters {
                reason: format!(
                    "range {offset}..{} exceeds file length {}",
                    offset + len,
                    self.file_len
                ),
            });
        }
        if len == 0 {
            return Ok(Vec::new());
        }
        let sdb = self.code.k() * self.block_bytes;
        let executor = PlanExecutor::new(plans).with_max_replans(self.code.n());
        let mut out = Vec::with_capacity(len);
        let (first, last) = (offset / sdb, (offset + len - 1) / sdb);
        for s in first..=last {
            let mut source = self.stripe_source(s);
            let read = executor
                .read_stripe(self.code.as_ref(), &mut source)
                .map_err(flatten_exec)?;
            out.extend_from_slice(&read.data);
        }
        let skip = offset - first * sdb;
        Ok(out[skip..skip + len].to_vec())
    }

    /// Overwrites `bytes` at `offset` in place, updating parity by delta:
    /// every stored block of each touched stripe absorbs `coeff · Δ`
    /// instead of the stripe being re-encoded. The simulator models the
    /// *bytes* of the update — dead blocks' disks are patched too (their
    /// stored contents stay consistent with the live stripe), they just
    /// keep refusing to serve until repaired.
    ///
    /// # Errors
    ///
    /// Rejects ranges past EOF (use [`SimStore::append`] to grow).
    pub fn write_range(&mut self, offset: usize, bytes: &[u8]) -> Result<(), CodeError> {
        if offset + bytes.len() > self.file_len {
            return Err(CodeError::InvalidParameters {
                reason: format!(
                    "range {offset}..{} exceeds file length {}",
                    offset + bytes.len(),
                    self.file_len
                ),
            });
        }
        if bytes.is_empty() {
            return Ok(());
        }
        let updater = ColumnUpdater::new(self.code.linear());
        let sdb = self.code.k() * self.block_bytes;
        let mut pos = 0usize;
        while pos < bytes.len() {
            let abs = offset + pos;
            let stripe = abs / sdb;
            let within = abs % sdb;
            let take = (sdb - within).min(bytes.len() - pos);
            let old = self.stripe_span(stripe, within, take);
            updater.delta_update(
                &mut self.stripes[stripe].blocks,
                within,
                &old,
                &bytes[pos..pos + take],
            )?;
            pos += take;
        }
        Ok(())
    }

    /// Appends `bytes`, returning the new file length: the last stripe's
    /// zero padding is filled in place via delta updates, overflow becomes
    /// freshly encoded stripes (all blocks alive).
    ///
    /// # Errors
    ///
    /// Propagates coding failures.
    pub fn append(&mut self, bytes: &[u8]) -> Result<usize, CodeError> {
        if bytes.is_empty() {
            return Ok(self.file_len);
        }
        let sdb = self.code.k() * self.block_bytes;
        let capacity = self.stripes.len() * sdb;
        let fill = (capacity - self.file_len).min(bytes.len());
        if fill > 0 {
            // Bytes past file_len are implicit zero padding, so the delta
            // of the fill region is simply the appended bytes.
            let updater = ColumnUpdater::new(self.code.linear());
            let stripe = self.stripes.len() - 1;
            let within = self.file_len % sdb;
            let zeros = vec![0u8; fill];
            updater.delta_update(
                &mut self.stripes[stripe].blocks,
                within,
                &zeros,
                &bytes[..fill],
            )?;
        }
        let encoder = SparseEncoder::new(self.code.linear());
        let w = self.block_bytes / self.code.linear().sub();
        let n = self.code.n();
        for chunk in bytes[fill..].chunks(sdb) {
            let stripe = encoder.encode_with_unit_bytes(chunk, w)?;
            self.stripes.push(SimStripe {
                blocks: stripe.blocks,
                alive: vec![true; n],
            });
        }
        self.file_len += bytes.len();
        Ok(self.file_len)
    }

    /// Reads `take` data bytes at offset `within` of one stripe in message
    /// order, straight from the stored data regions — the "old" side of a
    /// delta update.
    fn stripe_span(&self, stripe: usize, within: usize, take: usize) -> Vec<u8> {
        let layout = self.code.data_layout();
        let w = self.block_bytes / self.code.linear().sub();
        let mut out = Vec::with_capacity(take);
        let mut pos = within;
        let end = within + take;
        while pos < end {
            let unit = pos / w;
            let in_unit = pos % w;
            let chunk = (w - in_unit).min(end - pos);
            let loc = layout.locate(unit).expect("every file unit is mapped");
            let start = loc.unit * w + in_unit;
            out.extend_from_slice(&self.stripes[stripe].blocks[loc.node][start..start + chunk]);
            pos += chunk;
        }
        out
    }

    /// Rebuilds the dead block at `(stripe, role)` from `d` live helpers
    /// and brings it back into service.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InsufficientData`] with fewer than `d` live
    /// helpers, and [`CodeError::InvalidParameters`] if the block is alive.
    pub fn repair_block(
        &mut self,
        stripe: usize,
        role: usize,
        plans: &PlanCache,
    ) -> Result<(), CodeError> {
        if self.stripes[stripe].alive[role] {
            return Err(CodeError::InvalidParameters {
                reason: format!("block ({stripe}, {role}) is not dead"),
            });
        }
        let outcome = {
            let executor = PlanExecutor::new(plans).with_max_replans(self.code.n());
            let mut source = self.stripe_source(stripe);
            executor
                .repair_block(self.code.as_ref(), role, &mut source)
                .map_err(flatten_exec)?
        };
        let st = &mut self.stripes[stripe];
        st.blocks[role] = outcome.block;
        st.alive[role] = true;
        Ok(())
    }
}

/// [`BlockSource`] over one [`SimStore`] stripe: dead roles answer
/// [`Fetch::Unavailable`], live ones serve their stored units.
#[derive(Debug)]
pub struct SimNodes<'a> {
    stripe: &'a SimStripe,
    sub: usize,
    unit_bytes: usize,
}

impl BlockSource for SimNodes<'_> {
    type Error = std::convert::Infallible;

    fn block_count(&self) -> usize {
        self.stripe.blocks.len()
    }

    fn unit_bytes(&self) -> usize {
        self.unit_bytes
    }

    fn available(&mut self) -> Vec<usize> {
        (0..self.stripe.alive.len())
            .filter(|&i| self.stripe.alive[i])
            .collect()
    }

    fn fetch_units(&mut self, node: usize, units: &[usize]) -> Result<Fetch, Self::Error> {
        Ok(self.serve_units(node, units))
    }

    /// Native batch entry mirroring `MemorySource`: the simulated
    /// datanodes are plain memory, so the whole batch is answered in one
    /// pass, with repair requests running their helper task directly on
    /// the stored block.
    fn fetch_batch(&mut self, requests: &[BatchRequest<'_>]) -> Result<Vec<Fetch>, Self::Error> {
        Ok(requests
            .iter()
            .map(|request| match request {
                BatchRequest::Units { node, units } => self.serve_units(*node, units),
                BatchRequest::Repair { node, task } => match self.live_block(*node) {
                    Some(block) => task.run(block).map_or(Fetch::Unavailable, Fetch::Data),
                    None => Fetch::Unavailable,
                },
            })
            .collect())
    }
}

impl SimNodes<'_> {
    /// The block at `node`, if that simulated datanode is alive.
    fn live_block(&self, node: usize) -> Option<&[u8]> {
        self.stripe
            .alive
            .get(node)
            .copied()
            .unwrap_or(false)
            .then(|| self.stripe.blocks[node].as_slice())
    }

    fn serve_units(&self, node: usize, units: &[usize]) -> Fetch {
        let Some(block) = self.live_block(node) else {
            return Fetch::Unavailable;
        };
        let w = self.unit_bytes;
        let mut out = Vec::with_capacity(units.len() * w);
        for &u in units {
            if u >= self.sub {
                return Fetch::Unavailable;
            }
            out.extend_from_slice(&block[u * w..(u + 1) * w]);
        }
        Fetch::Data(out)
    }
}

/// Reserved name prefix for pack files.
pub const SIM_PACK_PREFIX: &str = ".pack-";

/// A packed object's location inside a pack file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimExtent {
    /// The pack file holding the bytes.
    pub pack: String,
    /// Byte offset of the object within the pack.
    pub offset: usize,
    /// Object length in bytes.
    pub len: usize,
}

/// The simulated-DFS [`ObjectStore`]: named [`SimStore`] files plus
/// small-object packing via per-object extents, mirroring the filestore
/// and cluster implementations so the tri-stack tests can drive all
/// three through one trait.
///
/// Every object is encoded under a code produced by the store's factory
/// (per-put code specs are a transport concern and ignored here);
/// `block_bytes` may be overridden per put. Packed objects append their
/// bytes to a shared pack file and are served by range reads on it;
/// deleting one drops only its extent (packs are append-only).
pub struct SimObjects {
    make_code: Box<dyn Fn() -> Box<dyn AccessCode>>,
    block_bytes: usize,
    plans: PlanCache,
    files: HashMap<String, SimStore>,
    extents: HashMap<String, SimExtent>,
    open_pack: Option<String>,
    pack_seq: usize,
    pack_limit: usize,
}

impl std::fmt::Debug for SimObjects {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimObjects")
            .field("block_bytes", &self.block_bytes)
            .field("files", &self.files.len())
            .field("extents", &self.extents.len())
            .finish()
    }
}

impl SimObjects {
    /// Creates an empty store; `make_code` builds the code every object
    /// is striped under, `block_bytes` is the default block size.
    pub fn new(
        make_code: impl Fn() -> Box<dyn AccessCode> + 'static,
        block_bytes: usize,
    ) -> SimObjects {
        SimObjects {
            make_code: Box::new(make_code),
            block_bytes,
            plans: PlanCache::new(32),
            files: HashMap::new(),
            extents: HashMap::new(),
            open_pack: None,
            pack_seq: 0,
            pack_limit: 1 << 20,
        }
    }

    /// Sets the pack rollover size (bytes of object data per pack).
    #[must_use]
    pub fn with_pack_limit(mut self, bytes: usize) -> SimObjects {
        self.pack_limit = bytes.max(1);
        self
    }

    /// The extent of a packed object, if `name` is packed.
    pub fn extent(&self, name: &str) -> Option<&SimExtent> {
        self.extents.get(name)
    }

    /// Direct access to an object's backing [`SimStore`] (packed objects
    /// resolve to their pack) — the failure-injection hook.
    pub fn sim_mut(&mut self, name: &str) -> Option<&mut SimStore> {
        let backing = match self.extents.get(name) {
            Some(ext) => ext.pack.clone(),
            None => name.to_string(),
        };
        self.files.get_mut(&backing)
    }

    fn exists(&self, name: &str) -> bool {
        self.files.contains_key(name) || self.extents.contains_key(name)
    }

    fn unknown(name: &str) -> CodeError {
        CodeError::InvalidParameters {
            reason: format!("unknown object {name:?}"),
        }
    }

    fn pack_put(&mut self, data: &[u8]) -> Result<SimExtent, CodeError> {
        let rollover = match &self.open_pack {
            Some(pack) => self.files[pack].file_len() >= self.pack_limit,
            None => true,
        };
        if rollover {
            let pack = format!("{SIM_PACK_PREFIX}{:04}", self.pack_seq);
            self.pack_seq += 1;
            let store = SimStore::encode((self.make_code)(), self.block_bytes, data)?;
            self.files.insert(pack.clone(), store);
            self.open_pack = Some(pack.clone());
            return Ok(SimExtent {
                pack,
                offset: 0,
                len: data.len(),
            });
        }
        let pack = self.open_pack.clone().expect("checked above");
        let file = self.files.get_mut(&pack).expect("open pack exists");
        let offset = file.file_len();
        file.append(data)?;
        Ok(SimExtent {
            pack,
            offset,
            len: data.len(),
        })
    }

    fn extent_of(&self, name: &str) -> Result<SimExtent, CodeError> {
        self.extents
            .get(name)
            .cloned()
            .ok_or_else(|| Self::unknown(name))
    }
}

impl ObjectStore for SimObjects {
    type Error = CodeError;

    fn put_opts(&mut self, name: &str, data: &[u8], opts: &PutOptions) -> Result<(), CodeError> {
        if name.starts_with(SIM_PACK_PREFIX) {
            return Err(CodeError::InvalidParameters {
                reason: format!("object names starting with {SIM_PACK_PREFIX:?} are reserved"),
            });
        }
        if self.exists(name) {
            return Err(CodeError::InvalidParameters {
                reason: format!("object {name:?} already exists"),
            });
        }
        if opts.packed() {
            let extent = self.pack_put(data)?;
            self.extents.insert(name.to_string(), extent);
        } else {
            let block_bytes = opts.block_bytes_hint().unwrap_or(self.block_bytes);
            let store = SimStore::encode((self.make_code)(), block_bytes, data)?;
            self.files.insert(name.to_string(), store);
        }
        Ok(())
    }

    fn get(&mut self, name: &str) -> Result<Vec<u8>, CodeError> {
        if let Some(file) = self.files.get(name) {
            return file.download(&self.plans);
        }
        let ext = self.extent_of(name)?;
        self.files[&ext.pack].read_range(ext.offset, ext.len, &self.plans)
    }

    fn get_range(&mut self, name: &str, offset: u64, len: u64) -> Result<Vec<u8>, CodeError> {
        let (offset, len) = (offset as usize, len as usize);
        if let Some(file) = self.files.get(name) {
            return file.read_range(offset, len, &self.plans);
        }
        let ext = self.extent_of(name)?;
        if offset + len > ext.len {
            return Err(CodeError::InvalidParameters {
                reason: format!(
                    "range {offset}..{} exceeds object length {}",
                    offset + len,
                    ext.len
                ),
            });
        }
        self.files[&ext.pack].read_range(ext.offset + offset, len, &self.plans)
    }

    fn write_range(&mut self, name: &str, offset: u64, data: &[u8]) -> Result<(), CodeError> {
        let offset = offset as usize;
        if let Some(file) = self.files.get_mut(name) {
            return file.write_range(offset, data);
        }
        let ext = self.extent_of(name)?;
        if offset + data.len() > ext.len {
            return Err(CodeError::InvalidParameters {
                reason: format!(
                    "range {offset}..{} exceeds object length {}",
                    offset + data.len(),
                    ext.len
                ),
            });
        }
        self.files
            .get_mut(&ext.pack)
            .expect("extent points at a live pack")
            .write_range(ext.offset + offset, data)
    }

    fn append(&mut self, name: &str, data: &[u8]) -> Result<u64, CodeError> {
        if let Some(file) = self.files.get_mut(name) {
            return Ok(file.append(data)? as u64);
        }
        if self.extents.contains_key(name) {
            return Err(CodeError::InvalidParameters {
                reason: format!("packed object {name:?} cannot grow; delete and re-put"),
            });
        }
        Err(Self::unknown(name))
    }

    fn delete(&mut self, name: &str) -> Result<bool, CodeError> {
        if self.files.remove(name).is_some() {
            return Ok(true);
        }
        // A packed delete drops only the extent; the pack keeps the
        // (now unreachable) bytes until a future compaction.
        Ok(self.extents.remove(name).is_some())
    }

    fn object_len(&mut self, name: &str) -> Result<u64, CodeError> {
        if let Some(file) = self.files.get(name) {
            return Ok(file.file_len() as u64);
        }
        Ok(self.extent_of(name)?.len as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carousel::Carousel;
    use rs_code::ReedSolomon;

    fn bytes(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 131 + 17) as u8).collect()
    }

    #[test]
    fn round_trip_with_failures() {
        let code = Carousel::new(6, 3, 3, 6).unwrap();
        let data = bytes(1000);
        let mut store = SimStore::encode(Box::new(code), 60, &data).unwrap();
        let plans = PlanCache::new(8);
        assert_eq!(store.download(&plans).unwrap(), data);
        store.fail_role(2);
        assert_eq!(store.download(&plans).unwrap(), data);
        store.fail_block(0, 5);
        assert_eq!(store.download(&plans).unwrap(), data);
    }

    #[test]
    fn too_many_failures_reported() {
        let code = ReedSolomon::new(4, 2).unwrap();
        let mut store = SimStore::encode(Box::new(code), 16, &bytes(100)).unwrap();
        for role in 0..3 {
            store.fail_role(role);
        }
        assert!(matches!(
            store.download(&PlanCache::new(4)),
            Err(CodeError::InsufficientData { needed: 2, got: 1 })
        ));
    }

    #[test]
    fn repair_restores_the_exact_block() {
        let code = Carousel::new(8, 4, 6, 8).unwrap();
        let data = bytes(4096);
        let mut store = SimStore::encode(Box::new(code), 120, &data).unwrap();
        let plans = PlanCache::new(8);
        let original = store.block(1, 3).to_vec();
        store.fail_block(1, 3);
        store.repair_block(1, 3, &plans).unwrap();
        assert!(store.is_alive(1, 3));
        assert_eq!(store.block(1, 3), &original[..]);
        // Repairing a live block is rejected.
        assert!(store.repair_block(1, 3, &plans).is_err());
    }

    #[test]
    fn identical_failure_patterns_share_cached_plans() {
        let code = Carousel::new(6, 3, 3, 6).unwrap();
        let mut store = SimStore::encode(Box::new(code), 60, &bytes(2000)).unwrap();
        assert!(store.stripes() > 2);
        store.fail_role(1);
        let plans = PlanCache::new(8);
        store.download(&plans).unwrap();
        // One miss for the shared degraded pattern, hits for every other stripe.
        assert_eq!(plans.misses(), 1);
        assert_eq!(plans.hits() as usize, store.stripes() - 1);
    }

    #[test]
    fn write_range_and_append_keep_parity_consistent() {
        let data = bytes(1000);
        let mut store =
            SimStore::encode(Box::new(Carousel::new(6, 3, 3, 6).unwrap()), 60, &data).unwrap();
        let plans = PlanCache::new(8);
        let patch: Vec<u8> = (0..300).map(|i| (i * 7 + 3) as u8).collect();
        store.write_range(450, &patch).unwrap();
        let mut expect = data.clone();
        expect[450..750].copy_from_slice(&patch);
        assert_eq!(store.download(&plans).unwrap(), expect);
        let tail = bytes(500);
        assert_eq!(store.append(&tail).unwrap(), 1500);
        expect.extend_from_slice(&tail);
        assert_eq!(store.download(&plans).unwrap(), expect);
        assert_eq!(
            store.read_range(700, 120, &plans).unwrap(),
            &expect[700..820]
        );
        // Parity absorbed the deltas: degraded reads see the new bytes.
        store.fail_role(0);
        store.fail_role(4);
        assert_eq!(store.download(&plans).unwrap(), expect);
        // And repair reconstructs blocks consistent with the update.
        store.repair_block(2, 0, &plans).unwrap();
        assert_eq!(store.download(&plans).unwrap(), expect);
        // Past-EOF writes rejected.
        assert!(store.write_range(1400, &bytes(200)).is_err());
    }

    #[test]
    fn sim_objects_lifecycle_and_packing() {
        let mut s =
            SimObjects::new(|| Box::new(ReedSolomon::new(6, 4).unwrap()), 64).with_pack_limit(600);
        let data = bytes(700);
        s.put("obj", &data).unwrap();
        assert_eq!(s.get("obj").unwrap(), data);
        assert_eq!(s.object_len("obj").unwrap(), 700);
        assert!(s.put("obj", b"dup").is_err());
        s.write_range("obj", 100, b"PATCH").unwrap();
        let mut expect = data.clone();
        expect[100..105].copy_from_slice(b"PATCH");
        assert_eq!(s.get_range("obj", 98, 10).unwrap(), &expect[98..108]);
        s.append("obj", b"tail").unwrap();
        expect.extend_from_slice(b"tail");
        assert_eq!(s.get("obj").unwrap(), expect);
        assert!(s.delete("obj").unwrap());
        assert!(!s.delete("obj").unwrap());
        assert!(s.get("obj").is_err());
        // Packed small objects share pack files.
        let opts = PutOptions::new().pack(true);
        let objs: Vec<Vec<u8>> = (0..8).map(|i| bytes(50 + i * 11)).collect();
        for (i, data) in objs.iter().enumerate() {
            s.put_opts(&format!("small-{i}"), data, &opts).unwrap();
        }
        let packs: std::collections::HashSet<String> = (0..8)
            .map(|i| s.extent(&format!("small-{i}")).unwrap().pack.clone())
            .collect();
        assert!(packs.len() <= 2, "8 objects in {} packs", packs.len());
        // Served correctly even with failures injected into the pack.
        s.sim_mut("small-0").unwrap().fail_role(1);
        for (i, data) in objs.iter().enumerate() {
            assert_eq!(&s.get(&format!("small-{i}")).unwrap(), data);
        }
        s.write_range("small-2", 3, b"xy").unwrap();
        let mut expect = objs[2].clone();
        expect[3..5].copy_from_slice(b"xy");
        assert_eq!(s.get("small-2").unwrap(), expect);
        assert_eq!(s.get("small-3").unwrap(), objs[3]);
        assert!(s.append("small-2", b"z").is_err());
        assert!(s.delete("small-2").unwrap());
        assert_eq!(s.get("small-1").unwrap(), objs[1]);
        assert!(s.put(".pack-9999", b"nope").is_err());
    }

    #[test]
    fn bad_geometry_rejected() {
        let code = Carousel::new(6, 3, 3, 6).unwrap();
        assert!(SimStore::encode(Box::new(code), 61, &bytes(100)).is_err());
        let code = Carousel::new(6, 3, 3, 6).unwrap();
        assert!(SimStore::encode(Box::new(code), 60, &[]).is_err());
    }
}
