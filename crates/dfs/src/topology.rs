//! Cluster topology: nodes with disks, NICs and CPU pools, plus a client.

use simcore::{Engine, ResourceId};

/// Hardware description of a simulated cluster.
///
/// The defaults model the paper's MapReduce testbed: 30 Amazon r3.large
/// slaves (2 cores, local SSD) — see [`ClusterSpec::r3_large_cluster`]. The
/// Fig. 11 experiment additionally caps datanode read throughput at
/// 300 Mbps, modeled by [`ClusterSpec::with_disk_read_mbps`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Number of worker (data) nodes.
    pub nodes: usize,
    /// CPU cores per node (also the MapReduce slot count per node).
    pub cores_per_node: f64,
    /// Sequential read bandwidth of one node's storage, MB/s.
    pub disk_read_mbps: f64,
    /// Sequential write bandwidth, MB/s.
    pub disk_write_mbps: f64,
    /// NIC bandwidth per direction, MB/s.
    pub nic_mbps: f64,
    /// Downlink bandwidth of the external client, MB/s.
    pub client_nic_mbps: f64,
    /// Single-core throughput of erasure decoding on the worker nodes,
    /// MB/s (see `carousel-workloads`' calibration; charged to map tasks
    /// that perform degraded reads).
    pub decode_mbps: f64,
    /// Number of *straggler* nodes (the first `slow_nodes` indices) whose
    /// disk and CPU run at `1/slow_factor` of nominal speed — real
    /// clusters are never uniform, and smaller map tasks hedge against
    /// stragglers.
    pub slow_nodes: usize,
    /// Slow-down factor of straggler nodes (≥ 1.0).
    pub slow_factor: f64,
    /// Aggregate bandwidth of the core switch every cross-node transfer
    /// traverses, MB/s; `None` models a non-blocking fabric (the default).
    pub core_switch_mbps: Option<f64>,
}

impl ClusterSpec {
    /// The paper's Hadoop cluster: 30 r3.large slaves (2 vCPU, 15 GB,
    /// 32 GB local SSD, "moderate" network ≈ 0.7 Gbps).
    pub fn r3_large_cluster() -> Self {
        ClusterSpec {
            nodes: 30,
            cores_per_node: 2.0,
            disk_read_mbps: 180.0,
            disk_write_mbps: 120.0,
            nic_mbps: 90.0,
            client_nic_mbps: 312.0,
            decode_mbps: 350.0,
            slow_nodes: 0,
            slow_factor: 1.0,
            core_switch_mbps: None,
        }
    }

    /// Returns a copy with an oversubscribed core switch of the given
    /// aggregate bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `mbps` is not positive.
    pub fn with_core_switch(mut self, mbps: f64) -> Self {
        assert!(mbps > 0.0, "switch bandwidth must be positive");
        self.core_switch_mbps = Some(mbps);
        self
    }

    /// Returns a copy with `count` straggler nodes running `factor`× slower
    /// (disk and CPU).
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1.0`.
    pub fn with_stragglers(mut self, count: usize, factor: f64) -> Self {
        assert!(factor >= 1.0, "slow factor must be at least 1.0");
        self.slow_nodes = count;
        self.slow_factor = factor;
        self
    }

    /// Returns a copy with a different node count.
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Returns a copy with the given datanode read throughput (the paper's
    /// Fig. 11 caps it at 300 Mbps = 37.5 MB/s to emulate enterprise HDDs).
    pub fn with_disk_read_mbps(mut self, mbps: f64) -> Self {
        self.disk_read_mbps = mbps;
        self
    }
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec::r3_large_cluster()
    }
}

/// Resource handles for a built cluster.
#[derive(Debug, Clone)]
pub struct Topology {
    disk: Vec<ResourceId>,
    write_disk: Vec<ResourceId>,
    up: Vec<ResourceId>,
    down: Vec<ResourceId>,
    cpu: Vec<ResourceId>,
    client_down: ResourceId,
    client_cpu: ResourceId,
    core_switch: Option<ResourceId>,
    core_rate: Vec<f64>,
    nodes: usize,
}

impl Topology {
    /// Instantiates the spec's resources in an engine.
    ///
    /// # Panics
    ///
    /// Panics if the spec has zero nodes or non-positive rates.
    pub fn build<E>(spec: &ClusterSpec, engine: &mut Engine<E>) -> Self {
        assert!(spec.nodes > 0, "cluster needs at least one node");
        let mut disk = Vec::with_capacity(spec.nodes);
        let mut write_disk = Vec::with_capacity(spec.nodes);
        let mut up = Vec::with_capacity(spec.nodes);
        let mut down = Vec::with_capacity(spec.nodes);
        let mut cpu = Vec::with_capacity(spec.nodes);
        let mut core_rate = Vec::with_capacity(spec.nodes);
        for i in 0..spec.nodes {
            let slow = if i < spec.slow_nodes {
                spec.slow_factor
            } else {
                1.0
            };
            disk.push(engine.add_resource(&format!("disk[{i}]"), spec.disk_read_mbps / slow));
            write_disk
                .push(engine.add_resource(&format!("wdisk[{i}]"), spec.disk_write_mbps / slow));
            up.push(engine.add_resource(&format!("up[{i}]"), spec.nic_mbps));
            down.push(engine.add_resource(&format!("down[{i}]"), spec.nic_mbps));
            cpu.push(engine.add_resource(&format!("cpu[{i}]"), spec.cores_per_node / slow));
            core_rate.push(1.0 / slow);
        }
        let client_down = engine.add_resource("client.down", spec.client_nic_mbps);
        let client_cpu = engine.add_resource("client.cpu", 16.0);
        let core_switch = spec
            .core_switch_mbps
            .map(|mbps| engine.add_resource("core-switch", mbps));
        Topology {
            disk,
            write_disk,
            up,
            down,
            cpu,
            client_down,
            client_cpu,
            core_switch,
            core_rate,
            nodes: spec.nodes,
        }
    }

    fn with_switch(&self, mut path: Vec<ResourceId>) -> Vec<ResourceId> {
        if let Some(sw) = self.core_switch {
            path.push(sw);
        }
        path
    }

    /// Number of worker nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Path for reading from a node's own disk.
    pub fn local_read(&self, node: usize) -> Vec<ResourceId> {
        vec![self.disk[node]]
    }

    /// Path for writing to a node's own disk.
    pub fn local_write(&self, node: usize) -> Vec<ResourceId> {
        vec![self.write_disk[node]]
    }

    /// Path for a remote read: source disk → source uplink → dest downlink.
    pub fn remote_read(&self, src: usize, dst: usize) -> Vec<ResourceId> {
        if src == dst {
            return self.local_read(src);
        }
        self.with_switch(vec![self.disk[src], self.up[src], self.down[dst]])
    }

    /// Path for an internal node-to-node transfer (no disk), e.g. shuffle.
    pub fn transfer(&self, src: usize, dst: usize) -> Option<Vec<ResourceId>> {
        (src != dst).then(|| self.with_switch(vec![self.up[src], self.down[dst]]))
    }

    /// Path for the external client downloading from a datanode.
    pub fn client_read(&self, src: usize) -> Vec<ResourceId> {
        self.with_switch(vec![self.disk[src], self.up[src], self.client_down])
    }

    /// The CPU pool of a node (capacity = cores × core rate; cap tasks at
    /// [`Topology::core_rate`]).
    pub fn cpu(&self, node: usize) -> ResourceId {
        self.cpu[node]
    }

    /// The speed of one core on `node` (1.0 nominal, less on stragglers) —
    /// use as the `max_rate` of single-threaded task flows.
    pub fn core_rate(&self, node: usize) -> f64 {
        self.core_rate[node]
    }

    /// The client's CPU pool (for decode work during degraded reads).
    pub fn client_cpu(&self) -> ResourceId {
        self.client_cpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_matches_paper_cluster() {
        let spec = ClusterSpec::r3_large_cluster();
        assert_eq!(spec.nodes, 30);
        assert_eq!(spec.cores_per_node, 2.0);
    }

    #[test]
    fn build_creates_resources() {
        let mut engine: Engine<u32> = Engine::new();
        let topo = Topology::build(&ClusterSpec::default().with_nodes(3), &mut engine);
        assert_eq!(topo.nodes(), 3);
        assert_eq!(topo.local_read(0).len(), 1);
        assert_eq!(topo.remote_read(0, 1).len(), 3);
        assert_eq!(topo.remote_read(2, 2).len(), 1, "same-node read is local");
        assert!(topo.transfer(1, 1).is_none());
        assert_eq!(topo.transfer(0, 2).unwrap().len(), 2);
        assert_eq!(topo.client_read(1).len(), 3);
    }

    #[test]
    fn disk_cap_override() {
        let spec = ClusterSpec::default().with_disk_read_mbps(37.5);
        assert_eq!(spec.disk_read_mbps, 37.5);
    }

    #[test]
    fn core_switch_bottlenecks_cross_traffic() {
        // 4 parallel transfers over a 40 MB/s switch: 10 MB/s each even
        // though NICs allow 90.
        let mut engine: Engine<u32> = Engine::new();
        let spec = ClusterSpec::default().with_nodes(8).with_core_switch(40.0);
        let topo = Topology::build(&spec, &mut engine);
        for i in 0..4 {
            let path = topo.transfer(i, i + 4).unwrap();
            assert_eq!(path.len(), 3, "up, down, switch");
            engine.start_flow(10.0, &path, None, i as u32);
        }
        let (t, _) = engine.next_event().unwrap();
        assert!((t - 1.0).abs() < 1e-9, "10 MB at 10 MB/s each: {t}");
    }

    #[test]
    fn stragglers_get_derated_resources() {
        let mut engine: Engine<u32> = Engine::new();
        let spec = ClusterSpec::default().with_nodes(4).with_stragglers(2, 2.0);
        let topo = Topology::build(&spec, &mut engine);
        // A local read on a straggler takes twice as long.
        engine.start_flow(180.0, &topo.local_read(0), None, 1); // slow
        engine.start_flow(180.0, &topo.local_read(3), None, 2); // nominal
        let (t_first, ev) = engine.next_event().unwrap();
        assert_eq!(ev, 2, "nominal node finishes first");
        assert!((t_first - 1.0).abs() < 1e-9);
        let (t_second, _) = engine.next_event().unwrap();
        assert!((t_second - 2.0).abs() < 1e-9);
    }

    #[test]
    fn flows_respect_topology() {
        // Two client reads from the same node share that node's disk.
        let mut engine: Engine<u32> = Engine::new();
        let topo = Topology::build(
            &ClusterSpec {
                nodes: 2,
                cores_per_node: 2.0,
                disk_read_mbps: 40.0,
                disk_write_mbps: 40.0,
                nic_mbps: 1000.0,
                client_nic_mbps: 1000.0,
                decode_mbps: 350.0,
                slow_nodes: 0,
                slow_factor: 1.0,
                core_switch_mbps: None,
            },
            &mut engine,
        );
        engine.start_flow(40.0, &topo.client_read(0), None, 1);
        engine.start_flow(40.0, &topo.client_read(0), None, 2);
        let (t1, _) = engine.next_event().unwrap();
        assert!((t1 - 2.0).abs() < 1e-9, "two flows at 20 MB/s each");
    }
}
