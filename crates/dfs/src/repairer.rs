//! Cluster-level block reconstruction — what HDFS does after a node dies.
//!
//! The paper's Figs. 7–8 microbenchmark repair traffic and CPU; this module
//! plays the same repair *inside the simulated cluster*: every stripe that
//! lost a block picks a newcomer node, `d` helpers read their blocks from
//! disk, compress them (for MSR-family codes) and ship the payloads across
//! the NIC fabric; the newcomer combines and writes the rebuilt block. The
//! result quantifies the cluster-wide cost of the RS-vs-Carousel repair
//! trade-off: identical MDS storage, but `k` versus `d/(d−k+1)` blocks of
//! repair traffic per loss.

use std::sync::LazyLock;

use access::AccessCode;
use carousel::Carousel;
use erasure::CodeError;
use rs_code::ReedSolomon;
use simcore::Engine;

static REPAIRED_BLOCKS: LazyLock<&'static telemetry::Counter> =
    LazyLock::new(|| telemetry::counter("dfs.repair.blocks"));
static REPAIR_MB: LazyLock<&'static telemetry::Histogram> =
    LazyLock::new(|| telemetry::histogram("dfs.repair.traffic_mb"));
static REPAIR_MS: LazyLock<&'static telemetry::Histogram> =
    LazyLock::new(|| telemetry::histogram("dfs.repair.ms"));

use crate::namenode::StoredFile;
use crate::policy::{CodingRates, Policy};
use crate::topology::{ClusterSpec, Topology};

/// Outcome of repairing every dead block of a file.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairReport {
    /// Wall-clock time until the last rebuilt block is durable, seconds.
    pub seconds: f64,
    /// Total helper→newcomer network traffic, MB.
    pub network_mb: f64,
    /// Number of blocks reconstructed.
    pub blocks_repaired: usize,
}

/// Simulator events: each marks the completion of one repair stage.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    Helper(usize),
    Decode(usize),
    Write,
}

/// Repairs every dead block of `file` and reports time and traffic.
///
/// Helpers transfer `β/sub` of a block each (taken from the real repair
/// plans of the respective code); the newcomer's combine is charged at the
/// measured decode rate before the rebuilt block is written to its disk.
///
/// # Errors
///
/// Returns [`CodeError::InvalidParameters`] for replicated files (their
/// "repair" is a plain replica copy — model it as a read) and
/// [`CodeError::InsufficientData`] if a stripe lacks `d` live helpers.
pub fn repair_file(
    spec: &ClusterSpec,
    file: &StoredFile,
    rates: CodingRates,
) -> Result<RepairReport, CodeError> {
    // Per-lost-block repair shape: helper payload fraction and d, taken
    // from the real repair plan the access layer would execute.
    let (code, d, decode_rate): (Box<dyn AccessCode>, usize, f64) = match file.policy {
        Policy::Replication { .. } => {
            return Err(CodeError::InvalidParameters {
                reason: "replicated blocks are re-copied, not code-repaired".into(),
            })
        }
        Policy::Rs { n, k } => (Box::new(ReedSolomon::new(n, k)?), k, rates.rs_decode_mbps),
        Policy::Carousel { n, k, d, p } => (
            Box::new(Carousel::new(n, k, d, p)?),
            d,
            rates.carousel_decode_mbps,
        ),
    };
    let helpers: Vec<usize> = (1..=d).collect();
    let plan = access::RepairPlan::plan(code.as_ref(), 0, &helpers)?;
    let payload_fraction = plan.traffic_blocks() / d as f64;

    let mut engine: Engine<Ev> = Engine::new();
    let topo = Topology::build(spec, &mut engine);
    let payload_mb = file.block_mb * payload_fraction;

    struct Pending {
        helpers_left: usize,
        newcomer: usize,
    }
    let mut repairs: Vec<Pending> = Vec::new();

    for stripe in &file.stripes {
        let dead: Vec<usize> = (0..stripe.blocks.len())
            .filter(|&r| !stripe.blocks[r].alive)
            .collect();
        for &lost in &dead {
            let alive = stripe.alive_roles();
            if alive.len() < d {
                return Err(CodeError::InsufficientData {
                    needed: d,
                    got: alive.len(),
                });
            }
            // Newcomer: first node hosting no block of this stripe.
            let hosted: Vec<usize> = stripe.blocks.iter().map(|b| b.node).collect();
            let newcomer = (0..topo.nodes())
                .find(|nd| !hosted.contains(nd))
                .unwrap_or(stripe.blocks[lost].node);
            let idx = repairs.len();
            repairs.push(Pending {
                helpers_left: d,
                newcomer,
            });
            for &h in alive.iter().take(d) {
                let src = stripe.blocks[h].node;
                engine.start_flow(
                    payload_mb,
                    &topo.remote_read(src, newcomer),
                    None,
                    Ev::Helper(idx),
                );
            }
        }
    }
    let blocks_repaired = repairs.len();
    let network_mb = blocks_repaired as f64 * d as f64 * payload_mb;

    let mut last_t = 0.0;
    while let Some((t, ev)) = engine.next_event() {
        last_t = t;
        match ev {
            Ev::Helper(idx) => {
                repairs[idx].helpers_left -= 1;
                if repairs[idx].helpers_left == 0 {
                    // Combine at the newcomer (one core), then write.
                    let cpu = file.block_mb / decode_rate;
                    engine.start_flow(
                        cpu,
                        &[topo.cpu(repairs[idx].newcomer)],
                        Some(1.0),
                        Ev::Decode(idx),
                    );
                }
            }
            Ev::Decode(idx) => {
                engine.start_flow(
                    file.block_mb,
                    &topo.local_write(repairs[idx].newcomer),
                    None,
                    Ev::Write,
                );
            }
            Ev::Write => {}
        }
    }
    if telemetry::ENABLED && blocks_repaired > 0 {
        REPAIRED_BLOCKS.add(blocks_repaired as u64);
        REPAIR_MB.record_f64(network_mb);
        REPAIR_MS.record_f64(last_t * 1e3);
    }
    Ok(RepairReport {
        seconds: last_t,
        network_mb,
        blocks_repaired,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::namenode::Namenode;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(21)
    }

    fn setup(policy: Policy) -> (ClusterSpec, Namenode) {
        let spec = ClusterSpec::r3_large_cluster();
        let mut nn = Namenode::new(spec.nodes);
        nn.store("f", 3072.0, 512.0, policy, &mut rng());
        (spec, nn)
    }

    #[test]
    fn carousel_repair_moves_less_data_and_finishes_faster() {
        let (spec, mut nn_rs) = setup(Policy::Rs { n: 12, k: 6 });
        nn_rs.fail_block("f", 0, 2);
        let (_, mut nn_ca) = setup(Policy::Carousel {
            n: 12,
            k: 6,
            d: 10,
            p: 12,
        });
        nn_ca.fail_block("f", 0, 2);
        let r_rs = repair_file(&spec, nn_rs.file("f").unwrap(), CodingRates::default()).unwrap();
        let r_ca = repair_file(&spec, nn_ca.file("f").unwrap(), CodingRates::default()).unwrap();
        assert_eq!(r_rs.blocks_repaired, 1);
        assert_eq!(r_ca.blocks_repaired, 1);
        // RS moves k = 6 blocks; Carousel (d = 10) moves 10/5 = 2 blocks.
        assert!((r_rs.network_mb - 6.0 * 512.0).abs() < 1e-6);
        assert!((r_ca.network_mb - 2.0 * 512.0).abs() < 1e-6);
        assert!(r_ca.seconds < r_rs.seconds);
    }

    #[test]
    fn node_failure_triggers_repairs_across_stripes() {
        let spec = ClusterSpec::r3_large_cluster().with_nodes(13);
        let mut nn = Namenode::new(13);
        // 2 stripes: 6 GB file.
        nn.store(
            "f",
            6144.0,
            512.0,
            Policy::Carousel {
                n: 12,
                k: 6,
                d: 10,
                p: 12,
            },
            &mut rng(),
        );
        // With 13 nodes and 12-wide stripes, some node hosts blocks of both
        // stripes with high probability; fail node 0 and repair whatever died.
        nn.fail_node(0);
        let file = nn.file("f").unwrap();
        let dead: usize = file
            .stripes
            .iter()
            .map(|s| s.blocks.iter().filter(|b| !b.alive).count())
            .sum();
        if dead == 0 {
            return; // node 0 hosted nothing for this seed; nothing to check
        }
        let report = repair_file(&spec, file, CodingRates::default()).unwrap();
        assert_eq!(report.blocks_repaired, dead);
        assert!(report.seconds > 0.0);
    }

    #[test]
    fn replicated_files_rejected() {
        let (spec, mut nn) = setup(Policy::Replication { copies: 3 });
        nn.fail_block("f", 0, 0);
        assert!(repair_file(&spec, nn.file("f").unwrap(), CodingRates::default()).is_err());
    }

    #[test]
    fn insufficient_helpers_detected() {
        let (spec, mut nn) = setup(Policy::Carousel {
            n: 12,
            k: 6,
            d: 10,
            p: 12,
        });
        for r in 0..4 {
            nn.fail_block("f", 0, r);
        }
        // 8 alive < d = 10.
        assert!(matches!(
            repair_file(&spec, nn.file("f").unwrap(), CodingRates::default()),
            Err(CodeError::InsufficientData { .. })
        ));
    }

    #[test]
    fn no_failures_is_a_noop() {
        let (spec, nn) = setup(Policy::Rs { n: 12, k: 6 });
        let report = repair_file(&spec, nn.file("f").unwrap(), CodingRates::default()).unwrap();
        assert_eq!(report.blocks_repaired, 0);
        assert_eq!(report.network_mb, 0.0);
        assert_eq!(report.seconds, 0.0);
    }
}
