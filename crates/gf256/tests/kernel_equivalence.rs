//! Every registered kernel must be byte-identical to the scalar log/exp
//! reference — across random lengths, unaligned slice offsets (the SWAR
//! kernel reads `u64` words and the SIMD kernels 16/32-byte vectors, so
//! word-boundary handling matters), and the aliasing in-place entry point.
//! The registry is detection-dependent, so whatever SIMD kernels this host
//! supports are swept automatically alongside the portable three.

use gf256::{by_name, kernels, Gf256, KernelHandle};
use proptest::prelude::*;

fn scalar() -> KernelHandle {
    by_name("scalar").expect("scalar reference is registered")
}

/// Strategy: a buffer of up to 4096 + 8 bytes plus an offset 0..8, so the
/// slices handed to the kernels start at every alignment class and the
/// effective lengths cover 0..=4096.
fn unaligned_data() -> impl Strategy<Value = (Vec<u8>, usize)> {
    (proptest::collection::vec(any::<u8>(), 0..4105), 0usize..8).prop_map(|(data, off)| {
        let off = off.min(data.len());
        (data, off)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mul_acc_matches_scalar_reference(
        c in any::<u8>(),
        (data, off) in unaligned_data(),
        seed in any::<u8>(),
    ) {
        let src = &data[off..];
        let reference = {
            let mut dst = vec![seed; src.len()];
            scalar().mul_acc(Gf256::new(c), src, &mut dst[..]);
            dst
        };
        for k in kernels() {
            let mut dst = vec![seed; src.len()];
            k.mul_acc(Gf256::new(c), src, &mut dst[..]);
            prop_assert_eq!(&dst, &reference, "kernel {} c={}", k.name(), c);
        }
    }

    #[test]
    fn mul_matches_scalar_reference(
        c in any::<u8>(),
        (data, off) in unaligned_data(),
    ) {
        let src = &data[off..];
        let reference = {
            let mut dst = vec![0u8; src.len()];
            scalar().mul(Gf256::new(c), src, &mut dst[..]);
            dst
        };
        for k in kernels() {
            let mut dst = vec![0xEEu8; src.len()];
            k.mul(Gf256::new(c), src, &mut dst[..]);
            prop_assert_eq!(&dst, &reference, "kernel {} c={}", k.name(), c);
        }
    }

    #[test]
    fn in_place_aliasing_matches_out_of_place(
        c in any::<u8>(),
        (data, off) in unaligned_data(),
    ) {
        // The aliasing case: input and output are the same buffer.
        for k in kernels() {
            let src = &data[off..];
            let mut out_of_place = vec![0u8; src.len()];
            k.mul(Gf256::new(c), src, &mut out_of_place[..]);
            let mut aliased = src.to_vec();
            k.mul_in_place(Gf256::new(c), &mut aliased[..]);
            prop_assert_eq!(&aliased, &out_of_place, "kernel {} c={}", k.name(), c);
            // And it must agree with the scalar reference run in place.
            let mut reference = src.to_vec();
            scalar().mul_in_place(Gf256::new(c), &mut reference[..]);
            prop_assert_eq!(&aliased, &reference, "kernel {} c={}", k.name(), c);
        }
    }

    #[test]
    fn fused_rows_match_scalar_term_by_term(
        coeffs in proptest::collection::vec(any::<u8>(), 1..6),
        len in 0usize..=1024,
        seed in any::<u8>(),
    ) {
        let rows: Vec<Vec<u8>> = (0..coeffs.len())
            .map(|r| (0..len).map(|i| (i * 97 + r * 131 + 17) as u8).collect())
            .collect();
        let terms: Vec<(Gf256, &[u8])> = coeffs
            .iter()
            .zip(&rows)
            .map(|(&c, row)| (Gf256::new(c), row.as_slice()))
            .collect();
        let reference = {
            let mut dst = vec![seed; len];
            for &(c, src) in &terms {
                scalar().mul_acc(c, src, &mut dst[..]);
            }
            dst
        };
        for k in kernels() {
            let mut dst = vec![seed; len];
            k.mul_acc_rows(&terms, &mut dst[..]);
            prop_assert_eq!(&dst, &reference, "kernel {}", k.name());
        }
    }
}

/// Explicit vector-width boundary sweep: every length 0..=96 at every
/// offset 0..8, per kernel and per entry point. The SIMD kernels step in
/// 16/32-byte vectors (with 64/128-byte fused strips) and hand sub-vector
/// heads/tails to a scalar loop, so every split point around those widths
/// is exercised deterministically — not just whenever the proptest sampler
/// happens to land there.
#[test]
fn unaligned_head_tail_boundaries() {
    // 96 covers one-past every vector width in use (16, 32, 64) plus a
    // full strip boundary for the 64-byte fused loops; the 128-byte AVX2
    // strip's split point is still hit via len 96 tails inside
    // `mul_acc_rows` (dst shorter than one strip).
    let backing: Vec<u8> = (0..96 + 8).map(|i| (i * 37 + 5) as u8).collect();
    for k in kernels() {
        for c in [0x02u8, 0x1D, 0xA7] {
            for off in 0..8usize {
                for len in 0..=96usize {
                    let src = &backing[off..off + len];

                    let mut reference = vec![0x5Au8; len];
                    scalar().mul_acc(Gf256::new(c), src, &mut reference[..]);
                    let mut dst = vec![0x5Au8; len];
                    k.mul_acc(Gf256::new(c), src, &mut dst[..]);
                    assert_eq!(dst, reference, "{} mul_acc len={len} off={off}", k.name());

                    let mut ref_mul = vec![0u8; len];
                    scalar().mul(Gf256::new(c), src, &mut ref_mul[..]);
                    let mut out = vec![0xEEu8; len];
                    k.mul(Gf256::new(c), src, &mut out[..]);
                    assert_eq!(out, ref_mul, "{} mul len={len} off={off}", k.name());

                    let mut buf = src.to_vec();
                    k.mul_in_place(Gf256::new(c), &mut buf[..]);
                    assert_eq!(
                        buf,
                        ref_mul,
                        "{} mul_in_place len={len} off={off}",
                        k.name()
                    );

                    // The fused entry point with several general terms, so
                    // the register-fused strip loop and its tail both run.
                    let rows: Vec<&[u8]> = vec![src; 3];
                    let terms: Vec<(Gf256, &[u8])> = [c, 0x53, 0xCA]
                        .iter()
                        .zip(rows)
                        .map(|(&cc, row)| (Gf256::new(cc), row))
                        .collect();
                    let mut fused_ref = vec![0xB1u8; len];
                    for &(cc, row) in &terms {
                        scalar().mul_acc(cc, row, &mut fused_ref[..]);
                    }
                    let mut fused = vec![0xB1u8; len];
                    k.mul_acc_rows(&terms, &mut fused[..]);
                    assert_eq!(
                        fused,
                        fused_ref,
                        "{} mul_acc_rows len={len} off={off}",
                        k.name()
                    );
                }
            }
        }
    }
}

/// Exhaustive single-byte check: for every (c, x) pair, every kernel agrees
/// with the field's own scalar multiply. 65 536 cases per kernel — cheap,
/// and it pins down any table error a random sweep could miss.
#[test]
fn exhaustive_single_byte_products() {
    for k in kernels() {
        for c in 0..=255u8 {
            let src: Vec<u8> = (0..=255).collect();
            let mut dst = vec![0u8; 256];
            k.mul(Gf256::new(c), &src, &mut dst[..]);
            for x in 0..=255u8 {
                let want = (Gf256::new(c) * Gf256::new(x)).value();
                assert_eq!(dst[x as usize], want, "kernel {} c={c} x={x}", k.name());
            }
        }
    }
}
