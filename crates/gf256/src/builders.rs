//! Structured matrix builders used by the code constructions.
//!
//! Beyond the convenience constructors on [`Matrix`], erasure-code
//! constructions need a few specialized shapes: systematized MDS generators,
//! general Cauchy matrices, symmetric message matrices and evaluation-point
//! pickers with side conditions (the product-matrix MSR construction needs
//! points whose α-th powers are also distinct).

use crate::{Gf256, Matrix};

/// Picks `n` distinct nonzero evaluation points `x_i` such that the powers
/// `x_i^alpha` are *also* pairwise distinct.
///
/// The product-matrix MSR construction (Rashmi et al.) uses
/// `Ψ = [Φ  ΛΦ]` with `λ_i = x_i^α`; the λ must be distinct for repair to
/// work. A greedy scan over the 255 nonzero field elements suffices for all
/// parameter sizes in the paper.
///
/// # Errors
///
/// Returns `None` if fewer than `n` suitable points exist in GF(2⁸).
pub fn distinct_points_with_distinct_powers(n: usize, alpha: u32) -> Option<Vec<Gf256>> {
    let mut points = Vec::with_capacity(n);
    let mut used_powers = Vec::with_capacity(n);
    for v in 1..=255u8 {
        let x = Gf256::new(v);
        let xp = x.pow(alpha);
        if !used_powers.contains(&xp) {
            points.push(x);
            used_powers.push(xp);
            if points.len() == n {
                return Some(points);
            }
        }
    }
    None
}

/// A Vandermonde matrix on caller-chosen points: entry `(i, j) = x_i^j`.
///
/// # Panics
///
/// Panics if the points are not pairwise distinct.
pub fn vandermonde_on(points: &[Gf256], cols: usize) -> Matrix {
    for (i, a) in points.iter().enumerate() {
        for b in &points[i + 1..] {
            assert_ne!(a, b, "evaluation points must be distinct");
        }
    }
    Matrix::from_fn(points.len(), cols, |i, j| points[i].pow(j as u32))
}

/// A general Cauchy matrix `1 / (x_i + y_j)`.
///
/// # Panics
///
/// Panics if `x` and `y` share an element (division by zero) or contain
/// duplicates among themselves.
pub fn cauchy(x: &[Gf256], y: &[Gf256]) -> Matrix {
    for (i, a) in x.iter().enumerate() {
        assert!(!x[i + 1..].contains(a), "duplicate x point");
    }
    for (j, b) in y.iter().enumerate() {
        assert!(!y[j + 1..].contains(b), "duplicate y point");
    }
    Matrix::from_fn(x.len(), y.len(), |i, j| {
        (x[i] + y[j]).inv().expect("x and y must be disjoint")
    })
}

/// Systematizes an MDS generator: given an `n × k` matrix whose every `k`
/// rows are invertible, returns `G · (top k rows)⁻¹`, which has the identity
/// in its top `k` rows and retains the any-`k`-rows-invertible property
/// (right-multiplication by an invertible matrix scales every `k×k` minor
/// by the same nonzero determinant).
///
/// # Panics
///
/// Panics if the top `k × k` block is singular (i.e. the input was not MDS).
pub fn systematize(g: &Matrix) -> Matrix {
    let k = g.cols();
    let top: Vec<usize> = (0..k).collect();
    let inv = g
        .select_rows(&top)
        .inverse()
        .expect("top k rows of an MDS generator are invertible");
    g * &inv
}

/// Builds a symmetric `m × m` matrix from `m(m+1)/2` symbols laid out along
/// the upper triangle, row by row.
///
/// The product-matrix MSR message matrix is assembled from two of these.
///
/// # Panics
///
/// Panics if `symbols.len() != m(m+1)/2`.
pub fn symmetric_from_upper(m: usize, symbols: &[Gf256]) -> Matrix {
    assert_eq!(symbols.len(), m * (m + 1) / 2, "wrong symbol count");
    let mut out = Matrix::zeros(m, m);
    let mut it = symbols.iter();
    for r in 0..m {
        for c in r..m {
            let v = *it.next().expect("length checked above");
            out.set(r, c, v);
            out.set(c, r, v);
        }
    }
    out
}

/// The index (within the upper-triangle layout of [`symmetric_from_upper`])
/// of entry `(r, c)` with `r ≤ c` of an `m × m` symmetric matrix.
pub fn upper_index(m: usize, r: usize, c: usize) -> usize {
    debug_assert!(r <= c && c < m);
    // Row r starts after rows 0..r, which contribute m + (m-1) + ... + (m-r+1).
    r * m - r * (r + 1) / 2 + r + (c - r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_with_distinct_powers() {
        let pts = distinct_points_with_distinct_powers(20, 5).expect("enough points");
        assert_eq!(pts.len(), 20);
        for (i, a) in pts.iter().enumerate() {
            for b in &pts[i + 1..] {
                assert_ne!(a, b);
                assert_ne!(a.pow(5), b.pow(5));
            }
        }
    }

    #[test]
    fn points_exhaustion_returns_none() {
        // x -> x^255 = 1 for all nonzero x, so only one point can ever be
        // selected when alpha is a multiple of 255.
        assert!(distinct_points_with_distinct_powers(2, 255).is_none());
        assert_eq!(
            distinct_points_with_distinct_powers(1, 255).map(|v| v.len()),
            Some(1)
        );
    }

    #[test]
    fn systematize_keeps_mds() {
        let g = Matrix::vandermonde(6, 3);
        let s = systematize(&g);
        // Top is identity.
        assert!(s.select_rows(&[0, 1, 2]).is_identity());
        // Every 3-subset still invertible.
        for a in 0..6 {
            for b in (a + 1)..6 {
                for c in (b + 1)..6 {
                    assert!(s.select_rows(&[a, b, c]).is_invertible());
                }
            }
        }
    }

    #[test]
    fn symmetric_layout_round_trip() {
        let m = 4;
        let symbols: Vec<Gf256> = (1..=10).map(Gf256::new).collect();
        let s = symmetric_from_upper(m, &symbols);
        assert_eq!(s, s.transpose());
        for r in 0..m {
            for c in r..m {
                assert_eq!(s.get(r, c), symbols[upper_index(m, r, c)]);
            }
        }
    }

    #[test]
    fn cauchy_is_mds() {
        let x: Vec<Gf256> = (0..6).map(Gf256::new).collect();
        let y: Vec<Gf256> = (6..9).map(Gf256::new).collect();
        let m = cauchy(&x, &y);
        for a in 0..6 {
            for b in (a + 1)..6 {
                for c in (b + 1)..6 {
                    assert!(m.select_rows(&[a, b, c]).is_invertible());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn cauchy_rejects_overlap() {
        let x = [Gf256::new(1), Gf256::new(2)];
        let y = [Gf256::new(2), Gf256::new(3)];
        let _ = cauchy(&x, &y);
    }

    #[test]
    fn vandermonde_on_custom_points() {
        let pts = [Gf256::new(3), Gf256::new(7), Gf256::new(11)];
        let v = vandermonde_on(&pts, 2);
        assert_eq!(v.get(1, 0), Gf256::ONE);
        assert_eq!(v.get(1, 1), Gf256::new(7));
    }
}
