//! Runtime-dispatched bulk kernels: the engine behind every hot GF(2⁸) loop.
//!
//! A coded symbol row is `w` bytes long (hundreds of kilobytes to megabytes
//! in the paper's 512 MB-block experiments), and each output row is a linear
//! combination of input rows, so `dst[i] ^= c * src[i]` over long slices is
//! where encode, decode and repair spend their time. The paper's Hadoop
//! prototype delegates this to Intel ISA-L; this module is the pure-Rust
//! counterpart: several interchangeable [`Kernel`] implementations behind a
//! cheap [`Copy`] handle, selected once at process startup.
//!
//! Three portable kernels are always registered:
//!
//! * `scalar` — the textbook log/exp formulation, one table round-trip and
//!   one modular reduction per byte. Deliberately unclever: this is the
//!   correctness baseline every other kernel is property-tested against.
//! * `split` — the 4-bit split-table (nibble) kernel, the classic
//!   ISA-L/vector-shuffle decomposition: two indexed loads and an XOR per
//!   byte from tables small enough to stay resident in L1.
//! * `swar` — a 64-bit SWAR kernel ("slicing-by-8"): per call it derives the
//!   eight GF products `c·2ᵇ`, then processes eight bytes per `u64` word by
//!   masking out bit-plane `b` of the data and broadcasting `c·2ᵇ` into the
//!   selected lanes with one integer multiply. Because every partial product
//!   occupies a disjoint byte lane, integer addition coincides with XOR, so
//!   eight shift/mask/multiply steps produce eight full GF products with no
//!   per-byte table traffic at all.
//!
//! On top of those, the [`simd`] module contributes vector-shuffle kernels
//! that are registered **only when the CPU supports them**, probed once at
//! startup with `is_x86_feature_detected!` / `is_aarch64_feature_detected!`:
//! `ssse3` (16-byte PSHUFB split tables), `avx2` (the same scheme on
//! 32-byte lanes) and `neon` (aarch64 `vqtbl1q_u8`). The registry
//! ([`kernels`]) is therefore a detection-dependent slice, not a fixed
//! array: benches, the per-kernel proptests and the child-process
//! `CAROUSEL_KERNEL` tests automatically cover whatever the host supports.
//!
//! The process-wide default is the **best detected kernel**
//! ([`detected_best`]: `avx2` > `ssse3` > `neon` > `swar`); set
//! `CAROUSEL_KERNEL` to any registered name before startup to override,
//! e.g. for A/B benchmarking with `ext_kernels`. An unrecognized name warns
//! once on stderr and falls back to the detected best.
//!
//! # Examples
//!
//! ```
//! use gf256::{kernel, Gf256};
//!
//! let k = kernel(); // Copy handle, cached selection
//! let src = [1u8, 2, 3, 4];
//! let mut dst = [0u8; 4];
//! k.mul_acc(Gf256::new(0x53), &src, &mut dst);
//! assert_eq!(dst[1], (Gf256::new(0x53) * Gf256::new(2)).value());
//! ```

use std::sync::LazyLock;

use crate::tables::{gf_mul_const, EXP, LOG, SPLIT};
use crate::Gf256;

pub mod simd;

/// Bytes pushed through the multiply loops (any kernel).
static MUL_BYTES: LazyLock<&'static telemetry::Counter> =
    LazyLock::new(|| telemetry::counter("gf256.mul_bytes"));
/// Bytes pushed through the pure-XOR path (coefficient-1 terms).
static XOR_BYTES: LazyLock<&'static telemetry::Counter> =
    LazyLock::new(|| telemetry::counter("gf256.xor_bytes"));
/// Slice operations dispatched through a kernel handle.
static DISPATCH: LazyLock<&'static telemetry::Counter> =
    LazyLock::new(|| telemetry::counter("gf256.kernel.dispatch"));
/// Fused multi-row products executed via [`KernelHandle::mul_acc_rows`].
static FUSED_ROWS: LazyLock<&'static telemetry::Counter> =
    LazyLock::new(|| telemetry::counter("gf256.kernel.fused_rows"));

/// Column-block width (bytes) for the fused multi-row product: large enough
/// to amortize per-term setup, small enough that the destination block stays
/// in L1/L2 while every term of the linear combination is accumulated.
const FUSE_BLOCK: usize = 32 * 1024;

/// A bulk GF(2⁸) slice kernel.
///
/// Implementations only see the *raw* cases: the coefficient is never `0`
/// or `1` (the handle strips those into fill/copy/XOR fast paths first) and
/// slice lengths are already validated equal. Use through [`KernelHandle`];
/// the trait is public so benchmarks and tests can enumerate [`kernels`].
pub trait Kernel: Sync {
    /// Short stable identifier (`"scalar"`, `"split"`, `"swar"`, `"ssse3"`,
    /// `"avx2"`, `"neon"`), accepted by [`by_name`] and the
    /// `CAROUSEL_KERNEL` environment variable.
    fn name(&self) -> &'static str;

    /// `dst[i] ^= c * src[i]`. Called with `c ∉ {0, 1}` and equal lengths.
    fn mul_acc_raw(&self, c: u8, src: &[u8], dst: &mut [u8]);

    /// `dst[i] = c * src[i]`. Called with `c ∉ {0, 1}` and equal lengths.
    fn mul_raw(&self, c: u8, src: &[u8], dst: &mut [u8]);

    /// `buf[i] = c * buf[i]`, in place. Called with `c ∉ {0, 1}`.
    fn mul_in_place_raw(&self, c: u8, buf: &mut [u8]);

    /// `dst[i] ^= Σ terms[t].0 * terms[t].1[i]` — the fused multi-row
    /// product. Every coefficient is `∉ {0, 1}` and every slice length
    /// equals `dst`'s (the handle strips/validates first).
    ///
    /// The default walks the destination in cache-sized column blocks and
    /// accumulates every term into a block before moving on, so the block
    /// stays L1/L2-resident no matter how many source rows contribute. The
    /// SIMD kernels override this with a register-fused loop: the
    /// destination is held in vector registers across *all* terms of a
    /// column strip, so it is loaded and stored exactly once per strip.
    fn mul_acc_rows_raw(&self, terms: &[(u8, &[u8])], dst: &mut [u8]) {
        let len = dst.len();
        let mut start = 0;
        while start < len {
            let end = usize::min(start + FUSE_BLOCK, len);
            for &(c, src) in terms {
                self.mul_acc_raw(c, &src[start..end], &mut dst[start..end]);
            }
            start = end;
        }
    }
}

// ---------------------------------------------------------------------------
// scalar: textbook log/exp reference
// ---------------------------------------------------------------------------

/// The textbook log/exp reference kernel: `EXP[(LOG[c] + LOG[x]) % 255]`
/// with a zero check, one byte at a time. The correctness baseline.
struct ScalarKernel;

impl Kernel for ScalarKernel {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn mul_acc_raw(&self, c: u8, src: &[u8], dst: &mut [u8]) {
        let lc = LOG[c as usize] as usize;
        for (d, s) in dst.iter_mut().zip(src) {
            if *s != 0 {
                *d ^= EXP[(lc + LOG[*s as usize] as usize) % 255];
            }
        }
    }

    fn mul_raw(&self, c: u8, src: &[u8], dst: &mut [u8]) {
        let lc = LOG[c as usize] as usize;
        for (d, s) in dst.iter_mut().zip(src) {
            *d = if *s == 0 {
                0
            } else {
                EXP[(lc + LOG[*s as usize] as usize) % 255]
            };
        }
    }

    fn mul_in_place_raw(&self, c: u8, buf: &mut [u8]) {
        let lc = LOG[c as usize] as usize;
        for b in buf.iter_mut() {
            if *b != 0 {
                *b = EXP[(lc + LOG[*b as usize] as usize) % 255];
            }
        }
    }
}

// ---------------------------------------------------------------------------
// split: 4-bit split-table kernel
// ---------------------------------------------------------------------------

/// The 4-bit split-table kernel: `lo[x & 0xF] ^ hi[x >> 4] = c * x`, eight
/// bytes per iteration so the optimizer can unroll.
struct SplitKernel;

impl Kernel for SplitKernel {
    fn name(&self) -> &'static str {
        "split"
    }

    fn mul_acc_raw(&self, c: u8, src: &[u8], dst: &mut [u8]) {
        let lo = &SPLIT.lo[c as usize];
        let hi = &SPLIT.hi[c as usize];
        let mut dst_chunks = dst.chunks_exact_mut(8);
        let mut src_chunks = src.chunks_exact(8);
        for (d, s) in (&mut dst_chunks).zip(&mut src_chunks) {
            for i in 0..8 {
                d[i] ^= lo[(s[i] & 0xF) as usize] ^ hi[(s[i] >> 4) as usize];
            }
        }
        for (d, s) in dst_chunks
            .into_remainder()
            .iter_mut()
            .zip(src_chunks.remainder())
        {
            *d ^= lo[(s & 0xF) as usize] ^ hi[(s >> 4) as usize];
        }
    }

    fn mul_raw(&self, c: u8, src: &[u8], dst: &mut [u8]) {
        let lo = &SPLIT.lo[c as usize];
        let hi = &SPLIT.hi[c as usize];
        for (d, s) in dst.iter_mut().zip(src) {
            *d = lo[(s & 0xF) as usize] ^ hi[(s >> 4) as usize];
        }
    }

    fn mul_in_place_raw(&self, c: u8, buf: &mut [u8]) {
        let lo = &SPLIT.lo[c as usize];
        let hi = &SPLIT.hi[c as usize];
        for b in buf.iter_mut() {
            *b = lo[(*b & 0xF) as usize] ^ hi[(*b >> 4) as usize];
        }
    }
}

// ---------------------------------------------------------------------------
// swar: 64-bit bit-plane multiply-broadcast kernel
// ---------------------------------------------------------------------------

/// The 64-bit SWAR kernel. See the module docs for the construction; the
/// inner loop works on 32-byte blocks (four `u64` words) so the eight
/// independent multiply chains per word overlap across words.
struct SwarKernel;

/// Lane mask with the lowest bit of every byte set.
const LSB: u64 = 0x0101_0101_0101_0101;

/// The eight GF products `c·2ᵇ` for `b` in `0..8`, each as a `u64` so the
/// broadcast multiply needs no per-iteration widening.
#[inline]
fn swar_coeffs(c: u8) -> [u64; 8] {
    let mut cb = [0u64; 8];
    let mut cc = c;
    for slot in cb.iter_mut() {
        *slot = cc as u64;
        // GF doubling: shift, reduce by the primitive polynomial on carry.
        let hi = cc & 0x80;
        cc <<= 1;
        if hi != 0 {
            cc ^= 0x1D;
        }
    }
    cb
}

/// Multiplies all eight byte lanes of `x` by the coefficient described by
/// `cb`. Each `(x >> b) & LSB` selects bit-plane `b`; the integer multiply
/// broadcasts `c·2ᵇ` into exactly the selected lanes, and since every
/// partial product occupies a disjoint byte, addition carries never cross
/// lanes and the XOR accumulation is exact.
#[inline]
fn swar_mul_word(x: u64, cb: &[u64; 8]) -> u64 {
    ((x & LSB).wrapping_mul(cb[0]))
        ^ (((x >> 1) & LSB).wrapping_mul(cb[1]))
        ^ (((x >> 2) & LSB).wrapping_mul(cb[2]))
        ^ (((x >> 3) & LSB).wrapping_mul(cb[3]))
        ^ (((x >> 4) & LSB).wrapping_mul(cb[4]))
        ^ (((x >> 5) & LSB).wrapping_mul(cb[5]))
        ^ (((x >> 6) & LSB).wrapping_mul(cb[6]))
        ^ (((x >> 7) & LSB).wrapping_mul(cb[7]))
}

impl Kernel for SwarKernel {
    fn name(&self) -> &'static str {
        "swar"
    }

    fn mul_acc_raw(&self, c: u8, src: &[u8], dst: &mut [u8]) {
        let cb = swar_coeffs(c);
        let mut dst_chunks = dst.chunks_exact_mut(32);
        let mut src_chunks = src.chunks_exact(32);
        for (d, s) in (&mut dst_chunks).zip(&mut src_chunks) {
            for i in 0..4 {
                let x = u64::from_ne_bytes(s[i * 8..i * 8 + 8].try_into().expect("chunk of 8"));
                let r = u64::from_ne_bytes(d[i * 8..i * 8 + 8].try_into().expect("chunk of 8"))
                    ^ swar_mul_word(x, &cb);
                d[i * 8..i * 8 + 8].copy_from_slice(&r.to_ne_bytes());
            }
        }
        for (d, s) in dst_chunks
            .into_remainder()
            .iter_mut()
            .zip(src_chunks.remainder())
        {
            *d ^= gf_mul_const(c, *s);
        }
    }

    fn mul_raw(&self, c: u8, src: &[u8], dst: &mut [u8]) {
        let cb = swar_coeffs(c);
        let mut dst_chunks = dst.chunks_exact_mut(32);
        let mut src_chunks = src.chunks_exact(32);
        for (d, s) in (&mut dst_chunks).zip(&mut src_chunks) {
            for i in 0..4 {
                let x = u64::from_ne_bytes(s[i * 8..i * 8 + 8].try_into().expect("chunk of 8"));
                d[i * 8..i * 8 + 8].copy_from_slice(&swar_mul_word(x, &cb).to_ne_bytes());
            }
        }
        for (d, s) in dst_chunks
            .into_remainder()
            .iter_mut()
            .zip(src_chunks.remainder())
        {
            *d = gf_mul_const(c, *s);
        }
    }

    fn mul_in_place_raw(&self, c: u8, buf: &mut [u8]) {
        let cb = swar_coeffs(c);
        let mut chunks = buf.chunks_exact_mut(32);
        for d in &mut chunks {
            for i in 0..4 {
                let x = u64::from_ne_bytes(d[i * 8..i * 8 + 8].try_into().expect("chunk of 8"));
                d[i * 8..i * 8 + 8].copy_from_slice(&swar_mul_word(x, &cb).to_ne_bytes());
            }
        }
        for d in chunks.into_remainder() {
            *d = gf_mul_const(c, *d);
        }
    }
}

// ---------------------------------------------------------------------------
// handle, registry, process default
// ---------------------------------------------------------------------------

/// A cheap [`Copy`] handle to a registered kernel.
///
/// The handle owns the non-kernel-specific parts of every operation: length
/// validation, the `c == 0` / `c == 1` fast paths (skip, fill, copy or plain
/// XOR — no kernel ever sees those coefficients), telemetry, and the
/// cache-blocked fused multi-row product [`mul_acc_rows`]
/// (the gemm-style loop used by matrix×data applications).
///
/// [`mul_acc_rows`]: KernelHandle::mul_acc_rows
#[derive(Clone, Copy)]
pub struct KernelHandle {
    inner: &'static (dyn Kernel + Send + Sync),
}

impl std::fmt::Debug for KernelHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("KernelHandle").field(&self.name()).finish()
    }
}

impl KernelHandle {
    /// The kernel's stable name (`"scalar"`, `"split"`, `"swar"`).
    pub fn name(&self) -> &'static str {
        self.inner.name()
    }

    /// `dst[i] ^= src[i]` — adds `src` into `dst` over GF(2⁸).
    ///
    /// XOR is kernel-independent (every kernel would do the same thing), so
    /// the handle implements it directly on `u64` lanes.
    ///
    /// # Panics
    ///
    /// Panics if the two slices have different lengths.
    pub fn add_assign(&self, dst: &mut [u8], src: &[u8]) {
        assert_eq!(dst.len(), src.len(), "slice length mismatch");
        if telemetry::ENABLED {
            DISPATCH.add(1);
        }
        xor_slices(dst, src);
    }

    /// `dst[i] = c * src[i]` for every byte.
    ///
    /// # Panics
    ///
    /// Panics if the two slices have different lengths.
    pub fn mul(&self, c: Gf256, src: &[u8], dst: &mut [u8]) {
        assert_eq!(dst.len(), src.len(), "slice length mismatch");
        if telemetry::ENABLED {
            DISPATCH.add(1);
        }
        if c.is_zero() {
            dst.fill(0);
            return;
        }
        if c == Gf256::ONE {
            dst.copy_from_slice(src);
            return;
        }
        if telemetry::ENABLED {
            MUL_BYTES.add(dst.len() as u64);
        }
        self.inner.mul_raw(c.value(), src, dst);
    }

    /// `buf[i] = c * buf[i]` for every byte, in place.
    pub fn mul_in_place(&self, c: Gf256, buf: &mut [u8]) {
        if telemetry::ENABLED {
            DISPATCH.add(1);
        }
        if c.is_zero() {
            buf.fill(0);
            return;
        }
        if c == Gf256::ONE {
            return;
        }
        if telemetry::ENABLED {
            MUL_BYTES.add(buf.len() as u64);
        }
        self.inner.mul_in_place_raw(c.value(), buf);
    }

    /// `dst[i] ^= c * src[i]` — the multiply-accumulate at the heart of
    /// encoding.
    ///
    /// Skips the work entirely when `c` is zero; this is what makes the
    /// sparse generating matrices of Carousel codes (paper §VIII-A, Fig. 5)
    /// encode as cheaply as the RS codes they were built from.
    ///
    /// # Panics
    ///
    /// Panics if the two slices have different lengths.
    pub fn mul_acc(&self, c: Gf256, src: &[u8], dst: &mut [u8]) {
        if telemetry::ENABLED {
            DISPATCH.add(1);
        }
        self.mul_acc_inner(c, src, dst);
    }

    /// Fused multi-row multiply-accumulate:
    /// `dst[i] ^= Σ terms[t].0 * terms[t].1[i]` — one output row of a
    /// matrix×data product.
    ///
    /// Instead of streaming the full destination once per term, all terms
    /// are accumulated together — cache-blocked on the portable kernels,
    /// register-fused on the SIMD ones (see [`Kernel::mul_acc_rows_raw`]) —
    /// so the destination is read and written from L1/L2 (or registers) no
    /// matter how many source rows contribute. This is the kernel the
    /// decode/repair combine loops use.
    ///
    /// # Panics
    ///
    /// Panics if any source slice's length differs from `dst`'s.
    pub fn mul_acc_rows(&self, terms: &[(Gf256, &[u8])], dst: &mut [u8]) {
        for (_, src) in terms {
            assert_eq!(dst.len(), src.len(), "slice length mismatch");
        }
        if telemetry::ENABLED {
            DISPATCH.add(1);
            FUSED_ROWS.add(terms.len() as u64);
        }
        // Strip the handle-level fast paths once for the whole product:
        // zero terms vanish, one terms are a plain XOR pass, and only the
        // general coefficients reach the kernel's fused loop. XOR commutes
        // with everything, so accumulation order does not matter.
        let mut raw: Vec<(u8, &[u8])> = Vec::with_capacity(terms.len());
        for &(c, src) in terms {
            if c.is_zero() {
                continue;
            }
            if c == Gf256::ONE {
                if telemetry::ENABLED {
                    XOR_BYTES.add(dst.len() as u64);
                }
                xor_slices(dst, src);
            } else {
                raw.push((c.value(), src));
            }
        }
        if raw.is_empty() {
            return;
        }
        if telemetry::ENABLED {
            MUL_BYTES.add((dst.len() * raw.len()) as u64);
        }
        self.inner.mul_acc_rows_raw(&raw, dst);
        // Zero-length destinations: still a valid (empty) product.
    }

    /// The shared mul-acc body: fast paths + byte counters, no dispatch
    /// counter (so fused calls count once).
    fn mul_acc_inner(&self, c: Gf256, src: &[u8], dst: &mut [u8]) {
        assert_eq!(dst.len(), src.len(), "slice length mismatch");
        if c.is_zero() {
            return;
        }
        if c == Gf256::ONE {
            if telemetry::ENABLED {
                XOR_BYTES.add(dst.len() as u64);
            }
            xor_slices(dst, src);
            return;
        }
        if telemetry::ENABLED {
            MUL_BYTES.add(dst.len() as u64);
        }
        self.inner.mul_acc_raw(c.value(), src, dst);
    }
}

/// `dst ^= src` on `u64` lanes; lengths already validated equal.
fn xor_slices(dst: &mut [u8], src: &[u8]) {
    let mut dst_chunks = dst.chunks_exact_mut(8);
    let mut src_chunks = src.chunks_exact(8);
    for (d, s) in (&mut dst_chunks).zip(&mut src_chunks) {
        let x = u64::from_ne_bytes(d[..8].try_into().expect("chunk of 8"))
            ^ u64::from_ne_bytes(s[..8].try_into().expect("chunk of 8"));
        d.copy_from_slice(&x.to_ne_bytes());
    }
    for (d, s) in dst_chunks
        .into_remainder()
        .iter_mut()
        .zip(src_chunks.remainder())
    {
        *d ^= s;
    }
}

static SCALAR: ScalarKernel = ScalarKernel;
static SPLIT_KERNEL: SplitKernel = SplitKernel;
static SWAR: SwarKernel = SwarKernel;

/// The registry, built once: the three portable kernels in ascending speed
/// order, then every SIMD kernel the CPU supports (again ascending), so the
/// last entry is always the best detected kernel.
static REGISTRY: LazyLock<Vec<KernelHandle>> = LazyLock::new(|| {
    let mut v = vec![
        KernelHandle { inner: &SCALAR },
        KernelHandle {
            inner: &SPLIT_KERNEL,
        },
        KernelHandle { inner: &SWAR },
    ];
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("ssse3") {
            v.push(KernelHandle {
                inner: &simd::SSSE3,
            });
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            v.push(KernelHandle { inner: &simd::AVX2 });
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            v.push(KernelHandle { inner: &simd::NEON });
        }
    }
    v
});

/// Every kernel registered on this machine, scalar reference first, best
/// detected kernel last. The portable kernels (`scalar`, `split`, `swar`)
/// are always present; SIMD kernels appear only where runtime CPU-feature
/// detection approved them. Benchmarks and the equivalence proptests
/// iterate this slice, so a kernel is tested exactly where it can run.
pub fn kernels() -> &'static [KernelHandle] {
    &REGISTRY
}

/// The fastest kernel the CPU supports (`avx2` > `ssse3` > `neon` > `swar`
/// in practice) — the process default unless `CAROUSEL_KERNEL` overrides.
pub fn detected_best() -> KernelHandle {
    *REGISTRY.last().expect("registry is never empty")
}

/// The CPU features the registry probes for, with their detection results —
/// diagnostic data for `carousel-tool kernels` and the bench config blocks.
/// Features irrelevant to the build architecture are reported as absent.
pub fn detected_features() -> Vec<(&'static str, bool)> {
    #[cfg(target_arch = "x86_64")]
    {
        vec![
            ("ssse3", std::arch::is_x86_feature_detected!("ssse3")),
            ("avx2", std::arch::is_x86_feature_detected!("avx2")),
            ("neon", false),
        ]
    }
    #[cfg(target_arch = "aarch64")]
    {
        vec![
            ("ssse3", false),
            ("avx2", false),
            ("neon", std::arch::is_aarch64_feature_detected!("neon")),
        ]
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        vec![("ssse3", false), ("avx2", false), ("neon", false)]
    }
}

/// Looks a kernel up by its stable name; `None` for unknown names.
pub fn by_name(name: &str) -> Option<KernelHandle> {
    kernels().iter().copied().find(|k| k.name() == name)
}

/// The process-default kernel, resolved once on first use: the value of
/// `CAROUSEL_KERNEL` if set to a registered name, otherwise the best
/// detected kernel. An unrecognized value is reported on stderr once and
/// the detected best is used.
static DEFAULT: LazyLock<KernelHandle> = LazyLock::new(|| {
    let fallback = detected_best();
    match std::env::var("CAROUSEL_KERNEL") {
        Ok(name) if !name.is_empty() => by_name(&name).unwrap_or_else(|| {
            let registered: Vec<&str> = kernels().iter().map(|k| k.name()).collect();
            eprintln!(
                "warning: CAROUSEL_KERNEL={name:?} is not a registered kernel \
                 (expected one of {}); using detected best {:?}",
                registered.join("/"),
                fallback.name()
            );
            fallback
        }),
        _ => fallback,
    }
});

/// The process-default kernel handle. Cheap to call (one lazy-static read)
/// and the returned handle is `Copy`, so grab it once per operation or hold
/// it — both are fine.
pub fn kernel() -> KernelHandle {
    *DEFAULT
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_mul(c: u8, x: u8) -> u8 {
        (Gf256::new(c) * Gf256::new(x)).value()
    }

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let names: Vec<_> = kernels().iter().map(|k| k.name()).collect();
        // The portable kernels always lead, in ascending speed order; any
        // further entries are the detection-gated SIMD kernels.
        assert_eq!(&names[..3], &["scalar", "split", "swar"]);
        for extra in &names[3..] {
            assert!(
                ["ssse3", "avx2", "neon"].contains(extra),
                "unexpected registered kernel {extra:?}"
            );
        }
        let mut unique = names.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len(), "duplicate kernel names");
        for n in names {
            assert_eq!(by_name(n).expect("registered").name(), n);
        }
        assert!(by_name("avx512").is_none());
    }

    #[test]
    fn default_kernel_resolves() {
        // Do not assert which one: CAROUSEL_KERNEL may be set in the
        // environment running the tests.
        assert!(by_name(kernel().name()).is_some());
    }

    #[test]
    fn detected_best_is_last_and_registered() {
        let best = detected_best();
        assert_eq!(best.name(), kernels().last().expect("nonempty").name());
        assert!(by_name(best.name()).is_some());
    }

    #[test]
    fn detected_features_match_registry() {
        // A feature reported as detected must have its kernel registered,
        // and vice versa — the registry and the diagnostics cannot drift.
        for (feature, detected) in detected_features() {
            assert_eq!(
                by_name(feature).is_some(),
                detected,
                "feature {feature} detection/registration mismatch"
            );
        }
    }

    #[test]
    fn every_kernel_matches_field_multiply() {
        let src: Vec<u8> = (0..=255u8).chain((0..77).map(|i| (i * 31) as u8)).collect();
        for k in kernels() {
            for c in [0u8, 1, 2, 0x1D, 0x53, 0x85, 0xFF] {
                let mut dst = vec![0u8; src.len()];
                k.mul(Gf256::new(c), &src, &mut dst);
                for (s, d) in src.iter().zip(&dst) {
                    assert_eq!(*d, scalar_mul(c, *s), "{} mul c={c}", k.name());
                }

                let mut acc: Vec<u8> = (0..src.len()).map(|i| (i * 13 + 1) as u8).collect();
                let before = acc.clone();
                k.mul_acc(Gf256::new(c), &src, &mut acc);
                for i in 0..src.len() {
                    assert_eq!(
                        acc[i],
                        before[i] ^ scalar_mul(c, src[i]),
                        "{} mul_acc c={c}",
                        k.name()
                    );
                }

                let mut buf = src.clone();
                k.mul_in_place(Gf256::new(c), &mut buf);
                assert_eq!(buf, dst, "{} mul_in_place c={c}", k.name());
            }
        }
    }

    #[test]
    fn mul_acc_rows_matches_term_by_term() {
        let rows: Vec<Vec<u8>> = (0..5)
            .map(|r| (0..333).map(|i| (i * 7 + r * 101 + 3) as u8).collect())
            .collect();
        let coeffs = [0u8, 1, 0x53, 0xCA, 0xFF];
        for k in kernels() {
            let terms: Vec<(Gf256, &[u8])> = coeffs
                .iter()
                .zip(&rows)
                .map(|(&c, row)| (Gf256::new(c), row.as_slice()))
                .collect();
            let mut fused = vec![0x5Au8; 333];
            k.mul_acc_rows(&terms, &mut fused);
            let mut sequential = vec![0x5Au8; 333];
            for &(c, src) in &terms {
                k.mul_acc(c, src, &mut sequential);
            }
            assert_eq!(fused, sequential, "{}", k.name());
        }
    }

    #[test]
    fn mul_acc_rows_blocks_large_buffers() {
        // Exercise the block loop with a destination spanning several
        // FUSE_BLOCK windows plus a ragged tail.
        let len = FUSE_BLOCK * 2 + 4097;
        let a: Vec<u8> = (0..len).map(|i| (i * 2654435761usize) as u8).collect();
        let b: Vec<u8> = (0..len).map(|i| (i * 40503 + 11) as u8).collect();
        for k in kernels() {
            let mut fused = vec![0u8; len];
            k.mul_acc_rows(
                &[(Gf256::new(0x1D), &a), (Gf256::new(0x85), &b)],
                &mut fused,
            );
            let mut reference = vec![0u8; len];
            k.mul_acc(Gf256::new(0x1D), &a, &mut reference);
            k.mul_acc(Gf256::new(0x85), &b, &mut reference);
            assert_eq!(fused, reference, "{}", k.name());
        }
        // Empty destination is valid.
        for k in kernels() {
            k.mul_acc_rows(&[(Gf256::new(3), &[]), (Gf256::new(7), &[])], &mut []);
        }
    }
}
