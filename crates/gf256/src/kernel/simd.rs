//! SIMD GF(2⁸) kernels: the vector-shuffle split-table engine.
//!
//! All three kernels here are the same algorithm at different lane widths —
//! the classic ISA-L decomposition the scalar `split` kernel already uses,
//! lifted onto byte-shuffle instructions. For a coefficient `c`, the two
//! 16-entry tables `SPLIT.lo[c]` and `SPLIT.hi[c]` satisfy
//! `lo[x & 0xF] ^ hi[x >> 4] = c·x`; a byte-shuffle instruction
//! (`pshufb` / `vpshufb` / `tbl`) performs exactly "16 parallel 16-entry
//! table lookups", so one vector of products costs two shuffles, two masks
//! and an XOR, with the tables pinned in two registers for the whole slice:
//!
//! * `ssse3` — 16-byte lanes via `_mm_shuffle_epi8` (any x86-64 made after
//!   ~2006).
//! * `avx2` — the identical scheme on 32-byte lanes via
//!   `_mm256_shuffle_epi8`, tables broadcast to both 128-bit halves
//!   (`vpshufb` shuffles within each half, which is exactly what a
//!   broadcast table wants).
//! * `neon` — 16-byte lanes via `vqtbl1q_u8` on aarch64.
//!
//! Each kernel is only ever *registered* when the corresponding CPU feature
//! was detected at startup (see the registry in the parent module), which is
//! the safety argument for every `#[target_feature]` call site below. Heads
//! and tails shorter than one vector fall back to the scalar split-table
//! loop, so all length/aliasing contracts of the safe kernels hold
//! unchanged.
//!
//! This module is the only place in the workspace allowed to contain
//! `unsafe` (scripts/check.sh enforces the confinement); everything it
//! exports is a safe `Kernel` implementation.

#![allow(unsafe_code)]

use super::Kernel;
use crate::tables::SPLIT;

/// Scalar split-table fallback for sub-vector heads/tails.
#[inline]
fn mul_acc_tail(c: u8, src: &[u8], dst: &mut [u8]) {
    let lo = &SPLIT.lo[c as usize];
    let hi = &SPLIT.hi[c as usize];
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= lo[(s & 0xF) as usize] ^ hi[(s >> 4) as usize];
    }
}

/// Scalar split-table fallback, overwrite variant.
#[inline]
fn mul_tail(c: u8, src: &[u8], dst: &mut [u8]) {
    let lo = &SPLIT.lo[c as usize];
    let hi = &SPLIT.hi[c as usize];
    for (d, s) in dst.iter_mut().zip(src) {
        *d = lo[(s & 0xF) as usize] ^ hi[(s >> 4) as usize];
    }
}

/// Scalar split-table fallback, in-place variant.
#[inline]
fn mul_in_place_tail(c: u8, buf: &mut [u8]) {
    let lo = &SPLIT.lo[c as usize];
    let hi = &SPLIT.hi[c as usize];
    for b in buf.iter_mut() {
        *b = lo[(*b & 0xF) as usize] ^ hi[(*b >> 4) as usize];
    }
}

// ---------------------------------------------------------------------------
// x86-64: SSSE3 (16-byte) and AVX2 (32-byte) PSHUFB kernels
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::*;
    use core::arch::x86_64::*;

    /// 16-byte-lane PSHUFB kernel. Registered only when SSSE3 is detected.
    pub(crate) struct Ssse3Kernel;

    /// 32-byte-lane VPSHUFB kernel. Registered only when AVX2 is detected.
    pub(crate) struct Avx2Kernel;

    pub(crate) static SSSE3: Ssse3Kernel = Ssse3Kernel;
    pub(crate) static AVX2: Avx2Kernel = Avx2Kernel;

    /// One 16-byte product vector: `lo[x&0xF] ^ hi[x>>4]` for every byte of
    /// `x`, with the split tables preloaded in `lo_t`/`hi_t`.
    ///
    /// # Safety
    ///
    /// Caller must have verified SSSE3 support.
    #[inline]
    #[target_feature(enable = "ssse3")]
    unsafe fn product16(lo_t: __m128i, hi_t: __m128i, mask: __m128i, x: __m128i) -> __m128i {
        let lo = _mm_shuffle_epi8(lo_t, _mm_and_si128(x, mask));
        let hi = _mm_shuffle_epi8(hi_t, _mm_and_si128(_mm_srli_epi64(x, 4), mask));
        _mm_xor_si128(lo, hi)
    }

    /// # Safety
    ///
    /// Caller must have verified SSSE3 support. `src`/`dst` lengths are
    /// equal (the handle validates) and may be arbitrarily unaligned:
    /// only unaligned loads/stores are used.
    #[target_feature(enable = "ssse3")]
    unsafe fn mul_acc_ssse3(c: u8, src: &[u8], dst: &mut [u8]) {
        let lo_t = _mm_loadu_si128(SPLIT.lo[c as usize].as_ptr() as *const __m128i);
        let hi_t = _mm_loadu_si128(SPLIT.hi[c as usize].as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0F);
        let len = src.len();
        let mut i = 0;
        while i + 16 <= len {
            let x = _mm_loadu_si128(src.as_ptr().add(i) as *const __m128i);
            let p = product16(lo_t, hi_t, mask, x);
            let d = _mm_loadu_si128(dst.as_ptr().add(i) as *const __m128i);
            _mm_storeu_si128(dst.as_mut_ptr().add(i) as *mut __m128i, _mm_xor_si128(d, p));
            i += 16;
        }
        mul_acc_tail(c, &src[i..], &mut dst[i..]);
    }

    /// # Safety
    ///
    /// Same contract as [`mul_acc_ssse3`].
    #[target_feature(enable = "ssse3")]
    unsafe fn mul_ssse3(c: u8, src: &[u8], dst: &mut [u8]) {
        let lo_t = _mm_loadu_si128(SPLIT.lo[c as usize].as_ptr() as *const __m128i);
        let hi_t = _mm_loadu_si128(SPLIT.hi[c as usize].as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0F);
        let len = src.len();
        let mut i = 0;
        while i + 16 <= len {
            let x = _mm_loadu_si128(src.as_ptr().add(i) as *const __m128i);
            let p = product16(lo_t, hi_t, mask, x);
            _mm_storeu_si128(dst.as_mut_ptr().add(i) as *mut __m128i, p);
            i += 16;
        }
        mul_tail(c, &src[i..], &mut dst[i..]);
    }

    /// # Safety
    ///
    /// Same contract as [`mul_acc_ssse3`]; `buf` is both input and output.
    #[target_feature(enable = "ssse3")]
    unsafe fn mul_in_place_ssse3(c: u8, buf: &mut [u8]) {
        let lo_t = _mm_loadu_si128(SPLIT.lo[c as usize].as_ptr() as *const __m128i);
        let hi_t = _mm_loadu_si128(SPLIT.hi[c as usize].as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0F);
        let len = buf.len();
        let mut i = 0;
        while i + 16 <= len {
            let x = _mm_loadu_si128(buf.as_ptr().add(i) as *const __m128i);
            let p = product16(lo_t, hi_t, mask, x);
            _mm_storeu_si128(buf.as_mut_ptr().add(i) as *mut __m128i, p);
            i += 16;
        }
        mul_in_place_tail(c, &mut buf[i..]);
    }

    /// Register-fused multi-row product on 64-byte strips: four 16-byte
    /// accumulators are loaded from `dst` once, every term's products are
    /// XORed into them, and they are stored once — `dst` never round-trips
    /// through memory between terms.
    ///
    /// # Safety
    ///
    /// Caller must have verified SSSE3 support; slice lengths all equal.
    #[target_feature(enable = "ssse3")]
    unsafe fn mul_acc_rows_ssse3(terms: &[(u8, &[u8])], dst: &mut [u8]) {
        let mask = _mm_set1_epi8(0x0F);
        let len = dst.len();
        let mut i = 0;
        while i + 64 <= len {
            let d = dst.as_mut_ptr().add(i);
            let mut a0 = _mm_loadu_si128(d as *const __m128i);
            let mut a1 = _mm_loadu_si128(d.add(16) as *const __m128i);
            let mut a2 = _mm_loadu_si128(d.add(32) as *const __m128i);
            let mut a3 = _mm_loadu_si128(d.add(48) as *const __m128i);
            for &(c, src) in terms {
                let lo_t = _mm_loadu_si128(SPLIT.lo[c as usize].as_ptr() as *const __m128i);
                let hi_t = _mm_loadu_si128(SPLIT.hi[c as usize].as_ptr() as *const __m128i);
                let s = src.as_ptr().add(i);
                let x0 = _mm_loadu_si128(s as *const __m128i);
                let x1 = _mm_loadu_si128(s.add(16) as *const __m128i);
                let x2 = _mm_loadu_si128(s.add(32) as *const __m128i);
                let x3 = _mm_loadu_si128(s.add(48) as *const __m128i);
                a0 = _mm_xor_si128(a0, product16(lo_t, hi_t, mask, x0));
                a1 = _mm_xor_si128(a1, product16(lo_t, hi_t, mask, x1));
                a2 = _mm_xor_si128(a2, product16(lo_t, hi_t, mask, x2));
                a3 = _mm_xor_si128(a3, product16(lo_t, hi_t, mask, x3));
            }
            _mm_storeu_si128(d as *mut __m128i, a0);
            _mm_storeu_si128(d.add(16) as *mut __m128i, a1);
            _mm_storeu_si128(d.add(32) as *mut __m128i, a2);
            _mm_storeu_si128(d.add(48) as *mut __m128i, a3);
            i += 64;
        }
        for &(c, src) in terms {
            mul_acc_ssse3(c, &src[i..], &mut dst[i..]);
        }
    }

    impl Kernel for Ssse3Kernel {
        fn name(&self) -> &'static str {
            "ssse3"
        }

        fn mul_acc_raw(&self, c: u8, src: &[u8], dst: &mut [u8]) {
            // Safety: this kernel is only registered after
            // `is_x86_feature_detected!("ssse3")` returned true.
            unsafe { mul_acc_ssse3(c, src, dst) }
        }

        fn mul_raw(&self, c: u8, src: &[u8], dst: &mut [u8]) {
            // Safety: as above — registration implies detection.
            unsafe { mul_ssse3(c, src, dst) }
        }

        fn mul_in_place_raw(&self, c: u8, buf: &mut [u8]) {
            // Safety: as above — registration implies detection.
            unsafe { mul_in_place_ssse3(c, buf) }
        }

        fn mul_acc_rows_raw(&self, terms: &[(u8, &[u8])], dst: &mut [u8]) {
            // Safety: as above — registration implies detection.
            unsafe { mul_acc_rows_ssse3(terms, dst) }
        }
    }

    /// One 32-byte product vector; the tables are broadcast to both 128-bit
    /// halves, matching `vpshufb`'s per-half shuffle semantics.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn product32(lo_t: __m256i, hi_t: __m256i, mask: __m256i, x: __m256i) -> __m256i {
        let lo = _mm256_shuffle_epi8(lo_t, _mm256_and_si256(x, mask));
        let hi = _mm256_shuffle_epi8(hi_t, _mm256_and_si256(_mm256_srli_epi64(x, 4), mask));
        _mm256_xor_si256(lo, hi)
    }

    /// Loads a 16-byte split table and broadcasts it to both AVX2 halves.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support; `table` is 16 bytes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn broadcast_table(table: &[u8; 16]) -> __m256i {
        _mm256_broadcastsi128_si256(_mm_loadu_si128(table.as_ptr() as *const __m128i))
    }

    /// # Safety
    ///
    /// Caller must have verified AVX2 support; slices may be unaligned.
    #[target_feature(enable = "avx2")]
    unsafe fn mul_acc_avx2(c: u8, src: &[u8], dst: &mut [u8]) {
        let lo_t = broadcast_table(&SPLIT.lo[c as usize]);
        let hi_t = broadcast_table(&SPLIT.hi[c as usize]);
        let mask = _mm256_set1_epi8(0x0F);
        let len = src.len();
        let mut i = 0;
        while i + 32 <= len {
            let x = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
            let p = product32(lo_t, hi_t, mask, x);
            let d = _mm256_loadu_si256(dst.as_ptr().add(i) as *const __m256i);
            _mm256_storeu_si256(
                dst.as_mut_ptr().add(i) as *mut __m256i,
                _mm256_xor_si256(d, p),
            );
            i += 32;
        }
        mul_acc_tail(c, &src[i..], &mut dst[i..]);
    }

    /// # Safety
    ///
    /// Same contract as [`mul_acc_avx2`].
    #[target_feature(enable = "avx2")]
    unsafe fn mul_avx2(c: u8, src: &[u8], dst: &mut [u8]) {
        let lo_t = broadcast_table(&SPLIT.lo[c as usize]);
        let hi_t = broadcast_table(&SPLIT.hi[c as usize]);
        let mask = _mm256_set1_epi8(0x0F);
        let len = src.len();
        let mut i = 0;
        while i + 32 <= len {
            let x = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
            let p = product32(lo_t, hi_t, mask, x);
            _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, p);
            i += 32;
        }
        mul_tail(c, &src[i..], &mut dst[i..]);
    }

    /// # Safety
    ///
    /// Same contract as [`mul_acc_avx2`]; `buf` is both input and output.
    #[target_feature(enable = "avx2")]
    unsafe fn mul_in_place_avx2(c: u8, buf: &mut [u8]) {
        let lo_t = broadcast_table(&SPLIT.lo[c as usize]);
        let hi_t = broadcast_table(&SPLIT.hi[c as usize]);
        let mask = _mm256_set1_epi8(0x0F);
        let len = buf.len();
        let mut i = 0;
        while i + 32 <= len {
            let x = _mm256_loadu_si256(buf.as_ptr().add(i) as *const __m256i);
            let p = product32(lo_t, hi_t, mask, x);
            _mm256_storeu_si256(buf.as_mut_ptr().add(i) as *mut __m256i, p);
            i += 32;
        }
        mul_in_place_tail(c, &mut buf[i..]);
    }

    /// Register-fused multi-row product on 128-byte strips: four 32-byte
    /// accumulators stay in `ymm` registers across every term — the
    /// destination is loaded and stored exactly once per strip, which is
    /// what keeps decode/repair rows from round-tripping through L1 once
    /// per matrix term.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support; slice lengths all equal.
    #[target_feature(enable = "avx2")]
    unsafe fn mul_acc_rows_avx2(terms: &[(u8, &[u8])], dst: &mut [u8]) {
        let mask = _mm256_set1_epi8(0x0F);
        let len = dst.len();
        let mut i = 0;
        while i + 128 <= len {
            let d = dst.as_mut_ptr().add(i);
            let mut a0 = _mm256_loadu_si256(d as *const __m256i);
            let mut a1 = _mm256_loadu_si256(d.add(32) as *const __m256i);
            let mut a2 = _mm256_loadu_si256(d.add(64) as *const __m256i);
            let mut a3 = _mm256_loadu_si256(d.add(96) as *const __m256i);
            for &(c, src) in terms {
                let lo_t = broadcast_table(&SPLIT.lo[c as usize]);
                let hi_t = broadcast_table(&SPLIT.hi[c as usize]);
                let s = src.as_ptr().add(i);
                let x0 = _mm256_loadu_si256(s as *const __m256i);
                let x1 = _mm256_loadu_si256(s.add(32) as *const __m256i);
                let x2 = _mm256_loadu_si256(s.add(64) as *const __m256i);
                let x3 = _mm256_loadu_si256(s.add(96) as *const __m256i);
                a0 = _mm256_xor_si256(a0, product32(lo_t, hi_t, mask, x0));
                a1 = _mm256_xor_si256(a1, product32(lo_t, hi_t, mask, x1));
                a2 = _mm256_xor_si256(a2, product32(lo_t, hi_t, mask, x2));
                a3 = _mm256_xor_si256(a3, product32(lo_t, hi_t, mask, x3));
            }
            _mm256_storeu_si256(d as *mut __m256i, a0);
            _mm256_storeu_si256(d.add(32) as *mut __m256i, a1);
            _mm256_storeu_si256(d.add(64) as *mut __m256i, a2);
            _mm256_storeu_si256(d.add(96) as *mut __m256i, a3);
            i += 128;
        }
        for &(c, src) in terms {
            mul_acc_avx2(c, &src[i..], &mut dst[i..]);
        }
    }

    impl Kernel for Avx2Kernel {
        fn name(&self) -> &'static str {
            "avx2"
        }

        fn mul_acc_raw(&self, c: u8, src: &[u8], dst: &mut [u8]) {
            // Safety: this kernel is only registered after
            // `is_x86_feature_detected!("avx2")` returned true.
            unsafe { mul_acc_avx2(c, src, dst) }
        }

        fn mul_raw(&self, c: u8, src: &[u8], dst: &mut [u8]) {
            // Safety: as above — registration implies detection.
            unsafe { mul_avx2(c, src, dst) }
        }

        fn mul_in_place_raw(&self, c: u8, buf: &mut [u8]) {
            // Safety: as above — registration implies detection.
            unsafe { mul_in_place_avx2(c, buf) }
        }

        fn mul_acc_rows_raw(&self, terms: &[(u8, &[u8])], dst: &mut [u8]) {
            // Safety: as above — registration implies detection.
            unsafe { mul_acc_rows_avx2(terms, dst) }
        }
    }
}

#[cfg(target_arch = "x86_64")]
pub(super) use x86::{AVX2, SSSE3};

// ---------------------------------------------------------------------------
// aarch64: NEON vqtbl1q_u8 kernel
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod arm {
    use super::*;
    use core::arch::aarch64::*;

    /// 16-byte-lane `vqtbl1q_u8` kernel. Registered only when NEON is
    /// detected (in practice: every aarch64 Linux/macOS host).
    pub(crate) struct NeonKernel;

    pub(crate) static NEON: NeonKernel = NeonKernel;

    /// One 16-byte product vector via two table lookups. `vshrq_n_u8` is a
    /// per-byte logical shift, so the high nibble needs no mask.
    ///
    /// # Safety
    ///
    /// Caller must have verified NEON support.
    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn product16(
        lo_t: uint8x16_t,
        hi_t: uint8x16_t,
        mask: uint8x16_t,
        x: uint8x16_t,
    ) -> uint8x16_t {
        let lo = vqtbl1q_u8(lo_t, vandq_u8(x, mask));
        let hi = vqtbl1q_u8(hi_t, vshrq_n_u8::<4>(x));
        veorq_u8(lo, hi)
    }

    /// # Safety
    ///
    /// Caller must have verified NEON support; slices may be unaligned.
    #[target_feature(enable = "neon")]
    unsafe fn mul_acc_neon(c: u8, src: &[u8], dst: &mut [u8]) {
        let lo_t = vld1q_u8(SPLIT.lo[c as usize].as_ptr());
        let hi_t = vld1q_u8(SPLIT.hi[c as usize].as_ptr());
        let mask = vdupq_n_u8(0x0F);
        let len = src.len();
        let mut i = 0;
        while i + 16 <= len {
            let x = vld1q_u8(src.as_ptr().add(i));
            let p = product16(lo_t, hi_t, mask, x);
            let d = vld1q_u8(dst.as_ptr().add(i));
            vst1q_u8(dst.as_mut_ptr().add(i), veorq_u8(d, p));
            i += 16;
        }
        mul_acc_tail(c, &src[i..], &mut dst[i..]);
    }

    /// # Safety
    ///
    /// Same contract as [`mul_acc_neon`].
    #[target_feature(enable = "neon")]
    unsafe fn mul_neon(c: u8, src: &[u8], dst: &mut [u8]) {
        let lo_t = vld1q_u8(SPLIT.lo[c as usize].as_ptr());
        let hi_t = vld1q_u8(SPLIT.hi[c as usize].as_ptr());
        let mask = vdupq_n_u8(0x0F);
        let len = src.len();
        let mut i = 0;
        while i + 16 <= len {
            let x = vld1q_u8(src.as_ptr().add(i));
            vst1q_u8(dst.as_mut_ptr().add(i), product16(lo_t, hi_t, mask, x));
            i += 16;
        }
        mul_tail(c, &src[i..], &mut dst[i..]);
    }

    /// # Safety
    ///
    /// Same contract as [`mul_acc_neon`]; `buf` is both input and output.
    #[target_feature(enable = "neon")]
    unsafe fn mul_in_place_neon(c: u8, buf: &mut [u8]) {
        let lo_t = vld1q_u8(SPLIT.lo[c as usize].as_ptr());
        let hi_t = vld1q_u8(SPLIT.hi[c as usize].as_ptr());
        let mask = vdupq_n_u8(0x0F);
        let len = buf.len();
        let mut i = 0;
        while i + 16 <= len {
            let x = vld1q_u8(buf.as_ptr().add(i));
            vst1q_u8(buf.as_mut_ptr().add(i), product16(lo_t, hi_t, mask, x));
            i += 16;
        }
        mul_in_place_tail(c, &mut buf[i..]);
    }

    /// Register-fused multi-row product on 64-byte strips: four 16-byte
    /// accumulators stay in `q` registers across every term, so the
    /// destination is loaded and stored exactly once per strip.
    ///
    /// # Safety
    ///
    /// Caller must have verified NEON support; slice lengths all equal.
    #[target_feature(enable = "neon")]
    unsafe fn mul_acc_rows_neon(terms: &[(u8, &[u8])], dst: &mut [u8]) {
        let mask = vdupq_n_u8(0x0F);
        let len = dst.len();
        let mut i = 0;
        while i + 64 <= len {
            let d = dst.as_mut_ptr().add(i);
            let mut a0 = vld1q_u8(d);
            let mut a1 = vld1q_u8(d.add(16));
            let mut a2 = vld1q_u8(d.add(32));
            let mut a3 = vld1q_u8(d.add(48));
            for &(c, src) in terms {
                let lo_t = vld1q_u8(SPLIT.lo[c as usize].as_ptr());
                let hi_t = vld1q_u8(SPLIT.hi[c as usize].as_ptr());
                let s = src.as_ptr().add(i);
                a0 = veorq_u8(a0, product16(lo_t, hi_t, mask, vld1q_u8(s)));
                a1 = veorq_u8(a1, product16(lo_t, hi_t, mask, vld1q_u8(s.add(16))));
                a2 = veorq_u8(a2, product16(lo_t, hi_t, mask, vld1q_u8(s.add(32))));
                a3 = veorq_u8(a3, product16(lo_t, hi_t, mask, vld1q_u8(s.add(48))));
            }
            vst1q_u8(d, a0);
            vst1q_u8(d.add(16), a1);
            vst1q_u8(d.add(32), a2);
            vst1q_u8(d.add(48), a3);
            i += 64;
        }
        for &(c, src) in terms {
            mul_acc_neon(c, &src[i..], &mut dst[i..]);
        }
    }

    impl Kernel for NeonKernel {
        fn name(&self) -> &'static str {
            "neon"
        }

        fn mul_acc_raw(&self, c: u8, src: &[u8], dst: &mut [u8]) {
            // Safety: this kernel is only registered after
            // `is_aarch64_feature_detected!("neon")` returned true.
            unsafe { mul_acc_neon(c, src, dst) }
        }

        fn mul_raw(&self, c: u8, src: &[u8], dst: &mut [u8]) {
            // Safety: as above — registration implies detection.
            unsafe { mul_neon(c, src, dst) }
        }

        fn mul_in_place_raw(&self, c: u8, buf: &mut [u8]) {
            // Safety: as above — registration implies detection.
            unsafe { mul_in_place_neon(c, buf) }
        }

        fn mul_acc_rows_raw(&self, terms: &[(u8, &[u8])], dst: &mut [u8]) {
            // Safety: as above — registration implies detection.
            unsafe { mul_acc_rows_neon(terms, dst) }
        }
    }
}

#[cfg(target_arch = "aarch64")]
pub(super) use arm::NEON;
