//! Dense matrices over GF(2⁸) with the operations the code constructions
//! need: multiplication, Gauss-Jordan inversion, rank, row selection and
//! Kronecker expansion.

use core::fmt;
use core::ops::Mul;

use crate::field_trait::Field;
use crate::Gf256;

/// A dense row-major matrix over GF(2⁸).
///
/// # Examples
///
/// ```
/// use gf256::{Gf256, Matrix};
///
/// let v = Matrix::vandermonde(5, 3);
/// let top = v.select_rows(&[0, 1, 2]);
/// let inv = top.inverse().expect("vandermonde top square is invertible");
/// assert!((&top * &inv).is_identity());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct MatrixOf<F = Gf256> {
    rows: usize,
    cols: usize,
    data: Vec<F>,
}

/// The GF(2⁸) matrix used throughout the coding crates.
pub type Matrix = MatrixOf<Gf256>;

impl<F: Field> MatrixOf<F> {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        MatrixOf {
            rows,
            cols,
            data: vec![F::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = MatrixOf::zeros(n, n);
        for i in 0..n {
            m.set(i, i, F::ONE);
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        MatrixOf { rows, cols, data }
    }

    /// An `n × k` Vandermonde matrix with evaluation points `x_i = g^i`
    /// for the field generator `g` (distinct while `n < ORDER − 1` …
    /// `n ≤ 255` over GF(2⁸), `n ≤ 65535` over GF(2¹⁶)): entry
    /// `(i, j) = x_i^j`.
    ///
    /// Any `k` rows of it form a square Vandermonde matrix with distinct
    /// points, hence invertible — the classic MDS generator.
    ///
    /// # Panics
    ///
    /// Panics if `n ≥ ORDER` (points would repeat) or `k > n`.
    pub fn vandermonde(n: usize, k: usize) -> Self {
        assert!(
            (n as u64) < F::ORDER,
            "at most ORDER - 1 distinct evaluation points"
        );
        assert!(k <= n, "k must not exceed n");
        MatrixOf::from_fn(n, k, |i, j| F::exp_gen(i as u64).pow_u64(j as u64))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> F {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: F) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[F] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterates over the rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[F]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns a new matrix made of the given rows, in the given order
    /// (duplicates allowed).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> MatrixOf<F> {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &r in indices {
            data.extend_from_slice(self.row(r));
        }
        MatrixOf {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// Returns the submatrix at the intersection of the given rows and
    /// columns, in the given orders.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select(&self, rows: &[usize], cols: &[usize]) -> MatrixOf<F> {
        for &c in cols {
            assert!(c < self.cols, "column out of bounds");
        }
        MatrixOf::from_fn(rows.len(), cols.len(), |r, c| self.get(rows[r], cols[c]))
    }

    /// Stacks `self` on top of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &MatrixOf<F>) -> MatrixOf<F> {
        assert_eq!(self.cols, other.cols, "column count mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        MatrixOf {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Concatenates `self` with `other` side by side.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn hstack(&self, other: &MatrixOf<F>) -> MatrixOf<F> {
        assert_eq!(self.rows, other.rows, "row count mismatch");
        let mut m = MatrixOf::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                m.set(r, c, self.get(r, c));
            }
            for c in 0..other.cols {
                m.set(r, self.cols + c, other.get(r, c));
            }
        }
        m
    }

    /// The transpose.
    pub fn transpose(&self) -> MatrixOf<F> {
        MatrixOf::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Kronecker product `self ⊗ I_n` — the *expansion* step of the Carousel
    /// construction (paper §VI-A): every scalar entry is replaced by that
    /// scalar times an `n × n` identity block.
    pub fn kron_identity(&self, n: usize) -> MatrixOf<F> {
        let mut m = MatrixOf::zeros(self.rows * n, self.cols * n);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let v = self.get(r, c);
                if !v.is_zero() {
                    for t in 0..n {
                        m.set(r * n + t, c * n + t, v);
                    }
                }
            }
        }
        m
    }

    /// Applies a row permutation: row `i` of the result is row `perm[i]` of
    /// `self`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..rows`.
    pub fn permute_rows(&self, perm: &[usize]) -> MatrixOf<F> {
        assert_eq!(perm.len(), self.rows, "permutation length mismatch");
        let mut seen = vec![false; self.rows];
        for &p in perm {
            assert!(p < self.rows && !seen[p], "not a permutation");
            seen[p] = true;
        }
        self.select_rows(perm)
    }

    /// Matrix-vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn mul_vec(&self, v: &[F]) -> Vec<F> {
        let mut out = vec![F::ZERO; self.rows];
        self.mul_vec_into(v, &mut out);
        out
    }

    /// Matrix-vector product `self · v` written into a caller-provided
    /// buffer, for the per-stripe loops that would otherwise allocate a
    /// fresh `Vec` on every call.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols` or `out.len() != rows`.
    pub fn mul_vec_into(&self, v: &[F], out: &mut [F]) {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        assert_eq!(out.len(), self.rows, "output length mismatch");
        for (row, slot) in self.iter_rows().zip(out.iter_mut()) {
            let mut acc = F::ZERO;
            for (a, b) in row.iter().zip(v) {
                acc = acc + *a * *b;
            }
            *slot = acc;
        }
    }

    /// The multiplicative inverse via Gauss-Jordan elimination, or `None`
    /// if the matrix is singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn inverse(&self) -> Option<MatrixOf<F>> {
        assert_eq!(self.rows, self.cols, "inverse of non-square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = MatrixOf::identity(n);
        for col in 0..n {
            // Find a pivot.
            let pivot = (col..n).find(|&r| !a.get(r, col).is_zero())?;
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            let p = Field::inv(a.get(col, col)).expect("pivot is nonzero");
            a.scale_row(col, p);
            inv.scale_row(col, p);
            for r in 0..n {
                if r != col {
                    let f = a.get(r, col);
                    if !f.is_zero() {
                        a.add_scaled_row(col, r, f);
                        inv.add_scaled_row(col, r, f);
                    }
                }
            }
        }
        Some(inv)
    }

    /// The rank, computed by Gaussian elimination on a copy.
    pub fn rank(&self) -> usize {
        let mut a = self.clone();
        let mut rank = 0;
        for col in 0..a.cols {
            if rank == a.rows {
                break;
            }
            if let Some(pivot) = (rank..a.rows).find(|&r| !a.get(r, col).is_zero()) {
                a.swap_rows(pivot, rank);
                let p = Field::inv(a.get(rank, col)).expect("pivot is nonzero");
                a.scale_row(rank, p);
                for r in 0..a.rows {
                    if r != rank {
                        let f = a.get(r, col);
                        if !f.is_zero() {
                            a.add_scaled_row(rank, r, f);
                        }
                    }
                }
                rank += 1;
            }
        }
        rank
    }

    /// Greedily selects the indices of the first `count` linearly
    /// independent rows (scanning top to bottom), or `None` if the matrix
    /// has rank below `count`.
    pub fn independent_rows(&self, count: usize) -> Option<Vec<usize>> {
        if count == 0 {
            return Some(Vec::new());
        }
        // Incremental Gaussian elimination over candidate rows.
        let mut basis: Vec<Vec<F>> = Vec::with_capacity(count);
        let mut pivots: Vec<usize> = Vec::with_capacity(count);
        let mut chosen = Vec::with_capacity(count);
        for r in 0..self.rows {
            let mut row = self.row(r).to_vec();
            // Reduce against the basis.
            for (b, &p) in basis.iter().zip(&pivots) {
                let f = row[p];
                if !f.is_zero() {
                    for (x, y) in row.iter_mut().zip(b) {
                        *x = *x - f * *y;
                    }
                }
            }
            if let Some(p) = row.iter().position(|v| !v.is_zero()) {
                let inv = Field::inv(row[p]).expect("nonzero pivot");
                for x in row.iter_mut() {
                    *x = *x * inv;
                }
                basis.push(row);
                pivots.push(p);
                chosen.push(r);
                if chosen.len() == count {
                    return Some(chosen);
                }
            }
        }
        None
    }

    /// `true` if the matrix is square and invertible.
    pub fn is_invertible(&self) -> bool {
        self.rows == self.cols && self.rank() == self.rows
    }

    /// `true` if this is exactly an identity matrix.
    pub fn is_identity(&self) -> bool {
        self.rows == self.cols
            && (0..self.rows).all(|r| {
                (0..self.cols).all(|c| self.get(r, c) == if r == c { F::ONE } else { F::ZERO })
            })
    }

    /// Number of nonzero entries — the sparsity measure of paper Fig. 5.
    pub fn nonzeros(&self) -> usize {
        self.data.iter().filter(|v| !v.is_zero()).count()
    }

    /// Number of nonzero entries in row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_weight(&self, r: usize) -> usize {
        self.row(r).iter().filter(|v| !v.is_zero()).count()
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }

    fn scale_row(&mut self, r: usize, f: F) {
        for c in 0..self.cols {
            let v = self.get(r, c) * f;
            self.set(r, c, v);
        }
    }

    /// `row[dst] += f * row[src]`.
    fn add_scaled_row(&mut self, src: usize, dst: usize, f: F) {
        for c in 0..self.cols {
            let v = self.get(dst, c) + self.get(src, c) * f;
            self.set(dst, c, v);
        }
    }
}

impl Matrix {
    /// Builds a matrix from rows of raw bytes.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length.
    pub fn from_rows(rows: &[Vec<u8>]) -> Self {
        let cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "ragged rows");
            data.extend(row.iter().map(|&b| Gf256::new(b)));
        }
        MatrixOf {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// An `n × k` Cauchy matrix: entry `(i, j) = 1 / (x_i + y_j)` with
    /// `x_i = g^i`... see [`builders::cauchy`](crate::builders::cauchy) for
    /// the checked general form. This convenience uses `x_i = i`,
    /// `y_j = n + j` as bytes.
    ///
    /// # Panics
    ///
    /// Panics if `n + k > 256`.
    pub fn cauchy(n: usize, k: usize) -> Self {
        assert!(n + k <= 256, "need n + k distinct field elements");
        MatrixOf::from_fn(n, k, |i, j| {
            (Gf256::new(i as u8) + Gf256::new((n + j) as u8))
                .inv()
                .expect("x_i and y_j are disjoint")
        })
    }
}

impl<F: Field> Mul for &MatrixOf<F> {
    type Output = MatrixOf<F>;

    /// Matrix product.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not match.
    fn mul(self, rhs: &MatrixOf<F>) -> MatrixOf<F> {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in matrix product");
        let mut out = MatrixOf::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for i in 0..self.cols {
                let a = self.get(r, i);
                if a.is_zero() {
                    continue;
                }
                for c in 0..rhs.cols {
                    let v = out.get(r, c) + a * rhs.get(i, c);
                    out.set(r, c, v);
                }
            }
        }
        out
    }
}

impl<F: Field + fmt::Display> fmt::Debug for MatrixOf<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{} ", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl<F: Field + fmt::Display> fmt::Display for MatrixOf<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{}", self.get(r, c))?;
            }
            if r + 1 < self.rows {
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_is_multiplicative_identity() {
        let m = Matrix::vandermonde(4, 4);
        let i = Matrix::identity(4);
        assert_eq!(&m * &i, m);
        assert_eq!(&i * &m, m);
    }

    #[test]
    fn vandermonde_any_k_rows_invertible() {
        let v = Matrix::vandermonde(8, 3);
        // Exhaustively check all C(8,3) row subsets.
        for a in 0..8 {
            for b in (a + 1)..8 {
                for c in (b + 1)..8 {
                    let sub = v.select_rows(&[a, b, c]);
                    assert!(sub.is_invertible(), "rows {a},{b},{c} singular");
                }
            }
        }
    }

    #[test]
    fn cauchy_any_k_rows_invertible() {
        let m = Matrix::cauchy(7, 3);
        for a in 0..7 {
            for b in (a + 1)..7 {
                for c in (b + 1)..7 {
                    assert!(m.select_rows(&[a, b, c]).is_invertible());
                }
            }
        }
    }

    #[test]
    fn inverse_round_trip() {
        let m = Matrix::vandermonde(5, 5);
        let inv = m.inverse().expect("full vandermonde is invertible");
        assert!((&m * &inv).is_identity());
        assert!((&inv * &m).is_identity());
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let mut m = Matrix::identity(3);
        m.set(2, 2, Gf256::ZERO);
        assert_eq!(m.inverse(), None);
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn kron_identity_structure() {
        let m = Matrix::from_rows(&[vec![1, 2], vec![3, 0]]);
        let k = m.kron_identity(3);
        assert_eq!(k.rows(), 6);
        assert_eq!(k.cols(), 6);
        assert_eq!(k.get(0, 0), Gf256::new(1));
        assert_eq!(k.get(1, 1), Gf256::new(1));
        assert_eq!(k.get(0, 3), Gf256::new(2));
        assert_eq!(k.get(2, 5), Gf256::new(2));
        assert_eq!(k.get(3, 0), Gf256::new(3));
        assert_eq!(k.get(3, 3), Gf256::ZERO);
        assert_eq!(k.nonzeros(), 9);
    }

    #[test]
    fn kron_identity_commutes_with_product() {
        let a = Matrix::vandermonde(4, 3);
        let b = Matrix::vandermonde(3, 3);
        let lhs = (&a * &b).kron_identity(2);
        let rhs = &a.kron_identity(2) * &b.kron_identity(2);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn permute_rows_round_trip() {
        let m = Matrix::vandermonde(4, 2);
        let perm = [2, 0, 3, 1];
        let p = m.permute_rows(&perm);
        for (i, &src) in perm.iter().enumerate() {
            assert_eq!(p.row(i), m.row(src));
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permute_rows_rejects_duplicates() {
        let m = Matrix::identity(3);
        let _ = m.permute_rows(&[0, 0, 1]);
    }

    #[test]
    fn hstack_vstack_shapes() {
        let a = Matrix::identity(2);
        let b = Matrix::zeros(2, 3);
        let h = a.hstack(&b);
        assert_eq!((h.rows(), h.cols()), (2, 5));
        let v = a.vstack(&Matrix::identity(2));
        assert_eq!((v.rows(), v.cols()), (4, 2));
        assert_eq!(v.get(2, 0), Gf256::ONE);
    }

    #[test]
    fn independent_rows_greedy() {
        // Rows: e0, e0 (dup), e1, e0+e1, e2.
        let m = Matrix::from_rows(&[
            vec![1, 0, 0],
            vec![1, 0, 0],
            vec![0, 1, 0],
            vec![1, 1, 0],
            vec![0, 0, 1],
        ]);
        assert_eq!(m.independent_rows(3), Some(vec![0, 2, 4]));
        assert_eq!(m.independent_rows(4), None, "rank is only 3");
        assert_eq!(m.independent_rows(0), Some(vec![]));
        assert_eq!(m.independent_rows(1), Some(vec![0]));
    }

    #[test]
    fn select_rows_and_cols() {
        let m = Matrix::vandermonde(4, 3);
        let s = m.select(&[3, 1], &[2, 0]);
        assert_eq!((s.rows(), s.cols()), (2, 2));
        assert_eq!(s.get(0, 0), m.get(3, 2));
        assert_eq!(s.get(0, 1), m.get(3, 0));
        assert_eq!(s.get(1, 0), m.get(1, 2));
        // Empty selections are fine.
        let e = m.select(&[], &[]);
        assert_eq!((e.rows(), e.cols()), (0, 0));
    }

    #[test]
    #[should_panic(expected = "column out of bounds")]
    fn select_validates_columns() {
        let m = Matrix::identity(2);
        let _ = m.select(&[0], &[5]);
    }

    #[test]
    fn generic_matrix_over_gf65536() {
        use crate::Gf65536;
        // The same machinery runs over the wide field: a 300-point
        // Vandermonde (impossible over GF(2^8)) with invertible submatrices.
        let v: MatrixOf<Gf65536> = MatrixOf::vandermonde(300, 4);
        let sub = v.select_rows(&[0, 99, 199, 299]);
        assert!(sub.is_invertible());
        let inv = sub.inverse().expect("vandermonde subset invertible");
        assert!((&sub * &inv).is_identity());
        assert_eq!(v.rank(), 4);
    }

    #[test]
    #[should_panic(expected = "distinct evaluation points")]
    fn wide_vandermonde_point_limit() {
        use crate::Gf65536;
        let _: MatrixOf<Gf65536> = MatrixOf::vandermonde(65536, 4);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::vandermonde(5, 3);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn mul_vec_matches_matrix_product() {
        let m = Matrix::vandermonde(4, 3);
        let v = [Gf256::new(9), Gf256::new(4), Gf256::new(200)];
        let got = m.mul_vec(&v);
        let col = Matrix::from_fn(3, 1, |r, _| v[r]);
        let want = &m * &col;
        for (r, g) in got.iter().enumerate() {
            assert_eq!(*g, want.get(r, 0));
        }
    }

    proptest! {
        #[test]
        fn prop_random_matrix_inverse(seed in any::<u64>()) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let n = rng.gen_range(1..7usize);
            let m = Matrix::from_fn(n, n, |_, _| Gf256::new(rng.gen()));
            if let Some(inv) = m.inverse() {
                prop_assert!((&m * &inv).is_identity());
                prop_assert!((&inv * &m).is_identity());
                prop_assert_eq!(m.rank(), n);
            } else {
                prop_assert!(m.rank() < n);
            }
        }

        #[test]
        fn prop_rank_bounded(seed in any::<u64>()) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let r = rng.gen_range(1..6usize);
            let c = rng.gen_range(1..6usize);
            let m = Matrix::from_fn(r, c, |_, _| Gf256::new(rng.gen()));
            prop_assert!(m.rank() <= r.min(c));
        }
    }
}
