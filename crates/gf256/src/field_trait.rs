//! The [`Field`] abstraction: what the matrix algebra and code
//! constructions actually require of their scalars.
//!
//! The paper works in GF(2⁸) ("we assume that a symbol is a byte") but
//! notes that "the symbol and its corresponding Galois field may have
//! different sizes in practice". This trait lets the generic matrix — and
//! the wide Reed-Solomon codes built on it — run over GF(2¹⁶) as well,
//! lifting the 255-block limit.

use core::fmt::Debug;
use core::ops::{Add, Mul, Neg, Sub};

/// A finite field element.
///
/// Implemented by [`Gf256`](crate::Gf256) and
/// [`Gf65536`](crate::Gf65536).
pub trait Field:
    Copy
    + Eq
    + Debug
    + Default
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;
    /// Number of field elements.
    const ORDER: u64;

    /// Multiplicative inverse; `None` for zero.
    fn inv(self) -> Option<Self>;

    /// `g^i` for a fixed generator `g` of the multiplicative group —
    /// guarantees `ORDER − 1` distinct nonzero values.
    fn exp_gen(i: u64) -> Self;

    /// `true` for the additive identity.
    fn is_zero(self) -> bool {
        self == Self::ZERO
    }

    /// Exponentiation by squaring (with `0⁰ = 1`).
    fn pow_u64(self, mut e: u64) -> Self {
        if e == 0 {
            return Self::ONE;
        }
        let mut base = self;
        let mut acc = Self::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc * base;
            }
            base = base * base;
            e >>= 1;
        }
        acc
    }
}

impl Field for crate::Gf256 {
    const ZERO: Self = crate::Gf256::ZERO;
    const ONE: Self = crate::Gf256::ONE;
    const ORDER: u64 = 256;

    fn inv(self) -> Option<Self> {
        crate::Gf256::inv(self)
    }

    fn exp_gen(i: u64) -> Self {
        crate::Gf256::exp((i % 255) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gf256;

    // a - a == 0 is the axiom under test, not a typo.
    #[allow(clippy::eq_op)]
    fn field_axioms<F: Field>(samples: &[F]) {
        for &a in samples {
            assert_eq!(a + F::ZERO, a);
            assert_eq!(a * F::ONE, a);
            assert_eq!(a * F::ZERO, F::ZERO);
            assert_eq!(a - a, F::ZERO);
            if !a.is_zero() {
                assert_eq!(a * Field::inv(a).unwrap(), F::ONE);
            }
            for &b in samples {
                assert_eq!(a + b, b + a);
                assert_eq!(a * b, b * a);
                for &c in samples {
                    assert_eq!(a * (b + c), a * b + a * c);
                }
            }
        }
    }

    #[test]
    fn gf256_satisfies_axioms() {
        let samples: Vec<Gf256> = [0u8, 1, 2, 7, 0x53, 0xFF]
            .iter()
            .map(|&v| Gf256::new(v))
            .collect();
        field_axioms(&samples);
    }

    #[test]
    fn gf256_exp_gen_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..255u64 {
            assert!(seen.insert(Gf256::exp_gen(i)), "repeat at {i}");
        }
        assert_eq!(Gf256::exp_gen(255), Gf256::exp_gen(0));
    }

    #[test]
    fn pow_u64_matches_pow() {
        let a = Gf256::new(0x3D);
        for e in 0..300u64 {
            assert_eq!(a.pow_u64(e), a.pow(e as u32));
        }
    }
}
