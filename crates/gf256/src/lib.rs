//! Arithmetic over the Galois field GF(2⁸) and dense matrix algebra on top
//! of it, as used throughout the Carousel codes reproduction.
//!
//! The paper performs all coding operations as vector/matrix multiplications
//! over GF(2⁸) (one symbol = one byte), originally via Intel ISA-L. This
//! crate is the Rust substitute: log/exp table arithmetic for scalars, a
//! runtime-dispatched [`mod@kernel`] engine for long byte slices (scalar
//! reference, 4-bit split-table and 64-bit SWAR portable kernels, plus
//! SSSE3/AVX2 PSHUFB and aarch64 NEON split-table kernels registered by
//! runtime CPU-feature detection, all behind a `Copy` [`KernelHandle`] and
//! selectable via `CAROUSEL_KERNEL`), and a dense [`Matrix`] type with
//! Gauss-Jordan inversion plus the structured builders (Vandermonde,
//! Cauchy, Kronecker) the code constructions need.
//!
//! `unsafe` is denied crate-wide with one carve-out: the intrinsics inside
//! [`kernel::simd`], each behind a `#[target_feature]` function whose
//! kernel is only registered after the feature was detected.
//!
//! # Examples
//!
//! ```
//! use gf256::{Gf256, Matrix};
//!
//! let a = Gf256::new(0x53);
//! let b = Gf256::new(0xCA);
//! assert_eq!((a * b) / b, a);
//!
//! let m = Matrix::vandermonde(4, 2);
//! assert_eq!(m.rank(), 2);
//! ```

#![deny(unsafe_code)] // allowed back on only in kernel::simd (see check.sh)
#![warn(missing_docs)]

mod field;
mod field_trait;
mod gf65536;
mod matrix;
mod tables;

pub mod builders;
pub mod kernel;

pub use field::Gf256;
pub use field_trait::Field;
pub use gf65536::Gf65536;
pub use kernel::{
    by_name, detected_best, detected_features, kernel, kernels, Kernel, KernelHandle,
};
pub use matrix::{Matrix, MatrixOf};
