//! Bulk kernels: multiply/accumulate long byte slices by a field constant.
//!
//! These are the hot loops of every encode, decode and repair operation: a
//! coded symbol row is `w` bytes long (hundreds of kilobytes to megabytes in
//! the paper's 512 MB-block experiments), and each output row is a linear
//! combination of input rows. The kernels use the 4-bit split tables from
//! [`crate::tables`], processing 8 bytes per iteration to give the optimizer
//! room to unroll and vectorize.

use std::sync::LazyLock;

use crate::tables::SPLIT;
use crate::Gf256;

/// Bytes pushed through the split-table multiply loops. Cached `&'static`
/// handles keep the hot path to one relaxed atomic add; with the
/// `telemetry` feature off the guard below is dead code.
static MUL_BYTES: LazyLock<&'static telemetry::Counter> =
    LazyLock::new(|| telemetry::counter("gf256.mul_bytes"));
/// Bytes pushed through the pure-XOR path (coefficient-1 terms).
static XOR_BYTES: LazyLock<&'static telemetry::Counter> =
    LazyLock::new(|| telemetry::counter("gf256.xor_bytes"));

/// `dst[i] ^= src[i]` — adds `src` into `dst` over GF(2⁸).
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn add_assign_slice(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    if telemetry::ENABLED {
        XOR_BYTES.add(dst.len() as u64);
    }
    // XOR eight bytes at a time; this is the hot path for coefficient-1
    // terms (all of replication-style copying and the XOR parts of sparse
    // rows), and the u64 lanes let the optimizer vectorize further.
    let mut dst_chunks = dst.chunks_exact_mut(8);
    let mut src_chunks = src.chunks_exact(8);
    for (d, s) in (&mut dst_chunks).zip(&mut src_chunks) {
        let x = u64::from_ne_bytes(d[..8].try_into().expect("chunk of 8"))
            ^ u64::from_ne_bytes(s[..8].try_into().expect("chunk of 8"));
        d.copy_from_slice(&x.to_ne_bytes());
    }
    for (d, s) in dst_chunks
        .into_remainder()
        .iter_mut()
        .zip(src_chunks.remainder())
    {
        *d ^= s;
    }
}

/// `dst[i] = c * src[i]` for every byte.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn mul_slice(c: Gf256, src: &[u8], dst: &mut [u8]) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    if c.is_zero() {
        dst.fill(0);
        return;
    }
    if c == Gf256::ONE {
        dst.copy_from_slice(src);
        return;
    }
    if telemetry::ENABLED {
        MUL_BYTES.add(dst.len() as u64);
    }
    let lo = &SPLIT.lo[c.value() as usize];
    let hi = &SPLIT.hi[c.value() as usize];
    for (d, s) in dst.iter_mut().zip(src) {
        *d = lo[(s & 0xF) as usize] ^ hi[(s >> 4) as usize];
    }
}

/// `buf[i] = c * buf[i]` for every byte, in place.
pub fn mul_slice_in_place(c: Gf256, buf: &mut [u8]) {
    if c.is_zero() {
        buf.fill(0);
        return;
    }
    if c == Gf256::ONE {
        return;
    }
    if telemetry::ENABLED {
        MUL_BYTES.add(buf.len() as u64);
    }
    let lo = &SPLIT.lo[c.value() as usize];
    let hi = &SPLIT.hi[c.value() as usize];
    for b in buf.iter_mut() {
        *b = lo[(*b & 0xF) as usize] ^ hi[(*b >> 4) as usize];
    }
}

/// `dst[i] ^= c * src[i]` — the multiply-accumulate at the heart of encoding.
///
/// Skips the work entirely when `c` is zero; this is what makes the sparse
/// generating matrices of Carousel codes (paper §VIII-A, Fig. 5) encode as
/// cheaply as the RS codes they were built from.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn mul_acc_slice(c: Gf256, src: &[u8], dst: &mut [u8]) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    if c.is_zero() {
        return;
    }
    if c == Gf256::ONE {
        add_assign_slice(dst, src);
        return;
    }
    if telemetry::ENABLED {
        MUL_BYTES.add(dst.len() as u64);
    }
    let lo = &SPLIT.lo[c.value() as usize];
    let hi = &SPLIT.hi[c.value() as usize];
    let mut dst_chunks = dst.chunks_exact_mut(8);
    let mut src_chunks = src.chunks_exact(8);
    for (d, s) in (&mut dst_chunks).zip(&mut src_chunks) {
        for i in 0..8 {
            d[i] ^= lo[(s[i] & 0xF) as usize] ^ hi[(s[i] >> 4) as usize];
        }
    }
    for (d, s) in dst_chunks
        .into_remainder()
        .iter_mut()
        .zip(src_chunks.remainder())
    {
        *d ^= lo[(s & 0xF) as usize] ^ hi[(s >> 4) as usize];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn scalar_mul(c: u8, x: u8) -> u8 {
        (Gf256::new(c) * Gf256::new(x)).value()
    }

    #[test]
    fn mul_slice_matches_scalar() {
        let src: Vec<u8> = (0..=255).collect();
        let mut dst = vec![0u8; 256];
        for c in [0u8, 1, 2, 0x1D, 0x85, 0xFF] {
            mul_slice(Gf256::new(c), &src, &mut dst);
            for (i, &d) in dst.iter().enumerate() {
                assert_eq!(d, scalar_mul(c, src[i]));
            }
        }
    }

    #[test]
    fn mul_acc_slice_accumulates() {
        let src: Vec<u8> = (0..100).map(|i| (i * 7 + 3) as u8).collect();
        let mut dst: Vec<u8> = (0..100).map(|i| (i * 13 + 1) as u8).collect();
        let before = dst.clone();
        mul_acc_slice(Gf256::new(0x3C), &src, &mut dst);
        for i in 0..100 {
            assert_eq!(dst[i], before[i] ^ scalar_mul(0x3C, src[i]));
        }
    }

    #[test]
    fn mul_acc_zero_coefficient_is_noop() {
        let src = vec![0xAB; 64];
        let mut dst = vec![0x12; 64];
        mul_acc_slice(Gf256::ZERO, &src, &mut dst);
        assert_eq!(dst, vec![0x12; 64]);
    }

    #[test]
    fn in_place_matches_out_of_place() {
        let src: Vec<u8> = (0..77).map(|i| (i * 31) as u8).collect();
        let mut a = src.clone();
        let mut b = vec![0u8; src.len()];
        mul_slice_in_place(Gf256::new(0x9E), &mut a);
        mul_slice(Gf256::new(0x9E), &src, &mut b);
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn prop_mul_slice_elementwise(c in 0u8..=255, data in proptest::collection::vec(any::<u8>(), 0..200)) {
            let mut dst = vec![0u8; data.len()];
            mul_slice(Gf256::new(c), &data, &mut dst);
            for i in 0..data.len() {
                prop_assert_eq!(dst[i], scalar_mul(c, data[i]));
            }
        }

        #[test]
        fn prop_mul_acc_is_linear(
            c1 in 0u8..=255, c2 in 0u8..=255,
            data in proptest::collection::vec(any::<u8>(), 1..200),
        ) {
            // (c1 + c2) * x == c1 * x + c2 * x, accumulated into one buffer.
            let mut acc = vec![0u8; data.len()];
            mul_acc_slice(Gf256::new(c1), &data, &mut acc);
            mul_acc_slice(Gf256::new(c2), &data, &mut acc);
            let mut direct = vec![0u8; data.len()];
            mul_acc_slice(Gf256::new(c1) + Gf256::new(c2), &data, &mut direct);
            prop_assert_eq!(acc, direct);
        }

        #[test]
        fn prop_add_assign_is_involutive(data in proptest::collection::vec(any::<u8>(), 0..200)) {
            let mut dst = vec![0x5Au8; data.len()];
            let orig = dst.clone();
            add_assign_slice(&mut dst, &data);
            add_assign_slice(&mut dst, &data);
            prop_assert_eq!(dst, orig);
        }
    }
}
