//! Deprecated free-function façade over the kernel engine.
//!
//! These were the original public slice kernels; the runtime-dispatched
//! engine in [`crate::kernel`] replaced them. Each shim delegates to the
//! process-default [`KernelHandle`](crate::KernelHandle) so out-of-tree
//! callers keep compiling for one release, but new code should hold a
//! handle from [`crate::kernel()`] instead — it is `Copy`, selectable via
//! `CAROUSEL_KERNEL`, and exposes the fused multi-row product the free
//! functions never had.

use crate::Gf256;

/// `dst[i] ^= src[i]` — adds `src` into `dst` over GF(2⁸).
///
/// # Panics
///
/// Panics if the two slices have different lengths.
#[deprecated(since = "0.1.0", note = "use gf256::kernel().add_assign(dst, src)")]
pub fn add_assign_slice(dst: &mut [u8], src: &[u8]) {
    crate::kernel().add_assign(dst, src);
}

/// `dst[i] = c * src[i]` for every byte.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
#[deprecated(since = "0.1.0", note = "use gf256::kernel().mul(c, src, dst)")]
pub fn mul_slice(c: Gf256, src: &[u8], dst: &mut [u8]) {
    crate::kernel().mul(c, src, dst);
}

/// `buf[i] = c * buf[i]` for every byte, in place.
#[deprecated(since = "0.1.0", note = "use gf256::kernel().mul_in_place(c, buf)")]
pub fn mul_slice_in_place(c: Gf256, buf: &mut [u8]) {
    crate::kernel().mul_in_place(c, buf);
}

/// `dst[i] ^= c * src[i]` — multiply-accumulate.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
#[deprecated(since = "0.1.0", note = "use gf256::kernel().mul_acc(c, src, dst)")]
pub fn mul_acc_slice(c: Gf256, src: &[u8], dst: &mut [u8]) {
    crate::kernel().mul_acc(c, src, dst);
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    fn scalar_mul(c: u8, x: u8) -> u8 {
        (Gf256::new(c) * Gf256::new(x)).value()
    }

    #[test]
    fn shims_delegate_to_default_kernel() {
        let src: Vec<u8> = (0..300).map(|i| (i * 31 + 5) as u8).collect();
        let c = Gf256::new(0x9E);

        let mut shim = vec![0u8; src.len()];
        mul_slice(c, &src, &mut shim);
        let mut handle = vec![0u8; src.len()];
        crate::kernel().mul(c, &src, &mut handle);
        assert_eq!(shim, handle);
        for (s, d) in src.iter().zip(&shim) {
            assert_eq!(*d, scalar_mul(0x9E, *s));
        }

        let mut acc = vec![0x12u8; src.len()];
        mul_acc_slice(c, &src, &mut acc);
        for (s, d) in src.iter().zip(&acc) {
            assert_eq!(*d, 0x12 ^ scalar_mul(0x9E, *s));
        }

        let mut in_place = src.clone();
        mul_slice_in_place(c, &mut in_place);
        assert_eq!(in_place, shim);

        let mut xored = vec![0x5Au8; src.len()];
        add_assign_slice(&mut xored, &src);
        add_assign_slice(&mut xored, &src);
        assert_eq!(xored, vec![0x5Au8; src.len()]);
    }
}
