//! Scalar element of GF(2⁸).

// In characteristic 2, addition and subtraction ARE xor, and division
// is multiplication by the inverse; the lint's heuristic doesn't apply.
#![allow(clippy::suspicious_arithmetic_impl, clippy::suspicious_op_assign_impl)]

use core::fmt;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::tables::{EXP, LOG};

/// An element of the Galois field GF(2⁸) with primitive polynomial 0x11D.
///
/// Addition is XOR; multiplication uses log/exp tables. All operations are
/// total except division by zero, which panics.
///
/// # Examples
///
/// ```
/// use gf256::Gf256;
///
/// let a = Gf256::new(7);
/// assert_eq!(a + a, Gf256::ZERO);          // characteristic 2
/// assert_eq!(a * a.inv().unwrap(), Gf256::ONE);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Gf256(pub u8);

impl Gf256 {
    /// The additive identity.
    pub const ZERO: Gf256 = Gf256(0);
    /// The multiplicative identity.
    pub const ONE: Gf256 = Gf256(1);
    /// The generator `g = 2` of the multiplicative group.
    pub const GENERATOR: Gf256 = Gf256(2);

    /// Wraps a byte as a field element.
    #[inline]
    pub const fn new(value: u8) -> Self {
        Gf256(value)
    }

    /// Returns the underlying byte.
    #[inline]
    pub const fn value(self) -> u8 {
        self.0
    }

    /// Returns `true` if this is the additive identity.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplicative inverse, or `None` for zero.
    #[inline]
    pub fn inv(self) -> Option<Self> {
        if self.0 == 0 {
            None
        } else {
            Some(Gf256(EXP[255 - LOG[self.0 as usize] as usize]))
        }
    }

    /// Raises this element to the power `e` (with `0⁰ = 1`).
    pub fn pow(self, e: u32) -> Self {
        if e == 0 {
            return Gf256::ONE;
        }
        if self.0 == 0 {
            return Gf256::ZERO;
        }
        let log = LOG[self.0 as usize] as u64 * e as u64;
        Gf256(EXP[(log % 255) as usize])
    }

    /// `g^i` for the field generator `g = 2`.
    #[inline]
    pub fn exp(i: u32) -> Self {
        Gf256(EXP[(i % 255) as usize])
    }
}

impl Add for Gf256 {
    type Output = Gf256;
    #[inline]
    fn add(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

impl AddAssign for Gf256 {
    #[inline]
    fn add_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl Sub for Gf256 {
    type Output = Gf256;
    #[inline]
    fn sub(self, rhs: Gf256) -> Gf256 {
        // In characteristic 2, subtraction equals addition.
        Gf256(self.0 ^ rhs.0)
    }
}

impl SubAssign for Gf256 {
    #[inline]
    fn sub_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl Neg for Gf256 {
    type Output = Gf256;
    #[inline]
    fn neg(self) -> Gf256 {
        self
    }
}

impl Mul for Gf256 {
    type Output = Gf256;
    #[inline]
    fn mul(self, rhs: Gf256) -> Gf256 {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf256::ZERO;
        }
        Gf256(EXP[LOG[self.0 as usize] as usize + LOG[rhs.0 as usize] as usize])
    }
}

impl MulAssign for Gf256 {
    #[inline]
    fn mul_assign(&mut self, rhs: Gf256) {
        *self = *self * rhs;
    }
}

impl Div for Gf256 {
    type Output = Gf256;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[inline]
    fn div(self, rhs: Gf256) -> Gf256 {
        let inv = rhs.inv().expect("division by zero in GF(2^8)");
        self * inv
    }
}

impl DivAssign for Gf256 {
    #[inline]
    fn div_assign(&mut self, rhs: Gf256) {
        *self = *self / rhs;
    }
}

impl Sum for Gf256 {
    fn sum<I: Iterator<Item = Gf256>>(iter: I) -> Gf256 {
        iter.fold(Gf256::ZERO, |a, b| a + b)
    }
}

impl Product for Gf256 {
    fn product<I: Iterator<Item = Gf256>>(iter: I) -> Gf256 {
        iter.fold(Gf256::ONE, |a, b| a * b)
    }
}

impl From<u8> for Gf256 {
    #[inline]
    fn from(value: u8) -> Self {
        Gf256(value)
    }
}

impl From<Gf256> for u8 {
    #[inline]
    fn from(value: Gf256) -> Self {
        value.0
    }
}

impl fmt::Debug for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf256({:#04x})", self.0)
    }
}

impl fmt::Display for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02x}", self.0)
    }
}

impl fmt::LowerHex for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::Octal for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_is_xor() {
        assert_eq!(Gf256::new(0b1010) + Gf256::new(0b0110), Gf256::new(0b1100));
    }

    #[test]
    fn multiplication_by_zero_and_one() {
        for a in 0..=255u8 {
            let a = Gf256::new(a);
            assert_eq!(a * Gf256::ZERO, Gf256::ZERO);
            assert_eq!(a * Gf256::ONE, a);
        }
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for a in 1..=255u8 {
            let a = Gf256::new(a);
            assert_eq!(a * a.inv().unwrap(), Gf256::ONE);
        }
        assert_eq!(Gf256::ZERO.inv(), None);
    }

    #[test]
    fn multiplication_is_commutative_and_associative() {
        let samples = [0u8, 1, 2, 3, 0x1D, 0x80, 0xFF, 0x53];
        for &a in &samples {
            for &b in &samples {
                for &c in &samples {
                    let (a, b, c) = (Gf256::new(a), Gf256::new(b), Gf256::new(c));
                    assert_eq!(a * b, b * a);
                    assert_eq!((a * b) * c, a * (b * c));
                    assert_eq!(a * (b + c), a * b + a * c, "distributivity");
                }
            }
        }
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let a = Gf256::new(0x37);
        let mut acc = Gf256::ONE;
        for e in 0..520u32 {
            assert_eq!(a.pow(e), acc, "exponent {e}");
            acc *= a;
        }
    }

    #[test]
    fn pow_edge_cases() {
        assert_eq!(Gf256::ZERO.pow(0), Gf256::ONE);
        assert_eq!(Gf256::ZERO.pow(5), Gf256::ZERO);
        assert_eq!(Gf256::exp(0), Gf256::ONE);
        assert_eq!(Gf256::exp(1), Gf256::GENERATOR);
    }

    #[test]
    fn division_round_trips() {
        for a in 0..=255u8 {
            for b in 1..=255u8 {
                let (a, b) = (Gf256::new(a), Gf256::new(b));
                assert_eq!((a / b) * b, a);
            }
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = Gf256::ONE / Gf256::ZERO;
    }
}
