//! Degraded single-block reads: reconstruct one block's *data region*
//! (its contiguous file chunk) without rebuilding the whole block or
//! decoding the whole file.
//!
//! This is what a map task scheduled over a dead block needs (the paper's
//! §III discusses degraded reads at length): block `i`'s data units live in
//! the `K₀` carousel copies chosen for block `i`, and because the remapped
//! generator is block-diagonal across the `N₀` copies, each affected copy
//! can be decoded independently from the copy-`t` units of any `k`
//! available blocks. Total traffic: `k · αK₀` units `= k·(k/p)` block-sizes
//! — proportionally cheaper than RS's `k` full blocks when `p > k`.

use std::sync::LazyLock;

use erasure::{CodeError, ErasureCode as _};

use crate::Carousel;

static BLOCK_READS: LazyLock<&'static telemetry::Counter> =
    LazyLock::new(|| telemetry::counter("carousel.reads.block_degraded"));
static DEGRADED_TRAFFIC: LazyLock<&'static telemetry::Histogram> =
    LazyLock::new(|| telemetry::histogram("carousel.degraded.traffic_units"));

/// A plan to reconstruct the data region of one (typically dead) block.
#[derive(Debug, Clone)]
pub struct BlockReadPlan {
    /// The block whose data region is being produced.
    target: usize,
    /// Per affected copy: the stored-unit sources and the solve matrix.
    copies: Vec<CopyPlan>,
    /// Data units per block (`α·K₀`) — the output is this many units.
    data_units: usize,
    sub: usize,
}

#[derive(Debug, Clone)]
struct CopyPlan {
    /// `(node, stored unit)` sources, `k·α` of them.
    sources: Vec<(usize, usize)>,
    /// For each output unit this copy contributes: `(position in the
    /// output data region, row of coefficients over the sources)`.
    outputs: Vec<(usize, Vec<gf256::Gf256>)>,
}

impl BlockReadPlan {
    /// Sources grouped per node: `(node, units fetched)`.
    pub fn units_per_node(&self) -> Vec<(usize, usize)> {
        let mut per: Vec<(usize, usize)> = Vec::new();
        for copy in &self.copies {
            for &(node, _) in &copy.sources {
                match per.iter_mut().find(|(nd, _)| *nd == node) {
                    Some((_, c)) => *c += 1,
                    None => per.push((node, 1)),
                }
            }
        }
        per
    }

    /// Total units fetched.
    pub fn traffic_units(&self) -> usize {
        self.copies.iter().map(|c| c.sources.len()).sum()
    }

    /// Traffic in block-sizes: `k·(k/p)` for a Carousel code.
    pub fn traffic_blocks(&self) -> f64 {
        self.traffic_units() as f64 / self.sub as f64
    }

    /// The block whose region this plan rebuilds.
    pub fn target(&self) -> usize {
        self.target
    }

    /// Every `(node, stored unit)` source, flattened across copies in the
    /// order [`BlockReadPlan::decode_units`] expects.
    pub fn sources(&self) -> Vec<(usize, usize)> {
        self.copies
            .iter()
            .flat_map(|c| c.sources.iter().copied())
            .collect()
    }

    /// Unit-level execution: `units[i]` is the payload of `sources()[i]`,
    /// all of equal width `w`. Returns the `data_units · w` bytes of the
    /// target's data region.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InsufficientData`] on a count mismatch and
    /// [`CodeError::BlockSizeMismatch`] for ragged unit widths.
    pub fn decode_units(&self, units: &[&[u8]]) -> Result<Vec<u8>, CodeError> {
        let total: usize = self.copies.iter().map(|c| c.sources.len()).sum();
        if units.len() != total {
            return Err(CodeError::InsufficientData {
                needed: total,
                got: units.len(),
            });
        }
        let w = units[0].len();
        if let Some(bad) = units.iter().find(|u| u.len() != w) {
            return Err(CodeError::BlockSizeMismatch {
                expected: w,
                actual: bad.len(),
            });
        }
        let kernel = gf256::kernel();
        let mut out = vec![0u8; self.data_units * w];
        let mut terms = Vec::new();
        let mut off = 0;
        for copy in &self.copies {
            let slices = &units[off..off + copy.sources.len()];
            for (pos, row) in &copy.outputs {
                let dst = &mut out[pos * w..(pos + 1) * w];
                terms.clear();
                terms.extend(row.iter().zip(slices).map(|(&c, &src)| (c, src)));
                kernel.mul_acc_rows(&terms, dst);
            }
            off += copy.sources.len();
        }
        Ok(out)
    }

    /// Executes the plan: returns the `data_units · w` bytes of the
    /// target's data region (its contiguous file chunk).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InsufficientData`] if a source block is `None`
    /// and size-mismatch errors for ragged blocks.
    pub fn execute(&self, blocks: &[Option<&[u8]>]) -> Result<Vec<u8>, CodeError> {
        // Determine w from any available source block.
        let (first_node, _) = self.copies[0].sources[0];
        let sample = blocks
            .get(first_node)
            .copied()
            .flatten()
            .ok_or(CodeError::InsufficientData { needed: 1, got: 0 })?;
        if sample.len() % self.sub != 0 {
            return Err(CodeError::BlockSizeMismatch {
                expected: sample.len().next_multiple_of(self.sub),
                actual: sample.len(),
            });
        }
        let w = sample.len() / self.sub;
        let kernel = gf256::kernel();
        let mut out = vec![0u8; self.data_units * w];
        let mut terms = Vec::new();
        for copy in &self.copies {
            let mut slices = Vec::with_capacity(copy.sources.len());
            for &(node, unit) in &copy.sources {
                let block = blocks
                    .get(node)
                    .copied()
                    .flatten()
                    .ok_or(CodeError::InsufficientData { needed: 1, got: 0 })?;
                if block.len() != sample.len() {
                    return Err(CodeError::BlockSizeMismatch {
                        expected: sample.len(),
                        actual: block.len(),
                    });
                }
                slices.push(&block[unit * w..(unit + 1) * w]);
            }
            for (pos, row) in &copy.outputs {
                let dst = &mut out[pos * w..(pos + 1) * w];
                terms.clear();
                terms.extend(row.iter().zip(&slices).map(|(&c, &src)| (c, src)));
                kernel.mul_acc_rows(&terms, dst);
            }
        }
        Ok(out)
    }
}

/// Builds a [`BlockReadPlan`] for `target`'s data region using only the
/// `available` blocks (which must not include `target` — if it is
/// available, read the region directly).
///
/// # Errors
///
/// * [`CodeError::InvalidParameters`] if `target` carries no data
///   (`target ≥ p`);
/// * [`CodeError::InsufficientData`] if fewer than `k` blocks are
///   available;
/// * index errors for malformed availability lists.
pub(crate) fn plan_block_read(
    code: &Carousel,
    target: usize,
    available: &[usize],
) -> Result<BlockReadPlan, CodeError> {
    let params = code.params();
    let (n, k, p) = (params.n, params.k, params.p);
    if target >= p {
        return Err(CodeError::InvalidParameters {
            reason: format!("block {target} carries no original data (p = {p})"),
        });
    }
    for (i, &a) in available.iter().enumerate() {
        if a >= n {
            return Err(CodeError::NodeOutOfRange { node: a, n });
        }
        if available[i + 1..].contains(&a) {
            return Err(CodeError::DuplicateNode { node: a });
        }
    }
    let sources_pool: Vec<usize> = available.iter().copied().filter(|&a| a != target).collect();
    if sources_pool.len() < k {
        return Err(CodeError::InsufficientData {
            needed: k,
            got: sources_pool.len(),
        });
    }
    let (alpha, n0, k0) = (params.alpha, params.n0, params.k0);
    let sub = params.sub();
    let generator = code.linear().generator();

    // The target's data region holds file units in order; unit index u of
    // the region corresponds to message unit target*alpha*k0 + u, which
    // lives in copy t = chosen_ts(target)[u % k0] (segment-major order).
    let ts = params.chosen_ts(target);
    let region_base = target * alpha * k0;

    let mut copies = Vec::with_capacity(ts.len());
    for (ti, &t) in ts.iter().enumerate() {
        // Sources: copy-t units (all alpha segments) of k available blocks,
        // located at their *stored* positions.
        let mut sources = Vec::with_capacity(k * alpha);
        let mut rows = Vec::with_capacity(k * alpha);
        for &node in sources_pool.iter().take(k) {
            let perm = code.perm(node);
            for s in 0..alpha {
                let pre = s * n0 + t;
                let stored = perm
                    .iter()
                    .position(|&orig| orig == pre)
                    .expect("permutation covers all units");
                sources.push((node, stored));
                // The final generator is in stored order, so index the row
                // by the stored position, not the pre-reorder one.
                rows.push(node * sub + stored);
            }
        }
        // The copy-t message columns of the remapped code are the message
        // units whose defining chosen row lives in copy t: for each block
        // i < p, region position u belongs to copy chosen_ts(i)[u % K₀].
        let mut cols = Vec::with_capacity(k * alpha);
        for i in 0..p {
            let ts_i = params.chosen_ts(i);
            for u in 0..alpha * k0 {
                if ts_i[u % k0] == t {
                    cols.push(i * alpha * k0 + u);
                }
            }
        }
        debug_assert_eq!(cols.len(), k * alpha, "copy {t} column count");
        let system = generator.select(&rows, &cols);
        let inverse = system.inverse().ok_or(CodeError::SingularSelection)?;
        // Outputs: the target's region units in copy t are u ≡ ti (mod K₀).
        let mut outputs = Vec::with_capacity(alpha);
        for u in (ti..alpha * k0).step_by(k0) {
            let msg_unit = region_base + u;
            let col_idx = cols
                .iter()
                .position(|&c| c == msg_unit)
                .expect("message unit belongs to copy t");
            outputs.push((u, inverse.row(col_idx).to_vec()));
        }
        copies.push(CopyPlan { sources, outputs });
    }
    let plan = BlockReadPlan {
        target,
        copies,
        data_units: alpha * k0,
        sub,
    };
    if telemetry::ENABLED {
        BLOCK_READS.inc();
        DEGRADED_TRAFFIC.record(plan.traffic_units() as u64);
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use erasure::ErasureCode;

    fn check(n: usize, k: usize, d: usize, p: usize) {
        let code = Carousel::new(n, k, d, p).unwrap();
        let b = code.linear().message_units();
        let file: Vec<u8> = (0..b * 16).map(|i| (i * 37 + 11) as u8).collect();
        let stripe = code.linear().encode(&file).unwrap();
        let layout = code.data_layout();
        let w = stripe.unit_bytes;
        for target in 0..p {
            let available: Vec<usize> = (0..n).filter(|&i| i != target).collect();
            let plan = code.plan_block_read(target, &available).unwrap();
            let blocks: Vec<Option<&[u8]>> = (0..n)
                .map(|i| (i != target).then(|| &stripe.blocks[i][..]))
                .collect();
            let region = plan.execute(&blocks).unwrap();
            let expect = &stripe.blocks[target][layout.data_byte_range(target, w)];
            assert_eq!(region, expect, "({n},{k},{d},{p}) target {target}");
            // Traffic is k * (k/p) blocks.
            let expect_traffic = k as f64 * k as f64 / p as f64;
            assert!(
                (plan.traffic_blocks() - expect_traffic).abs() < 1e-9,
                "({n},{k},{d},{p}): {} vs {}",
                plan.traffic_blocks(),
                expect_traffic
            );
        }
    }

    #[test]
    fn rebuilds_data_regions_rs_base() {
        check(3, 2, 2, 3);
        check(6, 4, 4, 6);
        check(10, 4, 4, 8);
    }

    #[test]
    fn rebuilds_data_regions_msr_base() {
        check(12, 6, 10, 10);
        check(12, 6, 10, 12);
        check(8, 4, 7, 8);
    }

    #[test]
    fn cheaper_than_whole_file_decode() {
        let code = Carousel::new(12, 6, 10, 12).unwrap();
        let available: Vec<usize> = (1..12).collect();
        let plan = code.plan_block_read(0, &available).unwrap();
        // 6 * 6/12 = 3 blocks, versus 6 blocks for a full decode.
        assert!((plan.traffic_blocks() - 3.0).abs() < 1e-9);
        assert_eq!(plan.target(), 0);
        assert_eq!(plan.units_per_node().len(), 6);
    }

    #[test]
    fn rejects_parity_only_targets_and_thin_availability() {
        let code = Carousel::new(12, 6, 10, 10).unwrap();
        assert!(matches!(
            code.plan_block_read(11, &(0..11).collect::<Vec<_>>()),
            Err(CodeError::InvalidParameters { .. })
        ));
        assert!(matches!(
            code.plan_block_read(0, &[1, 2, 3]),
            Err(CodeError::InsufficientData { .. })
        ));
        assert!(matches!(
            code.plan_block_read(0, &[1, 1, 2, 3, 4, 5]),
            Err(CodeError::DuplicateNode { .. })
        ));
    }

    #[test]
    fn decode_units_matches_execute() {
        let code = Carousel::new(6, 3, 3, 6).unwrap();
        let file: Vec<u8> = (0..code.linear().message_units() * 8)
            .map(|i| (i * 13 + 3) as u8)
            .collect();
        let stripe = code.linear().encode(&file).unwrap();
        let w = stripe.unit_bytes;
        let available: Vec<usize> = (1..6).collect();
        let plan = code.plan_block_read(0, &available).unwrap();
        let blocks: Vec<Option<&[u8]>> = (0..6)
            .map(|i| (i != 0).then(|| &stripe.blocks[i][..]))
            .collect();
        let by_blocks = plan.execute(&blocks).unwrap();
        let units: Vec<&[u8]> = plan
            .sources()
            .iter()
            .map(|&(nd, u)| &stripe.blocks[nd][u * w..(u + 1) * w])
            .collect();
        let by_units = plan.decode_units(&units).unwrap();
        assert_eq!(by_blocks, by_units);
        // Count and width mismatches are rejected.
        assert!(plan.decode_units(&units[1..]).is_err());
        let mut ragged = units.clone();
        ragged[0] = &units[0][..w - 1];
        assert!(plan.decode_units(&ragged).is_err());
    }

    #[test]
    fn execute_detects_missing_sources() {
        let code = Carousel::new(6, 3, 3, 6).unwrap();
        let file: Vec<u8> = (0..code.linear().message_units() * 4)
            .map(|i| i as u8)
            .collect();
        let stripe = code.linear().encode(&file).unwrap();
        let plan = code
            .plan_block_read(0, &(1..6).collect::<Vec<_>>())
            .unwrap();
        let mut blocks: Vec<Option<&[u8]>> = stripe.blocks.iter().map(|b| Some(&b[..])).collect();
        // Remove one of the planned sources.
        let (victim, _) = plan.units_per_node()[0];
        blocks[victim] = None;
        assert!(plan.execute(&blocks).is_err());
    }
}
