//! The four-step Carousel construction (paper §V–§VII).
//!
//! Interpretation note (see DESIGN.md): the provided paper text garbles the
//! expansion fraction between `k/p` and `αk/p`; we follow the reading that
//! matches both of the paper's worked examples (Fig. 3 and Fig. 4): every
//! *segment* splits into `N₀ = p/gcd(k,p)` units, `K₀ = k/gcd(k,p)` of
//! which are chosen per segment, with the same round-robin pattern across
//! all segments of a block. Every per-copy unit row is then chosen in
//! exactly `k` of the first `p` blocks, which is what makes the chosen
//! submatrix `Ĝ₀` invertible and the remapped code MDS.
//!
//! The file-unit labelling differs from the paper's worked example in one
//! inessential way: we assign node `i`'s chosen units the contiguous file
//! range `[i·αK₀, (i+1)·αK₀)` in ascending unit order, which yields an
//! equivalent code with the same structural properties (even spread,
//! per-node contiguity, sparsity) and a simpler reader.

use erasure::{CodeError, DataLayout, LinearCode};
use gf256::Matrix;

/// Validated `(n, k, d, p)` parameters with the derived construction sizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CarouselParams {
    /// Total encoded blocks.
    pub n: usize,
    /// Original blocks (code dimension).
    pub k: usize,
    /// Helpers per repair (`d = k` or `d ≥ 2k−2`).
    pub d: usize,
    /// Data-parallelism degree (`k ≤ p ≤ n`).
    pub p: usize,
    /// Segments per block in the base code (`d − k + 1`).
    pub alpha: usize,
    /// Units per segment after expansion (`p / gcd(k, p)`).
    pub n0: usize,
    /// Chosen units per segment (`k / gcd(k, p)`).
    pub k0: usize,
}

impl CarouselParams {
    /// Validates raw parameters and derives `α`, `N₀`, `K₀`.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParameters`] when the constraints in the
    /// paper are violated: `0 < k ≤ p ≤ n`, and either `d = k` or
    /// `2k − 2 ≤ d < n` (the gap `k < d < 2k − 2` has no base code).
    pub fn validate(n: usize, k: usize, d: usize, p: usize) -> Result<Self, CodeError> {
        if k == 0 || k > n {
            return Err(CodeError::InvalidParameters {
                reason: format!("require 0 < k <= n, got n = {n}, k = {k}"),
            });
        }
        if p < k || p > n {
            return Err(CodeError::InvalidParameters {
                reason: format!("data parallelism p = {p} must satisfy k = {k} <= p <= n = {n}"),
            });
        }
        let alpha = if d == k {
            1
        } else if d >= 2 * k - 2 && k >= 2 {
            if d >= n {
                return Err(CodeError::InvalidParameters {
                    reason: format!("require d = {d} < n = {n}"),
                });
            }
            d - k + 1
        } else {
            return Err(CodeError::InvalidParameters {
                reason: format!(
                    "d = {d} unsupported for k = {k}: need d = k (RS base) or 2k-2 <= d < n (MSR base)"
                ),
            });
        };
        let g = gcd(k, p);
        Ok(CarouselParams {
            n,
            k,
            d,
            p,
            alpha,
            n0: p / g,
            k0: k / g,
        })
    }

    /// Units per block of the finished code.
    pub fn sub(&self) -> usize {
        self.alpha * self.n0
    }

    /// Data units per data-bearing block (`α · K₀`).
    pub fn data_units_per_block(&self) -> usize {
        self.alpha * self.k0
    }

    /// The unit indices (`t` values, `0..N₀`) chosen in block `i` — the
    /// round-robin "carousel" pattern of Step 2.
    pub fn chosen_ts(&self, i: usize) -> Vec<usize> {
        let i = i % self.n0;
        (0..self.n0)
            .filter(|&t| (t + self.n0 - i) % self.n0 < self.k0)
            .collect()
    }

    /// The within-block pre-reorder row indices chosen in block `i`, in
    /// file order (segment-major, then ascending unit).
    pub fn chosen_rows(&self, i: usize) -> Vec<usize> {
        let ts = self.chosen_ts(i);
        let mut rows = Vec::with_capacity(self.alpha * ts.len());
        for s in 0..self.alpha {
            for &t in &ts {
                rows.push(s * self.n0 + t);
            }
        }
        rows
    }
}

impl core::fmt::Display for CarouselParams {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Carousel({},{},{},{}) [alpha={}, N0={}, K0={}]",
            self.n, self.k, self.d, self.p, self.alpha, self.n0, self.k0
        )
    }
}

/// The output of the construction pipeline.
pub(crate) struct Built {
    pub code: LinearCode,
    pub layout: DataLayout,
    /// `perms[i][stored] = pre-reorder row` for every block.
    pub perms: Vec<Vec<usize>>,
}

/// Runs expansion → selection → remapping → reordering on a base generator
/// of shape `(n·α) × (k·α)`.
pub(crate) fn build(params: &CarouselParams, base_generator: &Matrix) -> Result<Built, CodeError> {
    let (n, k, p) = (params.n, params.k, params.p);
    let (alpha, n0) = (params.alpha, params.n0);
    let sub = params.sub();
    debug_assert_eq!(base_generator.rows(), n * alpha);
    debug_assert_eq!(base_generator.cols(), k * alpha);

    // Step 1: expansion — N₀ interleaved copies of the base code.
    let g_hat = base_generator.kron_identity(n0);

    // Step 2: selection — global indices of the chosen rows, in file order.
    let mut chosen_global = Vec::with_capacity(k * alpha * n0);
    let mut chosen_per_node = Vec::with_capacity(p);
    for i in 0..p {
        let rows = params.chosen_rows(i);
        chosen_global.extend(rows.iter().map(|&r| i * sub + r));
        chosen_per_node.push(rows);
    }
    debug_assert_eq!(chosen_global.len(), k * alpha * n0);

    // Step 3: symbol remapping — G · Ĝ₀⁻¹ turns chosen rows into raw data.
    let g0 = g_hat.select_rows(&chosen_global);
    let g0_inv = g0.inverse().ok_or(CodeError::SingularSelection)?;
    let g_new = &g_hat * &g0_inv;

    // Step 4: reordering — data units to the top of each block, file order.
    let mut perms: Vec<Vec<usize>> = chosen_per_node
        .iter()
        .map(|chosen| {
            let mut v = chosen.clone();
            v.extend((0..sub).filter(|r| !chosen.contains(r)));
            v
        })
        .collect();
    perms.resize_with(n, || (0..sub).collect());
    let global_perm: Vec<usize> = perms
        .iter()
        .enumerate()
        .flat_map(|(i, pm)| pm.iter().map(move |&r| i * sub + r))
        .collect();
    let generator = g_new.permute_rows(&global_perm);

    let dpb = params.data_units_per_block();
    let node_data: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            if i < p {
                (i * dpb..(i + 1) * dpb).collect()
            } else {
                Vec::new()
            }
        })
        .collect();
    let layout = DataLayout::new(sub, k * alpha * n0, node_data);
    let code = LinearCode::new(n, k, sub, generator)?;
    Ok(Built {
        code,
        layout,
        perms,
    })
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_paper_parameters() {
        // (12, 6, 10, p) for p in {6, 8, 10, 12} — the Hadoop experiments.
        for p in [6, 8, 10, 12] {
            let params = CarouselParams::validate(12, 6, 10, p).unwrap();
            assert_eq!(params.alpha, 5);
            assert_eq!(params.n0, p / gcd(6, p));
        }
        // (3, 2, 2, 3) — the toy example of Fig. 2.
        let toy = CarouselParams::validate(3, 2, 2, 3).unwrap();
        assert_eq!((toy.alpha, toy.n0, toy.k0), (1, 3, 2));
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        assert!(CarouselParams::validate(6, 0, 0, 6).is_err());
        assert!(CarouselParams::validate(6, 4, 4, 3).is_err()); // p < k
        assert!(CarouselParams::validate(6, 4, 4, 7).is_err()); // p > n
        assert!(CarouselParams::validate(8, 4, 5, 8).is_err()); // k < d < 2k-2
        assert!(CarouselParams::validate(6, 3, 6, 6).is_err()); // d >= n (MSR)
    }

    #[test]
    fn chosen_pattern_matches_paper_fig3() {
        // n = 3, k = 2, p = 3 (1-based blocks 1..3 in the paper).
        let params = CarouselParams::validate(3, 2, 2, 3).unwrap();
        assert_eq!(params.chosen_ts(0), vec![0, 1]); // block 1: units 1, 2
        assert_eq!(params.chosen_ts(1), vec![1, 2]); // block 2: units 2, 3
        assert_eq!(params.chosen_ts(2), vec![0, 2]); // block 3: units 3, 1
    }

    #[test]
    fn every_row_chosen_in_exactly_k_blocks() {
        for (n, k, p) in [(3, 2, 3), (12, 6, 8), (12, 6, 10), (12, 6, 12), (10, 4, 10)] {
            let params = CarouselParams::validate(n, k, k, p).unwrap();
            for t in 0..params.n0 {
                let count = (0..p).filter(|&i| params.chosen_ts(i).contains(&t)).count();
                assert_eq!(count, k, "(n={n},k={k},p={p}) row {t}");
            }
        }
    }

    #[test]
    fn p_equals_k_is_trivial_expansion() {
        let params = CarouselParams::validate(6, 4, 4, 4).unwrap();
        assert_eq!((params.n0, params.k0), (1, 1));
        assert_eq!(params.chosen_ts(2), vec![0]);
        assert_eq!(params.sub(), 1);
    }

    #[test]
    fn chosen_rows_cover_all_segments() {
        let params = CarouselParams::validate(12, 6, 10, 12).unwrap();
        // alpha = 5, n0 = 2, k0 = 1: each block chooses 1 of 2 units per
        // segment, 5 data units total.
        let rows = params.chosen_rows(3);
        assert_eq!(rows.len(), params.data_units_per_block());
        assert_eq!(rows.len(), 5);
        // One row in each segment.
        for s in 0..5 {
            assert_eq!(rows.iter().filter(|&&r| r / params.n0 == s).count(), 1);
        }
    }

    #[test]
    fn params_display() {
        let p = CarouselParams::validate(12, 6, 10, 8).unwrap();
        assert_eq!(p.to_string(), "Carousel(12,6,10,8) [alpha=5, N0=4, K0=3]");
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 8), 4);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(6, 12), 6);
    }
}
