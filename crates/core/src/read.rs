//! Parallel whole-file reads with flexible data parallelism (paper §VII).
//!
//! With all `p` data-bearing blocks available, the file is read by fetching
//! only the data regions of those `p` blocks — `k/p` of each block, from
//! `p` servers in parallel, with no decoding. When `q < p` of them are
//! available, each missing data-bearing block `i` is *replaced* by a
//! parity-only block, from which the reader fetches the units at block
//! `i`'s carousel positions; the paper proves the resulting `p`-block
//! selection always decodes. If even that is impossible (e.g. `p = n`), the
//! reader falls back to a generic `k`-block MDS decode.

use std::sync::LazyLock;

use erasure::{CodeError, DecodePlan, ErasureCode as _};

use crate::Carousel;

static READS_DIRECT: LazyLock<&'static telemetry::Counter> =
    LazyLock::new(|| telemetry::counter("carousel.reads.direct"));
static READS_DEGRADED: LazyLock<&'static telemetry::Counter> =
    LazyLock::new(|| telemetry::counter("carousel.reads.degraded"));
static READS_FALLBACK: LazyLock<&'static telemetry::Counter> =
    LazyLock::new(|| telemetry::counter("carousel.reads.fallback"));
static READ_TRAFFIC: LazyLock<&'static telemetry::Histogram> =
    LazyLock::new(|| telemetry::histogram("carousel.read.traffic_units"));

/// How a [`ReadPlan`] will obtain the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadMode {
    /// All `p` data-bearing blocks available: pure parallel read, no GF
    /// arithmetic beyond copying.
    Direct,
    /// Some data-bearing blocks replaced by parity blocks; decoding needed.
    Degraded,
    /// Generic any-`k`-blocks MDS decode (fallback).
    Fallback,
}

/// A planned whole-file read: which units to fetch from which blocks, and
/// the linear combination that turns them into the file.
#[derive(Debug, Clone)]
pub struct ReadPlan {
    plan: DecodePlan,
    mode: ReadMode,
    units_per_node: Vec<(usize, usize)>,
    sub: usize,
}

impl ReadPlan {
    /// The read mode this plan uses.
    pub fn mode(&self) -> ReadMode {
        self.mode
    }

    /// `(node, units fetched)` pairs — the per-server download volume. With
    /// unit width `w`, node `i` serves `units · w` bytes.
    pub fn units_per_node(&self) -> &[(usize, usize)] {
        &self.units_per_node
    }

    /// Number of distinct servers read from — the achieved parallelism.
    pub fn parallelism(&self) -> usize {
        self.units_per_node.len()
    }

    /// Total units transferred.
    pub fn traffic_units(&self) -> usize {
        self.units_per_node.iter().map(|&(_, u)| u).sum()
    }

    /// Traffic in block-sizes.
    pub fn traffic_blocks(&self) -> f64 {
        self.traffic_units() as f64 / self.sub as f64
    }

    /// The exact `(node, stored unit)` pairs this plan reads, in the order
    /// [`ReadPlan::decode_units`] expects their payloads. A networked
    /// reader uses this to fetch *only* the needed units from each server
    /// instead of whole blocks.
    pub fn sources(&self) -> &[(usize, usize)] {
        self.plan.sources()
    }

    /// Decodes from pre-fetched unit payloads, one `w`-byte slice per
    /// [`ReadPlan::sources`] entry in the same order — the remote
    /// counterpart of [`ReadPlan::execute`], for callers that fetched units
    /// over the network rather than holding whole blocks.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InsufficientData`] on a count mismatch and
    /// size-mismatch errors for ragged slices.
    pub fn decode_units(&self, units: &[&[u8]]) -> Result<Vec<u8>, CodeError> {
        self.plan.decode_units(units)
    }

    /// Executes the plan against per-node blocks (`None` = unavailable).
    ///
    /// Returns the full (padded) file bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InsufficientData`] if a planned source block is
    /// `None`, and size-mismatch errors for ragged blocks.
    pub fn execute(&self, blocks: &[Option<&[u8]>]) -> Result<Vec<u8>, CodeError> {
        let mut slices = Vec::with_capacity(self.plan.sources().len());
        for &(node, unit) in self.plan.sources() {
            let block = blocks
                .get(node)
                .copied()
                .flatten()
                .ok_or(CodeError::InsufficientData {
                    needed: self.plan.sources().len(),
                    got: 0,
                })?;
            if block.len() % self.sub != 0 {
                return Err(CodeError::BlockSizeMismatch {
                    expected: block.len().next_multiple_of(self.sub),
                    actual: block.len(),
                });
            }
            let w = block.len() / self.sub;
            slices.push(&block[unit * w..(unit + 1) * w]);
        }
        self.plan.decode_units(&slices)
    }
}

/// Builds a [`ReadPlan`] for the available blocks. See the module docs for
/// the three paths.
pub(crate) fn plan(code: &Carousel, available: &[usize]) -> Result<ReadPlan, CodeError> {
    let params = code.params();
    let (n, k, p) = (params.n, params.k, params.p);
    for (i, &a) in available.iter().enumerate() {
        if a >= n {
            return Err(CodeError::NodeOutOfRange { node: a, n });
        }
        if available[i + 1..].contains(&a) {
            return Err(CodeError::DuplicateNode { node: a });
        }
    }
    if available.len() < k {
        return Err(CodeError::InsufficientData {
            needed: k,
            got: available.len(),
        });
    }
    let dpb = params.data_units_per_block();
    let missing: Vec<usize> = (0..p).filter(|i| !available.contains(i)).collect();

    if missing.is_empty() {
        // Direct parallel read: data regions of all p blocks.
        let units: Vec<(usize, usize)> =
            (0..p).flat_map(|i| (0..dpb).map(move |u| (i, u))).collect();
        let plan = DecodePlan::for_units(code.linear(), &units)?;
        return Ok(finish(code, plan, ReadMode::Direct));
    }

    // Degraded parallel read: replace each missing data-bearing block with a
    // parity-only block at the same carousel positions.
    let replacements: Vec<usize> = available.iter().copied().filter(|&a| a >= p).collect();
    if replacements.len() >= missing.len() {
        let mut units: Vec<(usize, usize)> = Vec::with_capacity(k * params.sub());
        for i in 0..p {
            if available.contains(&i) {
                units.extend((0..dpb).map(|u| (i, u)));
            }
        }
        for (i, &r) in missing.iter().zip(&replacements) {
            // Parity-only blocks are never reordered, so pre-reorder rows
            // are their stored positions.
            units.extend(params.chosen_rows(*i).into_iter().map(|u| (r, u)));
        }
        match DecodePlan::for_units(code.linear(), &units) {
            Ok(plan) => return Ok(finish(code, plan, ReadMode::Degraded)),
            Err(CodeError::SingularSelection) => { /* fall through to generic */ }
            Err(e) => return Err(e),
        }
    }

    // Fallback: plain MDS decode from any k available blocks.
    let nodes: Vec<usize> = available.iter().copied().take(k).collect();
    let plan = DecodePlan::for_nodes(code.linear(), &nodes)?;
    Ok(finish(code, plan, ReadMode::Fallback))
}

fn finish(code: &Carousel, plan: DecodePlan, mode: ReadMode) -> ReadPlan {
    let mut per_node: Vec<(usize, usize)> = Vec::new();
    for &(node, _) in plan.sources() {
        match per_node.iter_mut().find(|(nd, _)| *nd == node) {
            Some((_, c)) => *c += 1,
            None => per_node.push((node, 1)),
        }
    }
    let plan = ReadPlan {
        plan,
        mode,
        units_per_node: per_node,
        sub: code.sub(),
    };
    if telemetry::ENABLED {
        match mode {
            ReadMode::Direct => READS_DIRECT.inc(),
            ReadMode::Degraded => READS_DEGRADED.inc(),
            ReadMode::Fallback => READS_FALLBACK.inc(),
        }
        READ_TRAFFIC.record(plan.traffic_units() as u64);
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use erasure::ErasureCode;

    fn stripe_for(code: &Carousel, len: usize) -> (Vec<u8>, erasure::EncodedStripe) {
        let data: Vec<u8> = (0..len).map(|i| (i * 7 + 13) as u8).collect();
        let stripe = code.linear().encode(&data).unwrap();
        (data, stripe)
    }

    fn opts(stripe: &erasure::EncodedStripe, avail: &[usize], n: usize) -> Vec<Option<Vec<u8>>> {
        (0..n)
            .map(|i| avail.contains(&i).then(|| stripe.blocks[i].clone()))
            .collect()
    }

    #[test]
    fn direct_read_uses_all_p_nodes() {
        let code = Carousel::new(6, 3, 3, 6).unwrap();
        let (data, stripe) = stripe_for(&code, 120);
        let plan = code.plan_read(&[0, 1, 2, 3, 4, 5]).unwrap();
        assert_eq!(plan.mode(), ReadMode::Direct);
        assert_eq!(plan.parallelism(), 6);
        // Direct read downloads exactly k blocks' worth of bytes.
        assert!((plan.traffic_blocks() - 3.0).abs() < 1e-9);
        let blocks = opts(&stripe, &[0, 1, 2, 3, 4, 5], 6);
        let refs: Vec<Option<&[u8]>> = blocks.iter().map(|b| b.as_deref()).collect();
        let out = plan.execute(&refs).unwrap();
        assert_eq!(&out[..data.len()], &data[..]);
    }

    #[test]
    fn degraded_read_replaces_missing_data_block() {
        // p = 4 < n = 6: blocks 4, 5 are parity-only replacements.
        let code = Carousel::new(6, 3, 3, 4).unwrap();
        let (data, stripe) = stripe_for(&code, 96);
        let avail = [0usize, 2, 3, 4, 5];
        let plan = code.plan_read(&avail).unwrap();
        assert_eq!(plan.mode(), ReadMode::Degraded);
        assert_eq!(plan.parallelism(), 4, "p blocks participate");
        let blocks = opts(&stripe, &avail, 6);
        let refs: Vec<Option<&[u8]>> = blocks.iter().map(|b| b.as_deref()).collect();
        let out = plan.execute(&refs).unwrap();
        assert_eq!(&out[..data.len()], &data[..]);
    }

    #[test]
    fn fallback_when_p_equals_n_and_block_lost() {
        let code = Carousel::new(5, 3, 3, 5).unwrap();
        let (data, stripe) = stripe_for(&code, 90);
        let avail = [0usize, 1, 3, 4];
        let plan = code.plan_read(&avail).unwrap();
        assert_eq!(plan.mode(), ReadMode::Fallback);
        let blocks = opts(&stripe, &avail, 5);
        let refs: Vec<Option<&[u8]>> = blocks.iter().map(|b| b.as_deref()).collect();
        let out = plan.execute(&refs).unwrap();
        assert_eq!(&out[..data.len()], &data[..]);
    }

    #[test]
    fn read_requires_k_blocks() {
        let code = Carousel::new(6, 3, 3, 6).unwrap();
        assert!(matches!(
            code.plan_read(&[0, 1]),
            Err(CodeError::InsufficientData { .. })
        ));
        assert!(matches!(
            code.plan_read(&[0, 0, 1]),
            Err(CodeError::DuplicateNode { .. })
        ));
        assert!(matches!(
            code.plan_read(&[0, 1, 9]),
            Err(CodeError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn execute_rejects_missing_planned_block() {
        let code = Carousel::new(6, 3, 3, 6).unwrap();
        let (_, stripe) = stripe_for(&code, 60);
        let plan = code.plan_read(&[0, 1, 2, 3, 4, 5]).unwrap();
        // Drop block 3 at execution time.
        let blocks = opts(&stripe, &[0, 1, 2, 4, 5], 6);
        let refs: Vec<Option<&[u8]>> = blocks.iter().map(|b| b.as_deref()).collect();
        assert!(plan.execute(&refs).is_err());
    }
}
