//! **Carousel codes** — the primary contribution of *"On Data Parallelism of
//! Erasure Coding in Distributed Storage Systems"* (Li & Li, ICDCS 2017).
//!
//! An `(n, k, d, p)` Carousel code encodes `k` blocks of data into `n`
//! blocks such that:
//!
//! * **MDS** — any `k` blocks decode the original data (optimal storage
//!   overhead, same as Reed-Solomon);
//! * **data parallelism `p`** — the original data is spread *evenly* over
//!   the first `p` blocks (`k ≤ p ≤ n`), each of which carries a contiguous
//!   `1/p` chunk of the file at its top, readable without any decoding;
//! * **optimal repair traffic** — a lost block is rebuilt from `d` helpers
//!   with `d/(d−k+1)` block-sizes of network transfer (matching MSR codes)
//!   when `d ≥ 2k−2`, or with RS-style repair-by-decode when `d = k`.
//!
//! Systematic codes pin data parallelism at `k`; replication scales it with
//! copies but at multiplied storage. Carousel codes hit any `p` up to `n`
//! at MDS storage cost — that is the paper's headline trade-off, evaluated
//! on Hadoop in its §VIII and reproduced by the simulator crates here.
//!
//! # Construction (paper §V–§VII)
//!
//! 1. **Expansion**: take an `(n,k)` systematic RS code (`d = k`) or an
//!    `(n,k,d)` product-matrix MSR code (`d ≥ 2k−2`), and split every
//!    segment of every block into `N₀ = p/gcd(k,p)` units (a Kronecker
//!    product of the generator with `I_{N₀}`).
//! 2. **Selection**: in block `i < p`, in every segment, choose unit `t` iff
//!    `(t − i) mod N₀ < K₀` where `K₀ = k/gcd(k,p)` — a round-robin pattern
//!    ("carousel") that places every unit-row in exactly `k` blocks.
//! 3. **Symbol remapping**: right-multiply the expanded generator by the
//!    inverse of its chosen rows, turning every chosen unit into verbatim
//!    original data.
//! 4. **Reordering**: permute units inside each block so the data units sit
//!    on top in file order; repair coefficients are permuted to match, so
//!    repair traffic is unchanged.
//!
//! # Examples
//!
//! ```
//! use carousel::Carousel;
//! use erasure::ErasureCode;
//!
//! // Paper Fig. 2: n = 3, k = 2 — data spread over all 3 blocks.
//! let code = Carousel::new(3, 2, 2, 3)?;
//! let data = b"060708091011"; // 12 bytes -> 6 file units of 2 bytes
//! let stripe = code.linear().encode(data)?;
//! // Each block's top 2/3 is original data:
//! assert_eq!(&stripe.blocks[0][..4], b"0607");
//! assert_eq!(&stripe.blocks[1][..4], b"0809");
//! assert_eq!(&stripe.blocks[2][..4], b"1011");
//! // And any 2 blocks decode everything (MDS):
//! let out = code.linear().decode_nodes(&[0, 2], &[&stripe.blocks[0], &stripe.blocks[2]])?;
//! assert_eq!(&out[..], data);
//! # Ok::<(), erasure::CodeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod construction;
mod degraded;
mod read;

pub use construction::CarouselParams;
pub use degraded::BlockReadPlan;
pub use read::{ReadMode, ReadPlan};

use erasure::{CodeError, DataLayout, ErasureCode, HelperTask, LinearCode, RepairPlan};
use gf256::Matrix;
use msr::shorten::ShortenedMsr;
use rs_code::ReedSolomon;

/// How repairs are driven: by the base code the Carousel code was built on.
#[derive(Debug, Clone)]
enum Base {
    /// `d = k`: RS base, repair-by-decode (k full blocks).
    Rs,
    /// `d ≥ 2k−2`: product-matrix MSR base, optimal-traffic repair.
    Msr(ShortenedMsr),
}

/// An `(n, k, d, p)` Carousel code.
///
/// See the [crate-level documentation](crate) for the construction and an
/// example.
#[derive(Debug, Clone)]
pub struct Carousel {
    params: CarouselParams,
    code: LinearCode,
    layout: DataLayout,
    /// Per-node unit permutation applied by the reordering step:
    /// `perms[i][stored_position] = pre-reorder row index within the block`.
    perms: Vec<Vec<usize>>,
    base: Base,
}

impl Carousel {
    /// Constructs an `(n, k, d, p)` Carousel code.
    ///
    /// `d` selects the repair regime: `d = k` builds on systematic RS
    /// (repair downloads `k` blocks); `d ≥ 2k − 2` builds on product-matrix
    /// MSR (repair downloads the optimal `d/(d−k+1)` blocks). `p` is the
    /// data-parallelism degree, `k ≤ p ≤ n`.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParameters`] for out-of-range parameters
    /// or a `d` strictly between `k` and `2k − 2` (no base construction
    /// exists there).
    pub fn new(n: usize, k: usize, d: usize, p: usize) -> Result<Self, CodeError> {
        let _timer = if telemetry::ENABLED {
            telemetry::counter("carousel.constructions").inc();
            Some(telemetry::span("carousel.construct.ns"))
        } else {
            None
        };
        let params = CarouselParams::validate(n, k, d, p)?;
        let (base, base_generator) = if d == k {
            let rs = ReedSolomon::new(n, k)?;
            (Base::Rs, rs.linear().generator().clone())
        } else {
            let msr = ShortenedMsr::new(n, k, d)?;
            let gen = msr.linear_code()?.generator().clone();
            (Base::Msr(msr), gen)
        };
        let built = construction::build(&params, &base_generator)?;
        Ok(Carousel {
            params,
            code: built.code,
            layout: built.layout,
            perms: built.perms,
            base,
        })
    }

    /// The code parameters, including the derived `α`, `N₀` and `K₀`.
    pub fn params(&self) -> &CarouselParams {
        &self.params
    }

    /// The data-parallelism degree `p`.
    pub fn p(&self) -> usize {
        self.params.p
    }

    /// Units per block (`α · N₀`).
    pub fn sub(&self) -> usize {
        self.code.sub()
    }

    /// Fraction of each data-bearing block that is original data (`k/p`).
    pub fn data_fraction(&self) -> f64 {
        self.params.k as f64 / self.params.p as f64
    }

    /// Optimal repair traffic in block-sizes: `d/(d−k+1)` for the MSR
    /// regime, `k` for the RS regime.
    pub fn repair_traffic_blocks(&self) -> f64 {
        match &self.base {
            Base::Rs => self.params.k as f64,
            Base::Msr(_) => self.params.d as f64 / self.params.alpha as f64,
        }
    }

    /// Plans a whole-file read from the given available blocks, preferring
    /// the `p`-way parallel path (paper §VII) and falling back to a generic
    /// `k`-block decode.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InsufficientData`] if fewer than `k` blocks are
    /// available.
    pub fn plan_read(&self, available: &[usize]) -> Result<ReadPlan, CodeError> {
        read::plan(self, available)
    }

    /// Plans the reconstruction of one dead block's *data region* (its
    /// contiguous file chunk) from the available blocks — the degraded-read
    /// path a map task uses when its block is gone. Traffic is
    /// `k·(k/p)` block-sizes, cheaper than a full `k`-block decode whenever
    /// `p > k`.
    ///
    /// # Examples
    ///
    /// ```
    /// use carousel::Carousel;
    /// use erasure::ErasureCode;
    ///
    /// let code = Carousel::new(12, 6, 10, 12)?;
    /// let available: Vec<usize> = (1..12).collect(); // block 0 is dead
    /// let plan = code.plan_block_read(0, &available)?;
    /// // 6 * (6/12) = 3 blocks of traffic instead of a 6-block decode.
    /// assert!((plan.traffic_blocks() - 3.0).abs() < 1e-9);
    /// # Ok::<(), erasure::CodeError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParameters`] for parity-only targets and
    /// [`CodeError::InsufficientData`] with fewer than `k` sources.
    pub fn plan_block_read(
        &self,
        target: usize,
        available: &[usize],
    ) -> Result<BlockReadPlan, CodeError> {
        degraded::plan_block_read(self, target, available)
    }

    /// Convenience: reads the whole file given per-node block availability
    /// (`blocks[i] = None` for unavailable blocks).
    ///
    /// # Errors
    ///
    /// Propagates [`Carousel::plan_read`] failures and size mismatches.
    pub fn read(&self, blocks: &[Option<&[u8]>]) -> Result<Vec<u8>, CodeError> {
        let available: Vec<usize> = blocks
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.map(|_| i))
            .collect();
        let plan = self.plan_read(&available)?;
        plan.execute(blocks)
    }

    /// The stored-position permutation of block `i` (reordering step):
    /// `perm[stored] = pre-reorder row`.
    pub(crate) fn perm(&self, i: usize) -> &[usize] {
        &self.perms[i]
    }

    /// Repair plan in the MSR regime: expand the base helper/combine
    /// matrices over the `N₀` copies and permute coefficients to stored
    /// positions (paper Fig. 4b).
    fn msr_repair(
        &self,
        msr: &ShortenedMsr,
        failed: usize,
        helpers: &[usize],
    ) -> Result<RepairPlan, CodeError> {
        let n0 = self.params.n0;
        let sub = self.sub();
        let d = self.params.d;
        let (base_rows, base_combine) = msr.repair_matrices(failed, helpers)?;
        // Helper h: payload unit t (copy t) = Σ_s φ_f[s] · stored[s, t].
        let tasks: Vec<HelperTask> = helpers
            .iter()
            .zip(&base_rows)
            .map(|(&h, phi)| {
                let perm = self.perm(h);
                let mut coeffs = Matrix::zeros(n0, sub);
                for (stored, &orig) in perm.iter().enumerate() {
                    let (s, t) = (orig / n0, orig % n0);
                    coeffs.set(t, stored, phi[s]);
                }
                HelperTask { node: h, coeffs }
            })
            .collect();
        // Newcomer: stored unit q of the failed block is pre-reorder row
        // (s, t); it equals Σ_j C[s][j] · payload_j[t].
        let perm_f = self.perm(failed);
        let mut combine = Matrix::zeros(sub, d * n0);
        for (q, &orig) in perm_f.iter().enumerate() {
            let (s, t) = (orig / n0, orig % n0);
            for j in 0..d {
                combine.set(q, j * n0 + t, base_combine.get(s, j));
            }
        }
        Ok(RepairPlan {
            failed,
            helpers: tasks,
            combine,
        })
    }

    /// Repair plan in the RS regime: repair-by-decode over the Carousel
    /// generator itself (helpers ship whole blocks).
    fn rs_repair(&self, failed: usize, helpers: &[usize]) -> Result<RepairPlan, CodeError> {
        let sub = self.sub();
        let rows: Vec<usize> = helpers
            .iter()
            .flat_map(|&h| h * sub..(h + 1) * sub)
            .collect();
        let stacked_inv = self
            .code
            .generator()
            .select_rows(&rows)
            .inverse()
            .ok_or(CodeError::SingularSelection)?;
        let combine = &self.code.node_generator(failed) * &stacked_inv;
        let tasks = helpers
            .iter()
            .map(|&node| HelperTask {
                node,
                coeffs: Matrix::identity(sub),
            })
            .collect();
        Ok(RepairPlan {
            failed,
            helpers: tasks,
            combine,
        })
    }
}

impl ErasureCode for Carousel {
    fn name(&self) -> String {
        let p = &self.params;
        format!("Carousel({},{},{},{})", p.n, p.k, p.d, p.p)
    }

    fn linear(&self) -> &LinearCode {
        &self.code
    }

    fn d(&self) -> usize {
        self.params.d
    }

    fn data_layout(&self) -> DataLayout {
        self.layout.clone()
    }

    fn repair_plan(&self, failed: usize, helpers: &[usize]) -> Result<RepairPlan, CodeError> {
        let n = self.params.n;
        if failed >= n {
            return Err(CodeError::NodeOutOfRange { node: failed, n });
        }
        if helpers.contains(&failed) {
            return Err(CodeError::BadHelperSet {
                reason: format!("helper set contains the failed block {failed}"),
            });
        }
        if helpers.len() != self.params.d {
            return Err(CodeError::BadHelperSet {
                reason: format!(
                    "repair needs exactly d = {} helpers, got {}",
                    self.params.d,
                    helpers.len()
                ),
            });
        }
        for (idx, &h) in helpers.iter().enumerate() {
            if h >= n {
                return Err(CodeError::NodeOutOfRange { node: h, n });
            }
            if helpers[idx + 1..].contains(&h) {
                return Err(CodeError::DuplicateNode { node: h });
            }
        }
        match &self.base {
            Base::Rs => self.rs_repair(failed, helpers),
            Base::Msr(msr) => self.msr_repair(msr, failed, helpers),
        }
    }
}
