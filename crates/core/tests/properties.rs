//! Property and conformance tests for Carousel codes across the parameter
//! grid used in the paper's evaluation.

use carousel::Carousel;
use erasure::mds::verify_mds;
use erasure::ErasureCode;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Parameter sets covering both regimes: RS base (d = k) and MSR base
/// (d ≥ 2k−2), with p from k to n — including every (12, 6, 10, p) used in
/// the paper's Hadoop experiments.
fn grid() -> Vec<(usize, usize, usize, usize)> {
    vec![
        (3, 2, 2, 3),   // paper Fig. 2 toy
        (5, 3, 3, 4),   // RS base, k < p < n
        (6, 4, 4, 6),   // RS base, p = n
        (6, 4, 4, 4),   // RS base, p = k (degenerates to systematic RS)
        (6, 3, 4, 5),   // MSR base at native point d = 2k-2
        (6, 3, 4, 6),   // MSR base, p = n
        (8, 4, 7, 8),   // MSR base, d = 2k-1 (paper's Fig 6 family)
        (12, 6, 10, 6), // paper cluster config, p sweep
        (12, 6, 10, 8),
        (12, 6, 10, 10),
        (12, 6, 10, 12),
    ]
}

fn test_data(code: &Carousel, reps: usize) -> Vec<u8> {
    let b = code.linear().message_units();
    (0..b * reps).map(|i| (i * 31 + 7) as u8).collect()
}

#[test]
fn mds_property_across_grid() {
    for (n, k, d, p) in grid() {
        let code = Carousel::new(n, k, d, p).unwrap();
        let report = verify_mds(code.linear(), 300);
        assert!(
            report.is_mds(),
            "Carousel({n},{k},{d},{p}) not MDS: {report:?}"
        );
    }
}

#[test]
fn data_spread_evenly_and_contiguously() {
    for (n, k, d, p) in grid() {
        let code = Carousel::new(n, k, d, p).unwrap();
        let layout = code.data_layout();
        assert_eq!(layout.data_bearing_nodes(), p, "({n},{k},{d},{p})");
        assert!(layout.is_contiguous_per_node());
        for i in 0..p {
            assert!(
                (layout.data_fraction(i) - k as f64 / p as f64).abs() < 1e-12,
                "block {i} of ({n},{k},{d},{p}) holds {} of its units",
                layout.data_fraction(i)
            );
        }
        for i in p..n {
            assert_eq!(layout.data_fraction(i), 0.0);
        }
    }
}

#[test]
fn encoded_data_regions_reproduce_the_file() {
    for (n, k, d, p) in grid() {
        let code = Carousel::new(n, k, d, p).unwrap();
        let data = test_data(&code, 3);
        let stripe = code.linear().encode(&data).unwrap();
        let layout = code.data_layout();
        let w = stripe.unit_bytes;
        let mut rebuilt = Vec::new();
        for i in 0..p {
            let range = layout.data_byte_range(i, w);
            rebuilt.extend_from_slice(&stripe.blocks[i][range]);
        }
        assert_eq!(rebuilt, data, "({n},{k},{d},{p}) data regions != file");
    }
}

#[test]
fn decode_from_random_k_subsets() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    for (n, k, d, p) in grid() {
        let code = Carousel::new(n, k, d, p).unwrap();
        let data = test_data(&code, 2);
        let stripe = code.linear().encode(&data).unwrap();
        for _ in 0..5 {
            let mut nodes: Vec<usize> = (0..n).collect();
            nodes.shuffle(&mut rng);
            nodes.truncate(k);
            let blocks: Vec<&[u8]> = nodes.iter().map(|&i| &stripe.blocks[i][..]).collect();
            let out = code.linear().decode_nodes(&nodes, &blocks).unwrap();
            assert_eq!(&out[..data.len()], &data[..], "({n},{k},{d},{p}) {nodes:?}");
        }
    }
}

#[test]
fn repair_reconstructs_every_block_with_declared_traffic() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    for (n, k, d, p) in grid() {
        let code = Carousel::new(n, k, d, p).unwrap();
        let data = test_data(&code, 2);
        let stripe = code.linear().encode(&data).unwrap();
        let sub = code.sub();
        for failed in 0..n {
            let mut pool: Vec<usize> = (0..n).filter(|&i| i != failed).collect();
            pool.shuffle(&mut rng);
            let helpers: Vec<usize> = pool.into_iter().take(d).collect();
            let plan = code.repair_plan(failed, &helpers).unwrap();
            let blocks: Vec<&[u8]> = helpers.iter().map(|&i| &stripe.blocks[i][..]).collect();
            let (rebuilt, traffic) = plan.run(&blocks).unwrap();
            assert_eq!(
                rebuilt, stripe.blocks[failed],
                "({n},{k},{d},{p}) repair of block {failed}"
            );
            let expect_blocks = code.repair_traffic_blocks();
            let got_blocks = traffic as f64 / stripe.block_bytes() as f64;
            assert!(
                (got_blocks - expect_blocks).abs() < 1e-9,
                "({n},{k},{d},{p}): traffic {got_blocks} blocks, expected {expect_blocks}"
            );
            let _ = sub;
        }
    }
}

#[test]
fn msr_based_carousel_beats_rs_repair_traffic() {
    // The paper's Fig 7 claim in miniature: with d = 2k-1 the repair traffic
    // is d/k blocks instead of k blocks.
    let rs_based = Carousel::new(12, 6, 6, 12).unwrap();
    let msr_based = Carousel::new(12, 6, 10, 12).unwrap();
    assert_eq!(rs_based.repair_traffic_blocks(), 6.0);
    assert!((msr_based.repair_traffic_blocks() - 2.0).abs() < 1e-12);
}

#[test]
fn generator_is_sparse_like_base_code() {
    // Paper §VIII-A / Fig. 5: parity rows of the Carousel generator carry at
    // most k·α nonzeros — the same per-output-unit cost as the base code —
    // even though the matrix is N₀ times larger.
    for (n, k, d, p) in grid() {
        let code = Carousel::new(n, k, d, p).unwrap();
        let params = code.params();
        let g = code.linear().generator();
        let bound = k * params.alpha;
        for r in 0..g.rows() {
            assert!(
                g.row_weight(r) <= bound,
                "({n},{k},{d},{p}) row {r} weight {} > k*alpha = {bound}",
                g.row_weight(r)
            );
        }
    }
}

#[test]
fn p_equals_k_matches_systematic_base_layout() {
    let code = Carousel::new(6, 4, 4, 4).unwrap();
    let rs = rs_code::ReedSolomon::new(6, 4).unwrap();
    let data: Vec<u8> = (0..64).map(|i| (i * 3 + 1) as u8).collect();
    let a = code.linear().encode(&data).unwrap();
    let b = rs.linear().encode(&data).unwrap();
    // Data blocks agree byte-for-byte; parity blocks may differ (equivalent
    // codes) but data parallelism and sizes match.
    for i in 0..4 {
        assert_eq!(a.blocks[i], b.blocks[i]);
    }
    assert_eq!(code.parallelism(), 4);
}

#[test]
fn parallel_read_with_failures_round_trips() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    for (n, k, d, p) in grid() {
        let code = Carousel::new(n, k, d, p).unwrap();
        let data = test_data(&code, 2);
        let stripe = code.linear().encode(&data).unwrap();
        // Try 0, 1 and 2 failures of random blocks.
        for failures in 0..=2usize.min(n - k) {
            let mut nodes: Vec<usize> = (0..n).collect();
            nodes.shuffle(&mut rng);
            let dead: Vec<usize> = nodes.into_iter().take(failures).collect();
            let blocks: Vec<Option<&[u8]>> = (0..n)
                .map(|i| (!dead.contains(&i)).then(|| &stripe.blocks[i][..]))
                .collect();
            let out = code.read(&blocks).unwrap();
            assert_eq!(
                &out[..data.len()],
                &data[..],
                "({n},{k},{d},{p}) dead={dead:?}"
            );
        }
    }
}

#[test]
fn name_encodes_all_four_parameters() {
    let code = Carousel::new(12, 6, 10, 8).unwrap();
    assert_eq!(code.name(), "Carousel(12,6,10,8)");
    assert_eq!(code.d(), 10);
    assert_eq!(code.p(), 8);
    assert!((code.data_fraction() - 0.75).abs() < 1e-12);
}
