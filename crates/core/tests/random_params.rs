//! Property-based tests drawing random `(n, k, d, p)` parameters and
//! checking the construction invariants hold everywhere, not just on the
//! paper's grid.

use carousel::Carousel;
use erasure::ErasureCode;
use proptest::prelude::*;

/// Strategy for valid Carousel parameters with small-enough matrices to
/// keep the test fast: k in 2..=6, n in k+1..=2k+2, d in {k} ∪ [2k-2, n),
/// p in k..=n.
fn params() -> impl Strategy<Value = (usize, usize, usize, usize)> {
    (2usize..=6)
        .prop_flat_map(|k| {
            ((k + 1)..=(2 * k + 2)).prop_flat_map(move |n| {
                let d_choices: Vec<usize> = std::iter::once(k)
                    .chain((2 * k - 2..n).filter(move |&d| d >= k))
                    .collect();
                (Just(k), Just(n), proptest::sample::select(d_choices), k..=n)
            })
        })
        .prop_map(|(k, n, d, p)| (n, k, d, p))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn construction_succeeds_and_is_mds((n, k, d, p) in params()) {
        let code = Carousel::new(n, k, d, p).unwrap();
        prop_assert!(erasure::mds::verify_mds(code.linear(), 60).is_mds());
    }

    #[test]
    fn data_regions_reassemble_file((n, k, d, p) in params(), seed in any::<u64>()) {
        let code = Carousel::new(n, k, d, p).unwrap();
        let b = code.linear().message_units();
        let data: Vec<u8> = (0..b * 4)
            .map(|i| (i as u64).wrapping_mul(seed | 1) as u8)
            .collect();
        let stripe = code.linear().encode(&data).unwrap();
        let layout = code.data_layout();
        let mut rebuilt = Vec::new();
        for i in 0..p {
            rebuilt.extend_from_slice(&stripe.blocks[i][layout.data_byte_range(i, stripe.unit_bytes)]);
        }
        prop_assert_eq!(rebuilt, data);
    }

    #[test]
    fn repair_is_exact_and_within_traffic_bound((n, k, d, p) in params(), seed in any::<u64>()) {
        let code = Carousel::new(n, k, d, p).unwrap();
        let b = code.linear().message_units();
        let data: Vec<u8> = (0..b * 2).map(|i| (i * 7 + 1) as u8).collect();
        let stripe = code.linear().encode(&data).unwrap();
        let failed = (seed as usize) % n;
        let helpers: Vec<usize> = (0..n).filter(|&i| i != failed).take(d).collect();
        let plan = code.repair_plan(failed, &helpers).unwrap();
        let blocks: Vec<&[u8]> = helpers.iter().map(|&i| &stripe.blocks[i][..]).collect();
        let (rebuilt, traffic) = plan.run(&blocks).unwrap();
        prop_assert_eq!(&rebuilt, &stripe.blocks[failed]);
        let traffic_blocks = traffic as f64 / stripe.block_bytes() as f64;
        prop_assert!((traffic_blocks - code.repair_traffic_blocks()).abs() < 1e-9);
        // Never worse than RS repair-by-decode.
        prop_assert!(traffic_blocks <= k as f64 + 1e-9);
    }

    #[test]
    fn read_survives_any_single_failure((n, k, d, p) in params(), seed in any::<u64>()) {
        let code = Carousel::new(n, k, d, p).unwrap();
        let b = code.linear().message_units();
        let data: Vec<u8> = (0..b * 3).map(|i| (i * 13 + 5) as u8).collect();
        let stripe = code.linear().encode(&data).unwrap();
        let dead = (seed as usize) % n;
        let blocks: Vec<Option<&[u8]>> = (0..n)
            .map(|i| (i != dead).then(|| &stripe.blocks[i][..]))
            .collect();
        let out = code.read(&blocks).unwrap();
        prop_assert_eq!(&out[..data.len()], &data[..]);
    }

    #[test]
    fn degraded_block_reads_exact_anywhere((n, k, d, p) in params(), seed in any::<u64>()) {
        let code = Carousel::new(n, k, d, p).unwrap();
        let b = code.linear().message_units();
        let data: Vec<u8> = (0..b * 4).map(|i| (i * 23 + 9) as u8).collect();
        let stripe = code.linear().encode(&data).unwrap();
        let layout = code.data_layout();
        let w = stripe.unit_bytes;
        let target = (seed as usize) % p;
        let available: Vec<usize> = (0..n).filter(|&i| i != target).collect();
        let plan = code.plan_block_read(target, &available).unwrap();
        let blocks: Vec<Option<&[u8]>> = (0..n)
            .map(|i| (i != target).then(|| &stripe.blocks[i][..]))
            .collect();
        let region = plan.execute(&blocks).unwrap();
        let expect = &stripe.blocks[target][layout.data_byte_range(target, w)];
        prop_assert_eq!(&region[..], expect);
        prop_assert!(
            (plan.traffic_blocks() - k as f64 * k as f64 / p as f64).abs() < 1e-9
        );
    }

    #[test]
    fn generator_row_weight_bounded_by_k_alpha((n, k, d, p) in params()) {
        let code = Carousel::new(n, k, d, p).unwrap();
        let g = code.linear().generator();
        let bound = k * code.params().alpha;
        for r in 0..g.rows() {
            prop_assert!(g.row_weight(r) <= bound);
        }
    }
}
