//! Property tests: random files, random geometries, random failures — the
//! file layer must round-trip everything within the code's tolerance.

use carousel::Carousel;
use filestore::FileCodec;
use proptest::prelude::*;
use rs_code::ReedSolomon;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn rs_files_round_trip_any_size(
        len in 1usize..5_000,
        block in 1usize..64,
        seed in any::<u64>(),
    ) {
        let codec = FileCodec::new(ReedSolomon::new(6, 4).unwrap(), block).unwrap();
        let data: Vec<u8> = (0..len)
            .map(|i| ((i as u64).wrapping_mul(seed | 1) >> 5) as u8)
            .collect();
        let mut enc = codec.encode(&data).unwrap();
        // Drop up to n - k = 2 random blocks per stripe.
        let mut s = seed;
        for stripe in 0..enc.stripes() {
            for _ in 0..2 {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                let victim = (s >> 33) as usize % 6;
                enc.drop_block(stripe, victim); // duplicates are harmless
            }
        }
        prop_assert_eq!(enc.decode().unwrap(), data);
    }

    #[test]
    fn carousel_range_reads_any_window(
        len in 100usize..4_000,
        start_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
    ) {
        // sub = 2 for Carousel(6,3,3,6); block of 30 bytes.
        let codec = FileCodec::new(Carousel::new(6, 3, 3, 6).unwrap(), 30).unwrap();
        let data: Vec<u8> = (0..len).map(|i| (i * 97 + 13) as u8).collect();
        let enc = codec.encode(&data).unwrap();
        let offset = (start_frac * (len - 1) as f64) as u64;
        let max_len = len as u64 - offset;
        let read_len = 1 + (len_frac * (max_len - 1) as f64) as u64;
        let got = enc.read_range(offset, read_len).unwrap();
        prop_assert_eq!(
            &got[..],
            &data[offset as usize..(offset + read_len) as usize]
        );
    }

    #[test]
    fn write_range_random_spans_keep_parity_consistent(
        len in 300usize..2_000,
        off_frac in 0.0f64..1.0,
        span_frac in 0.0f64..1.0,
        fill in any::<u8>(),
    ) {
        let codec = FileCodec::new(Carousel::new(6, 3, 3, 6).unwrap(), 30).unwrap();
        let mut file: Vec<u8> = (0..len).map(|i| (i * 11 + 3) as u8).collect();
        let mut enc = codec.encode(&file).unwrap();
        let offset = (off_frac * (len - 1) as f64) as usize;
        let span = 1 + (span_frac * (len - offset - 1) as f64) as usize;
        let patch = vec![fill; span];
        enc.write_range(offset as u64, &patch).unwrap();
        file[offset..offset + span].copy_from_slice(&patch);
        // Parity followed the data: decode after losing any 3 blocks.
        let mut lossy = enc.clone();
        for s in 0..lossy.stripes() {
            lossy.drop_block(s, s % 6);
            lossy.drop_block(s, (s + 2) % 6);
            lossy.drop_block(s, (s + 4) % 6);
        }
        prop_assert_eq!(lossy.decode().unwrap(), file);
    }

    #[test]
    fn repair_then_decode_always_exact(
        len in 200usize..3_000,
        victim in 0usize..6,
        stripe_pick in any::<u16>(),
    ) {
        let codec = FileCodec::new(Carousel::new(6, 4, 4, 6).unwrap(), 24).unwrap();
        let data: Vec<u8> = (0..len).map(|i| (i * 7 + 5) as u8).collect();
        let mut enc = codec.encode(&data).unwrap();
        let stripe = stripe_pick as usize % enc.stripes();
        let original = enc.block(stripe, victim).unwrap().to_vec();
        enc.drop_block(stripe, victim);
        enc.repair_block(stripe, victim).unwrap();
        prop_assert_eq!(enc.block(stripe, victim).unwrap(), &original[..]);
        prop_assert_eq!(enc.decode().unwrap(), data);
    }
}
