//! On-disk block format: a directory with a `meta` file and one file per
//! block, used by the `carousel-tool` CLI.
//!
//! ```text
//! mydata.enc/
//!   meta                    # key=value lines
//!   s00000_b003.blk         # stripe 0, block 3
//!   ...
//! ```
//!
//! The metadata records the code as a [`CodeSpec`] so the directory is
//! self-describing; [`AnyCode`] instantiates it.

use std::fmt;
use std::fs;
use std::path::Path;

use carousel::Carousel;
use erasure::{CodeError, DataLayout, ErasureCode, LinearCode, RepairPlan};
use msr::{ProductMatrixMbr, ProductMatrixMsr};
use rs_code::ReedSolomon;

use crate::checksum::crc32;
use crate::codec::{EncodedFile, FileCodec, FileMeta};
use crate::error::FileError;

/// A serializable description of a code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodeSpec {
    /// Systematic `(n, k)` Reed-Solomon.
    Rs {
        /// Blocks per stripe.
        n: usize,
        /// Data blocks per stripe.
        k: usize,
    },
    /// `(n, k, d, p)` Carousel.
    Carousel {
        /// Blocks per stripe.
        n: usize,
        /// Data blocks per stripe.
        k: usize,
        /// Repair degree.
        d: usize,
        /// Data-parallelism degree.
        p: usize,
    },
    /// `(n, k, d)` product-matrix MSR.
    Msr {
        /// Blocks per stripe.
        n: usize,
        /// Data blocks per stripe.
        k: usize,
        /// Repair degree.
        d: usize,
    },
    /// `(n, k, d)` product-matrix MBR.
    Mbr {
        /// Blocks per stripe.
        n: usize,
        /// Data blocks per stripe.
        k: usize,
        /// Repair degree.
        d: usize,
    },
}

impl CodeSpec {
    /// Instantiates the code.
    ///
    /// # Errors
    ///
    /// Propagates construction failures for invalid parameters.
    pub fn build(self) -> Result<AnyCode, CodeError> {
        Ok(match self {
            CodeSpec::Rs { n, k } => AnyCode::Rs(ReedSolomon::new(n, k)?),
            CodeSpec::Carousel { n, k, d, p } => AnyCode::Carousel(Carousel::new(n, k, d, p)?),
            CodeSpec::Msr { n, k, d } => AnyCode::Msr(ProductMatrixMsr::new(n, k, d)?),
            CodeSpec::Mbr { n, k, d } => AnyCode::Mbr(ProductMatrixMbr::new(n, k, d)?),
        })
    }

    /// Parses the `code=` line format produced by [`fmt::Display`].
    ///
    /// # Errors
    ///
    /// Returns [`FileError::BadMeta`] on malformed input.
    pub fn parse(s: &str) -> Result<Self, FileError> {
        let bad = || FileError::BadMeta {
            reason: format!("unparseable code spec: {s:?}"),
        };
        let (kind, rest) = s.split_once('(').ok_or_else(bad)?;
        let rest = rest.strip_suffix(')').ok_or_else(bad)?;
        let nums: Vec<usize> = rest
            .split(',')
            .map(|v| v.trim().parse().map_err(|_| bad()))
            .collect::<Result<_, _>>()?;
        match (kind.trim(), nums.as_slice()) {
            ("rs", [n, k]) => Ok(CodeSpec::Rs { n: *n, k: *k }),
            ("carousel", [n, k, d, p]) => Ok(CodeSpec::Carousel {
                n: *n,
                k: *k,
                d: *d,
                p: *p,
            }),
            ("msr", [n, k, d]) => Ok(CodeSpec::Msr {
                n: *n,
                k: *k,
                d: *d,
            }),
            ("mbr", [n, k, d]) => Ok(CodeSpec::Mbr {
                n: *n,
                k: *k,
                d: *d,
            }),
            _ => Err(bad()),
        }
    }
}

impl fmt::Display for CodeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeSpec::Rs { n, k } => write!(f, "rs({n},{k})"),
            CodeSpec::Carousel { n, k, d, p } => write!(f, "carousel({n},{k},{d},{p})"),
            CodeSpec::Msr { n, k, d } => write!(f, "msr({n},{k},{d})"),
            CodeSpec::Mbr { n, k, d } => write!(f, "mbr({n},{k},{d})"),
        }
    }
}

/// A runtime-selected code (RS or Carousel) implementing [`ErasureCode`]
/// by delegation — what the self-describing on-disk format instantiates.
#[derive(Debug, Clone)]
pub enum AnyCode {
    /// Systematic Reed-Solomon.
    Rs(ReedSolomon),
    /// Carousel.
    Carousel(Carousel),
    /// Product-matrix MSR.
    Msr(ProductMatrixMsr),
    /// Product-matrix MBR.
    Mbr(ProductMatrixMbr),
}

impl ErasureCode for AnyCode {
    fn name(&self) -> String {
        match self {
            AnyCode::Rs(c) => c.name(),
            AnyCode::Carousel(c) => c.name(),
            AnyCode::Msr(c) => c.name(),
            AnyCode::Mbr(c) => c.name(),
        }
    }

    fn linear(&self) -> &LinearCode {
        match self {
            AnyCode::Rs(c) => c.linear(),
            AnyCode::Carousel(c) => c.linear(),
            AnyCode::Msr(c) => c.linear(),
            AnyCode::Mbr(c) => c.linear(),
        }
    }

    fn d(&self) -> usize {
        match self {
            AnyCode::Rs(c) => c.d(),
            AnyCode::Carousel(c) => c.d(),
            AnyCode::Msr(c) => c.d(),
            AnyCode::Mbr(c) => c.d(),
        }
    }

    fn data_layout(&self) -> DataLayout {
        match self {
            AnyCode::Rs(c) => c.data_layout(),
            AnyCode::Carousel(c) => c.data_layout(),
            AnyCode::Msr(c) => c.data_layout(),
            AnyCode::Mbr(c) => c.data_layout(),
        }
    }

    fn repair_plan(&self, failed: usize, helpers: &[usize]) -> Result<RepairPlan, CodeError> {
        match self {
            AnyCode::Rs(c) => c.repair_plan(failed, helpers),
            AnyCode::Carousel(c) => c.repair_plan(failed, helpers),
            AnyCode::Msr(c) => c.repair_plan(failed, helpers),
            AnyCode::Mbr(c) => c.repair_plan(failed, helpers),
        }
    }
}

impl access::AccessCode for AnyCode {
    fn as_carousel(&self) -> Option<&Carousel> {
        match self {
            AnyCode::Carousel(c) => Some(c),
            _ => None,
        }
    }
}

fn block_file_name(stripe: usize, block: usize) -> String {
    format!("s{stripe:05}_b{block:03}.blk")
}

/// Writes an encoded file to `dir` (created if absent): `meta` plus one
/// `.blk` file per *present* block.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn save(dir: &Path, spec: CodeSpec, file: &EncodedFile<AnyCode>) -> Result<(), FileError> {
    fs::create_dir_all(dir)?;
    let meta = file.meta();
    let mut text = String::new();
    text.push_str("format=carousel-filestore-v1\n");
    text.push_str(&format!("code={spec}\n"));
    text.push_str(&format!("file_len={}\n", meta.file_len));
    text.push_str(&format!("block_bytes={}\n", meta.block_bytes));
    text.push_str(&format!("stripes={}\n", meta.stripes));
    text.push_str(&format!("stripe_data_bytes={}\n", meta.stripe_data_bytes));
    for s in 0..file.stripes() {
        for b in 0..meta.n {
            if let Some(bytes) = file.block(s, b) {
                fs::write(dir.join(block_file_name(s, b)), bytes)?;
                text.push_str(&format!("crc_{s}_{b}={:08x}\n", crc32(bytes)));
            }
        }
    }
    fs::write(dir.join("meta"), text)?;
    Ok(())
}

/// Reads the metadata of an encoded directory.
///
/// # Errors
///
/// Returns [`FileError::BadMeta`] on malformed metadata and I/O errors on
/// filesystem failures.
pub fn read_meta(dir: &Path) -> Result<(CodeSpec, FileMeta), FileError> {
    let text = fs::read_to_string(dir.join("meta"))?;
    let mut code = None;
    let mut file_len = None;
    let mut block_bytes = None;
    let mut stripes = None;
    let mut stripe_data_bytes = None;
    for line in text.lines() {
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        match key.trim() {
            "code" => code = Some(CodeSpec::parse(value.trim())?),
            "file_len" => file_len = value.trim().parse().ok(),
            "block_bytes" => block_bytes = value.trim().parse().ok(),
            "stripes" => stripes = value.trim().parse().ok(),
            "stripe_data_bytes" => stripe_data_bytes = value.trim().parse().ok(),
            _ => {}
        }
    }
    let missing = |what: &str| FileError::BadMeta {
        reason: format!("missing or invalid {what}"),
    };
    let spec = code.ok_or_else(|| missing("code"))?;
    let (n, k) = match spec {
        CodeSpec::Rs { n, k }
        | CodeSpec::Carousel { n, k, .. }
        | CodeSpec::Msr { n, k, .. }
        | CodeSpec::Mbr { n, k, .. } => (n, k),
    };
    let block_bytes: usize = block_bytes.ok_or_else(|| missing("block_bytes"))?;
    let meta = FileMeta {
        file_len: file_len.ok_or_else(|| missing("file_len"))?,
        block_bytes,
        n,
        k,
        stripes: stripes.ok_or_else(|| missing("stripes"))?,
        // Older directories predate this field and only held MDS-shaped
        // codes, for which k * block_bytes is the correct fallback.
        stripe_data_bytes: stripe_data_bytes.unwrap_or(k * block_bytes),
        code_name: spec.to_string(),
    };
    Ok((spec, meta))
}

/// Loads an encoded directory: missing `.blk` files become missing blocks,
/// and blocks whose CRC-32 disagrees with the metadata are *quarantined*
/// (treated as missing, so the erasure code can recover them).
///
/// # Errors
///
/// Propagates metadata and filesystem failures; individual absent or
/// corrupt block files are *not* errors (that is the point of erasure
/// coding).
pub fn load(dir: &Path) -> Result<EncodedFile<AnyCode>, FileError> {
    let (spec, meta) = read_meta(dir)?;
    let crcs = read_crcs(dir)?;
    let code = spec.build()?;
    let codec = FileCodec::new(code, meta.block_bytes)?;
    let mut file = EncodedFile::empty(codec, meta.clone());
    for s in 0..meta.stripes {
        for b in 0..meta.n {
            let path = dir.join(block_file_name(s, b));
            if path.exists() {
                let bytes = fs::read(&path)?;
                if bytes.len() != meta.block_bytes {
                    return Err(FileError::BadMeta {
                        reason: format!(
                            "block file {} has {} bytes, expected {}",
                            path.display(),
                            bytes.len(),
                            meta.block_bytes
                        ),
                    });
                }
                // Quarantine blocks failing their recorded checksum.
                if let Some(&expect) = crcs.get(&(s, b)) {
                    if crc32(&bytes) != expect {
                        continue;
                    }
                }
                file.set_block(s, b, bytes);
            }
        }
    }
    Ok(file)
}

/// Reads the per-block CRCs recorded in the metadata.
fn read_crcs(dir: &Path) -> Result<std::collections::HashMap<(usize, usize), u32>, FileError> {
    let text = fs::read_to_string(dir.join("meta"))?;
    let mut out = std::collections::HashMap::new();
    for line in text.lines() {
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let Some(rest) = key.trim().strip_prefix("crc_") else {
            continue;
        };
        let Some((s, b)) = rest.split_once('_') else {
            continue;
        };
        if let (Ok(s), Ok(b), Ok(crc)) = (
            s.parse::<usize>(),
            b.parse::<usize>(),
            u32::from_str_radix(value.trim(), 16),
        ) {
            out.insert((s, b), crc);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_spec_round_trip() {
        for spec in [
            CodeSpec::Rs { n: 12, k: 6 },
            CodeSpec::Carousel {
                n: 12,
                k: 6,
                d: 10,
                p: 12,
            },
            CodeSpec::Msr { n: 12, k: 6, d: 10 },
            CodeSpec::Mbr { n: 12, k: 6, d: 10 },
        ] {
            assert_eq!(CodeSpec::parse(&spec.to_string()).unwrap(), spec);
        }
        assert!(CodeSpec::parse("nonsense").is_err());
        assert!(CodeSpec::parse("rs(1,2,3)").is_err());
        assert!(CodeSpec::parse("carousel(1,x,3,4)").is_err());
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("filestore-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let spec = CodeSpec::Carousel {
            n: 6,
            k: 3,
            d: 3,
            p: 6,
        };
        let codec = FileCodec::new(spec.build().unwrap(), 120).unwrap();
        let data: Vec<u8> = (0..777).map(|i| (i * 31 + 1) as u8).collect();
        let enc = codec.encode(&data).unwrap();
        save(&dir, spec, &enc).unwrap();

        // Delete two block files of stripe 0: still loads and decodes.
        fs::remove_file(dir.join(block_file_name(0, 1))).unwrap();
        fs::remove_file(dir.join(block_file_name(0, 4))).unwrap();
        let loaded = load(&dir).unwrap();
        assert_eq!(loaded.live_blocks(0).len(), 4);
        assert_eq!(loaded.decode().unwrap(), data);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_blocks_are_quarantined_and_recovered() {
        let dir = std::env::temp_dir().join(format!("filestore-corrupt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let spec = CodeSpec::Rs { n: 5, k: 3 };
        let codec = FileCodec::new(spec.build().unwrap(), 90).unwrap();
        let data: Vec<u8> = (0..500).map(|i| (i * 13 + 5) as u8).collect();
        let enc = codec.encode(&data).unwrap();
        save(&dir, spec, &enc).unwrap();

        // Flip one byte inside a block file: bit rot.
        let victim = dir.join(block_file_name(0, 1));
        let mut bytes = fs::read(&victim).unwrap();
        bytes[7] ^= 0xFF;
        fs::write(&victim, bytes).unwrap();

        let loaded = load(&dir).unwrap();
        assert!(
            !loaded.live_blocks(0).contains(&1),
            "corrupt block must be quarantined"
        );
        assert_eq!(loaded.decode().unwrap(), data, "code recovers the damage");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn meta_errors_are_descriptive() {
        let dir = std::env::temp_dir().join(format!("filestore-badmeta-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("meta"), "format=x\ncode=rs(4,2)\nblock_bytes=64\n").unwrap();
        match read_meta(&dir) {
            Err(FileError::BadMeta { reason }) => assert!(reason.contains("file_len")),
            other => panic!("expected BadMeta, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
