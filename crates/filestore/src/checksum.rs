//! CRC-32 (IEEE 802.3) checksums for on-disk block integrity.
//!
//! Erasure codes recover *erased* blocks but silently propagate *corrupt*
//! ones; real storage systems (HDFS included) therefore checksum every
//! block. The on-disk [`format`](crate::format) records a CRC per block
//! and the loader treats mismatches as erasures, letting the code repair
//! what bit-rot damaged.

const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 { (c >> 1) ^ POLY } else { c >> 1 };
            }
            *slot = c;
        }
        t
    })
}

/// Computes the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = !0u32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = vec![0xA5u8; 1000];
        let base = crc32(&data);
        for pos in [0usize, 499, 999] {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[pos] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), base, "flip at {pos}:{bit}");
            }
        }
    }
}
