//! File-level storage on top of the coding crates: the layer a real
//! deployment (like the paper's Hadoop prototype) needs between "a code"
//! and "a file".
//!
//! * [`FileCodec`] — fixed-geometry encoder: a file becomes a sequence of
//!   stripes of `k · block_bytes` data each, every stripe independently
//!   encoded into `n` blocks;
//! * [`EncodedFile`] — in-memory encoded form with whole-file decode under
//!   arbitrary per-block availability, and **byte-range reads** that touch
//!   only the stripes/blocks they need (reading straight from data regions
//!   when possible, falling back to decoding only the affected stripes);
//! * [`LocalObjects`] — the in-memory [`access::ObjectStore`]: named
//!   mutable objects (put/get/get_range/write_range/append/delete) with
//!   delta parity updates and small-object packing via per-object extents;
//! * [`stream`] — incremental encoding/decoding over `std::io` readers and
//!   writers, one stripe of memory at a time;
//! * [`mod@format`] — a simple on-disk block format (`meta` + one file per
//!   block) used by the `carousel-tool` CLI.
//!
//! # Examples
//!
//! ```
//! use carousel::Carousel;
//! use filestore::FileCodec;
//!
//! let codec = FileCodec::new(Carousel::new(6, 4, 4, 6)?, 4098)?; // 3 units/block
//! let data = vec![7u8; 40_000]; // 2.5 stripes
//! let encoded = codec.encode(&data)?;
//! assert_eq!(encoded.stripes(), 3);
//! // Lose up to n - k = 2 blocks of every stripe and still read anything:
//! let mut lossy = encoded.clone();
//! lossy.drop_block(0, 1);
//! lossy.drop_block(1, 5);
//! lossy.drop_block(2, 0);
//! assert_eq!(lossy.read_range(10_000, 64)?, &data[10_000..10_064]);
//! # Ok::<(), filestore::FileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod error;
mod objects;

pub mod checksum;

pub mod format;
pub mod stream;

pub use codec::{EncodedFile, FileCodec, FileMeta};
pub use erasure::consistency::StripeHealth;
pub use error::FileError;
pub use objects::{Extent, LocalObjects, DEFAULT_PACK_LIMIT, PACK_PREFIX};
