//! Error type for file-level operations.

use core::fmt;

use erasure::CodeError;

/// Errors from the file-level storage layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum FileError {
    /// An underlying coding operation failed.
    Code(CodeError),
    /// The requested byte range exceeds the file.
    RangeOutOfBounds {
        /// Requested range start.
        offset: u64,
        /// Requested length.
        len: u64,
        /// File length.
        file_len: u64,
    },
    /// The block geometry is invalid for the code.
    BadGeometry {
        /// Explanation.
        reason: String,
    },
    /// Not enough live blocks in some stripe.
    StripeUnrecoverable {
        /// The stripe index.
        stripe: usize,
        /// Live blocks found.
        live: usize,
        /// Blocks required.
        needed: usize,
    },
    /// An I/O error from streaming or the on-disk format.
    Io(std::io::Error),
    /// The on-disk metadata is malformed.
    BadMeta {
        /// Explanation.
        reason: String,
    },
    /// No object is stored under the given name.
    UnknownObject {
        /// The requested object name.
        name: String,
    },
    /// An object already exists under the given name.
    ObjectExists {
        /// The conflicting object name.
        name: String,
    },
}

impl fmt::Display for FileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FileError::Code(e) => write!(f, "coding error: {e}"),
            FileError::RangeOutOfBounds {
                offset,
                len,
                file_len,
            } => write!(
                f,
                "range {offset}..{} exceeds file length {file_len}",
                offset + len
            ),
            FileError::BadGeometry { reason } => write!(f, "bad geometry: {reason}"),
            FileError::StripeUnrecoverable {
                stripe,
                live,
                needed,
            } => write!(
                f,
                "stripe {stripe} unrecoverable: {live} live blocks, need {needed}"
            ),
            FileError::Io(e) => write!(f, "i/o error: {e}"),
            FileError::BadMeta { reason } => write!(f, "bad metadata: {reason}"),
            FileError::UnknownObject { name } => write!(f, "unknown object {name:?}"),
            FileError::ObjectExists { name } => write!(f, "object {name:?} already exists"),
        }
    }
}

impl std::error::Error for FileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FileError::Code(e) => Some(e),
            FileError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodeError> for FileError {
    fn from(e: CodeError) -> Self {
        FileError::Code(e)
    }
}

impl From<std::io::Error> for FileError {
    fn from(e: std::io::Error) -> Self {
        FileError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = FileError::RangeOutOfBounds {
            offset: 10,
            len: 5,
            file_len: 12,
        };
        assert!(e.to_string().contains("10..15"));
        let e = FileError::StripeUnrecoverable {
            stripe: 3,
            live: 2,
            needed: 4,
        };
        assert!(e.to_string().contains("stripe 3"));
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e = FileError::from(CodeError::SingularSelection);
        assert!(e.source().is_some());
    }
}
