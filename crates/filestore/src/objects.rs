//! [`LocalObjects`] — the in-memory [`ObjectStore`] over [`FileCodec`]:
//! named erasure-coded objects with in-place delta writes, appends, and
//! small-object packing.
//!
//! Packing addresses the small-object problem of erasure-coded stores:
//! a 4 KiB object striped over `k` blocks wastes most of every block and
//! costs `n` block writes. A *packed* put instead appends the object's
//! bytes to a shared **pack** (an ordinary encoded file) and records
//! only a per-object extent `(pack, offset, len)`. Reads resolve the
//! extent to a range read on the pack; deletes drop the extent and leave
//! a hole (packs are append-only; reclaiming holes is a compaction
//! concern, deliberately out of scope here). The same extent scheme runs
//! cluster-side behind the sharded metadata layer — this is its
//! single-process reference implementation, held equivalent by the
//! tri-stack tests.

use std::collections::HashMap;

use access::{AccessCode, ObjectStore, PutOptions};

use crate::codec::{EncodedFile, FileCodec};
use crate::error::FileError;

/// Reserved name prefix for pack files.
pub const PACK_PREFIX: &str = ".pack-";

/// Default pack capacity: packs roll over once they reach this many
/// bytes of object data.
pub const DEFAULT_PACK_LIMIT: u64 = 1 << 20;

/// A packed object's location inside a pack file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Extent {
    /// The pack file holding the bytes.
    pub pack: String,
    /// Byte offset of the object within the pack.
    pub offset: u64,
    /// Object length in bytes.
    pub len: u64,
}

/// An in-memory store of named encoded objects sharing one codec.
///
/// # Examples
///
/// ```
/// use access::{ObjectStore, PutOptions};
/// use filestore::{FileCodec, LocalObjects};
/// use rs_code::ReedSolomon;
///
/// let codec = FileCodec::new(ReedSolomon::new(6, 4).unwrap(), 64)?;
/// let mut store = LocalObjects::new(codec);
/// store.put("a", b"hello world")?;
/// store.write_range("a", 6, b"store")?;
/// store.append("a", b"!")?;
/// assert_eq!(store.get("a")?, b"hello store!");
/// // Small objects share stripes when packed:
/// store.put_opts("tiny", b"12", &PutOptions::new().pack(true))?;
/// assert_eq!(store.get("tiny")?, b"12");
/// # Ok::<(), filestore::FileError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LocalObjects<C> {
    codec: FileCodec<C>,
    files: HashMap<String, EncodedFile<C>>,
    extents: HashMap<String, Extent>,
    open_pack: Option<String>,
    pack_seq: usize,
    pack_limit: u64,
}

impl<C: AccessCode + Clone> LocalObjects<C> {
    /// Creates an empty store encoding every object with `codec`.
    pub fn new(codec: FileCodec<C>) -> LocalObjects<C> {
        LocalObjects {
            codec,
            files: HashMap::new(),
            extents: HashMap::new(),
            open_pack: None,
            pack_seq: 0,
            pack_limit: DEFAULT_PACK_LIMIT,
        }
    }

    /// Sets the pack rollover size (bytes of object data per pack).
    #[must_use]
    pub fn with_pack_limit(mut self, bytes: u64) -> LocalObjects<C> {
        self.pack_limit = bytes.max(1);
        self
    }

    /// The shared codec.
    pub fn codec(&self) -> &FileCodec<C> {
        &self.codec
    }

    /// Direct access to an object's encoded form (packed objects resolve
    /// to their pack) — the hook tests use to drop blocks and exercise
    /// degraded reads and repair under packing.
    pub fn encoded_mut(&mut self, name: &str) -> Option<&mut EncodedFile<C>> {
        let backing = match self.extents.get(name) {
            Some(ext) => ext.pack.clone(),
            None => name.to_string(),
        };
        self.files.get_mut(&backing)
    }

    /// The extent of a packed object, if `name` is packed.
    pub fn extent(&self, name: &str) -> Option<&Extent> {
        self.extents.get(name)
    }

    /// Names of all live objects (packed and unpacked), unordered.
    pub fn names(&self) -> Vec<String> {
        self.files
            .keys()
            .filter(|n| !n.starts_with(PACK_PREFIX))
            .chain(self.extents.keys())
            .cloned()
            .collect()
    }

    fn exists(&self, name: &str) -> bool {
        self.files.contains_key(name) || self.extents.contains_key(name)
    }

    /// Appends `data` to the open pack (rolling over or creating one as
    /// needed) and returns its extent.
    fn pack_put(&mut self, data: &[u8]) -> Result<Extent, FileError> {
        let rollover = match &self.open_pack {
            Some(pack) => {
                let len = self.files[pack].meta().file_len;
                len >= self.pack_limit || len + data.len() as u64 > self.pack_limit.max(len)
            }
            None => true,
        };
        if rollover {
            let pack = format!("{PACK_PREFIX}{:04}", self.pack_seq);
            self.pack_seq += 1;
            self.files.insert(pack.clone(), self.codec.encode(data)?);
            self.open_pack = Some(pack.clone());
            return Ok(Extent {
                pack,
                offset: 0,
                len: data.len() as u64,
            });
        }
        let pack = self.open_pack.clone().expect("checked above");
        let file = self.files.get_mut(&pack).expect("open pack exists");
        let offset = file.meta().file_len;
        file.append(data)?;
        Ok(Extent {
            pack,
            offset,
            len: data.len() as u64,
        })
    }

    fn extent_of(&self, name: &str) -> Result<Extent, FileError> {
        self.extents
            .get(name)
            .cloned()
            .ok_or_else(|| FileError::UnknownObject {
                name: name.to_string(),
            })
    }
}

impl<C: AccessCode + Clone> ObjectStore for LocalObjects<C> {
    type Error = FileError;

    fn put_opts(&mut self, name: &str, data: &[u8], opts: &PutOptions) -> Result<(), FileError> {
        if name.starts_with(PACK_PREFIX) {
            return Err(FileError::BadGeometry {
                reason: format!("object names starting with {PACK_PREFIX:?} are reserved"),
            });
        }
        if self.exists(name) {
            return Err(FileError::ObjectExists {
                name: name.to_string(),
            });
        }
        // The codec (and with it the code and block size) is fixed at
        // construction; per-put code/block overrides are a transport
        // concern and ignored here.
        if opts.packed() {
            let extent = self.pack_put(data)?;
            self.extents.insert(name.to_string(), extent);
        } else {
            self.files
                .insert(name.to_string(), self.codec.encode(data)?);
        }
        Ok(())
    }

    fn get(&mut self, name: &str) -> Result<Vec<u8>, FileError> {
        if let Some(file) = self.files.get(name) {
            return file.decode();
        }
        let ext = self.extent_of(name)?;
        self.files[&ext.pack].read_range(ext.offset, ext.len)
    }

    fn get_range(&mut self, name: &str, offset: u64, len: u64) -> Result<Vec<u8>, FileError> {
        if let Some(file) = self.files.get(name) {
            return file.read_range(offset, len);
        }
        let ext = self.extent_of(name)?;
        if offset + len > ext.len {
            return Err(FileError::RangeOutOfBounds {
                offset,
                len,
                file_len: ext.len,
            });
        }
        self.files[&ext.pack].read_range(ext.offset + offset, len)
    }

    fn write_range(&mut self, name: &str, offset: u64, data: &[u8]) -> Result<(), FileError> {
        if let Some(file) = self.files.get_mut(name) {
            return file.write_range(offset, data);
        }
        let ext = self.extent_of(name)?;
        if offset + data.len() as u64 > ext.len {
            return Err(FileError::RangeOutOfBounds {
                offset,
                len: data.len() as u64,
                file_len: ext.len,
            });
        }
        self.files
            .get_mut(&ext.pack)
            .expect("extent points at a live pack")
            .write_range(ext.offset + offset, data)
    }

    fn append(&mut self, name: &str, data: &[u8]) -> Result<u64, FileError> {
        if let Some(file) = self.files.get_mut(name) {
            return file.append(data);
        }
        if self.extents.contains_key(name) {
            return Err(FileError::BadGeometry {
                reason: format!("packed object {name:?} cannot grow; delete and re-put"),
            });
        }
        Err(FileError::UnknownObject {
            name: name.to_string(),
        })
    }

    fn delete(&mut self, name: &str) -> Result<bool, FileError> {
        if self.files.remove(name).is_some() {
            return Ok(true);
        }
        // A packed delete drops only the extent; the pack keeps the
        // (now unreachable) bytes until a future compaction.
        Ok(self.extents.remove(name).is_some())
    }

    fn object_len(&mut self, name: &str) -> Result<u64, FileError> {
        if let Some(file) = self.files.get(name) {
            return Ok(file.meta().file_len);
        }
        Ok(self.extent_of(name)?.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carousel::Carousel;
    use rs_code::ReedSolomon;

    fn store() -> LocalObjects<ReedSolomon> {
        LocalObjects::new(FileCodec::new(ReedSolomon::new(6, 4).unwrap(), 64).unwrap())
    }

    fn bytes(len: usize, seed: usize) -> Vec<u8> {
        (0..len)
            .map(|i| ((i * 31 + seed * 17) % 251) as u8)
            .collect()
    }

    #[test]
    fn put_get_write_append_delete_lifecycle() {
        let mut s = store();
        let data = bytes(700, 1);
        s.put("obj", &data).unwrap();
        assert_eq!(s.get("obj").unwrap(), data);
        assert_eq!(s.object_len("obj").unwrap(), 700);
        assert_eq!(s.get_range("obj", 100, 50).unwrap(), &data[100..150]);
        // Duplicate put is rejected; delete makes the name reusable.
        assert!(matches!(
            s.put("obj", b"x"),
            Err(FileError::ObjectExists { .. })
        ));
        let patch = bytes(120, 9);
        s.write_range("obj", 300, &patch).unwrap();
        let mut expect = data.clone();
        expect[300..420].copy_from_slice(&patch);
        assert_eq!(s.get("obj").unwrap(), expect);
        let tail = bytes(333, 3);
        assert_eq!(s.append("obj", &tail).unwrap(), 1033);
        expect.extend_from_slice(&tail);
        assert_eq!(s.get("obj").unwrap(), expect);
        assert!(s.delete("obj").unwrap());
        assert!(!s.delete("obj").unwrap());
        assert!(matches!(s.get("obj"), Err(FileError::UnknownObject { .. })));
        s.put("obj", b"fresh").unwrap();
        assert_eq!(s.get("obj").unwrap(), b"fresh");
    }

    #[test]
    fn packed_objects_share_stripes() {
        let mut s = store().with_pack_limit(600);
        let opts = PutOptions::new().pack(true);
        let objs: Vec<Vec<u8>> = (0..10).map(|i| bytes(40 + i * 13, i)).collect();
        for (i, data) in objs.iter().enumerate() {
            s.put_opts(&format!("small-{i}"), data, &opts).unwrap();
        }
        // Far fewer packs than objects: packing worked.
        let packs: std::collections::HashSet<String> = (0..10)
            .map(|i| s.extent(&format!("small-{i}")).unwrap().pack.clone())
            .collect();
        assert!(packs.len() <= 2, "10 objects in {} packs", packs.len());
        for (i, data) in objs.iter().enumerate() {
            let name = format!("small-{i}");
            assert_eq!(&s.get(&name).unwrap(), data);
            assert_eq!(s.object_len(&name).unwrap(), data.len() as u64);
            let mid = data.len() as u64 / 2;
            assert_eq!(
                s.get_range(&name, 1, mid).unwrap(),
                &data[1..1 + mid as usize]
            );
        }
        // In-place updates of a packed object stay within its extent.
        s.write_range("small-3", 5, b"PATCH").unwrap();
        let mut expect = objs[3].clone();
        expect[5..10].copy_from_slice(b"PATCH");
        assert_eq!(s.get("small-3").unwrap(), expect);
        // Its neighbors are untouched.
        assert_eq!(s.get("small-2").unwrap(), objs[2]);
        assert_eq!(s.get("small-4").unwrap(), objs[4]);
        // Out-of-extent writes and reads are rejected even though the
        // pack continues past the object.
        assert!(s
            .write_range("small-3", expect.len() as u64 - 2, b"xxx")
            .is_err());
        assert!(s.get_range("small-3", 0, expect.len() as u64 + 1).is_err());
        // Packed objects cannot grow.
        assert!(s.append("small-3", b"y").is_err());
        // Deleting one object leaves the others readable.
        assert!(s.delete("small-3").unwrap());
        assert_eq!(s.get("small-4").unwrap(), objs[4]);
    }

    #[test]
    fn repair_under_packing() {
        // Losing blocks of a pack's stripes still serves every packed
        // object (degraded reads), and repair restores the pack.
        let codec = FileCodec::new(Carousel::new(6, 3, 3, 6).unwrap(), 60).unwrap();
        let mut s = LocalObjects::new(codec).with_pack_limit(2000);
        let opts = PutOptions::new().pack(true);
        let objs: Vec<Vec<u8>> = (0..6).map(|i| bytes(90 + i * 21, i + 40)).collect();
        for (i, data) in objs.iter().enumerate() {
            s.put_opts(&format!("o{i}"), data, &opts).unwrap();
        }
        let pack = s.extent("o0").unwrap().pack.clone();
        assert_eq!(s.extent("o5").unwrap().pack, pack, "one shared pack");
        let enc = s.encoded_mut("o0").unwrap();
        let stripes = enc.stripes();
        for t in 0..stripes {
            enc.drop_block(t, (t * 2) % 6);
        }
        for (i, data) in objs.iter().enumerate() {
            assert_eq!(&s.get(&format!("o{i}")).unwrap(), data, "degraded get");
        }
        let enc = s.encoded_mut("o0").unwrap();
        for t in 0..stripes {
            let missing = (t * 2) % 6;
            enc.repair_block(t, missing).unwrap();
        }
        for (i, data) in objs.iter().enumerate() {
            assert_eq!(&s.get(&format!("o{i}")).unwrap(), data, "after repair");
        }
    }

    #[test]
    fn reserved_names_rejected() {
        let mut s = store();
        assert!(s.put(".pack-0001", b"nope").is_err());
    }
}
