//! Streaming encode/decode: one stripe of memory at a time.
//!
//! For files too large to hold in memory, [`encode_stream`] reads a stripe
//! of data (`k · block_bytes`), encodes it and hands the blocks to a sink;
//! [`decode_stream`] pulls (possibly incomplete) stripes from a source and
//! writes the recovered bytes out.

use std::io::{Read, Write};

use access::AccessCode;
use erasure::ErasureCode;

use crate::codec::{FileCodec, FileMeta};
use crate::error::FileError;

/// Encodes everything `reader` yields, stripe by stripe.
///
/// `sink` receives `(stripe_index, blocks)` for each stripe and may write
/// them to disk, the network, etc. The block buffers are *borrowed*: they
/// belong to a single [`erasure::EncodedStripe`] that the loop re-encodes
/// in place for every stripe, so the steady state allocates nothing —
/// copy out whatever the sink needs to keep.
///
/// # Errors
///
/// Propagates reader/sink I/O failures and geometry errors; an empty input
/// is rejected.
pub fn encode_stream<C: ErasureCode, R: Read>(
    codec: &FileCodec<C>,
    mut reader: R,
    mut sink: impl FnMut(usize, &[Vec<u8>]) -> std::io::Result<()>,
) -> Result<FileMeta, FileError> {
    let sdb = codec.stripe_data_bytes();
    let mut buf = vec![0u8; sdb];
    let mut stripe = codec.empty_stripe();
    let mut stripes = 0usize;
    let mut file_len = 0u64;
    loop {
        let mut filled = 0;
        while filled < sdb {
            let n = reader.read(&mut buf[filled..])?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        if filled == 0 {
            break;
        }
        codec.encode_stripe_into(&buf[..filled], &mut stripe)?;
        sink(stripes, &stripe.blocks)?;
        stripes += 1;
        file_len += filled as u64;
        if filled < sdb {
            break; // EOF mid-stripe
        }
    }
    if stripes == 0 {
        return Err(FileError::BadGeometry {
            reason: "cannot encode an empty stream".into(),
        });
    }
    Ok(FileMeta {
        file_len,
        block_bytes: codec.block_bytes(),
        n: codec.code().n(),
        k: codec.code().k(),
        stripes,
        stripe_data_bytes: sdb,
        code_name: codec.code().name(),
    })
}

/// Decodes a streamed file: pulls each stripe's blocks from `source`
/// (missing blocks as `None`), decodes, and writes exactly
/// `meta.file_len` bytes to `writer`.
///
/// # Errors
///
/// Propagates source failures, unrecoverable stripes and writer I/O errors.
pub fn decode_stream<C: AccessCode, W: Write>(
    codec: &FileCodec<C>,
    meta: &FileMeta,
    mut source: impl FnMut(usize) -> Result<Vec<Option<Vec<u8>>>, FileError>,
    mut writer: W,
) -> Result<(), FileError> {
    let sdb = codec.stripe_data_bytes() as u64;
    let mut remaining = meta.file_len;
    for s in 0..meta.stripes {
        let blocks = source(s)?;
        let data = codec.decode_stripe(&blocks).map_err(|e| match e {
            FileError::StripeUnrecoverable { live, needed, .. } => FileError::StripeUnrecoverable {
                stripe: s,
                live,
                needed,
            },
            other => other,
        })?;
        let take = remaining.min(sdb) as usize;
        writer.write_all(&data[..take])?;
        remaining -= take as u64;
    }
    writer.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use carousel::Carousel;

    #[test]
    fn stream_round_trip() {
        let codec = FileCodec::new(Carousel::new(6, 3, 3, 6).unwrap(), 60).unwrap();
        let file: Vec<u8> = (0..433).map(|i| (i * 29 + 3) as u8).collect();
        let mut store: Vec<Vec<Vec<u8>>> = Vec::new();
        let meta = encode_stream(&codec, &file[..], |s, blocks| {
            assert_eq!(s, store.len());
            store.push(blocks.to_vec());
            Ok(())
        })
        .unwrap();
        assert_eq!(meta.file_len, 433);
        assert_eq!(meta.stripes, 3); // 180 bytes per stripe

        let mut out = Vec::new();
        decode_stream(
            &codec,
            &meta,
            |s| Ok(store[s].iter().cloned().map(Some).collect()),
            &mut out,
        )
        .unwrap();
        assert_eq!(out, file);
    }

    #[test]
    fn stream_decode_with_losses() {
        let codec = FileCodec::new(Carousel::new(5, 3, 3, 5).unwrap(), 45).unwrap();
        let file: Vec<u8> = (0..600).map(|i| (i ^ 0x37) as u8).collect();
        let mut store: Vec<Vec<Vec<u8>>> = Vec::new();
        let meta = encode_stream(&codec, &file[..], |_, blocks| {
            store.push(blocks.to_vec());
            Ok(())
        })
        .unwrap();
        let mut out = Vec::new();
        decode_stream(
            &codec,
            &meta,
            |s| {
                // Drop two different blocks per stripe.
                Ok(store[s]
                    .iter()
                    .enumerate()
                    .map(|(i, b)| (i != s % 5 && i != (s + 2) % 5).then(|| b.clone()))
                    .collect())
            },
            &mut out,
        )
        .unwrap();
        assert_eq!(out, file);
    }

    #[test]
    fn empty_stream_rejected() {
        let codec = FileCodec::new(Carousel::new(4, 2, 2, 4).unwrap(), 16).unwrap();
        let empty: &[u8] = &[];
        assert!(encode_stream(&codec, empty, |_, _| Ok(())).is_err());
    }

    #[test]
    fn unrecoverable_stream_stripe_reported() {
        let codec = FileCodec::new(Carousel::new(4, 2, 2, 4).unwrap(), 16).unwrap();
        let file = [9u8; 100];
        let mut store: Vec<Vec<Vec<u8>>> = Vec::new();
        let meta = encode_stream(&codec, &file[..], |_, b| {
            store.push(b.to_vec());
            Ok(())
        })
        .unwrap();
        let result = decode_stream(
            &codec,
            &meta,
            |s| {
                Ok(store[s]
                    .iter()
                    .enumerate()
                    .map(|(i, b)| (s != 1 || i >= 3).then(|| b.clone()))
                    .collect())
            },
            std::io::sink(),
        );
        assert!(matches!(
            result,
            Err(FileError::StripeUnrecoverable { stripe: 1, .. })
        ));
    }
}
