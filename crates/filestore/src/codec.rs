//! The file codec: stripes, whole-file decode, byte-range reads, repair.
//!
//! All decode-side paths (whole-stripe decode, degraded range reads, block
//! repair) plan through the shared `access` layer: the codec holds an
//! [`access::PlanCache`] so repeated reads under one failure pattern pay for
//! each Gaussian elimination once, and execution runs the generic
//! [`access::PlanExecutor`] over an in-memory [`access::MemorySource`].

use std::sync::Arc;

use access::{AccessCode, ExecError, MemorySource, PlanCache, PlanExecutor};
use erasure::{CodeError, ColumnUpdater, ErasureCode, SparseEncoder};

use crate::error::FileError;

/// Default number of cached plans per codec — generous for the handful of
/// live-set patterns a degraded file sees.
const DEFAULT_PLAN_CACHE: usize = 32;

/// Maps an executor failure on an in-memory source to a [`FileError`],
/// labeling it with the stripe. `needed` is the plan's block requirement
/// (`k` for reads, `d` for repairs).
fn map_exec(stripe: usize, needed: usize, e: ExecError<std::convert::Infallible>) -> FileError {
    match e {
        ExecError::Source(never) => match never {},
        ExecError::Code(CodeError::InsufficientData { needed, got }) => {
            FileError::StripeUnrecoverable {
                stripe,
                live: got,
                needed,
            }
        }
        ExecError::Code(other) => FileError::Code(other),
        // Unreachable with a well-formed in-memory source (the replan budget
        // is the block count, and each replan shrinks the live set), but
        // mapped defensively.
        ExecError::ReplansExhausted { .. } => FileError::StripeUnrecoverable {
            stripe,
            live: 0,
            needed,
        },
    }
}

/// Metadata of an encoded file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    /// Original file length in bytes.
    pub file_len: u64,
    /// Bytes per encoded block.
    pub block_bytes: usize,
    /// Blocks per stripe (`n`).
    pub n: usize,
    /// Data blocks per stripe (`k`).
    pub k: usize,
    /// Number of stripes.
    pub stripes: usize,
    /// Original data bytes per stripe (`k · block_bytes` for MDS-shaped
    /// codes; less for MBR codes, which store extra per block).
    pub stripe_data_bytes: usize,
    /// Human-readable code name (e.g. `Carousel(12,6,10,12)`).
    pub code_name: String,
}

impl FileMeta {
    /// Original data bytes carried by one stripe.
    pub fn stripe_data_bytes(&self) -> usize {
        self.stripe_data_bytes
    }
}

/// A fixed-geometry file encoder for one erasure code.
#[derive(Debug, Clone)]
pub struct FileCodec<C> {
    code: C,
    block_bytes: usize,
    encoder: SparseEncoder,
    plans: Arc<PlanCache>,
}

impl<C: ErasureCode> FileCodec<C> {
    /// Creates a codec with the given per-block size.
    ///
    /// # Errors
    ///
    /// Returns [`FileError::BadGeometry`] unless `block_bytes` is positive
    /// and divisible by the code's units-per-block (`sub`), so every unit
    /// has a whole number of bytes.
    pub fn new(code: C, block_bytes: usize) -> Result<Self, FileError> {
        let sub = code.linear().sub();
        if block_bytes == 0 || !block_bytes.is_multiple_of(sub) {
            return Err(FileError::BadGeometry {
                reason: format!(
                    "block size {block_bytes} must be a positive multiple of sub = {sub}"
                ),
            });
        }
        let encoder = SparseEncoder::new(code.linear());
        Ok(FileCodec {
            code,
            block_bytes,
            encoder,
            plans: Arc::new(PlanCache::new(DEFAULT_PLAN_CACHE)),
        })
    }

    /// Replaces the plan cache — share one across codecs, or pass
    /// [`PlanCache::disabled`] to force fresh plans on every read.
    pub fn with_plan_cache(mut self, plans: Arc<PlanCache>) -> Self {
        self.plans = plans;
        self
    }

    /// The plan cache driving this codec's decode paths (hit/miss counters
    /// included).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plans
    }

    /// The underlying code.
    pub fn code(&self) -> &C {
        &self.code
    }

    /// Bytes per encoded block.
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    /// Original data bytes per stripe: `message_units · unit_bytes`
    /// (`k · block_bytes` for MDS-shaped codes).
    pub fn stripe_data_bytes(&self) -> usize {
        let unit = self.block_bytes / self.code.linear().sub();
        self.code.linear().message_units() * unit
    }

    /// Encodes one stripe's worth of data (zero-padded to a full stripe).
    ///
    /// # Errors
    ///
    /// Returns [`FileError::BadGeometry`] if `chunk` exceeds a stripe.
    pub fn encode_stripe(&self, chunk: &[u8]) -> Result<Vec<Vec<u8>>, FileError> {
        let sdb = self.stripe_data_bytes();
        if chunk.is_empty() || chunk.len() > sdb {
            return Err(FileError::BadGeometry {
                reason: format!("stripe chunk of {} bytes, expected 1..={sdb}", chunk.len()),
            });
        }
        // Fixed geometry: the unit width comes from the block size, not the
        // chunk length, so short final chunks pad implicitly (and copy-free)
        // inside the encoder.
        let w = self.block_bytes / self.code.linear().sub();
        let stripe = self.encoder.encode_with_unit_bytes(chunk, w)?;
        debug_assert_eq!(stripe.block_bytes(), self.block_bytes);
        Ok(stripe.blocks)
    }

    /// A zeroed stripe with this codec's fixed geometry, ready for
    /// [`encode_stripe_into`](FileCodec::encode_stripe_into).
    pub fn empty_stripe(&self) -> erasure::EncodedStripe {
        let sub = self.code.linear().sub();
        erasure::EncodedStripe {
            blocks: vec![vec![0u8; self.block_bytes]; self.code.linear().n()],
            unit_bytes: self.block_bytes / sub,
            original_len: 0,
        }
    }

    /// Encodes one stripe's worth of data into `stripe`, reusing its block
    /// buffers — the zero-allocation steady state of
    /// [`stream::encode_stream`](crate::stream::encode_stream), which
    /// re-encodes into the same [`erasure::EncodedStripe`] for every stripe
    /// of the file.
    ///
    /// # Errors
    ///
    /// Returns [`FileError::BadGeometry`] if `chunk` is empty or exceeds a
    /// stripe, or if `stripe` does not match this codec's geometry (start
    /// from [`empty_stripe`](FileCodec::empty_stripe)).
    pub fn encode_stripe_into(
        &self,
        chunk: &[u8],
        stripe: &mut erasure::EncodedStripe,
    ) -> Result<(), FileError> {
        let sdb = self.stripe_data_bytes();
        if chunk.is_empty() || chunk.len() > sdb {
            return Err(FileError::BadGeometry {
                reason: format!("stripe chunk of {} bytes, expected 1..={sdb}", chunk.len()),
            });
        }
        if stripe.block_bytes() != self.block_bytes {
            return Err(FileError::BadGeometry {
                reason: format!(
                    "stripe buffers hold {}-byte blocks, codec expects {}",
                    stripe.block_bytes(),
                    self.block_bytes
                ),
            });
        }
        self.encoder.encode_into(chunk, stripe)?;
        Ok(())
    }

    /// Encodes a whole file.
    ///
    /// # Errors
    ///
    /// Returns [`FileError::BadGeometry`] for empty input.
    pub fn encode(&self, data: &[u8]) -> Result<EncodedFile<C>, FileError>
    where
        C: Clone,
    {
        if data.is_empty() {
            return Err(FileError::BadGeometry {
                reason: "cannot encode an empty file".into(),
            });
        }
        let sdb = self.stripe_data_bytes();
        let mut stripes = Vec::with_capacity(data.len().div_ceil(sdb));
        for chunk in data.chunks(sdb) {
            stripes.push(self.encode_stripe(chunk)?.into_iter().map(Some).collect());
        }
        let meta = FileMeta {
            file_len: data.len() as u64,
            block_bytes: self.block_bytes,
            n: self.code.n(),
            k: self.code.k(),
            stripes: stripes.len(),
            stripe_data_bytes: sdb,
            code_name: self.code.name(),
        };
        Ok(EncodedFile {
            codec: self.clone(),
            meta,
            stripes,
        })
    }
}

impl<C: AccessCode> FileCodec<C> {
    /// Decodes one stripe from its (partially available) blocks, planning
    /// through the shared access layer (Carousel codes get their direct /
    /// degraded / fallback ladder; other codes any-`k` decode).
    ///
    /// # Errors
    ///
    /// Returns [`FileError::StripeUnrecoverable`] with fewer than `k` live
    /// blocks.
    pub fn decode_stripe(&self, blocks: &[Option<Vec<u8>>]) -> Result<Vec<u8>, FileError> {
        let refs: Vec<Option<&[u8]>> = blocks.iter().map(|b| b.as_deref()).collect();
        let mut source = MemorySource::new(refs, self.code.linear().sub());
        let executor = PlanExecutor::new(&self.plans).with_max_replans(self.code.n());
        let read = executor
            .read_stripe(&self.code, &mut source)
            .map_err(|e| map_exec(0, self.code.k(), e))?;
        Ok(read.data)
    }
}

/// A file encoded into stripes of blocks, with per-block availability.
#[derive(Debug, Clone)]
pub struct EncodedFile<C> {
    codec: FileCodec<C>,
    meta: FileMeta,
    /// `stripes[s][block]` — `None` once dropped/lost.
    stripes: Vec<Vec<Option<Vec<u8>>>>,
}

impl<C: ErasureCode> EncodedFile<C> {
    /// Creates an encoded file with every block missing — the starting
    /// point for loaders that fill blocks in from storage.
    pub fn empty(codec: FileCodec<C>, meta: FileMeta) -> Self {
        let stripes = (0..meta.stripes)
            .map(|_| (0..meta.n).map(|_| None).collect())
            .collect();
        EncodedFile {
            codec,
            meta,
            stripes,
        }
    }

    /// The file metadata.
    pub fn meta(&self) -> &FileMeta {
        &self.meta
    }

    /// Number of stripes.
    pub fn stripes(&self) -> usize {
        self.stripes.len()
    }

    /// Borrows a block's bytes, if present.
    pub fn block(&self, stripe: usize, block: usize) -> Option<&[u8]> {
        self.stripes.get(stripe)?.get(block)?.as_deref()
    }

    /// Replaces a block's bytes (used by repair and the on-disk loader).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices or wrong block size.
    pub fn set_block(&mut self, stripe: usize, block: usize, bytes: Vec<u8>) {
        assert_eq!(bytes.len(), self.meta.block_bytes, "wrong block size");
        self.stripes[stripe][block] = Some(bytes);
    }

    /// Marks a block lost.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn drop_block(&mut self, stripe: usize, block: usize) {
        self.stripes[stripe][block] = None;
    }

    /// Live block indices of a stripe.
    pub fn live_blocks(&self, stripe: usize) -> Vec<usize> {
        self.stripes[stripe]
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.as_ref().map(|_| i))
            .collect()
    }

    /// Returns the stripe's blocks as an in-memory [`access::BlockSource`].
    fn stripe_source(&self, stripe: usize) -> MemorySource<'_> {
        let refs: Vec<Option<&[u8]>> = self.stripes[stripe].iter().map(|b| b.as_deref()).collect();
        MemorySource::new(refs, self.codec.code.linear().sub())
    }
}

impl<C: AccessCode> EncodedFile<C> {
    /// Decodes one stripe by index, labeling failures with that stripe —
    /// the unit of work for per-stripe parallel decode
    /// (`workloads::parallel`).
    ///
    /// # Errors
    ///
    /// Returns [`FileError::StripeUnrecoverable`] with fewer than `k` live
    /// blocks and [`FileError::BadGeometry`] for an out-of-range index.
    pub fn decode_stripe_at(&self, stripe: usize) -> Result<Vec<u8>, FileError> {
        let blocks = self
            .stripes
            .get(stripe)
            .ok_or_else(|| FileError::BadGeometry {
                reason: format!("stripe {stripe} out of range 0..{}", self.stripes.len()),
            })?;
        self.codec.decode_stripe(blocks).map_err(|e| match e {
            FileError::StripeUnrecoverable { live, needed, .. } => FileError::StripeUnrecoverable {
                stripe,
                live,
                needed,
            },
            other => other,
        })
    }

    /// Decodes the entire file.
    ///
    /// # Errors
    ///
    /// Returns [`FileError::StripeUnrecoverable`] naming the first stripe
    /// with fewer than `k` live blocks.
    pub fn decode(&self) -> Result<Vec<u8>, FileError> {
        let mut out = Vec::with_capacity(self.meta.file_len as usize);
        for s in 0..self.stripes.len() {
            out.extend_from_slice(&self.decode_stripe_at(s)?);
        }
        out.truncate(self.meta.file_len as usize);
        Ok(out)
    }

    /// Reads `len` bytes at `offset`, touching only the stripes involved
    /// and decoding a stripe only when a needed unit's block is missing.
    ///
    /// # Errors
    ///
    /// Returns [`FileError::RangeOutOfBounds`] for ranges past the end and
    /// [`FileError::StripeUnrecoverable`] when a needed stripe cannot be
    /// decoded.
    pub fn read_range(&self, offset: u64, len: u64) -> Result<Vec<u8>, FileError> {
        if offset + len > self.meta.file_len {
            return Err(FileError::RangeOutOfBounds {
                offset,
                len,
                file_len: self.meta.file_len,
            });
        }
        let sdb = self.meta.stripe_data_bytes as u64;
        let mut out = Vec::with_capacity(len as usize);
        let mut off = offset;
        let mut remaining = len;
        while remaining > 0 {
            let stripe = (off / sdb) as usize;
            let within = (off % sdb) as usize;
            let take = remaining.min(sdb - within as u64) as usize;
            self.read_within_stripe(stripe, within, take, &mut out)?;
            off += take as u64;
            remaining -= take as u64;
        }
        Ok(out)
    }

    /// Repairs a missing block of one stripe in place from `d` live blocks,
    /// using the access layer's (cached) repair plan.
    ///
    /// # Errors
    ///
    /// Fails when fewer than `d` helpers are live or the block is not
    /// actually missing.
    pub fn repair_block(&mut self, stripe: usize, block: usize) -> Result<(), FileError> {
        if self.stripes[stripe][block].is_some() {
            return Err(FileError::BadGeometry {
                reason: format!("block {block} of stripe {stripe} is not missing"),
            });
        }
        let d = self.codec.code.d();
        let mut source = self.stripe_source(stripe);
        let executor = PlanExecutor::new(&self.codec.plans).with_max_replans(self.meta.n);
        let outcome = executor
            .repair_block(&self.codec.code, block, &mut source)
            .map_err(|e| map_exec(stripe, d, e))?;
        self.stripes[stripe][block] = Some(outcome.block);
        Ok(())
    }

    /// Overwrites `bytes` at `offset` *in place*, updating parity with
    /// delta writes: each modified message unit changes every affected
    /// encoded unit by `coeff · Δ` instead of re-encoding whole stripes —
    /// the read-modify-write path of erasure-coded storage.
    ///
    /// Every block of each touched stripe must be present (a real system
    /// would repair first); the write cannot extend the file.
    ///
    /// # Errors
    ///
    /// Returns [`FileError::RangeOutOfBounds`] past EOF and
    /// [`FileError::StripeUnrecoverable`] if a touched stripe has missing
    /// blocks.
    pub fn write_range(&mut self, offset: u64, bytes: &[u8]) -> Result<(), FileError> {
        if offset + bytes.len() as u64 > self.meta.file_len {
            return Err(FileError::RangeOutOfBounds {
                offset,
                len: bytes.len() as u64,
                file_len: self.meta.file_len,
            });
        }
        if bytes.is_empty() {
            return Ok(());
        }
        let updater = ColumnUpdater::new(self.codec.code.linear());
        let sdb = self.meta.stripe_data_bytes as u64;

        let mut pos = 0usize;
        while pos < bytes.len() {
            let abs = offset + pos as u64;
            let stripe = (abs / sdb) as usize;
            let within = (abs % sdb) as usize;
            let take = (sdb as usize - within).min(bytes.len() - pos);
            // Old bytes of the touched span, read straight from live data
            // regions (an in-place update requires a fully live stripe).
            let old = self.stripe_span(stripe, within, take)?;
            self.apply_stripe_delta(stripe, within, &old, &bytes[pos..pos + take], &updater)?;
            pos += take;
        }
        Ok(())
    }

    /// Appends `bytes` to the file, returning its new length. The tail of
    /// the last stripe (zero padding) is filled in place via delta
    /// updates; overflow becomes freshly encoded stripes.
    ///
    /// # Errors
    ///
    /// Returns [`FileError::StripeUnrecoverable`] if the last stripe has
    /// missing blocks (repair first) and propagates encoding errors for
    /// the overflow stripes.
    pub fn append(&mut self, bytes: &[u8]) -> Result<u64, FileError> {
        if bytes.is_empty() {
            return Ok(self.meta.file_len);
        }
        let sdb = self.meta.stripe_data_bytes as u64;
        let capacity = self.stripes.len() as u64 * sdb;
        let fill = ((capacity - self.meta.file_len) as usize).min(bytes.len());
        if fill > 0 {
            // The bytes past file_len are implicit zero padding, so the
            // delta of the fill region is simply the appended bytes.
            let updater = ColumnUpdater::new(self.codec.code.linear());
            let stripe = self.stripes.len() - 1;
            let within = (self.meta.file_len % sdb) as usize;
            let zeros = vec![0u8; fill];
            self.apply_stripe_delta(stripe, within, &zeros, &bytes[..fill], &updater)?;
        }
        for chunk in bytes[fill..].chunks(sdb as usize) {
            let blocks = self.codec.encode_stripe(chunk)?;
            self.stripes.push(blocks.into_iter().map(Some).collect());
        }
        self.meta.stripes = self.stripes.len();
        self.meta.file_len += bytes.len() as u64;
        Ok(self.meta.file_len)
    }

    /// Reads `take` data bytes at offset `within` of one stripe in message
    /// order — the "old" side of a delta update. Requires a fully live
    /// stripe.
    fn stripe_span(&self, stripe: usize, within: usize, take: usize) -> Result<Vec<u8>, FileError> {
        if self.stripes[stripe].iter().any(Option::is_none) {
            return Err(FileError::StripeUnrecoverable {
                stripe,
                live: self.live_blocks(stripe).len(),
                needed: self.meta.n,
            });
        }
        let layout = self.codec.code.data_layout();
        let w = self.meta.block_bytes / self.codec.code.linear().sub();
        let mut out = Vec::with_capacity(take);
        let mut pos = within;
        let end = within + take;
        while pos < end {
            let unit = pos / w;
            let in_unit = pos % w;
            let chunk = (w - in_unit).min(end - pos);
            let loc = layout.locate(unit).expect("every file unit is mapped");
            let start = loc.unit * w + in_unit;
            let block = self.stripes[stripe][loc.node].as_ref().expect("live");
            out.extend_from_slice(&block[start..start + chunk]);
            pos += chunk;
        }
        Ok(out)
    }

    /// Applies `old → new` at message byte `within` of one stripe via the
    /// erasure layer's stripe-level delta update (all blocks live).
    fn apply_stripe_delta(
        &mut self,
        stripe: usize,
        within: usize,
        old: &[u8],
        new: &[u8],
        updater: &ColumnUpdater,
    ) -> Result<(), FileError> {
        if self.stripes[stripe].iter().any(Option::is_none) {
            return Err(FileError::StripeUnrecoverable {
                stripe,
                live: self.live_blocks(stripe).len(),
                needed: self.meta.n,
            });
        }
        // Move the blocks out, apply the delta, move them back.
        let mut blocks: Vec<Vec<u8>> = self.stripes[stripe]
            .iter_mut()
            .map(|b| b.take().expect("checked live"))
            .collect();
        let applied = updater.delta_update(&mut blocks, within, old, new);
        for (slot, block) in self.stripes[stripe].iter_mut().zip(blocks) {
            *slot = Some(block);
        }
        applied.map_err(FileError::Code)?;
        Ok(())
    }

    /// Deep-scrubs the file: for every stripe with all `n` blocks present,
    /// runs the consistency check of [`erasure::consistency`] (subset-vote
    /// corruption localization — no checksums needed). Stripes with missing
    /// blocks are skipped (`None`).
    pub fn scrub(&self) -> Vec<Option<erasure::consistency::StripeHealth>> {
        self.stripes
            .iter()
            .map(|blocks| {
                let refs: Option<Vec<&[u8]>> = blocks.iter().map(|b| b.as_deref()).collect();
                refs.and_then(|refs| {
                    erasure::consistency::check_stripe(self.codec.code.linear(), &refs).ok()
                })
            })
            .collect()
    }

    /// Serves `take` bytes at offset `within` of stripe `stripe`'s data,
    /// copying from live data regions where possible and rebuilding only
    /// the data regions of *missing* blocks (an access-layer degraded
    /// block-region read — `k·(k/p)` block-sizes of work for a Carousel
    /// code instead of a whole-stripe decode).
    fn read_within_stripe(
        &self,
        stripe: usize,
        within: usize,
        take: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), FileError> {
        let layout = self.codec.code.data_layout();
        let sub = self.codec.code.linear().sub();
        let w = self.meta.block_bytes / sub;
        // Rebuilt data regions of missing blocks, reused across units of
        // this call (plans themselves are cached across calls).
        let mut regions: Vec<Option<Vec<u8>>> = vec![None; self.meta.n];
        let mut pos = within;
        let end = within + take;
        while pos < end {
            let unit = pos / w;
            let in_unit = pos % w;
            let chunk = (w - in_unit).min(end - pos);
            let loc = layout.locate(unit).expect("every file unit is mapped");
            let start = loc.unit * w + in_unit;
            if let Some(bytes) = self.block(stripe, loc.node) {
                out.extend_from_slice(&bytes[start..start + chunk]);
            } else {
                if regions[loc.node].is_none() {
                    let mut source = self.stripe_source(stripe);
                    let executor =
                        PlanExecutor::new(&self.codec.plans).with_max_replans(self.meta.n);
                    let region = executor
                        .read_block_region(&self.codec.code, loc.node, &mut source)
                        .map_err(|e| map_exec(stripe, self.meta.k, e))?;
                    regions[loc.node] = Some(region.data);
                }
                let region = regions[loc.node].as_ref().expect("just rebuilt");
                let region_start = layout.data_byte_range(loc.node, w).start;
                out.extend_from_slice(&region[start - region_start..start - region_start + chunk]);
            }
            pos += chunk;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carousel::Carousel;
    use rs_code::ReedSolomon;

    fn data(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 131 + 7) as u8).collect()
    }

    #[test]
    fn geometry_validation() {
        let code = Carousel::new(6, 3, 3, 6).unwrap(); // sub = 2
        assert!(FileCodec::new(code.clone(), 0).is_err());
        assert!(FileCodec::new(code.clone(), 101).is_err());
        assert!(FileCodec::new(code, 100).is_ok());
    }

    #[test]
    fn encode_decode_multi_stripe() {
        let codec = FileCodec::new(ReedSolomon::new(6, 4).unwrap(), 256).unwrap();
        let file = data(3000); // 2.9 stripes of 1024
        let enc = codec.encode(&file).unwrap();
        assert_eq!(enc.stripes(), 3);
        assert_eq!(enc.meta().file_len, 3000);
        assert_eq!(enc.decode().unwrap(), file);
    }

    #[test]
    fn decode_with_failures_per_stripe() {
        let codec = FileCodec::new(Carousel::new(6, 3, 3, 6).unwrap(), 300).unwrap();
        let file = data(2000);
        let mut enc = codec.encode(&file).unwrap();
        for s in 0..enc.stripes() {
            enc.drop_block(s, s % 6);
            enc.drop_block(s, (s + 3) % 6);
        }
        assert_eq!(enc.decode().unwrap(), file);
    }

    #[test]
    fn too_many_failures_names_the_stripe() {
        let codec = FileCodec::new(ReedSolomon::new(4, 2).unwrap(), 64).unwrap();
        let file = data(400); // 4 stripes of 128
        let mut enc = codec.encode(&file).unwrap();
        for b in 0..3 {
            enc.drop_block(2, b);
        }
        match enc.decode() {
            Err(FileError::StripeUnrecoverable {
                stripe,
                live,
                needed,
            }) => {
                assert_eq!((stripe, live, needed), (2, 1, 2));
            }
            other => panic!("expected StripeUnrecoverable, got {other:?}"),
        }
    }

    #[test]
    fn range_reads_match_source() {
        let codec = FileCodec::new(Carousel::new(5, 3, 3, 5).unwrap(), 120).unwrap();
        let file = data(2500);
        let enc = codec.encode(&file).unwrap();
        for (off, len) in [
            (0u64, 1u64),
            (359, 2),
            (0, 2500),
            (1000, 720),
            (2499, 1),
            (123, 456),
        ] {
            let got = enc.read_range(off, len).unwrap();
            assert_eq!(
                got,
                &file[off as usize..(off + len) as usize],
                "({off},{len})"
            );
        }
        assert!(enc.read_range(2400, 200).is_err());
    }

    #[test]
    fn range_reads_survive_failures() {
        let codec = FileCodec::new(Carousel::new(6, 4, 4, 6).unwrap(), 240).unwrap();
        let file = data(4000);
        let mut enc = codec.encode(&file).unwrap();
        enc.drop_block(0, 0);
        enc.drop_block(1, 3);
        for (off, len) in [(0u64, 500u64), (900, 1200), (0, 4000)] {
            let got = enc.read_range(off, len).unwrap();
            assert_eq!(got, &file[off as usize..(off + len) as usize]);
        }
    }

    #[test]
    fn repair_restores_byte_identical_blocks() {
        let codec = FileCodec::new(Carousel::new(8, 4, 6, 8).unwrap(), 480).unwrap();
        let file = data(5000);
        let mut enc = codec.encode(&file).unwrap();
        let original = enc.block(1, 2).unwrap().to_vec();
        enc.drop_block(1, 2);
        enc.repair_block(1, 2).unwrap();
        assert_eq!(enc.block(1, 2).unwrap(), &original[..]);
        // Repairing a present block is an error.
        assert!(enc.repair_block(1, 2).is_err());
    }

    #[test]
    fn write_range_updates_data_and_parity() {
        let codec = FileCodec::new(Carousel::new(6, 3, 3, 6).unwrap(), 60).unwrap();
        let mut file = data(500);
        let mut enc = codec.encode(&file).unwrap();
        // Overwrite a span crossing unit and stripe boundaries.
        let patch: Vec<u8> = (0..177).map(|i| (i * 3 + 200) as u8).collect();
        enc.write_range(150, &patch).unwrap();
        file[150..150 + 177].copy_from_slice(&patch);
        // Every k-subset decodes the updated file: parity followed the data.
        assert_eq!(enc.decode().unwrap(), file);
        let mut lossy = enc.clone();
        lossy.drop_block(0, 0);
        lossy.drop_block(1, 3);
        lossy.drop_block(2, 5);
        assert_eq!(lossy.decode().unwrap(), file);
        assert_eq!(enc.read_range(140, 200).unwrap(), &file[140..340]);
    }

    #[test]
    fn write_range_validates() {
        let codec = FileCodec::new(ReedSolomon::new(4, 2).unwrap(), 32).unwrap();
        let file = data(200);
        let mut enc = codec.encode(&file).unwrap();
        assert!(enc.write_range(150, &[0u8; 100]).is_err(), "past EOF");
        enc.write_range(10, &[]).unwrap();
        enc.drop_block(0, 1);
        assert!(matches!(
            enc.write_range(0, &[1, 2, 3]),
            Err(FileError::StripeUnrecoverable { .. })
        ));
    }

    #[test]
    fn scrub_localizes_silent_corruption() {
        use erasure::consistency::StripeHealth;
        let codec = FileCodec::new(ReedSolomon::new(6, 3).unwrap(), 120).unwrap();
        let file = data(700);
        let mut enc = codec.encode(&file).unwrap();
        assert!(enc
            .scrub()
            .iter()
            .all(|h| *h == Some(StripeHealth::Consistent)));
        // Silently corrupt one block of stripe 1.
        let mut bad = enc.block(1, 4).unwrap().to_vec();
        bad[10] ^= 0x08;
        enc.set_block(1, 4, bad);
        let health = enc.scrub();
        assert_eq!(health[0], Some(StripeHealth::Consistent));
        assert_eq!(health[1], Some(StripeHealth::Corrupt(vec![4])));
        // A stripe with a missing block is skipped.
        enc.drop_block(0, 0);
        assert_eq!(enc.scrub()[0], None);
    }

    #[test]
    fn stripe_chunk_size_validation() {
        let codec = FileCodec::new(ReedSolomon::new(4, 2).unwrap(), 64).unwrap();
        assert!(codec.encode_stripe(&[]).is_err());
        assert!(codec.encode_stripe(&data(129)).is_err());
        assert!(codec.encode_stripe(&data(128)).is_ok());
        assert!(codec.encode_stripe(&data(5)).is_ok(), "short chunks padded");
    }

    #[test]
    fn empty_file_rejected() {
        let codec = FileCodec::new(ReedSolomon::new(4, 2).unwrap(), 64).unwrap();
        assert!(codec.encode(&[]).is_err());
    }
}
