//! Microbenchmarks of the GF arithmetic kernels and the non-GF(2⁸)
//! additions: wide Reed-Solomon over GF(2¹⁶) and MBR repair.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use erasure::ErasureCode;
use gf256::Gf256;
use msr::ProductMatrixMbr;
use rs_code::wide::WideReedSolomon;

fn bench_slice_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("gf256-kernels");
    let src = vec![0xA7u8; 1 << 20];
    let mut dst = vec![0x15u8; 1 << 20];
    g.throughput(Throughput::Bytes(src.len() as u64));
    // Every registered kernel on the general path, plus the handle-level
    // fast paths (one/zero) that never reach a kernel.
    for kernel in gf256::kernels() {
        g.bench_with_input(
            BenchmarkId::new("mul_acc", kernel.name()),
            &0x3Du8,
            |b, &c| b.iter(|| kernel.mul_acc(Gf256::new(c), &src, &mut dst)),
        );
    }
    let kernel = gf256::kernel();
    for (label, coeff) in [("one", 1u8), ("zero", 0)] {
        g.bench_with_input(BenchmarkId::new("mul_acc", label), &coeff, |b, &c| {
            b.iter(|| kernel.mul_acc(Gf256::new(c), &src, &mut dst))
        });
    }
    g.finish();
}

fn bench_wide_rs(c: &mut Criterion) {
    let mut g = c.benchmark_group("wide-rs");
    g.sample_size(10);
    let code = WideReedSolomon::new(64, 48).expect("valid parameters");
    let data: Vec<u8> = (0..1 << 20).map(|i| (i * 31) as u8).collect();
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("encode 64/48 over GF(2^16)", |b| {
        b.iter(|| code.encode(&data).expect("encode"))
    });
    let blocks = code.encode(&data).expect("encode");
    let nodes: Vec<usize> = (16..64).collect();
    let refs: Vec<&[u8]> = nodes.iter().map(|&i| &blocks[i][..]).collect();
    g.bench_function("decode 64/48 over GF(2^16)", |b| {
        b.iter(|| code.decode_nodes(&nodes, &refs).expect("decode"))
    });
    g.finish();
}

fn bench_mbr_repair(c: &mut Criterion) {
    let mut g = c.benchmark_group("mbr");
    g.sample_size(10);
    let code = ProductMatrixMbr::new(12, 6, 10).expect("valid parameters");
    let b = code.linear().message_units();
    let data: Vec<u8> = (0..b * (1 << 14)).map(|i| (i * 13) as u8).collect();
    let stripe = code.linear().encode(&data).expect("encode");
    let helpers: Vec<usize> = (1..=10).collect();
    let plan = code.repair_plan(0, &helpers).expect("plan");
    let blocks: Vec<&[u8]> = helpers.iter().map(|&i| &stripe.blocks[i][..]).collect();
    g.throughput(Throughput::Bytes(stripe.block_bytes() as u64));
    g.bench_function("repair 12/6/10 (1-block traffic)", |b| {
        b.iter(|| plan.run(&blocks).expect("repair"))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_slice_kernels,
    bench_wide_rs,
    bench_mbr_repair
);
criterion_main!(benches);
