//! Ablation: sparse-aware vs dense encoding of Carousel codes — the
//! optimization of paper §VIII-A. Without skipping zero coefficients the
//! expanded generator would multiply the per-byte cost by N₀; the sparse
//! encoder keeps it at the base code's cost.

use carousel::Carousel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use erasure::codec::DenseEncoder;
use erasure::{ErasureCode, SparseEncoder};
use workloads::coding_bench::payload;

fn bench_sparsity(c: &mut Criterion) {
    let mut g = c.benchmark_group("sparsity-ablation");
    for (n, k, d, p) in [(12usize, 6usize, 6usize, 12usize), (12, 6, 10, 12)] {
        let code = Carousel::new(n, k, d, p).expect("valid parameters");
        let data = payload(&code, 4 << 20);
        let sparse = SparseEncoder::new(code.linear());
        let dense = DenseEncoder::new(code.linear());
        g.throughput(Throughput::Bytes(data.len() as u64));
        let label = format!("({n},{k},{d},{p})");
        g.bench_with_input(BenchmarkId::new("sparse", &label), &data, |b, data| {
            b.iter(|| sparse.encode(data).expect("encode"))
        });
        g.bench_with_input(BenchmarkId::new("dense", &label), &data, |b, data| {
            b.iter(|| dense.encode(data).expect("encode"))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sparsity
}
criterion_main!(benches);
