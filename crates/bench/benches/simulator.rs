//! Benchmarks of the cluster simulator itself: a full Fig. 9-style job and
//! a Fig. 11 download, to document the cost of regenerating the cluster
//! figures.

use criterion::{criterion_group, criterion_main, Criterion};
use dfs::reader::download_striped;
use dfs::{ClusterSpec, CodingRates, Namenode, Policy};
use mapreduce::{run_job, WorkloadProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_job(c: &mut Criterion) {
    let spec = ClusterSpec::r3_large_cluster();
    let mut rng = StdRng::seed_from_u64(1);
    let mut nn = Namenode::new(spec.nodes);
    let file = nn
        .store(
            "f",
            3072.0,
            512.0,
            Policy::Carousel {
                n: 12,
                k: 6,
                d: 10,
                p: 12,
            },
            &mut rng,
        )
        .clone();
    let splits = file.map_splits();
    c.bench_function("simulate terasort job", |b| {
        b.iter(|| run_job(&spec, &splits, &WorkloadProfile::terasort()))
    });
}

fn bench_download(c: &mut Criterion) {
    let spec = ClusterSpec::r3_large_cluster().with_disk_read_mbps(37.5);
    let mut rng = StdRng::seed_from_u64(1);
    let mut nn = Namenode::new(spec.nodes);
    let file = nn
        .store(
            "f",
            3072.0,
            512.0,
            Policy::Carousel {
                n: 12,
                k: 6,
                d: 10,
                p: 10,
            },
            &mut rng,
        )
        .clone();
    c.bench_function("simulate fig11 download", |b| {
        b.iter(|| download_striped(&spec, &file, CodingRates::default()).expect("download"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_job, bench_download
}
criterion_main!(benches);
