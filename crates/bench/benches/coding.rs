//! Criterion benches of the coding kernels behind Figures 6 and 8:
//! encode, decode (one data block lost) and repair, for the paper's four
//! code families at k = 4 and k = 6 (n = 2k).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use erasure::{DecodePlan, SparseEncoder};
use workloads::coding_bench::{fig6_codes, payload};

const STRIPE_BYTES: usize = 8 << 20;

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("encode");
    for k in [4usize, 6] {
        for (fam, code) in fig6_codes(k).expect("valid parameters") {
            let data = payload(code.as_ref(), STRIPE_BYTES);
            let encoder = SparseEncoder::new(code.linear());
            g.throughput(Throughput::Bytes(data.len() as u64));
            g.bench_with_input(
                BenchmarkId::new(fam.label(), format!("k={k}")),
                &data,
                |b, data| b.iter(|| encoder.encode(data).expect("encode")),
            );
        }
    }
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("decode");
    for k in [4usize, 6] {
        for (fam, code) in fig6_codes(k).expect("valid parameters") {
            let data = payload(code.as_ref(), STRIPE_BYTES);
            let stripe = code.linear().encode(&data).expect("encode");
            let nodes: Vec<usize> = (1..=k).collect();
            let blocks: Vec<&[u8]> = nodes.iter().map(|&i| &stripe.blocks[i][..]).collect();
            let plan = DecodePlan::for_nodes(code.linear(), &nodes).expect("plan");
            g.throughput(Throughput::Bytes(data.len() as u64));
            g.bench_with_input(
                BenchmarkId::new(fam.label(), format!("k={k}")),
                &blocks,
                |b, blocks| b.iter(|| plan.decode(blocks).expect("decode")),
            );
        }
    }
    g.finish();
}

fn bench_repair(c: &mut Criterion) {
    let mut g = c.benchmark_group("repair");
    for k in [4usize, 6] {
        for (fam, code) in fig6_codes(k).expect("valid parameters") {
            let data = payload(code.as_ref(), STRIPE_BYTES);
            let stripe = code.linear().encode(&data).expect("encode");
            let helpers: Vec<usize> = (1..=code.d()).collect();
            let plan = code.repair_plan(0, &helpers).expect("repair plan");
            let blocks: Vec<&[u8]> = helpers.iter().map(|&i| &stripe.blocks[i][..]).collect();
            g.throughput(Throughput::Bytes(stripe.block_bytes() as u64));
            g.bench_with_input(
                BenchmarkId::new(fam.label(), format!("k={k}")),
                &blocks,
                |b, blocks| b.iter(|| plan.run(blocks).expect("repair")),
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_encode, bench_decode, bench_repair
}
criterion_main!(benches);
