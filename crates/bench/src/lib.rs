//! Shared helpers for the figure-regeneration binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Renders a fixed-width ASCII table.
///
/// # Panics
///
/// Panics if a row's length differs from the header's.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<w$}"));
        }
        line.push('\n');
        line
    };
    let headers_owned: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&headers_owned, &widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Reads a positive numeric knob from the environment with a default —
/// used by the figure binaries so CI can run them quickly
/// (`BENCH_MB=4 BENCH_REPS=1 cargo run --bin fig6`).
pub fn env_knob(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

/// Handles the `--metrics <out.jsonl>` flag shared by every figure binary.
///
/// Call once at the top of `main`. When the flag is present (also accepted
/// as `--metrics=out.jsonl`), the file is created and installed as the
/// process-wide telemetry event sink, so simulator schedules and span
/// timings stream into it during the run; when the returned guard drops at
/// exit, the sink is closed and a full registry snapshot (counters, gauges,
/// histogram quantiles) is appended as JSON-lines. Without the flag this is
/// a no-op; in a `--no-default-features` build the requested file is still
/// written but holds only the `meta` line (the registry is empty).
///
/// See `docs/OBSERVABILITY.md` for the metric names and line schema.
pub fn init_metrics(run: &'static str) -> MetricsGuard {
    let mut path: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--metrics" {
            path = args.next().map(Into::into);
        } else if let Some(p) = arg.strip_prefix("--metrics=") {
            path = Some(p.into());
        }
    }
    if let Some(p) = &path {
        match std::fs::File::create(p) {
            Ok(f) => telemetry::set_event_sink(std::io::BufWriter::new(f)),
            Err(e) => {
                eprintln!("warning: cannot create metrics file {}: {e}", p.display());
                path = None;
            }
        }
    }
    MetricsGuard { run, path }
}

/// Guard returned by [`init_metrics`]; appends the final metrics snapshot
/// on drop.
pub struct MetricsGuard {
    run: &'static str,
    path: Option<std::path::PathBuf>,
}

impl Drop for MetricsGuard {
    fn drop(&mut self) {
        let Some(path) = self.path.take() else { return };
        // Close the streaming sink first so its buffer is flushed before the
        // snapshot lines are appended.
        telemetry::clear_event_sink();
        let snap = telemetry::Registry::global().snapshot();
        let result = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .and_then(|mut f| snap.write_jsonl(self.run, &mut f));
        match result {
            Ok(()) => eprintln!("metrics written to {}", path.display()),
            Err(e) => eprintln!("warning: cannot write metrics to {}: {e}", path.display()),
        }
    }
}

/// Formats seconds with adaptive precision.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.1}")
    } else {
        format!("{s:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["k", "value"],
            &[vec!["2".into(), "10".into()], vec!["10".into(), "3".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("k "));
        assert!(lines[1].starts_with("---"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        render_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn env_knob_defaults() {
        assert_eq!(env_knob("DEFINITELY_UNSET_KNOB_XYZ", 7), 7);
    }

    #[test]
    fn fmt_secs_precision() {
        assert_eq!(fmt_secs(123.4), "123");
        assert_eq!(fmt_secs(12.34), "12.3");
        assert_eq!(fmt_secs(0.1234), "0.123");
    }
}
