//! Shared helpers for the figure-regeneration binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Renders a fixed-width ASCII table.
///
/// # Panics
///
/// Panics if a row's length differs from the header's.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<w$}"));
        }
        line.push('\n');
        line
    };
    let headers_owned: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&headers_owned, &widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Reads a positive numeric knob from the environment with a default —
/// used by the figure binaries so CI can run them quickly
/// (`BENCH_MB=4 BENCH_REPS=1 cargo run --bin fig6`).
pub fn env_knob(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

/// Formats seconds with adaptive precision.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.1}")
    } else {
        format!("{s:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["k", "value"],
            &[
                vec!["2".into(), "10".into()],
                vec!["10".into(), "3".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("k "));
        assert!(lines[1].starts_with("---"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        render_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn env_knob_defaults() {
        assert_eq!(env_knob("DEFINITELY_UNSET_KNOB_XYZ", 7), 7);
    }

    #[test]
    fn fmt_secs_precision() {
        assert_eq!(fmt_secs(123.4), "123");
        assert_eq!(fmt_secs(12.34), "12.3");
        assert_eq!(fmt_secs(0.1234), "0.123");
    }
}
