//! Regenerates every figure and extension experiment in one run and writes
//! a consolidated markdown report to `results/REPORT.md`.
//!
//! Coding-throughput figures (6 and 8) honor `BENCH_MB` / `BENCH_REPS`
//! (defaults 16 MB × 2 here, smaller than the standalone binaries, so the
//! full report stays fast). Run with `--release` for meaningful MB/s.

use std::fmt::Write as _;

use bench_support::{env_knob, fmt_secs, render_table};
use workloads::coding_bench::{
    fig5_matrices, fig6_codes, measure_decode, measure_encode, measure_repair, payload,
    repair_traffic_mb, CodeFamily,
};
use workloads::experiments;

fn main() -> std::io::Result<()> {
    let _metrics = bench_support::init_metrics("all_figures");
    let mb = env_knob("BENCH_MB", 16);
    let reps = env_knob("BENCH_REPS", 2);
    let mut out = String::new();
    let section = |title: &str, body: String, out: &mut String| {
        println!("generated: {title}");
        let _ = writeln!(out, "## {title}\n\n```text\n{body}```\n");
    };

    let _ = writeln!(
        out,
        "# Carousel codes — regenerated evaluation\n\n\
         One run of every figure of the paper plus this repository's \
         extension experiments. Coding throughput measured at {mb} MB x \
         {reps} reps.\n"
    );

    section("Figure 5: generating matrices", fig5_matrices(), &mut out);

    // Figures 6a/6b/7/8 share the code family sweep.
    let ks = [2usize, 4, 6, 8, 10];
    let labels: Vec<&str> = CodeFamily::all().iter().map(|f| f.label()).collect();
    let headers: Vec<&str> = std::iter::once("k").chain(labels.clone()).collect();
    let mut enc_rows = Vec::new();
    let mut dec_rows = Vec::new();
    let mut tr_rows = Vec::new();
    let mut new_rows = Vec::new();
    for &k in &ks {
        let codes = fig6_codes(k).expect("paper parameters");
        let mut enc = vec![k.to_string()];
        let mut dec = vec![k.to_string()];
        let mut tr = vec![k.to_string()];
        let mut nc = vec![k.to_string()];
        for (_, code) in &codes {
            let data = payload(code.as_ref(), mb << 20);
            enc.push(format!("{:.0}", measure_encode(code.as_ref(), &data, reps)));
            dec.push(format!("{:.0}", measure_decode(code.as_ref(), &data, reps)));
            tr.push(format!("{:.0}", repair_traffic_mb(code.as_ref(), 512.0)));
            nc.push(fmt_secs(
                measure_repair(code.as_ref(), &data, reps).newcomer_s,
            ));
        }
        enc_rows.push(enc);
        dec_rows.push(dec);
        tr_rows.push(tr);
        new_rows.push(nc);
    }
    section(
        "Figure 6a: encoding throughput (MB/s)",
        render_table(&headers, &enc_rows),
        &mut out,
    );
    section(
        "Figure 6b: decoding throughput (MB/s)",
        render_table(&headers, &dec_rows),
        &mut out,
    );
    section(
        "Figure 7: reconstruction traffic (MB, 512 MB blocks)",
        render_table(&headers, &tr_rows),
        &mut out,
    );
    section(
        "Figure 8: reconstruction time at the newcomer (s)",
        render_table(&headers, &new_rows),
        &mut out,
    );

    // Figure 9.
    let rows = experiments::fig9_repeated(&(0..5).collect::<Vec<_>>());
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.code.clone(),
                r.map.display(),
                r.reduce.display(),
                r.job.display(),
            ]
        })
        .collect();
    section(
        "Figure 9: Hadoop jobs (simulated, mean [p10, p90] over 5 placements)",
        render_table(
            &["workload", "code", "map (s)", "reduce (s)", "job (s)"],
            &table,
        ),
        &mut out,
    );

    // Figure 10.
    let rows = experiments::fig10(42);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                fmt_secs(r.terasort_s),
                fmt_secs(r.wordcount_s),
            ]
        })
        .collect();
    section(
        "Figure 10: job completion vs data parallelism",
        render_table(&["scheme", "terasort (s)", "wordcount (s)"], &table),
        &mut out,
    );

    // Figure 11.
    let rows = experiments::fig11(42, dfs::CodingRates::default());
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                r.servers.to_string(),
                fmt_secs(r.no_failure_s),
                fmt_secs(r.one_failure_s),
            ]
        })
        .collect();
    section(
        "Figure 11: 3 GB retrieval (simulated, 300 Mbps disk cap)",
        render_table(
            &["scheme", "servers", "no failure (s)", "one failure (s)"],
            &table,
        ),
        &mut out,
    );

    // Extension: degraded job.
    let rows = experiments::ext_degraded_job(42);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                fmt_secs(r.healthy_s),
                fmt_secs(r.degraded_s),
            ]
        })
        .collect();
    section(
        "Extension: wordcount with one dead data-bearing block",
        render_table(&["scheme", "healthy (s)", "degraded (s)"], &table),
        &mut out,
    );

    // Extension: stragglers.
    let rows = experiments::ext_stragglers(&(0..5).collect::<Vec<_>>());
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                fmt_secs(r.uniform_s),
                fmt_secs(r.straggler_s),
            ]
        })
        .collect();
    section(
        "Extension: wordcount with 10 of 30 nodes 2x slower",
        render_table(&["scheme", "uniform (s)", "stragglers (s)"], &table),
        &mut out,
    );

    // Extension: oversubscription.
    let rows = experiments::ext_oversubscription(42);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.switch.clone(),
                fmt_secs(r.terasort_s),
                fmt_secs(r.wordcount_s),
            ]
        })
        .collect();
    section(
        "Extension: Carousel jobs vs core-switch bandwidth",
        render_table(&["core switch", "terasort (s)", "wordcount (s)"], &table),
        &mut out,
    );

    // Extension: durability (3 trials to keep the report fast).
    {
        use dfs::durability::{simulate, DurabilityParams};
        use rand::SeedableRng;
        let params = DurabilityParams {
            node_mtbf_hours: 50.0,
            repair_mbps: 0.2,
            horizon_hours: 24.0 * 365.0,
            rack_failures: None,
        };
        let rows: Vec<Vec<String>> = [
            ("3x replication", dfs::Policy::Replication { copies: 3 }),
            ("RS(12,6)", dfs::Policy::Rs { n: 12, k: 6 }),
            (
                "Carousel(12,6,10,12)",
                dfs::Policy::Carousel {
                    n: 12,
                    k: 6,
                    d: 10,
                    p: 12,
                },
            ),
        ]
        .iter()
        .map(|&(label, policy)| {
            let mut lost = 0usize;
            for seed in 0..3u64 {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let mut nn = dfs::Namenode::new(30);
                let data_mb = policy.stripe_data_blocks() as f64 * 512.0 * 100.0;
                let file = nn.store("f", data_mb, 512.0, policy, &mut rng).clone();
                lost += simulate(&nn, &file, &params, &mut rng).stripes_lost;
            }
            vec![label.to_string(), format!("{:.1}", lost as f64 / 3.0)]
        })
        .collect();
        section(
            "Extension: durability, stripes lost per simulated year",
            render_table(&["scheme", "stripes lost / year"], &rows),
            &mut out,
        );
    }

    std::fs::create_dir_all("results")?;
    std::fs::write("results/REPORT.md", &out)?;
    println!("\nwrote results/REPORT.md ({} bytes)", out.len());
    Ok(())
}
