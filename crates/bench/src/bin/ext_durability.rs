//! Extension: long-horizon durability. Repair traffic (paper Fig. 7) sets
//! the repair window; this Monte-Carlo shows how the window translates
//! into data loss when failures arrive faster than repairs finish.
//!
//! 100 stripes on 30 nodes, one simulated year, constrained repair
//! bandwidth. Averages over `BENCH_REPS` seeds (default 10).

use bench_support::{env_knob, render_table};
use dfs::durability::{simulate, DurabilityParams};
use dfs::{Namenode, Policy};
use rand::SeedableRng;

fn main() {
    let _metrics = bench_support::init_metrics("ext_durability");
    let trials = env_knob("BENCH_REPS", 10) as u64;
    let params = DurabilityParams {
        node_mtbf_hours: 50.0,
        repair_mbps: 0.2,
        horizon_hours: 24.0 * 365.0,
        rack_failures: None,
    };
    let schemes = [
        ("3x replication", Policy::Replication { copies: 3 }),
        ("RS(12,6)", Policy::Rs { n: 12, k: 6 }),
        (
            "Carousel(12,6,10,12)",
            Policy::Carousel {
                n: 12,
                k: 6,
                d: 10,
                p: 12,
            },
        ),
    ];
    let rows: Vec<Vec<String>> = schemes
        .iter()
        .map(|&(label, policy)| {
            let mut lost = 0usize;
            let mut repair_h = 0.0;
            for seed in 0..trials {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let mut nn = Namenode::new(30);
                let data_mb = policy.stripe_data_blocks() as f64 * 512.0 * 100.0;
                let file = nn.store("f", data_mb, 512.0, policy, &mut rng).clone();
                let r = simulate(&nn, &file, &params, &mut rng);
                lost += r.stripes_lost;
                repair_h = r.repair_hours;
            }
            vec![
                label.to_string(),
                format!("{:.2}", repair_h),
                format!("{:.1}", lost as f64 / trials as f64),
            ]
        })
        .collect();
    println!(
        "== Extension: durability over 1 simulated year (MTBF {} h/node, repair {} MB/s) ==",
        params.node_mtbf_hours, params.repair_mbps
    );
    println!("(100 stripes; mean over {trials} trials)");
    println!(
        "{}",
        render_table(
            &["scheme", "repair window (h)", "stripes lost / year"],
            &rows
        )
    );
    println!("Shorter repair windows are the reliability half of the paper's");
    println!("optimal-repair-traffic argument: Carousel's MSR-grade repairs keep");
    println!("the window 3x shorter than RS at identical 2.0x storage.");
}
