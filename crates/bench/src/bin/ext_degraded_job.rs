//! Extension: MapReduce under a block failure.
//!
//! One data-bearing block is removed before a wordcount job starts; its map
//! task must perform a degraded read — fetching `k` full blocks for RS, but
//! only the affected `k/p` share of `k` blocks for a Carousel code, whose
//! smaller splits also bound the amount of recomputation. This connects to
//! the degraded-read scheduling literature the paper surveys in §III.

use bench_support::{fmt_secs, render_table};
use workloads::experiments::ext_degraded_job;

fn main() {
    let _metrics = bench_support::init_metrics("ext_degraded_job");
    let rows = ext_degraded_job(42);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                fmt_secs(r.healthy_s),
                fmt_secs(r.degraded_s),
                format!("{:+.1}", r.degraded_s - r.healthy_s),
            ]
        })
        .collect();
    println!("== Extension: wordcount with one dead data-bearing block ==");
    println!(
        "{}",
        render_table(
            &["scheme", "healthy (s)", "degraded (s)", "penalty (s)"],
            &table
        )
    );
}
