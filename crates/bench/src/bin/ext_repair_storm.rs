//! Repair-storm benchmark: foreground read latency *under background
//! rebuild*, RS vs Carousel, on a loopback cluster whose datanodes
//! serve through a byte-rate service model (one service unit per node,
//! held for `bytes_moved / rate` — so repair traffic and foreground
//! reads genuinely contend, like on a real disk/NIC).
//!
//! The experiment: place the same file with the same seeded placement
//! under RS(8,4) and Carousel(8,4,6,8), attach a
//! [`cluster::RepairScheduler`], then kill nodes on an identical
//! schedule while pipelined foreground `get` clients hammer the
//! cluster. RS rebuilds a block by reading `k = 4` whole blocks;
//! Carousel (MSR regime) reads `β/sub` of `d = 6` blocks — `d/(d−k+1) =
//! 2` block-sizes, half the bytes — so its rebuild both finishes sooner
//! and steals less service time from foreground reads. The headline
//! numbers are the post-kill foreground get p50/p95/p99 and the repair
//! payload throughput for each code, written to
//! `results/BENCH_repair_storm.json`.
//!
//! Knobs: `BENCH_STORM_RATE` (per-node service rate in bytes/sec),
//! `BENCH_STORM_BW` (global repair-bandwidth budget in bytes/sec),
//! `BENCH_STORM_CLIENTS` (foreground client threads),
//! `BENCH_STORM_STRIPES`. `--smoke` runs a small single-kill storm on 9
//! nodes and asserts (a) every foreground read during the rebuild is
//! byte-identical, (b) the repair queue drains to empty — the CI gate
//! wired into `scripts/check.sh`. The full run uses 11 nodes, a
//! two-kill schedule, and asserts the paper's claim: Carousel
//! foreground get p99 ≤ RS p99 at equal-or-higher repair throughput.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use access::{ObjectStore, PutOptions};
use bench_support::env_knob;
use cluster::testing::LocalCluster;
use cluster::{ClusterClient, Coordinator, RepairConfig, RepairScheduler};
use filestore::format::CodeSpec;
use workloads::parallel::ParallelCtx;

/// Everything measured for one code under the storm.
struct CodeResult {
    code: String,
    fg_gets: usize,
    fg_p50_ms: f64,
    fg_p95_ms: f64,
    fg_p99_ms: f64,
    repair_secs: f64,
    blocks_rebuilt: u64,
    repair_payload_bytes: u64,
    repair_mbps: f64,
    requeued: u64,
    abandoned: u64,
    queue_drained: bool,
}

/// The shared shape of one storm run.
struct StormConfig {
    nodes: usize,
    kills: usize,
    stripes: usize,
    block_bytes: usize,
    delay: Duration,
    service_rate: u64,
    repair_bandwidth: u64,
    clients: usize,
    drain_timeout: Duration,
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * q).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// A fresh pipelined foreground client against `coord`.
fn foreground_client(coord: &Arc<Coordinator>) -> ClusterClient {
    ClusterClient::new(Arc::clone(coord))
        .with_timeout(Duration::from_secs(10))
        .with_fanout(ParallelCtx::builder().threads(8).build())
        .with_pipeline_depth(2)
}

/// Runs one code through the storm and measures it.
fn run_code(label: &str, spec: CodeSpec, cfg: &StormConfig) -> CodeResult {
    let mut cluster =
        LocalCluster::start_with_service(cfg.nodes, cfg.delay, Some(cfg.service_rate))
            .expect("start cluster");
    let coord = cluster.coordinator();
    let data: Vec<u8> = (0..cfg.stripes * 4 * cfg.block_bytes)
        .map(|i| (i * 131 + 7) as u8)
        .collect();

    // Identical placement for every code: same seed, same node count,
    // same stripe count (both codes have k = 4), so the Random draws —
    // and therefore the kill schedule's blast radius — match exactly.
    let mut put_client = foreground_client(&coord).with_seed(4242);
    let opts = PutOptions::new()
        .code(&spec.to_string())
        .block_bytes(cfg.block_bytes);
    put_client
        .put_opts("storm", &data, &opts)
        .expect("put storm file");
    let fp = coord.file("storm").expect("placement after put");
    assert_eq!(
        put_client.get("storm").expect("healthy get"),
        data,
        "healthy read corrupted the file"
    );

    // Deterministic kill schedule derived from the (shared) placement.
    let victim1 = fp.nodes[0][0];
    let victim2 = fp
        .nodes
        .iter()
        .flatten()
        .copied()
        .find(|&n| n != victim1)
        .expect("second victim");

    let scheduler = RepairScheduler::spawn(
        Arc::clone(&coord),
        RepairConfig {
            workers: 2,
            node_fanin: 2,
            // 0 = unthrottled: rebuild as fast as the service model
            // allows, so each code's repair traffic fully contends with
            // the foreground — the regime the headline numbers compare.
            bandwidth: (cfg.repair_bandwidth > 0).then_some(cfg.repair_bandwidth),
            ..RepairConfig::default()
        },
    );

    let stop = Arc::new(AtomicBool::new(false));
    let (kill_at, drain_secs, mut samples) = std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for _ in 0..cfg.clients {
            let coord = Arc::clone(&coord);
            let stop = Arc::clone(&stop);
            let data = &data;
            workers.push(scope.spawn(move || {
                let mut client = foreground_client(&coord);
                let mut taken: Vec<(Instant, f64)> = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let t0 = Instant::now();
                    let bytes = client.get("storm").expect("foreground get");
                    assert_eq!(
                        bytes.len(),
                        data.len(),
                        "foreground read changed length mid-rebuild"
                    );
                    assert!(bytes == *data, "foreground read not byte-identical");
                    taken.push((Instant::now(), t0.elapsed().as_secs_f64() * 1e3));
                }
                taken
            }));
        }

        // Warm up, then fire the kill schedule. `fail` marks the node
        // dead at the coordinator, which is the liveness event the
        // scheduler turns into a prioritized queue of degraded stripes.
        std::thread::sleep(Duration::from_millis(300));
        let kill_at = Instant::now();
        cluster.fail(victim1);
        if cfg.kills > 1 {
            std::thread::sleep(Duration::from_millis(400));
            cluster.fail(victim2);
        }
        let drained = scheduler.wait_idle(cfg.drain_timeout);
        let drain_secs = kill_at.elapsed().as_secs_f64();
        assert!(
            drained,
            "{label}: repair queue did not drain within {:?}",
            cfg.drain_timeout
        );
        stop.store(true, Ordering::Relaxed);
        let samples: Vec<(Instant, f64)> = workers
            .into_iter()
            .flat_map(|w| w.join().expect("foreground client panicked"))
            .collect();
        (kill_at, drain_secs, samples)
    });

    let status = scheduler.status();
    let queue_drained = status.queue_depth == 0 && status.in_flight == 0;
    scheduler.shutdown();

    // The rebuilt data must also be durable: a fresh client, after the
    // storm, still reads identical bytes.
    assert_eq!(
        foreground_client(&coord)
            .get("storm")
            .expect("post-storm get"),
        data,
        "{label}: post-storm read not byte-identical"
    );

    // Foreground latency under rebuild: gets that completed after the
    // first kill (the run stops right after the queue drains, so this
    // window *is* the rebuild window).
    samples.retain(|(done, _)| *done >= kill_at);
    let mut ms: Vec<f64> = samples.iter().map(|(_, m)| *m).collect();
    ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let repair_payload_bytes = status.blocks_rebuilt * cfg.block_bytes as u64;
    CodeResult {
        code: label.to_string(),
        fg_gets: ms.len(),
        fg_p50_ms: percentile(&ms, 0.50),
        fg_p95_ms: percentile(&ms, 0.95),
        fg_p99_ms: percentile(&ms, 0.99),
        repair_secs: drain_secs,
        blocks_rebuilt: status.blocks_rebuilt,
        repair_payload_bytes,
        repair_mbps: repair_payload_bytes as f64 / drain_secs.max(1e-9) / (1024.0 * 1024.0),
        requeued: status.requeued,
        abandoned: status.abandoned,
        queue_drained,
    }
}

fn to_json(smoke: bool, cfg: &StormConfig, results: &[CodeResult]) -> String {
    let rows = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"code\": \"{}\", \"fg_gets\": {}, \"fg_p50_ms\": {:.3}, \
                 \"fg_p95_ms\": {:.3}, \"fg_p99_ms\": {:.3}, \"repair_secs\": {:.3}, \
                 \"blocks_rebuilt\": {}, \"repair_payload_bytes\": {}, \
                 \"repair_mbps\": {:.3}, \"requeued\": {}, \"abandoned\": {}, \
                 \"queue_drained\": {}}}",
                r.code,
                r.fg_gets,
                r.fg_p50_ms,
                r.fg_p95_ms,
                r.fg_p99_ms,
                r.repair_secs,
                r.blocks_rebuilt,
                r.repair_payload_bytes,
                r.repair_mbps,
                r.requeued,
                r.abandoned,
                r.queue_drained
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let (rs, carousel) = (&results[0], &results[1]);
    format!(
        "{{\n  \"bench\": \"repair_storm\",\n  \"smoke\": {smoke},\n  \
         \"config\": {{\"nodes\": {}, \"kills\": {}, \"stripes\": {}, \"block_bytes\": {}, \
         \"request_delay_us\": {}, \"service_rate\": {}, \"repair_bandwidth\": {}, \
         \"clients\": {}, \"repair_workers\": 2, \"node_fanin\": 2, \"kernel\": \"{}\"}},\n  \
         \"codes\": [\n{rows}\n  ],\n  \
         \"carousel_vs_rs\": {{\"p99_ratio\": {:.3}, \"throughput_ratio\": {:.3}}}\n}}\n",
        cfg.nodes,
        cfg.kills,
        cfg.stripes,
        cfg.block_bytes,
        cfg.delay.as_micros(),
        cfg.service_rate,
        cfg.repair_bandwidth,
        cfg.clients,
        gf256::kernel().name(),
        carousel.fg_p99_ms / rs.fg_p99_ms.max(1e-9),
        carousel.repair_mbps / rs.repair_mbps.max(1e-9),
    )
}

fn main() {
    let _metrics = bench_support::init_metrics("ext_repair_storm");
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cfg = StormConfig {
        nodes: if smoke { 9 } else { 11 },
        kills: if smoke { 1 } else { 2 },
        stripes: env_knob("BENCH_STORM_STRIPES", if smoke { 6 } else { 16 }),
        block_bytes: if smoke { 6 * 1024 } else { 48 * 1024 },
        delay: Duration::from_micros(if smoke { 300 } else { 200 }),
        service_rate: env_knob(
            "BENCH_STORM_RATE",
            if smoke {
                16 * 1024 * 1024
            } else {
                4 * 1024 * 1024
            },
        ) as u64,
        // 0 means unthrottled; the smoke run keeps a budget to exercise
        // the RateLimiter path in CI.
        repair_bandwidth: env_knob("BENCH_STORM_BW", if smoke { 2 * 1024 * 1024 } else { 0 })
            as u64,
        clients: env_knob("BENCH_STORM_CLIENTS", if smoke { 2 } else { 3 }),
        drain_timeout: Duration::from_secs(if smoke { 60 } else { 180 }),
    };

    // RS first, Carousel second: `to_json` and the acceptance check
    // index them that way. Both are (n=8, k=4) so stripes and placement
    // match; Carousel adds the d=6 MSR repair regime and p=8 read
    // parallelism.
    let rs = run_code("rs(8,4)", CodeSpec::Rs { n: 8, k: 4 }, &cfg);
    let carousel = run_code(
        "carousel(8,4,6,8)",
        CodeSpec::Carousel {
            n: 8,
            k: 4,
            d: 6,
            p: 8,
        },
        &cfg,
    );
    let results = vec![rs, carousel];

    println!(
        "== Repair storm: {} nodes, {} kill(s), {} stripes x {} B blocks, \
         service {} B/s, repair budget {} B/s, {} foreground clients ==",
        cfg.nodes,
        cfg.kills,
        cfg.stripes,
        cfg.block_bytes,
        cfg.service_rate,
        cfg.repair_bandwidth,
        cfg.clients
    );
    let table: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.code.clone(),
                r.fg_gets.to_string(),
                format!("{:.1}", r.fg_p50_ms),
                format!("{:.1}", r.fg_p95_ms),
                format!("{:.1}", r.fg_p99_ms),
                format!("{:.2}", r.repair_secs),
                r.blocks_rebuilt.to_string(),
                format!("{:.2}", r.repair_mbps),
            ]
        })
        .collect();
    println!(
        "{}",
        bench_support::render_table(
            &["code", "fg_gets", "p50_ms", "p95_ms", "p99_ms", "repair_s", "blocks", "MB/s"],
            &table
        )
    );

    let json = to_json(smoke, &cfg, &results);
    let path = if smoke {
        std::env::temp_dir().join("BENCH_repair_storm.smoke.json")
    } else {
        std::fs::create_dir_all("results").expect("create results/");
        std::path::PathBuf::from("results/BENCH_repair_storm.json")
    };
    std::fs::write(&path, &json).expect("write bench json");
    println!("wrote {} ({} bytes)", path.display(), json.len());

    let (rs, carousel) = (&results[0], &results[1]);
    for r in &results {
        assert!(r.queue_drained, "{}: queue not drained at shutdown", r.code);
        assert!(r.blocks_rebuilt > 0, "{}: storm rebuilt nothing", r.code);
        assert!(
            r.fg_gets > 0,
            "{}: no foreground gets during rebuild",
            r.code
        );
        assert_eq!(r.abandoned, 0, "{}: abandoned repair tasks", r.code);
    }
    if smoke {
        println!(
            "smoke: byte-identity held across {} foreground gets under rebuild; \
             queue drained ({} + {} blocks rebuilt)",
            rs.fg_gets + carousel.fg_gets,
            rs.blocks_rebuilt,
            carousel.blocks_rebuilt
        );
    } else {
        // The paper's claim, as an acceptance gate: at equal-or-higher
        // repair throughput, Carousel's foreground tail is no worse.
        assert!(
            carousel.repair_mbps >= rs.repair_mbps * 0.999,
            "carousel repair throughput {:.3} MB/s below RS {:.3} MB/s",
            carousel.repair_mbps,
            rs.repair_mbps
        );
        assert!(
            carousel.fg_p99_ms <= rs.fg_p99_ms,
            "carousel foreground p99 {:.1} ms above RS {:.1} ms",
            carousel.fg_p99_ms,
            rs.fg_p99_ms
        );
        println!(
            "acceptance: carousel p99 {:.1} ms <= rs p99 {:.1} ms at {:.2} vs {:.2} MB/s rebuilt",
            carousel.fg_p99_ms, rs.fg_p99_ms, carousel.repair_mbps, rs.repair_mbps
        );
    }
}
