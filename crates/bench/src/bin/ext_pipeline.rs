//! Wire-parallelism benchmark: serial vs fanned-out/pipelined cluster
//! data paths on a loopback cluster whose datanodes charge a per-request
//! service delay (the stand-in for the network/disk service time of a
//! real cluster — loopback RTTs are otherwise nanoseconds, and this
//! machine may have a single core, so the win must come from *overlapping
//! waits*, which is exactly what the paper's `p`-server data parallelism
//! is about).
//!
//! Measures `put`, healthy `get`, degraded `get` (one node down) and
//! `repair_file` latency twice each: once with a serial client
//! (sequential fan-out, no pipelining — the pre-batching wire behavior)
//! and once with the parallel client (8-way fan-out, stripe pipeline).
//! Writes `results/BENCH_pipeline.json`.
//!
//! Knobs: `BENCH_REPS` (best-of reps for gets, default 3),
//! `BENCH_DELAY_US` (per-request service delay, default 3000; 2000 in
//! smoke), `BENCH_FANOUT` (worker pool width, default 8),
//! `BENCH_PIPELINE_W` (stripes in flight, default 2). `--smoke` runs a
//! tiny file in under a minute, writes the JSON to a temporary file and
//! asserts the fanned-out healthy get is ≥ 1.2× faster than serial — the
//! CI gate wired into `scripts/check.sh` (the full run targets ≥ 2×).

use std::time::{Duration, Instant};

use access::{ObjectStore, PutOptions};
use bench_support::env_knob;
use cluster::testing::LocalCluster;
use filestore::format::CodeSpec;
use workloads::parallel::ParallelCtx;

/// One measured latency point.
struct Sample {
    op: &'static str,
    mode: &'static str,
    ms: f64,
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Best-of-`reps` latency of `f` in milliseconds.
fn best_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(ms(t0.elapsed()));
    }
    best
}

#[allow(clippy::too_many_arguments)]
fn to_json(
    smoke: bool,
    reps: usize,
    delay_us: usize,
    stripes: usize,
    block_bytes: usize,
    fanout: usize,
    depth: usize,
    samples: &[Sample],
) -> String {
    let rows = samples
        .iter()
        .map(|s| {
            format!(
                "    {{\"op\": \"{}\", \"mode\": \"{}\", \"ms\": {:.3}}}",
                s.op, s.mode, s.ms
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let ratio = |op: &str| -> f64 {
        let at = |mode: &str| {
            samples
                .iter()
                .find(|s| s.op == op && s.mode == mode)
                .map_or(f64::NAN, |s| s.ms)
        };
        at("serial") / at("fanout").max(1e-9)
    };
    format!(
        "{{\n  \"bench\": \"pipeline\",\n  \"smoke\": {smoke},\n  \"reps\": {reps},\n  \
         \"geometry\": \"carousel(8,4,6,8)\",\n  \"request_delay_us\": {delay_us},\n  \
         \"stripes\": {stripes},\n  \"block_bytes\": {block_bytes},\n  \
         \"config\": {{\"kernel\": \"{}\", \"fanout\": {fanout}, \"pipeline_depth\": {depth}, \
         \"request_delay_us\": {delay_us}}},\n  \"samples\": [\n{rows}\n  ],\n  \
         \"speedup\": {{\"put\": {:.2}, \"get\": {:.2}, \"degraded_get\": {:.2}, \"repair\": {:.2}}}\n}}\n",
        gf256::kernel().name(),
        ratio("put"),
        ratio("get"),
        ratio("degraded_get"),
        ratio("repair")
    )
}

fn main() {
    let _metrics = bench_support::init_metrics("ext_pipeline");
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps = env_knob("BENCH_REPS", if smoke { 2 } else { 3 });
    let delay_us = env_knob("BENCH_DELAY_US", if smoke { 2000 } else { 3000 });
    let fanout_width = env_knob("BENCH_FANOUT", 8);
    let depth = env_knob("BENCH_PIPELINE_W", 2);
    // Carousel(8,4,6,8): sub = 6, MSR regime (d > k), on 9 nodes so a
    // spare exists for repair re-homing.
    let spec = CodeSpec::Carousel {
        n: 8,
        k: 4,
        d: 6,
        p: 8,
    };
    let block_bytes = if smoke { 60 } else { 6 * 1024 };
    let stripes = if smoke { 6 } else { 16 };
    let data: Vec<u8> = (0..stripes * 4 * block_bytes)
        .map(|i| (i * 131 + 7) as u8)
        .collect();

    let delay = Duration::from_micros(delay_us as u64);
    let mut cluster = LocalCluster::start_with_delay(9, delay).expect("start cluster");
    let serial_client = || {
        cluster
            .client()
            .with_fanout(ParallelCtx::sequential())
            .with_pipeline_depth(0)
            .with_seed(42)
    };
    let fanout_client = |depth: usize| {
        cluster
            .client()
            .with_fanout(ParallelCtx::builder().threads(fanout_width).build())
            .with_pipeline_depth(depth)
            .with_seed(43)
    };
    let opts = PutOptions::new()
        .code(&spec.to_string())
        .block_bytes(block_bytes);

    let mut samples: Vec<Sample> = Vec::new();

    // --- put: serial upload vs pipelined encode + fanned-out upload.
    let mut serial = serial_client();
    let t0 = Instant::now();
    serial.put_opts("bench", &data, &opts).expect("serial put");
    samples.push(Sample {
        op: "put",
        mode: "serial",
        ms: ms(t0.elapsed()),
    });
    let fp = serial
        .coordinator()
        .file("bench")
        .expect("placement after put");
    let mut parallel = fanout_client(depth);
    let t0 = Instant::now();
    parallel
        .put_opts("bench2", &data, &opts)
        .expect("fanout put");
    samples.push(Sample {
        op: "put",
        mode: "fanout",
        ms: ms(t0.elapsed()),
    });

    // --- healthy get: all p blocks reachable, direct parallel read.
    let serial_bytes = serial.get("bench").expect("serial get");
    assert_eq!(serial_bytes, data, "serial get corrupted the file");
    let fanout_bytes = parallel.get("bench").expect("fanout get");
    assert_eq!(fanout_bytes, data, "fanout get corrupted the file");
    samples.push(Sample {
        op: "get",
        mode: "serial",
        ms: best_ms(reps, || {
            serial.get("bench").expect("serial get");
        }),
    });
    samples.push(Sample {
        op: "get",
        mode: "fanout",
        ms: best_ms(reps, || {
            parallel.get("bench").expect("fanout get");
        }),
    });

    // --- degraded get: one known-dead node, parity units fill the gap.
    let victim1 = fp.nodes[0][2];
    cluster.fail(victim1);
    assert_eq!(serial.get("bench").expect("degraded"), data);
    samples.push(Sample {
        op: "degraded_get",
        mode: "serial",
        ms: best_ms(reps, || {
            serial.get("bench").expect("serial degraded get");
        }),
    });
    assert_eq!(parallel.get("bench").expect("degraded"), data);
    samples.push(Sample {
        op: "degraded_get",
        mode: "fanout",
        ms: best_ms(reps, || {
            parallel.get("bench").expect("fanout degraded get");
        }),
    });

    // --- repair: rebuild victim1's blocks serially (re-homed onto the
    // spare), then fail a second node and rebuild fanned-out. Each repair
    // rebuilds one block per stripe hosting the victim, so the two passes
    // move comparable traffic.
    let t0 = Instant::now();
    let serial_report = serial.repair_file("bench").expect("serial repair");
    samples.push(Sample {
        op: "repair",
        mode: "serial",
        ms: ms(t0.elapsed()),
    });
    assert!(serial_report.blocks_repaired > 0, "victim1 hosted no block");
    cluster.restart(victim1, true).expect("restart victim1");
    let victim2 = fp.nodes[0][5];
    cluster.fail(victim2);
    let t0 = Instant::now();
    let fanout_report = parallel.repair_file("bench").expect("fanout repair");
    samples.push(Sample {
        op: "repair",
        mode: "fanout",
        ms: ms(t0.elapsed()),
    });
    assert!(fanout_report.blocks_repaired > 0, "victim2 hosted no block");
    assert_eq!(parallel.get("bench").expect("post-repair get"), data);

    // --- report.
    println!(
        "== Wire parallelism: serial vs {fanout_width}-way fan-out + depth-{depth} pipeline \
         (delay {delay_us}us, {stripes} stripes) =="
    );
    let table: Vec<Vec<String>> = samples
        .iter()
        .map(|s| vec![s.op.to_string(), s.mode.to_string(), format!("{:.2}", s.ms)])
        .collect();
    println!(
        "{}",
        bench_support::render_table(&["op", "mode", "ms"], &table)
    );
    let at = |op: &str, mode: &str| {
        samples
            .iter()
            .find(|s| s.op == op && s.mode == mode)
            .map_or(f64::NAN, |s| s.ms)
    };
    for op in ["put", "get", "degraded_get", "repair"] {
        println!(
            "{op}: fan-out is {:.2}x serial ({:.2} vs {:.2} ms)",
            at(op, "serial") / at(op, "fanout").max(1e-9),
            at(op, "fanout"),
            at(op, "serial"),
        );
    }

    let json = to_json(
        smoke,
        reps,
        delay_us,
        stripes,
        block_bytes,
        fanout_width,
        depth,
        &samples,
    );
    let path = if smoke {
        std::env::temp_dir().join("BENCH_pipeline.smoke.json")
    } else {
        std::fs::create_dir_all("results").expect("create results/");
        std::path::PathBuf::from("results/BENCH_pipeline.json")
    };
    std::fs::write(&path, &json).expect("write bench json");
    println!("wrote {} ({} bytes)", path.display(), json.len());

    let get_speedup = at("get", "serial") / at("get", "fanout").max(1e-9);
    if smoke {
        let reread = std::fs::read_to_string(&path).expect("re-read bench json");
        assert!(reread.starts_with('{') && reread.trim_end().ends_with('}'));
        assert_eq!(
            reread.matches('{').count(),
            reread.matches('}').count(),
            "unbalanced JSON braces"
        );
        for s in &samples {
            assert!(
                s.ms.is_finite() && s.ms > 0.0,
                "bogus latency for {} {}",
                s.op,
                s.mode
            );
        }
        assert!(
            get_speedup >= 1.2,
            "fan-out healthy get only {get_speedup:.2}x serial (bar: 1.2x)"
        );
        println!("smoke: byte-identity held, fan-out get {get_speedup:.2}x serial (bar 1.2x)");
    } else if get_speedup < 2.0 {
        eprintln!("warning: fan-out get speedup {get_speedup:.2} below the 2x acceptance bar");
    }
}
