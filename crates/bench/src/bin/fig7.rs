//! Figure 7: network traffic incurred during reconstruction vs `k`.
//!
//! 512 MB blocks, `n = 2k`; repair of block 0 from helpers `1..=d`. The
//! traffic is *counted* from the executed repair plans, not asserted:
//! RS moves `k` blocks, MSR and Carousel (d = 2k−1) move `d/(d−k+1)`
//! blocks — the information-theoretic optimum.

use bench_support::render_table;
use workloads::coding_bench::{fig6_codes, repair_traffic_mb, CodeFamily};

fn main() {
    let _metrics = bench_support::init_metrics("fig7");
    let block_mb = 512.0;
    let ks = [2usize, 4, 6, 8, 10];
    let mut rows = Vec::new();
    for &k in &ks {
        let codes = fig6_codes(k).expect("paper parameters are valid");
        let mut row = vec![k.to_string()];
        for (_, code) in &codes {
            row.push(format!("{:.0}", repair_traffic_mb(code.as_ref(), block_mb)));
        }
        rows.push(row);
    }
    let labels: Vec<&str> = CodeFamily::all().iter().map(|f| f.label()).collect();
    let headers: Vec<&str> = std::iter::once("k").chain(labels).collect();
    println!("== Figure 7: reconstruction traffic (MB), 512 MB blocks ==");
    println!("{}", render_table(&headers, &rows));
}
