//! Extension: ingestion cost — converting a 3 GB file into encoded blocks
//! and distributing them (the paper's §VIII-A conversion tool, simulated).
//!
//! Shows the other side of the storage trade-off: replication ships 3
//! copies of every byte while (12,6) codes ship 2, and Carousel encoding
//! costs the same CPU as RS thanks to generator sparsity.

use bench_support::{fmt_secs, render_table};
use dfs::writer::{ingest_file, EncodeRates};
use dfs::{ClusterSpec, Namenode, Policy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let _metrics = bench_support::init_metrics("ext_ingest");
    let spec = ClusterSpec::r3_large_cluster();
    let schemes = [
        ("3x replication", Policy::Replication { copies: 3 }),
        ("RS(12,6)", Policy::Rs { n: 12, k: 6 }),
        (
            "Carousel(12,6,10,12)",
            Policy::Carousel {
                n: 12,
                k: 6,
                d: 10,
                p: 12,
            },
        ),
    ];
    let rows: Vec<Vec<String>> = schemes
        .iter()
        .map(|&(label, policy)| {
            let mut rng = StdRng::seed_from_u64(8);
            let mut nn = Namenode::new(spec.nodes);
            let file = nn.store("f", 3072.0, 512.0, policy, &mut rng).clone();
            let r = ingest_file(&spec, &file, 0, EncodeRates::default());
            vec![
                label.to_string(),
                format!("{:.0}", r.network_mb),
                format!("{:.0}", r.encoded_mb),
                fmt_secs(r.seconds),
            ]
        })
        .collect();
    println!("== Extension: ingesting a 3 GB file (writer on node 0) ==");
    println!(
        "{}",
        render_table(
            &["scheme", "network (MB)", "encoded (MB)", "time (s)"],
            &rows
        )
    );
}
