//! Extension: in-place write amplification of the mutable object path.
//!
//! Two experiments over loopback TCP clusters, both on measured wire
//! bytes (`ClusterClient::wire_counters`, payload + framing):
//!
//! * **delta vs re-encode** — a single-block-sized `write_range` on a
//!   one-stripe file ships only unit deltas and coefficient products
//!   (`Request::WriteDelta`) to the touched data node and the parities.
//!   The baseline is what a full re-encode moves for the same edit: read
//!   the stripe back (k blocks) and rewrite every block (n blocks). For
//!   the systematic (8 data, 4 parity) geometries — RS(8,4) and
//!   RS(12,8) — the delta bytes must come in at ≤ 0.5× the re-encode
//!   bytes, and the bench **exits nonzero** if they don't. A
//!   Carousel(8,4,6,8) row is reported ungated: its rotated layout
//!   spreads every message unit across most blocks, so deltas fan wider
//!   — the measured cost of non-systematic layouts under updates.
//! * **packed vs unpacked small objects** — N small objects put
//!   individually (one stripe each, mostly padding) vs packed into
//!   shared `.pack-NNNN` stripes (`PutOptions::pack`). Reports put
//!   throughput, wire bytes per object, and stripes stored; asserts
//!   packing strictly reduces stored stripes.
//!
//! Writes `results/BENCH_update.json` (`--smoke`: a temp file) and, with
//! the telemetry feature on, emits one `{"type": "update"}` event line
//! per measured row. Knobs: `BENCH_UPDATE_BLOCK_BYTES` (multiple of 6),
//! `BENCH_UPDATE_OBJECTS`, `BENCH_UPDATE_OBJ_BYTES`.

use std::process::ExitCode;
use std::time::Instant;

use access::{ObjectStore, PutOptions};
use bench_support::{env_knob, render_table};
use cluster::testing::LocalCluster;
use telemetry::json::Obj;

/// Emits a `{"type": "update"}` event line when a sink is installed
/// (`--metrics`); compiled out entirely without the telemetry feature.
fn emit_update(build: impl FnOnce(Obj) -> Obj) {
    if telemetry::event_sink_installed() {
        telemetry::emit_event(build(Obj::new().str("type", "update")));
    }
}

/// One measured delta-vs-re-encode row.
struct WriteAmp {
    code: &'static str,
    gated: bool,
    update_tx: u64,
    update_rx: u64,
    reencode: u64,
    ratio: f64,
}

/// Measures a single-block-sized in-place edit of a one-stripe file
/// against the read + full-rewrite traffic a re-encode would move.
fn write_amp_row(
    cluster: &mut LocalCluster,
    code: &'static str,
    gated: bool,
    k: usize,
    block_bytes: usize,
    seed: u64,
) -> WriteAmp {
    let mut client = cluster.client().with_seed(seed);
    let data: Vec<u8> = (0..k * block_bytes).map(|i| (i * 131 + 7) as u8).collect();
    let opts = PutOptions::new().code(code).block_bytes(block_bytes);

    // Re-encode baseline, measured: the put ships all n blocks, and a
    // re-encode would first have to read the stripe back (k blocks).
    let (tx0, _) = client.wire_counters();
    client.put_opts(code, &data, &opts).expect("put");
    let (tx1, rx1) = client.wire_counters();
    let put_tx = tx1 - tx0;
    assert_eq!(client.get(code).expect("readback"), data);
    let (_, rx2) = client.wire_counters();
    let reencode = put_tx + (rx2 - rx1);

    // The edit: exactly one block's span of the stripe message,
    // block-aligned — the paper's small-write case.
    let patch: Vec<u8> = (0..block_bytes).map(|i| (i * 37 + 11) as u8).collect();
    let (tx2, rx3) = client.wire_counters();
    client
        .write_range(code, block_bytes as u64, &patch)
        .expect("write_range");
    let (tx3, rx4) = client.wire_counters();

    let mut expect = data;
    expect[block_bytes..2 * block_bytes].copy_from_slice(&patch);
    assert_eq!(client.get(code).expect("post-edit get"), expect, "{code}");

    let update_tx = tx3 - tx2;
    WriteAmp {
        code,
        gated,
        update_tx,
        update_rx: rx4 - rx3,
        reencode,
        ratio: update_tx as f64 / reencode as f64,
    }
}

/// One side of the packed-vs-unpacked comparison.
struct PackSide {
    secs: f64,
    tx: u64,
    stripes: u64,
    files: usize,
}

fn main() -> ExitCode {
    let _metrics = bench_support::init_metrics("ext_update");
    let smoke = std::env::args().any(|a| a == "--smoke");
    let block_bytes = env_knob("BENCH_UPDATE_BLOCK_BYTES", if smoke { 1536 } else { 6144 });
    assert!(
        block_bytes > 0 && block_bytes.is_multiple_of(6),
        "BENCH_UPDATE_BLOCK_BYTES must be a positive multiple of 6 (carousel sub-block width)"
    );
    let objects = env_knob("BENCH_UPDATE_OBJECTS", if smoke { 24 } else { 192 });
    let obj_bytes = env_knob("BENCH_UPDATE_OBJ_BYTES", if smoke { 140 } else { 600 });

    // --- Phase 1: delta update vs full re-encode, one cluster for all
    // three geometries (RS(12,8) needs 12 homes; 13 leaves a spare).
    let mut cluster = LocalCluster::start(13).expect("start cluster");
    let rows = [
        write_amp_row(&mut cluster, "rs(8,4)", true, 4, block_bytes, 1),
        write_amp_row(&mut cluster, "rs(12,8)", true, 8, block_bytes, 2),
        write_amp_row(&mut cluster, "carousel(8,4,6,8)", false, 4, block_bytes, 3),
    ];
    drop(cluster);

    println!(
        "== Single-block edit: delta update vs read + full re-encode ({block_bytes} B blocks) =="
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.code.to_string(),
                r.update_tx.to_string(),
                r.update_rx.to_string(),
                r.reencode.to_string(),
                format!("{:.3}", r.ratio),
                if r.gated {
                    "<= 0.5".into()
                } else {
                    "report".into()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["code", "delta tx", "delta rx", "re-encode", "ratio", "gate"],
            &table
        )
    );
    let mut amp_ok = true;
    for r in &rows {
        emit_update(|o| {
            o.str("event", "write_amp")
                .str("code", r.code)
                .u64("edit_bytes", block_bytes as u64)
                .u64("update_tx", r.update_tx)
                .u64("update_rx", r.update_rx)
                .u64("reencode_bytes", r.reencode)
                .f64("ratio", r.ratio)
        });
        if r.gated && r.ratio > 0.5 {
            eprintln!(
                "FAIL: {} delta update shipped {} B, over 0.5x the {} B re-encode",
                r.code, r.update_tx, r.reencode
            );
            amp_ok = false;
        }
    }

    // --- Phase 2: small-object put throughput, packed vs unpacked.
    // rs(4,2) on six nodes; object sizes vary around the configured mean.
    let cluster = LocalCluster::start(6).expect("start cluster");
    let pack_block = if smoke { 256 } else { 1024 };
    let pack_limit = 16 * pack_block as u64;
    let body = |i: usize| -> Vec<u8> {
        let len = obj_bytes / 2 + (i * 37) % obj_bytes.max(2);
        (0..len).map(|b| (b * 17 + i * 29 + 3) as u8).collect()
    };

    let mut unpacked_client = cluster.client().with_seed(100);
    let unpack_opts = PutOptions::new().code("rs(4,2)").block_bytes(pack_block);
    let (tx0, _) = unpacked_client.wire_counters();
    let t0 = Instant::now();
    for i in 0..objects {
        unpacked_client
            .put_opts(&format!("u{i}"), &body(i), &unpack_opts)
            .expect("unpacked put");
    }
    let unpacked = PackSide {
        secs: t0.elapsed().as_secs_f64(),
        tx: unpacked_client.wire_counters().0 - tx0,
        stripes: (0..objects)
            .map(|i| {
                unpacked_client
                    .coordinator()
                    .file(&format!("u{i}"))
                    .expect("placement")
                    .stripes as u64
            })
            .sum(),
        files: objects,
    };

    let mut packed_client = cluster
        .client()
        .with_seed(101)
        .with_default_code(filestore::format::CodeSpec::Rs { n: 4, k: 2 })
        .with_default_block_bytes(pack_block)
        .with_pack_limit(pack_limit);
    let pack_opts = PutOptions::new().pack(true);
    let (tx0, _) = packed_client.wire_counters();
    let t0 = Instant::now();
    for i in 0..objects {
        packed_client
            .put_opts(&format!("p{i}"), &body(i), &pack_opts)
            .expect("packed put");
    }
    let coord = packed_client.coordinator().clone();
    let packs: Vec<String> = coord
        .files()
        .into_iter()
        .filter(|f| f.starts_with(".pack-"))
        .collect();
    let packed = PackSide {
        secs: t0.elapsed().as_secs_f64(),
        tx: packed_client.wire_counters().0 - tx0,
        stripes: packs
            .iter()
            .map(|p| coord.file(p).expect("pack placement").stripes as u64)
            .sum(),
        files: packs.len(),
    };
    // Packed objects stay byte-identical through the extent indirection.
    for i in 0..objects {
        assert_eq!(
            packed_client.get(&format!("p{i}")).expect("packed get"),
            body(i),
            "packed object p{i} corrupted"
        );
    }

    println!(
        "== {objects} small objects (~{obj_bytes} B), rs(4,2), {pack_block} B blocks, \
         pack limit {pack_limit} B =="
    );
    let sides = [("unpacked", &unpacked), ("packed", &packed)];
    let table: Vec<Vec<String>> = sides
        .iter()
        .map(|(mode, s)| {
            vec![
                mode.to_string(),
                format!("{:.0}", objects as f64 / s.secs.max(1e-9)),
                (s.tx / objects as u64).to_string(),
                s.stripes.to_string(),
                s.files.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["mode", "puts/s", "tx B/obj", "stripes", "files"], &table)
    );
    for (mode, s) in &sides {
        emit_update(|o| {
            o.str("event", "packing")
                .str("mode", mode)
                .u64("objects", objects as u64)
                .u64("wire_tx", s.tx)
                .u64("stripes", s.stripes)
                .f64("secs", s.secs)
        });
    }
    let stripe_ratio = packed.stripes as f64 / unpacked.stripes as f64;
    let pack_ok = packed.stripes < unpacked.stripes;
    if !pack_ok {
        eprintln!(
            "FAIL: packing stored {} stripes vs {} unpacked",
            packed.stripes, unpacked.stripes
        );
    }

    // --- JSON.
    let amp_rows = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"code\": \"{}\", \"gated\": {}, \"update_tx\": {}, \"update_rx\": {}, \
                 \"reencode_bytes\": {}, \"ratio\": {:.4}}}",
                r.code, r.gated, r.update_tx, r.update_rx, r.reencode, r.ratio
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let side = |s: &PackSide| {
        format!(
            "{{\"secs\": {:.4}, \"wire_tx\": {}, \"stripes\": {}, \"files\": {}, \"puts_per_s\": {:.1}}}",
            s.secs,
            s.tx,
            s.stripes,
            s.files,
            s.files.max(1) as f64 / s.secs.max(1e-9)
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"update\",\n  \"smoke\": {smoke},\n  \
         \"config\": {{\"kernel\": \"{}\", \"block_bytes\": {block_bytes}, \
         \"objects\": {objects}, \"obj_bytes\": {obj_bytes}, \"pack_block\": {pack_block}, \
         \"pack_limit\": {pack_limit}}},\n  \"write_amp\": [\n{amp_rows}\n  ],\n  \
         \"packing\": {{\"objects\": {objects}, \"unpacked\": {}, \"packed\": {}, \
         \"stripe_ratio\": {stripe_ratio:.3}}}\n}}\n",
        gf256::kernel().name(),
        side(&unpacked),
        side(&packed),
    );
    let path = if smoke {
        std::env::temp_dir().join("BENCH_update.smoke.json")
    } else {
        std::fs::create_dir_all("results").expect("create results/");
        std::path::PathBuf::from("results/BENCH_update.json")
    };
    std::fs::write(&path, &json).expect("write bench json");
    println!("wrote {} ({} bytes)", path.display(), json.len());

    if smoke {
        let reread = std::fs::read_to_string(&path).expect("re-read bench json");
        assert!(reread.starts_with('{') && reread.trim_end().ends_with('}'));
        assert_eq!(
            reread.matches('{').count(),
            reread.matches('}').count(),
            "unbalanced JSON braces"
        );
    }
    for r in rows.iter().filter(|r| r.gated) {
        println!(
            "write amplification: {} delta is {:.2}x re-encode (bar 0.5x) -> {}",
            r.code,
            r.ratio,
            if r.ratio <= 0.5 { "PASS" } else { "FAIL" }
        );
    }
    println!(
        "packing: {:.2}x the unpacked stripes stored -> {}",
        stripe_ratio,
        if pack_ok { "PASS" } else { "FAIL" }
    );
    if amp_ok && pack_ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("ext_update: verification FAILED");
        ExitCode::FAILURE
    }
}
