//! Tail-latency attribution benchmark: where do get, degraded-get and
//! repair requests actually spend their time on a delay-modeled cluster?
//!
//! Runs a loopback cluster whose datanodes charge a per-request service
//! delay, drives three traffic phases — healthy gets, degraded gets (one
//! node down) and a repair pass — and reports the per-phase latency
//! histograms the client records for every exchange: `connect` (fresh
//! socket), `send` (request write), `wait` (first response byte),
//! `recv` (rest of the frame) and `decode` (stripe/block reconstruction).
//! Each phase resets the registry and uses a fresh client so its numbers
//! are not polluted by the previous one.
//!
//! It also captures one traced `get` end to end: the client's
//! `cluster.op.get_us` root span, its per-stripe fetch/decode children,
//! and the serving datanodes' `cluster.node.{request,queue,service}_us`
//! spans — all sharing the client's TraceId because the trace context
//! rides the wire frames. The raw trace lines land in the JSON as
//! `trace_sample`.
//!
//! Writes `results/BENCH_observe.json` (in smoke mode too — the file is
//! this bench's deliverable). Knobs: `BENCH_REPS` (gets per phase,
//! default 6), `BENCH_DELAY_US` (per-request service delay, default
//! 1500; 800 in smoke), `BENCH_FANOUT` (default 8), `BENCH_PIPELINE_W`
//! (default 2). `--smoke` shrinks the file and asserts every phase
//! histogram populated and the span tree is complete — the CI gate in
//! `scripts/check.sh`.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use access::{ObjectStore, PutOptions};
use bench_support::env_knob;
use cluster::testing::LocalCluster;
use cluster::ClusterClient;
use filestore::format::CodeSpec;
use workloads::parallel::ParallelCtx;

/// One phase histogram of one traffic mix: count and tail quantiles.
struct PhaseRow {
    op: &'static str,
    phase: &'static str,
    count: u64,
    p50: u64,
    p95: u64,
    p99: u64,
}

/// Extracts `(count, p50, p95, p99)` for `name`, zeros when the
/// histogram is absent (telemetry compiled out).
fn quantiles(snap: &telemetry::Snapshot, name: &str) -> (u64, u64, u64, u64) {
    snap.histogram(name)
        .map(|h| (h.count, h.p50(), h.p95(), h.p99()))
        .unwrap_or((0, 0, 0, 0))
}

/// The five attribution phases of `op`, read from a snapshot taken right
/// after that op's traffic. Repair's decode time lives in the access
/// layer (`combine_payloads`), the read paths' in the client.
fn phase_rows(snap: &telemetry::Snapshot, op: &'static str) -> Vec<PhaseRow> {
    let decode_metric = if op == "repair" {
        "access.phase.decode_us"
    } else {
        "cluster.phase.decode_us"
    };
    [
        ("connect", "cluster.phase.connect_us"),
        ("send", "cluster.phase.send_us"),
        ("wait", "cluster.phase.wait_us"),
        ("recv", "cluster.phase.recv_us"),
        ("decode", decode_metric),
    ]
    .into_iter()
    .map(|(phase, metric)| {
        let (count, p50, p95, p99) = quantiles(snap, metric);
        PhaseRow {
            op,
            phase,
            count,
            p50,
            p95,
            p99,
        }
    })
    .collect()
}

/// A `Write` sink capturing telemetry event lines into shared memory.
#[derive(Clone)]
struct Capture(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for Capture {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("capture lock").extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Pulls the `"key":<digits>` value out of a raw trace line.
fn num_field(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\":");
    let at = line.find(&tag)? + tag.len();
    let digits: String = line[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn to_json(
    smoke: bool,
    reps: usize,
    delay_us: usize,
    fanout: usize,
    depth: usize,
    rows: &[PhaseRow],
    trace_lines: &[String],
) -> String {
    let phases = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"op\": \"{}\", \"phase\": \"{}\", \"count\": {}, \
                 \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}}}",
                r.op, r.phase, r.count, r.p50, r.p95, r.p99
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let sample = trace_lines
        .iter()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{{\n  \"bench\": \"observe\",\n  \"smoke\": {smoke},\n  \"reps\": {reps},\n  \
         \"config\": {{\"kernel\": \"{}\", \"fanout\": {fanout}, \"pipeline_depth\": {depth}, \
         \"request_delay_us\": {delay_us}, \"geometry\": \"carousel(8,4,6,8)\"}},\n  \
         \"phases\": [\n{phases}\n  ],\n  \"trace_sample\": [\n{sample}\n  ]\n}}\n",
        gf256::kernel().name(),
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps = env_knob("BENCH_REPS", if smoke { 3 } else { 6 });
    let delay_us = env_knob("BENCH_DELAY_US", if smoke { 800 } else { 1500 });
    let fanout = env_knob("BENCH_FANOUT", 8);
    let depth = env_knob("BENCH_PIPELINE_W", 2);
    let spec = CodeSpec::Carousel {
        n: 8,
        k: 4,
        d: 6,
        p: 8,
    };
    // Block size must be a multiple of the code's sub-stripe count (6
    // here), so the full run uses 4320 (~4 KiB) rather than 4096.
    let block_bytes = if smoke { 120 } else { 4320 };
    let stripes = if smoke { 4 } else { 12 };
    let data: Vec<u8> = (0..stripes * 4 * block_bytes)
        .map(|i| (i * 137 + 11) as u8)
        .collect();

    let delay = Duration::from_micros(delay_us as u64);
    let mut cluster = LocalCluster::start_with_delay(9, delay).expect("start cluster");
    let client = |cluster: &LocalCluster| -> ClusterClient {
        cluster
            .client()
            .with_fanout(ParallelCtx::builder().threads(fanout).build())
            .with_pipeline_depth(depth)
    };
    let opts = PutOptions::new()
        .code(&spec.to_string())
        .block_bytes(block_bytes);
    client(&cluster)
        .with_seed(2024)
        .put_opts("observed", &data, &opts)
        .expect("put");
    let fp = cluster
        .coordinator()
        .file("observed")
        .expect("placement after put");

    let mut rows: Vec<PhaseRow> = Vec::new();

    // --- Phase 1: healthy gets. Fresh client so every node costs one
    // connect; registry reset so the histograms hold only this phase.
    telemetry::Registry::global().reset();
    let mut c = client(&cluster);
    for _ in 0..reps {
        assert_eq!(c.get("observed").expect("get"), data);
    }
    rows.extend(phase_rows(&telemetry::Registry::global().snapshot(), "get"));

    // --- Traced sample: one end-to-end get with the event sink capturing
    // every trace line (client op root, per-stripe fetch/decode children,
    // and the datanodes' request/queue/service spans carrying the same
    // TraceId over the wire).
    let capture = Capture(Arc::new(Mutex::new(Vec::new())));
    telemetry::set_event_sink(capture.clone());
    assert_eq!(client(&cluster).get("observed").expect("traced get"), data);
    // Server request spans close just after the response is written; give
    // the in-process nodes a beat to flush theirs into the sink.
    std::thread::sleep(Duration::from_millis(100));
    telemetry::clear_event_sink();
    let captured = String::from_utf8(capture.0.lock().expect("capture lock").clone())
        .expect("trace lines are UTF-8");
    let trace_lines: Vec<String> = captured
        .lines()
        .filter(|l| l.contains("\"type\":\"trace\""))
        .map(str::to_string)
        .collect();

    // --- Phase 2: degraded gets (one node down, known to the
    // coordinator; parity units fill the gap).
    let victim = fp.nodes[0][1];
    cluster.fail(victim);
    telemetry::Registry::global().reset();
    let mut c = client(&cluster);
    for _ in 0..reps {
        assert_eq!(c.get("observed").expect("degraded get"), data);
    }
    rows.extend(phase_rows(
        &telemetry::Registry::global().snapshot(),
        "degraded_get",
    ));

    // --- Phase 3: repair the victim's blocks (re-homed onto the spare).
    telemetry::Registry::global().reset();
    let mut c = client(&cluster);
    let report = c.repair_file("observed").expect("repair");
    assert!(report.blocks_repaired > 0, "victim hosted no block");
    rows.extend(phase_rows(
        &telemetry::Registry::global().snapshot(),
        "repair",
    ));
    assert_eq!(c.get("observed").expect("post-repair get"), data);

    // --- Cluster-wide scrape over the wire: every running node answers
    // the Stats op; the merged snapshot exercises the aggregation path.
    let merged = cluster.cluster_stats(&mut c).expect("cluster stats scrape");

    // --- Report.
    println!(
        "== Tail-latency attribution (delay {delay_us}us, fan-out {fanout}, \
         depth {depth}, {reps} gets/phase) =="
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.op.to_string(),
                r.phase.to_string(),
                r.count.to_string(),
                r.p50.to_string(),
                r.p95.to_string(),
                r.p99.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        bench_support::render_table(
            &["op", "phase", "count", "p50_us", "p95_us", "p99_us"],
            &table
        )
    );
    println!(
        "traced get: {} trace line(s) captured; cluster scrape merged {} histogram(s)",
        trace_lines.len(),
        merged.histograms.len()
    );

    let json = to_json(smoke, reps, delay_us, fanout, depth, &rows, &trace_lines);
    std::fs::create_dir_all("results").expect("create results/");
    let path = std::path::PathBuf::from("results/BENCH_observe.json");
    std::fs::write(&path, &json).expect("write bench json");
    println!("wrote {} ({} bytes)", path.display(), json.len());

    if telemetry::ENABLED {
        // Every op must attribute all five phases. (Counts, not times:
        // a loopback connect can round to 0 µs.)
        for r in &rows {
            assert!(r.count > 0, "{} {} histogram is empty", r.op, r.phase);
        }
        // The wait phase absorbs the server's service delay, so its
        // median must at least reach the configured delay's bucket.
        let get_wait = rows
            .iter()
            .find(|r| r.op == "get" && r.phase == "wait")
            .expect("get wait row");
        assert!(
            get_wait.p50 >= delay_us as u64 / 4,
            "get wait p50 {}us implausibly below the {delay_us}us service delay",
            get_wait.p50
        );
        // One complete client -> datanode span tree: the op root's trace
        // id must also tag per-stripe children and server-side spans.
        let root = trace_lines
            .iter()
            .find(|l| l.contains("\"name\":\"cluster.op.get_us\""))
            .expect("no cluster.op.get_us root span captured");
        let trace_id = num_field(root, "trace").expect("root span has a trace id");
        let tagged = |name: &str| {
            trace_lines
                .iter()
                .filter(|l| l.contains(&format!("\"name\":\"{name}\"")))
                .filter(|l| num_field(l, "trace") == Some(trace_id))
                .count()
        };
        assert!(tagged("cluster.fetch.stripe_us") > 0, "no fetch children");
        assert!(tagged("cluster.decode.stripe_us") > 0, "no decode children");
        assert!(
            tagged("cluster.node.request_us") > 0,
            "no datanode span joined the client's trace over the wire"
        );
        assert!(tagged("cluster.node.queue_us") > 0, "no queue sub-span");
        assert!(tagged("cluster.node.service_us") > 0, "no service sub-span");
        // The scrape saw the repair phase's server-side counters.
        assert!(
            merged.counter("cluster.node.requests").unwrap_or(0) > 0,
            "merged cluster scrape lost node request counters"
        );
        let mode = if smoke { "smoke" } else { "full" };
        println!(
            "{mode}: all phases populated, span tree complete (trace {trace_id}), \
             wire scrape merged"
        );
    } else {
        assert!(
            trace_lines.is_empty() && merged.histograms.is_empty(),
            "telemetry-off build still produced metrics"
        );
        println!("telemetry off: wrote config-only JSON, no metrics expected");
    }
}
