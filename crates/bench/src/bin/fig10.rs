//! Figure 10: job completion time of (12,6,10,p) Carousel codes for
//! p ∈ {6, 8, 10, 12}, compared with 1× and 2× replication.
//!
//! The paper's observations to look for in the output: job time falls as
//! `p` grows; `p = 6` matches 1× replication; `p = 12` approaches 2×
//! replication at a fraction of its storage cost.

use bench_support::{fmt_secs, render_table};
use workloads::experiments::fig10;

fn main() {
    let _metrics = bench_support::init_metrics("fig10");
    let rows = fig10(42);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                fmt_secs(r.terasort_s),
                fmt_secs(r.wordcount_s),
            ]
        })
        .collect();
    println!("== Figure 10: job completion vs data parallelism (simulated) ==");
    println!(
        "{}",
        render_table(&["scheme", "terasort (s)", "wordcount (s)"], &table)
    );
}
