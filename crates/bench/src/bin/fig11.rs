//! Figure 11: retrieving a 3 GB file from HDFS with datanode reads capped
//! at 300 Mbps — 3× replication (`hadoop fs -get`), RS(12,6) and
//! Carousel(12,6,10,10), with and without one failed data-bearing block.
//!
//! Decode costs are charged at rates measured from this repository's own
//! kernels; set `BENCH_CALIBRATE=1` to re-measure instead of using the
//! defaults (use `--release` when calibrating).

use bench_support::{fmt_secs, render_table};
use workloads::experiments::fig11;

fn main() {
    let _metrics = bench_support::init_metrics("fig11");
    let rates = if std::env::var("BENCH_CALIBRATE").is_ok() {
        let r = workloads::calibration::measure(32, 3);
        eprintln!(
            "calibrated: RS decode {:.0} MB/s, Carousel decode {:.0} MB/s",
            r.rs_decode_mbps, r.carousel_decode_mbps
        );
        r
    } else {
        workloads::calibration::default_rates()
    };
    let rows = fig11(42, rates);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                r.servers.to_string(),
                fmt_secs(r.no_failure_s),
                fmt_secs(r.one_failure_s),
            ]
        })
        .collect();
    println!("== Figure 11: 3 GB retrieval time (simulated, 300 Mbps disk cap) ==");
    println!(
        "{}",
        render_table(
            &["scheme", "servers", "no failure (s)", "one failure (s)"],
            &table
        )
    );
    let rs = &rows[1];
    let ca = &rows[2];
    println!(
        "Carousel vs RS saving (no failure): {:.1}%",
        100.0 * (1.0 - ca.no_failure_s / rs.no_failure_s)
    );
    println!(
        "Carousel vs built-in reader (one failure): {:.1}% less time",
        100.0 * (1.0 - ca.one_failure_s / rows[0].one_failure_s)
    );
}
