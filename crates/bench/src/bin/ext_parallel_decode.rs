//! Extension (the paper's stated future work, §VIII-B): read throughput of
//! Carousel codes when **more than `k` blocks** may be visited.
//!
//! Compares, for (12, 6, 10, 12):
//! * decode from `k` blocks (the paper's Fig. 6b scenario, half of every
//!   fetched block is parity that must be multiplied away);
//! * parallel read from all `p` blocks, no failure (no GF arithmetic);
//! * parallel read from `p` blocks with one failure (only the affected
//!   carousel copies are decoded).
//!
//! Knobs: `BENCH_MB` (default 64), `BENCH_REPS` (default 3).

use bench_support::{env_knob, render_table};
use carousel::Carousel;
use workloads::coding_bench::{measure_decode, measure_parallel_read, payload};

fn main() {
    let _metrics = bench_support::init_metrics("ext_parallel_decode");
    let mb = env_knob("BENCH_MB", 64);
    let reps = env_knob("BENCH_REPS", 3);
    let code = Carousel::new(12, 6, 10, 12).expect("valid parameters");
    let data = payload(&code, mb << 20);

    let from_k = measure_decode(&code, &data, reps);
    let from_p = measure_parallel_read(&code, &data, reps, 0);
    let from_p_degraded = measure_parallel_read(&code, &data, reps, 1);

    println!("== Extension: decoding with more than k blocks, Carousel(12,6,10,12) ==");
    println!(
        "{}",
        render_table(
            &["read path", "throughput (MB/s)"],
            &[
                vec![
                    "decode from k = 6 blocks (Fig 6b scenario)".into(),
                    format!("{from_k:.0}")
                ],
                vec![
                    "parallel read from p = 12 blocks".into(),
                    format!("{from_p:.0}")
                ],
                vec![
                    "parallel read, 1 block failed".into(),
                    format!("{from_p_degraded:.0}")
                ],
            ]
        )
    );
    println!(
        "visiting all p blocks is {:.1}x faster than the k-block decode",
        from_p / from_k
    );
}
