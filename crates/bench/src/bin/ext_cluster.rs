//! Extension: the paper's read and repair paths over **real TCP**.
//!
//! Everything else in the harness simulates the network; this experiment
//! spins up nine loopback datanodes (`cluster::testing::LocalCluster`)
//! and measures actual wire bytes and wall time:
//!
//! * **reads** — Carousel(9,6,6,9) vs RS(9,6): healthy parallel read and
//!   degraded read after a silent node kill, both verified byte-identical
//!   to the original file;
//! * **repair** — Carousel(8,4,6,8) vs RS(8,4) on the same nodes: a
//!   failed node's blocks are rebuilt over the network, and the measured
//!   Carousel helper traffic must be ≤ the measured RS repair traffic ×
//!   (d−k+1)/d plus protocol framing — the paper's optimal-repair bound
//!   checked against bytes that actually crossed sockets.
//!
//! Exits nonzero if any byte-identity check or the repair bound fails.
//! Knobs: `EXT_CLUSTER_BLOCK_BYTES` (default 6000, must be a multiple of
//! 6), `EXT_CLUSTER_FILE_KB` (default 96), `EXT_CLUSTER_THREADS`
//! (default 4).

use std::process::ExitCode;
use std::time::Instant;

use access::{ObjectStore, PutOptions};
use bench_support::{env_knob, render_table};
use cluster::protocol::FRAME_OVERHEAD;
use cluster::testing::LocalCluster;
use cluster::ClusterClient;
use filestore::format::CodeSpec;
use workloads::parallel::ParallelCtx;

fn payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 131 + 89) as u8).collect()
}

fn put(
    client: &mut ClusterClient,
    name: &str,
    data: &[u8],
    spec: CodeSpec,
    block_bytes: usize,
) -> cluster::FilePlacement {
    let opts = PutOptions::new()
        .code(&spec.to_string())
        .block_bytes(block_bytes);
    client.put_opts(name, data, &opts).expect("put");
    client
        .coordinator()
        .file(name)
        .expect("placement after put")
}

/// One timed, verified read; returns `(millis, rx_bytes, identical)`.
fn timed_read(client: &mut ClusterClient, name: &str, expect: &[u8]) -> (f64, u64, bool) {
    let rx0 = client.wire_counters().1;
    let t0 = Instant::now();
    let got = client.get(name).expect("get");
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    (ms, client.wire_counters().1 - rx0, got == expect)
}

fn read_phase(block_bytes: usize, file_bytes: usize, ctx: &ParallelCtx) -> bool {
    let data = payload(file_bytes);
    let mut cluster = LocalCluster::start(9).expect("start cluster");
    let mut client = cluster.client().with_fanout(ctx.clone()).with_seed(1);
    let schemes = [
        (
            "Carousel(9,6,6,9)",
            "carousel",
            CodeSpec::Carousel {
                n: 9,
                k: 6,
                d: 6,
                p: 9,
            },
        ),
        ("RS(9,6)", "rs", CodeSpec::Rs { n: 9, k: 6 }),
    ];
    for &(_, name, spec) in &schemes {
        put(&mut client, name, &data, spec, block_bytes);
    }
    let mut rows = Vec::new();
    let mut all_ok = true;
    for &(label, name, _) in &schemes {
        let (ms, rx, ok) = timed_read(&mut client, name, &data);
        all_ok &= ok;
        rows.push(vec![
            label.to_string(),
            "healthy".into(),
            format!("{ms:.1}"),
            rx.to_string(),
            ok.to_string(),
        ]);
    }
    // Silent kill: clients discover the dead node mid-read.
    cluster.kill(3);
    for &(label, name, _) in &schemes {
        let (ms, rx, ok) = timed_read(&mut client, name, &data);
        all_ok &= ok;
        rows.push(vec![
            label.to_string(),
            "degraded".into(),
            format!("{ms:.1}"),
            rx.to_string(),
            ok.to_string(),
        ]);
    }
    println!(
        "== Reads over loopback TCP: 9 nodes, {} KiB file, {} B blocks ==",
        file_bytes / 1024,
        block_bytes
    );
    println!(
        "{}",
        render_table(
            &["scheme", "mode", "read (ms)", "rx bytes", "identical"],
            &rows
        )
    );
    all_ok
}

/// Repairs one failed node's blocks for both codes and checks the
/// optimal-traffic bound on measured wire bytes.
fn repair_phase(block_bytes: usize, file_bytes: usize, ctx: &ParallelCtx) -> bool {
    let data = payload(file_bytes);
    let mut cluster = LocalCluster::start(9).expect("start cluster");
    let mut client = cluster.client().with_fanout(ctx.clone()).with_seed(2);
    let (d, k) = (6usize, 4usize);
    let fp_car = put(
        &mut client,
        "carousel",
        &data,
        CodeSpec::Carousel { n: 8, k, d, p: 8 },
        block_bytes,
    );
    let fp_rs = put(
        &mut client,
        "rs",
        &data,
        CodeSpec::Rs { n: 8, k },
        block_bytes,
    );
    // A victim hosting blocks of both files' first stripes (8-wide rows
    // over 9 nodes always intersect).
    let victim = *fp_car.nodes[0]
        .iter()
        .find(|n| fp_rs.nodes[0].contains(n))
        .expect("rows intersect");
    cluster.fail(victim);

    let mut rows = Vec::new();
    let mut per_block = Vec::new();
    for (label, name) in [("Carousel(8,4,6,8)", "carousel"), ("RS(8,4)", "rs")] {
        let report = client.repair_file(name).expect("repair");
        assert!(report.blocks_repaired > 0, "victim hosted no {name} blocks");
        let payload_per_block = report.helper_payload_bytes / report.blocks_repaired as u64;
        let wire_per_block = report.wire_bytes / report.blocks_repaired as u64;
        per_block.push((report.blocks_repaired, payload_per_block, wire_per_block));
        rows.push(vec![
            label.to_string(),
            report.blocks_repaired.to_string(),
            report.helper_payload_bytes.to_string(),
            report.wire_bytes.to_string(),
            format!("{:.2}", payload_per_block as f64 / block_bytes as f64),
        ]);
    }
    println!("== Repair of one failed node over loopback TCP: n = 8, k = {k}, d = {d} ==");
    println!(
        "{}",
        render_table(
            &[
                "scheme",
                "blocks",
                "payload bytes",
                "wire bytes",
                "blocks moved/repair"
            ],
            &rows
        )
    );

    // The acceptance bound: measured Carousel repair wire bytes per block
    // ≤ measured RS repair bytes × (d−k+1)/d + framing. Each Carousel
    // repair makes d helper calls; allow each response one frame plus the
    // 5-byte Data header.
    let (_, _, car_wire) = per_block[0];
    let (_, rs_payload, _) = per_block[1];
    let framing = (d * (FRAME_OVERHEAD + 5)) as u64;
    let bound = rs_payload * (d - k + 1) as u64 / d as u64 + framing;
    let ok = car_wire <= bound;
    println!(
        "repair bound: carousel {car_wire} B/block <= rs {rs_payload} x (d-k+1)/d + framing = {bound} B/block -> {}",
        if ok { "PASS" } else { "FAIL" }
    );

    // Post-repair byte identity for both files.
    let identical =
        client.get("carousel").expect("read") == data && client.get("rs").expect("read") == data;
    println!("post-repair contents identical: {identical}");
    ok && identical
}

fn main() -> ExitCode {
    let _metrics = bench_support::init_metrics("ext_cluster");
    let block_bytes = env_knob("EXT_CLUSTER_BLOCK_BYTES", 6000);
    assert!(
        block_bytes > 0 && block_bytes.is_multiple_of(6),
        "EXT_CLUSTER_BLOCK_BYTES must be a positive multiple of 6"
    );
    let file_bytes = env_knob("EXT_CLUSTER_FILE_KB", 96) * 1024;
    let ctx = ParallelCtx::builder()
        .threads(env_knob("EXT_CLUSTER_THREADS", 4))
        .build();
    let reads_ok = read_phase(block_bytes, file_bytes, &ctx);
    let repair_ok = repair_phase(block_bytes, file_bytes, &ctx);
    if reads_ok && repair_ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("ext_cluster: verification FAILED");
        ExitCode::FAILURE
    }
}
