//! Kernel-engine benchmark: GB/s of every registered GF(2⁸) kernel
//! (scalar reference, 4-bit split tables, 64-bit SWAR, plus whatever
//! SIMD kernels runtime CPU-feature detection registered — SSSE3/AVX2
//! PSHUFB on x86-64, NEON on aarch64) across buffer sizes, plus the
//! fused multi-row `mul_acc_rows` path across code geometries — the
//! measurements behind `docs/PERFORMANCE.md`.
//!
//! Writes `results/BENCH_kernels.json`. Knobs: `BENCH_MB` (MiB of data
//! per timing rep, default 64), `BENCH_REPS` (best-of reps, default 5).
//! `--smoke` runs tiny buffers in milliseconds, writes the JSON to a
//! temporary file and asserts every kernel produced plausible numbers
//! *and* that the detected-best kernel is no slower than `swar` — the
//! CI-sized sanity pass wired into `scripts/check.sh`.

use std::time::Instant;

use bench_support::{env_knob, render_table};
use gf256::{Gf256, KernelHandle};

/// One measured point: a kernel at a buffer size (raw) or geometry (fused).
struct Sample {
    kernel: &'static str,
    label: String,
    gbps: f64,
}

/// Best-of-`reps` throughput of `f`, which processes `bytes` per call.
fn best_gbps(bytes: usize, reps: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let secs = t0.elapsed().as_secs_f64().max(1e-9);
        best = best.max((bytes * iters) as f64 / secs / 1e9);
    }
    best
}

/// Raw `mul_acc` throughput for one kernel over one buffer size.
fn measure_mul_acc(kernel: KernelHandle, size: usize, per_rep: usize, reps: usize) -> f64 {
    let src: Vec<u8> = (0..size).map(|i| (i * 131 + 7) as u8).collect();
    let mut dst = vec![0x15u8; size];
    let iters = (per_rep / size).max(1);
    let c = Gf256::new(0xA7);
    best_gbps(size, reps, iters, || kernel.mul_acc(c, &src, &mut dst))
}

/// Fused-encode throughput: `n - k` parity rows, each a `mul_acc_rows`
/// over `k` source blocks of `block` bytes. Reported as data GB/s:
/// `k · block` source bytes divided by the time to produce *all* parity
/// rows, the convention of Fig. 6.
fn measure_fused(
    kernel: KernelHandle,
    n: usize,
    k: usize,
    block: usize,
    per_rep: usize,
    reps: usize,
) -> f64 {
    let data: Vec<Vec<u8>> = (0..k)
        .map(|j| (0..block).map(|i| (i * 29 + j * 17 + 3) as u8).collect())
        .collect();
    let mut parity = vec![0u8; block];
    let mut terms: Vec<(Gf256, &[u8])> = Vec::with_capacity(k);
    let iters = (per_rep / (k * block * (n - k))).max(1);
    best_gbps(k * block, reps, iters, || {
        for r in 0..n - k {
            terms.clear();
            // Vandermonde-style row: coefficients g^(r·j), never 0 or 1.
            let g = Gf256::new(2);
            let mut c = g.pow((r + 1) as u32);
            for row in &data {
                terms.push((c, &row[..]));
                c *= g;
            }
            parity.fill(0);
            kernel.mul_acc_rows(&terms, &mut parity);
        }
    })
}

/// Serializes the samples as a JSON document (no serde in this workspace).
/// The `config` block makes the file self-describing: which kernel the
/// runtime dispatcher picked on this machine, which kernels and CPU
/// features detection registered, and how much data each rep processed,
/// so archived results can be compared apples-to-apples.
fn to_json(reps: usize, smoke: bool, per_rep: usize, raw: &[Sample], fused: &[Sample]) -> String {
    let rows = |samples: &[Sample]| -> String {
        samples
            .iter()
            .map(|s| {
                format!(
                    "    {{\"kernel\": \"{}\", \"case\": \"{}\", \"gbps\": {:.3}}}",
                    s.kernel, s.label, s.gbps
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    };
    let kernel_names = gf256::kernels()
        .iter()
        .map(|k| format!("\"{}\"", k.name()))
        .collect::<Vec<_>>()
        .join(", ");
    let features = gf256::detected_features()
        .iter()
        .map(|(name, on)| format!("\"{name}\": {on}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\n  \"bench\": \"kernels\",\n  \"reps\": {reps},\n  \"smoke\": {smoke},\n  \
         \"config\": {{\"dispatched_kernel\": \"{}\", \"detected_best\": \"{}\", \
         \"bytes_per_rep\": {per_rep}, \
         \"kernels\": [{kernel_names}], \"cpu_features\": {{{features}}}}},\n  \
         \"mul_acc\": [\n{}\n  ],\n  \"fused_encode\": [\n{}\n  ]\n}}\n",
        gf256::kernel().name(),
        gf256::detected_best().name(),
        rows(raw),
        rows(fused)
    )
}

fn main() {
    let _metrics = bench_support::init_metrics("ext_kernels");
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps = env_knob("BENCH_REPS", if smoke { 3 } else { 5 });
    let per_rep = env_knob("BENCH_MB", if smoke { 1 } else { 64 }) << 20;

    let sizes: &[usize] = if smoke {
        &[1 << 10, 64 << 10]
    } else {
        &[4 << 10, 64 << 10, 1 << 20]
    };
    let geometries: &[(usize, usize)] = if smoke {
        &[(4, 2)]
    } else {
        &[(6, 3), (12, 6), (14, 10)]
    };
    // Fused blocks: the L2-resident size the combine loops usually see,
    // plus a full 1 MiB block in the full run (the acceptance-bar case:
    // detected-best ≥5× swar on 1 MiB `mul_acc_rows`).
    let fused_blocks: &[usize] = if smoke {
        &[4 << 10]
    } else {
        &[256 << 10, 1 << 20]
    };

    let mut raw = Vec::new();
    for kernel in gf256::kernels().iter().copied() {
        for &size in sizes {
            raw.push(Sample {
                kernel: kernel.name(),
                label: format!("{size}B"),
                gbps: measure_mul_acc(kernel, size, per_rep, reps),
            });
        }
    }
    let mut fused = Vec::new();
    for kernel in gf256::kernels().iter().copied() {
        for &fused_block in fused_blocks {
            for &(n, k) in geometries {
                fused.push(Sample {
                    kernel: kernel.name(),
                    label: format!("({n},{k}) x {fused_block}B"),
                    gbps: measure_fused(kernel, n, k, fused_block, per_rep, reps),
                });
            }
        }
    }

    println!("== Kernel engine: raw mul_acc throughput (GB/s, best of {reps}) ==");
    let table = |samples: &[Sample]| -> Vec<Vec<String>> {
        samples
            .iter()
            .map(|s| {
                vec![
                    s.kernel.to_string(),
                    s.label.clone(),
                    format!("{:.2}", s.gbps),
                ]
            })
            .collect()
    };
    println!(
        "{}",
        render_table(&["kernel", "case", "GB/s"], &table(&raw))
    );
    println!("== Fused mul_acc_rows encode (data GB/s, all parity rows) ==");
    println!(
        "{}",
        render_table(&["kernel", "case", "GB/s"], &table(&fused))
    );

    let biggest = *sizes.last().expect("sizes nonempty");
    let at = |name: &str| -> f64 {
        raw.iter()
            .find(|s| s.kernel == name && s.label == format!("{biggest}B"))
            .map_or(0.0, |s| s.gbps)
    };
    let best = gf256::detected_best();
    let (scalar, swar, best_gbps) = (at("scalar"), at("swar"), at(best.name()));
    println!(
        "swar is {:.2}x scalar on {biggest}-byte buffers ({swar:.2} vs {scalar:.2} GB/s)",
        swar / scalar.max(1e-9)
    );
    println!(
        "detected best ({}) is {:.2}x swar on {biggest}-byte buffers ({best_gbps:.2} vs {swar:.2} GB/s)",
        best.name(),
        best_gbps / swar.max(1e-9)
    );

    let json = to_json(reps, smoke, per_rep, &raw, &fused);
    let path = if smoke {
        std::env::temp_dir().join("BENCH_kernels.smoke.json")
    } else {
        std::fs::create_dir_all("results").expect("create results/");
        std::path::PathBuf::from("results/BENCH_kernels.json")
    };
    std::fs::write(&path, &json).expect("write bench json");
    println!("wrote {} ({} bytes)", path.display(), json.len());

    if smoke {
        // Sanity gates for CI: every registered kernel measured, numbers
        // are positive and finite, and the document round-trips as JSON
        // structure (balanced, non-empty, mentions each kernel by name).
        let reread = std::fs::read_to_string(&path).expect("re-read bench json");
        assert!(reread.starts_with('{') && reread.trim_end().ends_with('}'));
        assert_eq!(
            reread.matches('{').count(),
            reread.matches('}').count(),
            "unbalanced JSON braces"
        );
        for kernel in gf256::kernels() {
            assert!(
                reread.contains(&format!("\"kernel\": \"{}\"", kernel.name())),
                "kernel {} missing from JSON",
                kernel.name()
            );
        }
        for s in raw.iter().chain(&fused) {
            assert!(
                s.gbps.is_finite() && s.gbps > 0.0,
                "bogus throughput for {} {}",
                s.kernel,
                s.label
            );
        }
        // Runtime dispatch must have paid off: the detected-best kernel is
        // at least as fast as the portable swar baseline. Only asserted
        // when a SIMD kernel was actually detected — when best *is* swar,
        // the comparison would be the same measurement twice plus noise.
        if best.name() != "swar" {
            assert!(
                best_gbps >= swar,
                "detected best ({}) measured {best_gbps:.2} GB/s, below swar's {swar:.2} GB/s",
                best.name()
            );
        }
        println!(
            "smoke: all {} kernels measured, JSON well-formed, best ({}) >= swar",
            gf256::kernels().len(),
            best.name()
        );
    } else {
        if swar < 2.0 * scalar {
            eprintln!(
                "warning: swar/scalar ratio {:.2} below the 2x acceptance bar",
                swar / scalar.max(1e-9)
            );
        }
        // The SIMD acceptance bars (full run only): avx2 ≥5× and ssse3 ≥3×
        // over swar on 1 MiB buffers, raw and fused alike.
        let fused_at = |name: &str| -> f64 {
            fused
                .iter()
                .find(|s| s.kernel == name && s.label == format!("(6,3) x {}B", 1 << 20))
                .map_or(0.0, |s| s.gbps)
        };
        for (name, bar) in [("avx2", 5.0), ("ssse3", 3.0)] {
            if gf256::by_name(name).is_none() {
                continue;
            }
            let ratio = at(name) / swar.max(1e-9);
            let fused_ratio = fused_at(name) / fused_at("swar").max(1e-9);
            println!(
                "{name}: {ratio:.2}x swar raw, {fused_ratio:.2}x swar fused \
                 (bar: {bar:.0}x) on 1 MiB"
            );
            if ratio < bar {
                eprintln!("warning: {name}/swar raw ratio {ratio:.2} below the {bar:.0}x bar");
            }
        }
    }
}
