//! Schema smoke-checker for telemetry JSON-lines files.
//!
//! ```text
//! jsonl_check <file.jsonl>...
//! ```
//!
//! For every line of every file: it must parse as an RFC 8259 JSON value
//! (via the telemetry crate's own validator — the same grammar its writer
//! targets), and its top-level `type` member must be one of the event
//! types this workspace emits. Empty files fail: even a
//! `--no-default-features` run writes the final `meta` line. Wired into
//! `scripts/check.sh` against a real `--metrics` capture in both feature
//! configurations, so the hand-rolled JSON writer and the documented
//! schema cannot drift apart silently.

use std::process::ExitCode;

/// Every `type` the telemetry writer emits; see `docs/OBSERVABILITY.md`.
/// `meta` covers both the bench-run metadata line every capture ends
/// with and the metadata-layer events streamed by `cluster::metalog`
/// (log recovery, compaction).
const KNOWN_TYPES: &[&str] = &[
    "meta",
    "counter",
    "gauge",
    "histogram",
    "update",
    "repair",
    "span",
    "sim",
    "trace",
];

fn check_file(path: &str) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        telemetry::json::validate(line)
            .map_err(|e| format!("{path}:{}: invalid JSON: {e}", i + 1))?;
        let ty = telemetry::json::top_level_str(line, "type")
            .ok_or_else(|| format!("{path}:{}: no top-level \"type\" member", i + 1))?;
        if !KNOWN_TYPES.contains(&ty.as_str()) {
            return Err(format!(
                "{path}:{}: unknown event type {ty:?} (known: {KNOWN_TYPES:?})",
                i + 1
            ));
        }
        lines += 1;
    }
    if lines == 0 {
        return Err(format!(
            "{path}: no event lines (even a telemetry-off run writes a meta line)"
        ));
    }
    Ok(lines)
}

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: jsonl_check <file.jsonl>...");
        return ExitCode::FAILURE;
    }
    let mut total = 0usize;
    for path in &files {
        match check_file(path) {
            Ok(lines) => {
                println!("{path}: {lines} line(s) ok");
                total += lines;
            }
            Err(e) => {
                eprintln!("jsonl_check: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "jsonl_check: {total} line(s) across {} file(s), all valid",
        files.len()
    );
    ExitCode::SUCCESS
}
