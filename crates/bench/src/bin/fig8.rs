//! Figure 8: completion time of reconstruction at the newcomer and at one
//! helper, vs `k` (`n = 2k`).
//!
//! The paper reconstructs block 0 of a 512 MB-block stripe from `d`
//! helpers. RS helpers do no computation (they ship raw blocks), so the
//! helper table lists only MSR and Carousel (d = 2k−1), as in the paper.
//!
//! Knobs: `BENCH_MB` (block size, default 64 MB), `BENCH_REPS` (default 3).

use bench_support::{env_knob, fmt_secs, render_table};
use workloads::coding_bench::{fig6_codes, measure_repair, payload, CodeFamily};

fn main() {
    let _metrics = bench_support::init_metrics("fig8");
    let block_mb = env_knob("BENCH_MB", 64);
    let reps = env_knob("BENCH_REPS", 3);
    let ks = [2usize, 4, 6, 8, 10];

    let mut newcomer_rows = Vec::new();
    let mut helper_rows = Vec::new();
    for &k in &ks {
        let codes = fig6_codes(k).expect("paper parameters are valid");
        let mut nrow = vec![k.to_string()];
        let mut hrow = vec![k.to_string()];
        for (fam, code) in &codes {
            // Stripe data sized so each block is ~block_mb.
            let stripe_mb = block_mb * k;
            let data = payload(code.as_ref(), stripe_mb << 20);
            let t = measure_repair(code.as_ref(), &data, reps);
            nrow.push(fmt_secs(t.newcomer_s));
            if matches!(fam, CodeFamily::Msr | CodeFamily::CarouselMsrBase) {
                hrow.push(fmt_secs(t.helper_s));
            }
        }
        newcomer_rows.push(nrow);
        helper_rows.push(hrow);
    }
    let labels: Vec<&str> = CodeFamily::all().iter().map(|f| f.label()).collect();
    let headers: Vec<&str> = std::iter::once("k").chain(labels.clone()).collect();
    println!("== Figure 8(a): time at the newcomer (s), {block_mb} MB blocks ==");
    println!("{}", render_table(&headers, &newcomer_rows));
    println!("== Figure 8(b): time at one helper (s) ==");
    println!(
        "{}",
        render_table(&["k", "MSR (d=2k-1)", "Carousel (d=2k-1)"], &helper_rows)
    );
}
