//! Figure 6: encoding and decoding throughput vs `k` (`n = 2k`).
//!
//! Codes: RS, MSR (d = 2k−1), Carousel (d = k) and Carousel (d = 2k−1),
//! all with `p = 2k`. Decoding follows the paper's scenario: one data block
//! lost, decode the original data from blocks 2..k+1.
//!
//! Knobs: `BENCH_MB` (stripe data size, default 64 MB) and `BENCH_REPS`
//! (default 3). Run with `--release` for meaningful numbers.

use bench_support::{env_knob, render_table};
use workloads::coding_bench::{fig6_codes, measure_decode, measure_encode, payload};

fn main() {
    let _metrics = bench_support::init_metrics("fig6");
    let mb = env_knob("BENCH_MB", 64);
    let reps = env_knob("BENCH_REPS", 3);
    let ks = [2usize, 4, 6, 8, 10];

    for (title, measure) in [
        (
            "(a) encoding",
            measure_encode as fn(&dyn erasure::ErasureCode, &[u8], usize) -> f64,
        ),
        ("(b) decoding", measure_decode),
    ] {
        let mut rows = Vec::new();
        for &k in &ks {
            let codes = fig6_codes(k).expect("paper parameters are valid");
            let mut row = vec![k.to_string()];
            for (_, code) in &codes {
                let data = payload(code.as_ref(), mb << 20);
                let mbps = measure(code.as_ref(), &data, reps);
                row.push(format!("{mbps:.0}"));
            }
            rows.push(row);
        }
        let labels: Vec<&str> = workloads::coding_bench::CodeFamily::all()
            .iter()
            .map(|f| f.label())
            .collect();
        let headers: Vec<&str> = std::iter::once("k").chain(labels).collect();
        println!("== Figure 6{title} throughput (MB/s), {mb} MB x {reps} reps ==");
        println!("{}", render_table(&headers, &rows));
    }
}
