//! Extension: core-switch oversubscription. All cross-node traffic shares
//! one fabric; as it tightens, shuffle-heavy terasort degrades while
//! map-local wordcount barely notices — data-local map scheduling (which
//! Carousel codes extend to `p` servers) is what keeps map phases off the
//! fabric entirely.

use bench_support::{fmt_secs, render_table};
use workloads::experiments::ext_oversubscription;

fn main() {
    let _metrics = bench_support::init_metrics("ext_oversubscription");
    let rows = ext_oversubscription(42);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.switch.clone(),
                fmt_secs(r.terasort_s),
                fmt_secs(r.wordcount_s),
            ]
        })
        .collect();
    println!("== Extension: Carousel(12,6,10,12) jobs vs core-switch bandwidth ==");
    println!(
        "{}",
        render_table(&["core switch", "terasort (s)", "wordcount (s)"], &table)
    );
}
