//! Figure 5: generating matrices of (3,2) RS vs (3,2,2,3) Carousel codes.
//!
//! Prints the zero/nonzero pattern of both generators and their sparsity
//! statistics — the Carousel matrix is three times larger but its rows
//! carry at most `k` nonzero coefficients, which is why sparse-aware
//! encoding costs the same per output byte as RS.

fn main() {
    let _metrics = bench_support::init_metrics("fig5");
    println!("== Figure 5: generating matrix comparison ==\n");
    print!("{}", workloads::coding_bench::fig5_matrices());
}
