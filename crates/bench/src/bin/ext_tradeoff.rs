//! Extension: the storage / repair / parallelism trade-off triangle.
//!
//! Positions Carousel codes against every baseline the paper discusses —
//! replication, systematic RS, LRC (related work §III) and MSR — on the
//! three axes that matter: storage overhead, repair traffic per lost block,
//! and data parallelism. Repair traffic comes from executed repair plans.

use bench_support::render_table;
use carousel::Carousel;
use erasure::ErasureCode;
use lrc::LocalRepairable;
use msr::{ProductMatrixMbr, ProductMatrixMsr};
use rs_code::ReedSolomon;

fn code_row(code: &dyn ErasureCode, mds: bool) -> Vec<String> {
    let helpers: Vec<usize> = (1..=code.d()).collect();
    code_row_with(code, &helpers, mds)
}

fn code_row_with(code: &dyn ErasureCode, helpers: &[usize], mds: bool) -> Vec<String> {
    let traffic = code
        .repair_plan(0, helpers)
        .expect("valid helper set")
        .traffic_blocks(code.linear().sub());
    vec![
        code.name(),
        format!("{:.2}x", code.n() as f64 / code.k() as f64),
        if mds {
            "n-k = ".to_string() + &(code.n() - code.k()).to_string()
        } else {
            "pattern-dependent".into()
        },
        format!("{traffic:.2} blocks"),
        code.parallelism().to_string(),
    ]
}

fn main() {
    let _metrics = bench_support::init_metrics("ext_tradeoff");
    let rs = ReedSolomon::new(12, 6).expect("valid");
    let lrc = LocalRepairable::new(6, 2, 2).expect("valid");
    let msr = ProductMatrixMsr::new(12, 6, 10).expect("valid");
    let mbr = ProductMatrixMbr::new(12, 6, 10).expect("valid");
    let ca6 = Carousel::new(12, 6, 10, 6).expect("valid");
    let ca12 = Carousel::new(12, 6, 10, 12).expect("valid");

    let mut rows = vec![
        vec![
            "3x replication".into(),
            "3.00x".into(),
            "2".into(),
            "1.00 blocks".into(),
            "3".into(),
        ],
        code_row(&rs, true),
        code_row_with(&lrc, &lrc.required_helpers(0), false),
        code_row(&msr, true),
        {
            let mut row = code_row(&mbr, true);
            // MBR is not storage-optimal: each block is k*d/B times the
            // MDS-minimum size, so scale the storage column.
            row[1] = format!("{:.2}x", 12.0 / 6.0 * mbr.storage_expansion());
            row
        },
        code_row(&ca6, true),
        code_row(&ca12, true),
    ];
    // Annotate LRC's data-block repair explicitly.
    rows[2][0] += "  (data-block repair)";

    println!("== Extension: storage / repair / parallelism trade-off (k = 6 data blocks) ==");
    println!(
        "{}",
        render_table(
            &[
                "scheme",
                "storage",
                "failures tolerated",
                "repair traffic",
                "parallelism",
            ],
            &rows
        )
    );
    println!("Carousel(12,6,10,12) is the only row with MDS storage, near-optimal");
    println!("repair traffic AND parallelism beyond k — the paper's contribution.");
}
