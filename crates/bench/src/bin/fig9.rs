//! Figure 9: terasort and wordcount on RS(12,6) vs Carousel(12,6,10,12).
//!
//! 30-slave simulated cluster (2-core nodes), 3 GB input in 512 MB blocks.
//! Reports average map-task time, average reduce-task time and job
//! completion time, plus the map-time saving the paper headlines (46.8%
//! for wordcount, 39.7% for terasort on their testbed).

use bench_support::render_table;
use carousel::Carousel;
use dfs::reader::download_striped;
use dfs::{ClusterSpec, CodingRates, Namenode, Policy};
use erasure::ErasureCode as _;
use rand::SeedableRng;
use workloads::experiments::{fig9, fig9_repeated, BLOCK_MB, FILE_MB};

/// Round-trips one small stripe through the real Carousel kernels — both
/// the all-blocks parallel read and a degraded read — so the figure's
/// simulated savings are backed by an executed encode/decode, and the
/// emitted metrics include the actual GF(2⁸) kernel volumes.
fn coding_self_check() {
    let data: Vec<u8> = (0..96 * 1024).map(|i| (i * 31 + 7) as u8).collect();
    let code = Carousel::new(12, 6, 10, 12).expect("Carousel(12,6,10,12)");
    let stripe = code.linear().encode(&data).expect("encode");
    let refs: Vec<Option<&[u8]>> = stripe.blocks.iter().map(|b| Some(&b[..])).collect();
    let out = code.read(&refs).expect("parallel read");
    assert_eq!(&out[..data.len()], &data[..], "parallel read round-trip");
    let mut degraded = refs;
    degraded[0] = None;
    let out = code.read(&degraded).expect("degraded read");
    assert_eq!(&out[..data.len()], &data[..], "degraded read round-trip");
}

fn main() {
    let _metrics = bench_support::init_metrics("fig9");
    coding_self_check();
    // 20 repetitions, as in the paper; placement is the randomness.
    let seeds: Vec<u64> = (0..20).collect();
    let stat_rows = fig9_repeated(&seeds);
    let table: Vec<Vec<String>> = stat_rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.code.clone(),
                r.map.display(),
                r.reduce.display(),
                r.job.display(),
            ]
        })
        .collect();
    println!("== Figure 9: Hadoop jobs, RS vs Carousel (simulated cluster) ==");
    println!("(mean [p10, p90] over 20 placements)");
    println!(
        "{}",
        render_table(
            &["workload", "code", "map (s)", "reduce (s)", "job (s)"],
            &table
        )
    );
    let rows = fig9(42);
    for w in ["terasort", "wordcount"] {
        let rs = rows
            .iter()
            .find(|r| r.workload == w && r.code.starts_with("RS"))
            .expect("row present");
        let ca = rows
            .iter()
            .find(|r| r.workload == w && r.code.starts_with("Carousel"))
            .expect("row present");
        println!(
            "{w}: map time saving {:.1}%, job time saving {:.1}%  (maps: {} -> {})",
            100.0 * (1.0 - ca.stats.avg_map_s / rs.stats.avg_map_s),
            100.0 * (1.0 - ca.stats.job_s / rs.stats.job_s),
            rs.stats.map_tasks,
            ca.stats.map_tasks,
        );
    }
    // Context for the map-time savings: the pure-download baseline of the
    // same stored file (the read substrate the map tasks contend on).
    println!("full-file download baseline (no job):");
    for (label, policy) in [
        ("RS(12,6)", Policy::Rs { n: 12, k: 6 }),
        (
            "Carousel(12,6,10,12)",
            Policy::Carousel {
                n: 12,
                k: 6,
                d: 10,
                p: 12,
            },
        ),
    ] {
        let spec = ClusterSpec::r3_large_cluster();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut nn = Namenode::new(spec.nodes);
        let file = nn
            .store("input", FILE_MB, BLOCK_MB, policy, &mut rng)
            .clone();
        let r = download_striped(&spec, &file, CodingRates::default()).expect("download");
        println!(
            "  {label}: {:.1} s from {} servers ({:.0} MB)",
            r.seconds, r.servers, r.downloaded_mb
        );
    }
}
