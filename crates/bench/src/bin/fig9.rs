//! Figure 9: terasort and wordcount on RS(12,6) vs Carousel(12,6,10,12).
//!
//! 30-slave simulated cluster (2-core nodes), 3 GB input in 512 MB blocks.
//! Reports average map-task time, average reduce-task time and job
//! completion time, plus the map-time saving the paper headlines (46.8%
//! for wordcount, 39.7% for terasort on their testbed).

use bench_support::render_table;
use workloads::experiments::{fig9, fig9_repeated};

fn main() {
    // 20 repetitions, as in the paper; placement is the randomness.
    let seeds: Vec<u64> = (0..20).collect();
    let stat_rows = fig9_repeated(&seeds);
    let table: Vec<Vec<String>> = stat_rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.code.clone(),
                r.map.display(),
                r.reduce.display(),
                r.job.display(),
            ]
        })
        .collect();
    println!("== Figure 9: Hadoop jobs, RS vs Carousel (simulated cluster) ==");
    println!("(mean [p10, p90] over 20 placements)");
    println!(
        "{}",
        render_table(
            &["workload", "code", "map (s)", "reduce (s)", "job (s)"],
            &table
        )
    );
    let rows = fig9(42);
    for w in ["terasort", "wordcount"] {
        let rs = rows
            .iter()
            .find(|r| r.workload == w && r.code.starts_with("RS"))
            .expect("row present");
        let ca = rows
            .iter()
            .find(|r| r.workload == w && r.code.starts_with("Carousel"))
            .expect("row present");
        println!(
            "{w}: map time saving {:.1}%, job time saving {:.1}%  (maps: {} -> {})",
            100.0 * (1.0 - ca.stats.avg_map_s / rs.stats.avg_map_s),
            100.0 * (1.0 - ca.stats.job_s / rs.stats.job_s),
            rs.stats.map_tasks,
            ca.stats.map_tasks,
        );
    }
}
