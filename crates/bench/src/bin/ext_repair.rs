//! Extension: cluster-level reconstruction after block loss.
//!
//! The paper measures repair traffic and CPU in isolation (Figs. 7–8);
//! this experiment replays the repair inside the simulated 30-node cluster
//! — helper disks, NIC fabric, newcomer decode and write — for RS(12,6)
//! and (12,6,10,p) Carousel codes, with 1 and 4 lost blocks.

use bench_support::{fmt_secs, render_table};
use dfs::repairer::repair_file;
use dfs::{ClusterSpec, CodingRates, Namenode, Policy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(policy: Policy, losses: usize) -> dfs::repairer::RepairReport {
    let spec = ClusterSpec::r3_large_cluster();
    let mut rng = StdRng::seed_from_u64(17);
    let mut nn = Namenode::new(spec.nodes);
    nn.store("f", 3072.0, 512.0, policy, &mut rng);
    // RS parity lives in roles k..n; kill parity-side roles so RS keeps all
    // data blocks and both codes repair the same count.
    for r in 0..losses {
        nn.fail_block("f", 0, 11 - r);
    }
    repair_file(&spec, nn.file("f").unwrap(), CodingRates::default()).expect("repairable")
}

fn main() {
    let _metrics = bench_support::init_metrics("ext_repair");
    let schemes = [
        ("RS(12,6)", Policy::Rs { n: 12, k: 6 }),
        (
            "Carousel(12,6,10,10)",
            Policy::Carousel {
                n: 12,
                k: 6,
                d: 10,
                p: 10,
            },
        ),
        (
            "Carousel(12,6,10,12)",
            Policy::Carousel {
                n: 12,
                k: 6,
                d: 10,
                p: 12,
            },
        ),
    ];
    for losses in [1usize, 2] {
        let rows: Vec<Vec<String>> = schemes
            .iter()
            .map(|&(label, policy)| {
                let r = run(policy, losses);
                vec![
                    label.to_string(),
                    r.blocks_repaired.to_string(),
                    format!("{:.0}", r.network_mb),
                    fmt_secs(r.seconds),
                ]
            })
            .collect();
        println!("== Extension: cluster repair of {losses} lost block(s), 512 MB blocks ==");
        println!(
            "{}",
            render_table(&["scheme", "blocks", "network (MB)", "time (s)"], &rows)
        );
    }
}
