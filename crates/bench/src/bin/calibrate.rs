//! Measures the coding CPU rates used by the cluster simulator from the
//! real kernels in this repository (run with `--release`).
//!
//! Knobs: `BENCH_MB` (default 64), `BENCH_REPS` (default 3).

use bench_support::env_knob;

fn main() {
    let _metrics = bench_support::init_metrics("calibrate");
    let mb = env_knob("BENCH_MB", 64);
    let reps = env_knob("BENCH_REPS", 3);
    let rates = workloads::calibration::measure(mb, reps);
    println!("== Simulator calibration ({mb} MB x {reps} reps) ==");
    println!("rs_decode_mbps        = {:.0}", rates.rs_decode_mbps);
    println!("carousel_decode_mbps  = {:.0}", rates.carousel_decode_mbps);
    println!();
    println!("Pass these via dfs::CodingRates to the fig11 experiment, or");
    println!("run `BENCH_CALIBRATE=1 cargo run --release --bin fig11`.");
}
