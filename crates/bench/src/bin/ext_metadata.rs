//! Metadata scale-out benchmark: placement throughput, cached manifest
//! read latency, and epoch-invalidation correctness over the sharded
//! coordinator layer (`cluster::MetaRouter` + per-shard record logs).
//!
//! The experiment: place a large file namespace across several
//! coordinator shards (every placement appended to that shard's record
//! log), then hammer the metadata layer with many concurrent clients
//! doing cached manifest reads (`ClusterClient::file_manifest`) while a
//! mutator re-homes blocks — each commit flows through the owning
//! shard's log and bumps its epoch, invalidating every client's cached
//! manifests for that shard. The headline numbers are placement ops/s,
//! read ops/s with p50/p95/p99, and the client cache hit rate, written
//! to `results/BENCH_metadata.json`.
//!
//! Correctness gates (asserted in both modes): a manifest read after a
//! re-home always reflects the committed placement — the epoch check
//! makes stale cache hits impossible — and every shard's log, replayed
//! from scratch, reproduces the final namespace.
//!
//! Knobs: `BENCH_META_FILES`, `BENCH_META_SHARDS`, `BENCH_META_CLIENTS`,
//! `BENCH_META_OPS` (reads per client). `--smoke` runs a small
//! two-shard namespace and is the CI gate wired into `scripts/check.sh`
//! (both feature configs); the full run places 1M files over 4 shards
//! and reads them from thousands of concurrent clients.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use bench_support::env_knob;
use cluster::{ClusterClient, Coordinator, MetaRouter};
use dfs::Placement;
use filestore::format::CodeSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Registered (fake-addressed) datanodes: metadata placement needs a
/// pool of alive nodes but never dials them.
const NODES: usize = 12;

struct Config {
    files: usize,
    shards: usize,
    clients: usize,
    ops_per_client: usize,
    mutations: usize,
    placers: usize,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn file_name(i: usize) -> String {
    format!("f{i:07}.dat")
}

fn spec() -> CodeSpec {
    CodeSpec::Rs { n: 4, k: 2 }
}

/// Builds the sharded metadata layer with one record log per shard.
fn build_router(base: &std::path::Path, shards: usize) -> Arc<MetaRouter> {
    let coords: Vec<Arc<Coordinator>> = (0..shards)
        .map(|i| {
            Arc::new(
                Coordinator::create_log(&base.join(format!("meta{i:02}.log")))
                    .expect("create shard log"),
            )
        })
        .collect();
    let meta = MetaRouter::sharded(coords);
    for id in 0..NODES {
        let addr: SocketAddr = format!("127.0.0.1:{}", 40000 + id).parse().expect("addr");
        meta.register(id, addr);
    }
    meta
}

fn main() {
    let _metrics = bench_support::init_metrics("ext_metadata");
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cfg = Config {
        files: env_knob("BENCH_META_FILES", if smoke { 2_000 } else { 1_000_000 }),
        shards: env_knob("BENCH_META_SHARDS", if smoke { 2 } else { 4 }),
        clients: env_knob("BENCH_META_CLIENTS", if smoke { 8 } else { 2_000 }),
        ops_per_client: env_knob("BENCH_META_OPS", 500),
        mutations: if smoke { 25 } else { 1_000 },
        placers: if smoke { 4 } else { 64 },
    };
    let base = std::env::temp_dir().join(format!("carousel-meta-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("create bench dir");
    let meta = build_router(&base, cfg.shards);

    println!(
        "== Metadata scale-out: {} files over {} shard(s), {} client(s) x {} reads, {} re-homes ==",
        cfg.files, cfg.shards, cfg.clients, cfg.ops_per_client, cfg.mutations
    );

    // ---- Phase 1: placement. Disjoint file ranges per placer thread;
    // every placement is a log append on the owning shard.
    let place_t0 = Instant::now();
    std::thread::scope(|scope| {
        for p in 0..cfg.placers {
            let meta = Arc::clone(&meta);
            let files = cfg.files;
            let placers = cfg.placers;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(7 + p as u64);
                let mut i = p;
                while i < files {
                    meta.place_file(
                        &file_name(i),
                        spec(),
                        4096,
                        2048,
                        1,
                        Placement::Random,
                        &mut rng,
                    )
                    .expect("place file");
                    i += placers;
                }
            });
        }
    });
    let place_secs = place_t0.elapsed().as_secs_f64();
    let place_ops_per_sec = cfg.files as f64 / place_secs.max(1e-9);
    println!(
        "placed {} files in {:.2}s ({:.0} ops/s)",
        cfg.files, place_secs, place_ops_per_sec
    );
    let by_shard: Vec<usize> = meta.shards().iter().map(|s| s.files().len()).collect();
    println!("shard spread: {by_shard:?}");
    assert_eq!(by_shard.iter().sum::<usize>(), cfg.files);
    assert!(
        by_shard.iter().all(|&c| c > 0),
        "a shard received no files: {by_shard:?}"
    );

    // ---- Phase 2: concurrent cached reads under epoch churn. Each
    // client loops over a bounded working set (so its manifest cache
    // can serve repeats) while the mutator re-homes random blocks,
    // bumping the owning shard's epoch and invalidating caches.
    // Working set well under the client cache capacity: repeat reads hit
    // until an epoch bump on the owning shard invalidates them.
    let window = cfg.files.min(256);
    let read_t0 = Instant::now();
    let (mut latencies_us, hits, misses, rehomed) = std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for c in 0..cfg.clients {
            let meta = Arc::clone(&meta);
            let files = cfg.files;
            let ops = cfg.ops_per_client;
            readers.push(scope.spawn(move || {
                let mut client = ClusterClient::routed(Arc::clone(&meta));
                let mut rng = StdRng::seed_from_u64(1000 + c as u64);
                let start = rng.gen_range(0..files);
                let mut lat = Vec::with_capacity(ops);
                for _ in 0..ops {
                    let name = file_name((start + rng.gen_range(0..window)) % files);
                    let t0 = Instant::now();
                    let fp = client.file_manifest(&name).expect("manifest read");
                    lat.push(t0.elapsed().as_secs_f64() * 1e6);
                    assert_eq!(fp.name, name, "manifest for the wrong file");
                    assert_eq!(fp.stripes, 1);
                }
                let (h, m) = client.manifest_cache_stats();
                (lat, h, m)
            }));
        }
        // The mutator: re-home block (stripe 0, role 0) of random files.
        // Every commit goes through the owning shard's record log and
        // advances its epoch.
        let mutator = {
            let meta = Arc::clone(&meta);
            let files = cfg.files;
            let mutations = cfg.mutations;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(99);
                let mut rehomed: HashMap<String, usize> = HashMap::new();
                for _ in 0..mutations {
                    let name = file_name(rng.gen_range(0..files));
                    let target = rng.gen_range(0..NODES);
                    meta.set_block_node(&name, 0, 0, target).expect("re-home");
                    rehomed.insert(name, target);
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                rehomed
            })
        };
        let rehomed = mutator.join().expect("mutator panicked");
        let mut all = Vec::new();
        let (mut hits, mut misses) = (0u64, 0u64);
        for r in readers {
            let (lat, h, m) = r.join().expect("reader panicked");
            all.extend(lat);
            hits += h;
            misses += m;
        }
        (all, hits, misses, rehomed)
    });
    let read_secs = read_t0.elapsed().as_secs_f64();
    let reads = latencies_us.len();
    let read_ops_per_sec = reads as f64 / read_secs.max(1e-9);
    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let (p50, p95, p99) = (
        percentile(&latencies_us, 0.50),
        percentile(&latencies_us, 0.95),
        percentile(&latencies_us, 0.99),
    );
    let hit_rate = hits as f64 / ((hits + misses) as f64).max(1.0);
    println!(
        "{reads} reads in {read_secs:.2}s ({read_ops_per_sec:.0} ops/s), \
         p50 {p50:.1}us p95 {p95:.1}us p99 {p99:.1}us, cache hit rate {:.1}%",
        hit_rate * 100.0
    );

    // ---- Correctness: epoch invalidation makes stale reads impossible.
    // A fresh read of every re-homed file must see the committed node —
    // including through a warm cache that watched the epoch move.
    let mut checker = ClusterClient::routed(Arc::clone(&meta));
    for (name, &node) in &rehomed {
        let fp = checker.file_manifest(name).expect("post-mutation read");
        assert_eq!(
            fp.nodes[0][0], node,
            "stale manifest for {name:?} after re-home"
        );
    }
    // And the warm-cache path specifically: cache a file, re-home it,
    // re-read — the epoch mismatch must force a refetch.
    let probe = rehomed
        .keys()
        .next()
        .cloned()
        .unwrap_or_else(|| file_name(0));
    let _ = checker.file_manifest(&probe).expect("warm the cache");
    let (_, miss_before) = checker.manifest_cache_stats();
    let new_target =
        (NODES - 1) - checker.file_manifest(&probe).expect("probe").nodes[0][0] % NODES;
    meta.set_block_node(&probe, 0, 0, new_target)
        .expect("probe re-home");
    let fp = checker.file_manifest(&probe).expect("post-bump read");
    let (_, miss_after) = checker.manifest_cache_stats();
    assert_eq!(
        fp.nodes[0][0], new_target,
        "stale cache hit after epoch bump"
    );
    assert!(
        miss_after > miss_before,
        "epoch bump did not invalidate the cached manifest"
    );
    assert!(hits > 0, "no cache hits across {reads} reads");

    // ---- Durability: each shard's log, compacted and replayed cold,
    // reproduces the final namespace (placements and re-homes).
    let mut log_records = 0u64;
    let mut log_bytes = 0u64;
    for (i, shard) in meta.shards().iter().enumerate() {
        shard.compact_log().expect("compact shard log");
        let path = base.join(format!("meta{i:02}.log"));
        log_bytes += std::fs::metadata(&path).expect("log metadata").len();
        let replayed = Coordinator::open_log(&path).expect("replay shard log");
        assert_eq!(
            replayed.files().len(),
            shard.files().len(),
            "shard {i}: replay lost files"
        );
        log_records += replayed.files().len() as u64;
    }
    for (name, &node) in &rehomed {
        let (_, fp) = meta.file_with_epoch(name);
        let fp = fp.expect("re-homed file present");
        if name != &probe {
            assert_eq!(fp.nodes[0][0], node, "log lost a re-home for {name:?}");
        }
    }
    println!(
        "durability: {} files replayed from {} compacted log bytes across {} shard(s)",
        log_records, log_bytes, cfg.shards
    );

    let epochs: Vec<u64> = meta.shards().iter().map(|s| s.epoch()).collect();
    let json = format!(
        "{{\n  \"bench\": \"metadata\",\n  \"smoke\": {smoke},\n  \
         \"config\": {{\"files\": {}, \"shards\": {}, \"clients\": {}, \
         \"ops_per_client\": {}, \"mutations\": {}, \"nodes\": {NODES}, \
         \"kernel\": \"{}\"}},\n  \
         \"place\": {{\"ops\": {}, \"secs\": {:.3}, \"ops_per_sec\": {:.0}}},\n  \
         \"read\": {{\"ops\": {reads}, \"secs\": {:.3}, \"ops_per_sec\": {:.0}, \
         \"p50_us\": {:.2}, \"p95_us\": {:.2}, \"p99_us\": {:.2}}},\n  \
         \"cache\": {{\"hits\": {hits}, \"misses\": {misses}, \"hit_rate\": {:.4}}},\n  \
         \"shards\": {{\"files\": {by_shard:?}, \"epochs\": {epochs:?}, \
         \"log_bytes_compacted\": {log_bytes}}}\n}}\n",
        cfg.files,
        cfg.shards,
        cfg.clients,
        cfg.ops_per_client,
        cfg.mutations,
        gf256::kernel().name(),
        cfg.files,
        place_secs,
        place_ops_per_sec,
        read_secs,
        read_ops_per_sec,
        p50,
        p95,
        p99,
        hit_rate,
    );
    let path = if smoke {
        std::env::temp_dir().join("BENCH_metadata.smoke.json")
    } else {
        std::fs::create_dir_all("results").expect("create results/");
        PathBuf::from("results/BENCH_metadata.json")
    };
    std::fs::write(&path, &json).expect("write bench json");
    println!("wrote {} ({} bytes)", path.display(), json.len());

    let _ = std::fs::remove_dir_all(&base);
    if smoke {
        println!(
            "smoke: {} placements, {reads} cached reads (hit rate {:.1}%), \
             {} re-homes all epoch-consistent",
            cfg.files,
            hit_rate * 100.0,
            rehomed.len()
        );
    }
}
