//! Extension: stragglers. Real clusters are heterogeneous; a third of the
//! nodes running 2× slower stretches the map phase by the slowest task.
//! Carousel's `p` smaller map tasks shrink the straggler's absolute
//! penalty — a data-parallelism benefit the paper's uniform EC2 cluster
//! could not show.

use bench_support::{fmt_secs, render_table};
use workloads::experiments::ext_stragglers;

fn main() {
    let _metrics = bench_support::init_metrics("ext_stragglers");
    let rows = ext_stragglers(&(0..10).collect::<Vec<_>>());
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                fmt_secs(r.uniform_s),
                fmt_secs(r.straggler_s),
                format!("{:+.1}", r.straggler_s - r.uniform_s),
            ]
        })
        .collect();
    println!("== Extension: wordcount with 10 of 30 nodes running 2x slower ==");
    println!("(mean over 10 placements)");
    println!(
        "{}",
        render_table(
            &["scheme", "uniform (s)", "stragglers (s)", "penalty (s)"],
            &table
        )
    );
}
