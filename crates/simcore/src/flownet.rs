//! The flow network: resources, flows, and max-min fair rate allocation.

/// Identifies a capacity resource (disk, link, CPU pool).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub(crate) usize);

impl ResourceId {
    /// The raw index of this resource (stable insertion order).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Parameters of one flow, used internally and exposed for inspection.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Work remaining (MB for network/disk flows, core-seconds for CPU).
    pub remaining: f64,
    /// Resources traversed.
    pub path: Vec<ResourceId>,
    /// Optional per-flow rate cap (e.g. 1.0 core for a CPU task).
    pub max_rate: Option<f64>,
}

#[derive(Debug, Clone)]
struct Resource {
    #[allow(dead_code)]
    name: String,
    capacity: f64,
}

#[derive(Debug, Clone)]
struct ActiveFlow {
    spec: FlowSpec,
    rate: f64,
}

/// A set of resources and active flows with max-min fair sharing.
///
/// Rates are recomputed by progressive filling every time the flow set
/// changes: repeatedly find the most-congested resource (or the tightest
/// per-flow cap), freeze the implicated flows at that fair share, subtract,
/// and continue. Every flow must traverse at least one resource.
#[derive(Debug, Default)]
pub struct FlowNet {
    resources: Vec<Resource>,
    flows: Vec<Option<ActiveFlow>>,
    free_slots: Vec<usize>,
}

impl FlowNet {
    /// Creates an empty network.
    pub fn new() -> Self {
        FlowNet::default()
    }

    /// Adds a resource with the given capacity (in MB/s or cores).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not strictly positive and finite.
    pub fn add_resource(&mut self, name: &str, capacity: f64) -> ResourceId {
        assert!(
            capacity > 0.0 && capacity.is_finite(),
            "resource capacity must be positive and finite"
        );
        self.resources.push(Resource {
            name: name.to_string(),
            capacity,
        });
        ResourceId(self.resources.len() - 1)
    }

    /// Number of resources.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Number of active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.iter().flatten().count()
    }

    pub(crate) fn insert(&mut self, spec: FlowSpec) -> usize {
        assert!(
            !spec.path.is_empty(),
            "a flow must traverse at least one resource"
        );
        for r in &spec.path {
            assert!(r.0 < self.resources.len(), "unknown resource in path");
        }
        assert!(spec.remaining >= 0.0, "negative flow size");
        if let Some(cap) = spec.max_rate {
            assert!(cap > 0.0, "flow rate cap must be positive");
        }
        let flow = ActiveFlow { spec, rate: 0.0 };
        let slot = if let Some(s) = self.free_slots.pop() {
            self.flows[s] = Some(flow);
            s
        } else {
            self.flows.push(Some(flow));
            self.flows.len() - 1
        };
        self.reallocate();
        slot
    }

    pub(crate) fn remove(&mut self, slot: usize) -> Option<FlowSpec> {
        let f = self.flows.get_mut(slot)?.take()?;
        self.free_slots.push(slot);
        self.reallocate();
        Some(f.spec)
    }

    pub(crate) fn rate(&self, slot: usize) -> f64 {
        self.flows[slot].as_ref().map_or(0.0, |f| f.rate)
    }

    pub(crate) fn remaining(&self, slot: usize) -> f64 {
        self.flows[slot].as_ref().map_or(0.0, |f| f.spec.remaining)
    }

    /// Advances all flows by `dt` seconds, consuming work at current rates.
    pub(crate) fn advance(&mut self, dt: f64) {
        for f in self.flows.iter_mut().flatten() {
            f.spec.remaining = (f.spec.remaining - f.rate * dt).max(0.0);
        }
    }

    /// Time until the earliest active flow completes, with its slot.
    pub(crate) fn next_completion(&self) -> Option<(f64, usize)> {
        let mut best: Option<(f64, usize)> = None;
        for (i, f) in self.flows.iter().enumerate() {
            let Some(f) = f else { continue };
            let eta = if f.spec.remaining <= 0.0 {
                0.0
            } else if f.rate <= 0.0 {
                continue; // starved (cannot happen with positive capacities)
            } else {
                f.spec.remaining / f.rate
            };
            match best {
                Some((t, _)) if t <= eta => {}
                _ => best = Some((eta, i)),
            }
        }
        best
    }

    /// Current total allocated rate through a resource.
    ///
    /// # Panics
    ///
    /// Panics for an unknown resource.
    pub fn allocated(&self, r: ResourceId) -> f64 {
        assert!(r.0 < self.resources.len(), "unknown resource");
        self.flows
            .iter()
            .flatten()
            .filter(|f| f.spec.path.contains(&r))
            .map(|f| f.rate)
            .sum()
    }

    /// The configured capacity of a resource.
    ///
    /// # Panics
    ///
    /// Panics for an unknown resource.
    pub fn capacity(&self, r: ResourceId) -> f64 {
        self.resources[r.0].capacity
    }

    /// Progressive-filling max-min fair allocation with per-flow caps.
    fn reallocate(&mut self) {
        let nr = self.resources.len();
        let mut remaining_cap: Vec<f64> = self.resources.iter().map(|r| r.capacity).collect();
        let active: Vec<usize> = (0..self.flows.len())
            .filter(|&i| self.flows[i].is_some())
            .collect();
        let mut unfrozen: Vec<bool> = vec![false; self.flows.len()];
        for &i in &active {
            unfrozen[i] = true;
            if let Some(f) = self.flows[i].as_mut() {
                f.rate = 0.0;
            }
        }
        let mut remaining_unfrozen = active.len();
        while remaining_unfrozen > 0 {
            // Count unfrozen flows per resource.
            let mut count = vec![0usize; nr];
            for &i in &active {
                if unfrozen[i] {
                    for r in &self.flows[i].as_ref().expect("active").spec.path {
                        count[r.0] += 1;
                    }
                }
            }
            // Tightest constraint: resource fair share or per-flow cap.
            let mut level = f64::INFINITY;
            for r in 0..nr {
                if count[r] > 0 {
                    level = level.min(remaining_cap[r] / count[r] as f64);
                }
            }
            for &i in &active {
                if unfrozen[i] {
                    if let Some(cap) = self.flows[i].as_ref().expect("active").spec.max_rate {
                        level = level.min(cap);
                    }
                }
            }
            debug_assert!(level.is_finite(), "flow without binding constraint");
            let level = level.max(0.0);
            // Freeze flows bound at this level: those whose cap equals the
            // level, or those traversing a resource whose share equals it.
            let mut bottleneck = vec![false; nr];
            for r in 0..nr {
                if count[r] > 0 && remaining_cap[r] / count[r] as f64 <= level + 1e-12 {
                    bottleneck[r] = true;
                }
            }
            let mut froze_any = false;
            for &i in &active {
                if !unfrozen[i] {
                    continue;
                }
                let f = self.flows[i].as_ref().expect("active");
                let capped = f.spec.max_rate.is_some_and(|c| c <= level + 1e-12);
                let blocked = f.spec.path.iter().any(|r| bottleneck[r.0]);
                if capped || blocked {
                    let path: Vec<ResourceId> = f.spec.path.clone();
                    if let Some(f) = self.flows[i].as_mut() {
                        f.rate = level;
                    }
                    for r in path {
                        remaining_cap[r.0] = (remaining_cap[r.0] - level).max(0.0);
                    }
                    unfrozen[i] = false;
                    remaining_unfrozen -= 1;
                    froze_any = true;
                }
            }
            debug_assert!(froze_any, "progressive filling made no progress");
            if !froze_any {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net_with(caps: &[f64]) -> (FlowNet, Vec<ResourceId>) {
        let mut net = FlowNet::new();
        let ids = caps
            .iter()
            .enumerate()
            .map(|(i, &c)| net.add_resource(&format!("r{i}"), c))
            .collect();
        (net, ids)
    }

    fn flow(path: &[ResourceId], size: f64) -> FlowSpec {
        FlowSpec {
            remaining: size,
            path: path.to_vec(),
            max_rate: None,
        }
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let (mut net, r) = net_with(&[100.0]);
        let f = net.insert(flow(&[r[0]], 500.0));
        assert!((net.rate(f) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn equal_flows_share_equally() {
        let (mut net, r) = net_with(&[90.0]);
        let a = net.insert(flow(&[r[0]], 100.0));
        let b = net.insert(flow(&[r[0]], 100.0));
        let c = net.insert(flow(&[r[0]], 100.0));
        for f in [a, b, c] {
            assert!((net.rate(f) - 30.0).abs() < 1e-9);
        }
    }

    #[test]
    fn max_min_fairness_y_topology() {
        // Flow A uses r0 only (cap 100); flows B, C use r0 and r1 (cap 20).
        // B and C are bottlenecked at 10 each; A gets the leftover 80.
        let (mut net, r) = net_with(&[100.0, 20.0]);
        let a = net.insert(flow(&[r[0]], 1e6));
        let b = net.insert(flow(&[r[0], r[1]], 1e6));
        let c = net.insert(flow(&[r[0], r[1]], 1e6));
        assert!((net.rate(b) - 10.0).abs() < 1e-9);
        assert!((net.rate(c) - 10.0).abs() < 1e-9);
        assert!((net.rate(a) - 80.0).abs() < 1e-9);
    }

    #[test]
    fn per_flow_caps_respected() {
        let (mut net, r) = net_with(&[10.0]);
        let a = net.insert(FlowSpec {
            remaining: 100.0,
            path: vec![r[0]],
            max_rate: Some(1.0),
        });
        let b = net.insert(flow(&[r[0]], 100.0));
        assert!((net.rate(a) - 1.0).abs() < 1e-9, "capped at one core");
        assert!((net.rate(b) - 9.0).abs() < 1e-9, "uncapped takes the rest");
    }

    #[test]
    fn removal_reallocates() {
        let (mut net, r) = net_with(&[100.0]);
        let a = net.insert(flow(&[r[0]], 100.0));
        let b = net.insert(flow(&[r[0]], 100.0));
        assert!((net.rate(a) - 50.0).abs() < 1e-9);
        net.remove(b);
        assert!((net.rate(a) - 100.0).abs() < 1e-9);
        assert_eq!(net.active_flows(), 1);
    }

    #[test]
    fn advance_consumes_work() {
        let (mut net, r) = net_with(&[10.0]);
        let a = net.insert(flow(&[r[0]], 100.0));
        net.advance(3.0);
        assert!((net.remaining(a) - 70.0).abs() < 1e-9);
        let (eta, slot) = net.next_completion().unwrap();
        assert_eq!(slot, a);
        assert!((eta - 7.0).abs() < 1e-9);
    }

    #[test]
    fn slot_reuse_after_removal() {
        let (mut net, r) = net_with(&[10.0]);
        let a = net.insert(flow(&[r[0]], 1.0));
        net.remove(a);
        let b = net.insert(flow(&[r[0]], 1.0));
        assert_eq!(a, b, "slot should be recycled");
    }

    #[test]
    #[should_panic(expected = "at least one resource")]
    fn empty_path_rejected() {
        let mut net = FlowNet::new();
        net.insert(flow(&[], 1.0));
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_capacity_rejected() {
        let mut net = FlowNet::new();
        net.add_resource("bad", 0.0);
    }
}
