//! Discrete-event simulation with max-min fair bandwidth sharing.
//!
//! This crate is the substrate under the cluster experiments (paper
//! §VIII-C/D): it stands in for the 30-node EC2 cluster. The model is
//! deliberately the minimal one that produces the paper's effects:
//!
//! * a set of capacity **resources** (disks, NIC up/down links, CPU pools,
//!   an aggregate switch), each with a rate limit;
//! * **flows** that traverse one or more resources and carry a fixed amount
//!   of work (bytes or CPU-seconds); concurrent flows share every resource
//!   **max-min fairly** (progressive filling), with optional per-flow rate
//!   caps (a single map task cannot use more than one core);
//! * an **event queue** of timers; the [`Engine`] interleaves timer firings
//!   with flow completions, recomputing the fair allocation whenever the
//!   flow set changes.
//!
//! The engine is generic over the event payload so client crates drive the
//! loop with their own state machines and no callbacks:
//!
//! ```
//! use simcore::{Engine, ResourceId};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Done(&'static str) }
//!
//! let mut engine: Engine<Ev> = Engine::new();
//! let link: ResourceId = engine.add_resource("link", 100.0); // 100 MB/s
//! engine.start_flow(300.0, &[link], None, Ev::Done("a"));
//! engine.start_flow(300.0, &[link], None, Ev::Done("b"));
//! // Two flows share the link: each runs at 50 MB/s, both finish at t = 6.
//! let (t1, _) = engine.next_event().unwrap();
//! let (t2, _) = engine.next_event().unwrap();
//! assert!((t1 - 6.0).abs() < 1e-9 && (t2 - 6.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod flownet;

pub use engine::{Engine, FlowId, TimerId, TraceEvent, TraceKind};
pub use flownet::{FlowNet, FlowSpec, ResourceId};
