//! The event loop: timers and flow completions on a virtual clock.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::LazyLock;

use crate::flownet::{FlowNet, FlowSpec, ResourceId};

static FLOWS_STARTED: LazyLock<&'static telemetry::Counter> =
    LazyLock::new(|| telemetry::counter("simcore.flows_started"));
static FLOWS_COMPLETED: LazyLock<&'static telemetry::Counter> =
    LazyLock::new(|| telemetry::counter("simcore.flows_completed"));
static TIMERS_FIRED: LazyLock<&'static telemetry::Counter> =
    LazyLock::new(|| telemetry::counter("simcore.timers_fired"));
static ACTIVE_FLOWS: LazyLock<&'static telemetry::Gauge> =
    LazyLock::new(|| telemetry::gauge("simcore.active_flows"));
static FLOW_DURATION: LazyLock<&'static telemetry::Histogram> =
    LazyLock::new(|| telemetry::histogram("simcore.flow_duration_us"));
static FLOW_WORK: LazyLock<&'static telemetry::Histogram> =
    LazyLock::new(|| telemetry::histogram("simcore.flow_work"));

/// One recorded simulation event (see [`Engine::enable_trace`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub at: f64,
    /// What happened.
    pub kind: TraceKind,
}

/// The kinds of events a trace records. Each carries the identity of the
/// flow or timer involved so traces can be correlated with the handles
/// returned by [`Engine::start_flow`] / [`Engine::schedule`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceKind {
    /// A flow was started.
    FlowStarted {
        /// The handle [`Engine::start_flow`] returned.
        id: FlowId,
        /// Work in MB or core-seconds.
        work: f64,
        /// The resources the flow traverses, in path order.
        path: Vec<ResourceId>,
    },
    /// A flow drained.
    FlowCompleted {
        /// The completed flow.
        id: FlowId,
    },
    /// A timer fired.
    TimerFired {
        /// The handle [`Engine::schedule`] returned.
        id: TimerId,
    },
}

/// Identifies a flow started on an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId(usize);

/// Identifies a scheduled timer (for cancellation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

struct Timer<E> {
    at: f64,
    seq: u64,
    id: TimerId,
    event: E,
}

impl<E> PartialEq for Timer<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Timer<E> {}
impl<E> PartialOrd for Timer<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Timer<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; ties broken by insertion order for
        // determinism.
        other
            .at
            .partial_cmp(&self.at)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}

/// A discrete-event engine combining a timer queue with a [`FlowNet`].
///
/// `E` is the client-defined event payload returned by
/// [`Engine::next_event`] when a timer fires or a flow completes.
pub struct Engine<E> {
    now: f64,
    seq: u64,
    timers: BinaryHeap<Timer<E>>,
    cancelled: Vec<TimerId>,
    net: FlowNet,
    /// Completion events for in-flight flows, indexed by flow slot.
    completions: Vec<Option<E>>,
    flows_started: u64,
    bytes_completed: f64,
    trace: Option<Vec<TraceEvent>>,
    resource_work: Vec<f64>,
    /// Virtual start time of each in-flight flow, indexed by flow slot —
    /// feeds the `simcore.flow_duration_us` histogram on completion.
    flow_started_at: Vec<f64>,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Engine::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine at time zero with no resources.
    pub fn new() -> Self {
        Engine {
            now: 0.0,
            seq: 0,
            timers: BinaryHeap::new(),
            cancelled: Vec::new(),
            net: FlowNet::new(),
            completions: Vec::new(),
            flows_started: 0,
            bytes_completed: 0.0,
            trace: None,
            resource_work: Vec::new(),
            flow_started_at: Vec::new(),
        }
    }

    /// Turns on event tracing: every flow start/completion and timer firing
    /// is recorded with its virtual time. Useful for debugging simulations
    /// and asserting on schedules in tests.
    pub fn enable_trace(&mut self) {
        self.trace.get_or_insert_with(Vec::new);
    }

    /// The recorded events (empty unless [`Engine::enable_trace`] was
    /// called before the activity of interest).
    pub fn trace(&self) -> &[TraceEvent] {
        self.trace.as_deref().unwrap_or(&[])
    }

    fn record(&mut self, kind: TraceKind) {
        let at = self.now;
        // Stream to the shared telemetry sink (when one is installed) so
        // simulator schedules land in the same JSON-lines file as metric
        // snapshots and spans; the in-memory trace stays available for
        // in-test assertions.
        if telemetry::ENABLED && telemetry::event_sink_installed() {
            let obj = telemetry::json::Obj::new().str("type", "sim").f64("at", at);
            let obj = match &kind {
                TraceKind::FlowStarted { id, work, path } => {
                    let mut ids = String::from("[");
                    for (i, r) in path.iter().enumerate() {
                        if i > 0 {
                            ids.push(',');
                        }
                        ids.push_str(&r.index().to_string());
                    }
                    ids.push(']');
                    obj.str("kind", "flow_started")
                        .u64("flow", id.0 as u64)
                        .f64("work", *work)
                        .raw("path", &ids)
                }
                TraceKind::FlowCompleted { id } => {
                    obj.str("kind", "flow_completed").u64("flow", id.0 as u64)
                }
                TraceKind::TimerFired { id } => obj.str("kind", "timer_fired").u64("timer", id.0),
            };
            telemetry::emit_event(obj);
        }
        if let Some(tr) = self.trace.as_mut() {
            tr.push(TraceEvent { at, kind });
        }
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Total flows ever started (for statistics).
    pub fn flows_started(&self) -> u64 {
        self.flows_started
    }

    /// Total work completed by finished flows (MB or core-seconds).
    pub fn work_completed(&self) -> f64 {
        self.bytes_completed
    }

    /// Adds a capacity resource (disk, link, CPU pool).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not strictly positive and finite.
    pub fn add_resource(&mut self, name: &str, capacity: f64) -> ResourceId {
        self.resource_work.push(0.0);
        self.net.add_resource(name, capacity)
    }

    /// Total work (MB or core-seconds) a resource has served so far — the
    /// integral of its allocated rate over virtual time.
    pub fn resource_work(&self, r: ResourceId) -> f64 {
        self.net.capacity(r); // index validation
        self.resource_work[r.index()]
    }

    /// Mean utilization of a resource over `[0, now]` (0.0 at time zero).
    pub fn resource_utilization(&self, r: ResourceId) -> f64 {
        if self.now <= 0.0 {
            return 0.0;
        }
        self.resource_work(r) / (self.net.capacity(r) * self.now)
    }

    /// Schedules `event` to fire `delay` seconds from now.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or NaN.
    pub fn schedule(&mut self, delay: f64, event: E) -> TimerId {
        assert!(delay >= 0.0, "cannot schedule in the past");
        self.seq += 1;
        let id = TimerId(self.seq);
        self.timers.push(Timer {
            at: self.now + delay,
            seq: self.seq,
            id,
            event,
        });
        id
    }

    /// Cancels a timer; its event will never fire. Unknown/fired timers are
    /// ignored.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.cancelled.push(id);
    }

    /// Starts a flow of `work` units across `path`, firing `on_complete`
    /// when it drains. `max_rate` caps the flow (e.g. one CPU core).
    ///
    /// A zero-work flow completes at the next `next_event` call without
    /// consuming bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if the path is empty or references unknown resources.
    pub fn start_flow(
        &mut self,
        work: f64,
        path: &[ResourceId],
        max_rate: Option<f64>,
        on_complete: E,
    ) -> FlowId {
        let slot = self.net.insert(FlowSpec {
            remaining: work.max(0.0),
            path: path.to_vec(),
            max_rate,
        });
        if slot >= self.completions.len() {
            self.completions.resize_with(slot + 1, || None);
        }
        if slot >= self.flow_started_at.len() {
            self.flow_started_at.resize(slot + 1, 0.0);
        }
        self.completions[slot] = Some(on_complete);
        self.flow_started_at[slot] = self.now;
        self.flows_started += 1;
        if telemetry::ENABLED {
            FLOWS_STARTED.inc();
            ACTIVE_FLOWS.add(1);
            FLOW_WORK.record_f64(work.max(0.0));
        }
        self.record(TraceKind::FlowStarted {
            id: FlowId(slot),
            work: work.max(0.0),
            path: path.to_vec(),
        });
        FlowId(slot)
    }

    /// Cancels an in-flight flow, returning its completion event if it was
    /// still active.
    pub fn cancel_flow(&mut self, id: FlowId) -> Option<E> {
        self.net.remove(id.0)?;
        if telemetry::ENABLED {
            ACTIVE_FLOWS.add(-1);
        }
        self.completions[id.0].take()
    }

    /// The current max-min fair rate of a flow (0.0 if finished/cancelled).
    pub fn flow_rate(&self, id: FlowId) -> f64 {
        self.net.rate(id.0)
    }

    /// Work remaining in a flow (0.0 if finished/cancelled).
    pub fn flow_remaining(&self, id: FlowId) -> f64 {
        self.net.remaining(id.0)
    }

    /// Advances virtual time to the next timer firing or flow completion
    /// and returns `(time, event)`; `None` when the simulation has drained.
    pub fn next_event(&mut self) -> Option<(f64, E)> {
        // Drop cancelled timers at the head.
        while let Some(top) = self.timers.peek() {
            if let Some(pos) = self.cancelled.iter().position(|c| *c == top.id) {
                self.cancelled.swap_remove(pos);
                self.timers.pop();
            } else {
                break;
            }
        }
        let timer_at = self.timers.peek().map(|t| t.at);
        let flow_eta = self
            .net
            .next_completion()
            .map(|(dt, slot)| (self.now + dt, slot));
        match (timer_at, flow_eta) {
            (None, None) => None,
            (Some(t), None) => {
                self.advance_to(t);
                let timer = self.timers.pop().expect("peeked");
                if telemetry::ENABLED {
                    TIMERS_FIRED.inc();
                }
                self.record(TraceKind::TimerFired { id: timer.id });
                Some((self.now, timer.event))
            }
            (None, Some((t, slot))) => {
                self.advance_to(t);
                Some((self.now, self.finish_flow(slot)))
            }
            (Some(tt), Some((ft, slot))) => {
                if tt <= ft {
                    self.advance_to(tt);
                    let timer = self.timers.pop().expect("peeked");
                    if telemetry::ENABLED {
                        TIMERS_FIRED.inc();
                    }
                    self.record(TraceKind::TimerFired { id: timer.id });
                    return Some((self.now, timer.event));
                }
                self.advance_to(ft);
                Some((self.now, self.finish_flow(slot)))
            }
        }
    }

    /// Runs the whole simulation, invoking `handle` for every event; the
    /// handler gets `&mut Engine` to schedule further work.
    ///
    /// Returns the final virtual time.
    ///
    /// # Examples
    ///
    /// ```
    /// use simcore::Engine;
    ///
    /// let mut engine: Engine<&str> = Engine::new();
    /// let link = engine.add_resource("link", 10.0);
    /// engine.start_flow(50.0, &[link], None, "transfer done");
    /// let end = engine.run(|eng, _t, ev| {
    ///     if ev == "transfer done" {
    ///         eng.schedule(1.0, "cleanup done");
    ///     }
    /// });
    /// assert!((end - 6.0).abs() < 1e-9); // 5 s transfer + 1 s cleanup
    /// ```
    pub fn run(mut self, mut handle: impl FnMut(&mut Engine<E>, f64, E)) -> f64 {
        while let Some((t, ev)) = self.next_event() {
            handle(&mut self, t, ev);
        }
        self.now
    }

    fn advance_to(&mut self, t: f64) {
        let dt = (t - self.now).max(0.0);
        if dt > 0.0 {
            for (i, w) in self.resource_work.iter_mut().enumerate() {
                *w += self.net.allocated(crate::flownet::ResourceId(i)) * dt;
            }
            self.net.advance(dt);
        }
        self.now = self.now.max(t);
    }

    fn finish_flow(&mut self, slot: usize) -> E {
        let spec = self.net.remove(slot).expect("completing flow exists");
        if telemetry::ENABLED {
            FLOWS_COMPLETED.inc();
            ACTIVE_FLOWS.add(-1);
            let dur_us = (self.now - self.flow_started_at[slot]).max(0.0) * 1e6;
            FLOW_DURATION.record_f64(dur_us);
        }
        self.record(TraceKind::FlowCompleted { id: FlowId(slot) });
        self.bytes_completed += spec.remaining.max(0.0); // ~0 at completion
        self.completions[slot]
            .take()
            .expect("completion event present")
    }
}

impl<E> std::fmt::Debug for Engine<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("timers", &self.timers.len())
            .field("active_flows", &self.net.active_flows())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Clone, Copy)]
    enum Ev {
        Timer(u32),
        Flow(u32),
    }

    #[test]
    fn timers_fire_in_order() {
        let mut e: Engine<Ev> = Engine::new();
        e.schedule(5.0, Ev::Timer(2));
        e.schedule(1.0, Ev::Timer(1));
        e.schedule(9.0, Ev::Timer(3));
        assert_eq!(e.next_event(), Some((1.0, Ev::Timer(1))));
        assert_eq!(e.next_event(), Some((5.0, Ev::Timer(2))));
        assert_eq!(e.next_event(), Some((9.0, Ev::Timer(3))));
        assert_eq!(e.next_event(), None);
    }

    #[test]
    fn simultaneous_timers_fifo() {
        let mut e: Engine<Ev> = Engine::new();
        e.schedule(2.0, Ev::Timer(1));
        e.schedule(2.0, Ev::Timer(2));
        assert_eq!(e.next_event(), Some((2.0, Ev::Timer(1))));
        assert_eq!(e.next_event(), Some((2.0, Ev::Timer(2))));
    }

    #[test]
    fn flow_completion_time_reflects_sharing() {
        let mut e: Engine<Ev> = Engine::new();
        let link = e.add_resource("link", 100.0);
        e.start_flow(100.0, &[link], None, Ev::Flow(1));
        e.start_flow(200.0, &[link], None, Ev::Flow(2));
        // Share 50/50 until flow 1 finishes at t=2 (100/50); flow 2 then has
        // 100 left at 100 MB/s -> finishes at t=3.
        assert_eq!(e.next_event(), Some((2.0, Ev::Flow(1))));
        let (t, ev) = e.next_event().unwrap();
        assert_eq!(ev, Ev::Flow(2));
        assert!((t - 3.0).abs() < 1e-9);
    }

    #[test]
    fn timer_interleaves_with_flows() {
        let mut e: Engine<Ev> = Engine::new();
        let link = e.add_resource("link", 10.0);
        e.start_flow(100.0, &[link], None, Ev::Flow(1)); // completes at 10
        e.schedule(4.0, Ev::Timer(1));
        assert_eq!(e.next_event(), Some((4.0, Ev::Timer(1))));
        let (t, ev) = e.next_event().unwrap();
        assert_eq!(ev, Ev::Flow(1));
        assert!((t - 10.0).abs() < 1e-9);
    }

    #[test]
    fn cancelled_timer_never_fires() {
        let mut e: Engine<Ev> = Engine::new();
        let id = e.schedule(1.0, Ev::Timer(1));
        e.schedule(2.0, Ev::Timer(2));
        e.cancel_timer(id);
        assert_eq!(e.next_event(), Some((2.0, Ev::Timer(2))));
        assert_eq!(e.next_event(), None);
    }

    #[test]
    fn cancelled_flow_returns_event() {
        let mut e: Engine<Ev> = Engine::new();
        let link = e.add_resource("link", 10.0);
        let f = e.start_flow(100.0, &[link], None, Ev::Flow(1));
        assert_eq!(e.cancel_flow(f), Some(Ev::Flow(1)));
        assert_eq!(e.next_event(), None);
    }

    #[test]
    fn zero_work_flow_completes_immediately() {
        let mut e: Engine<Ev> = Engine::new();
        let link = e.add_resource("link", 10.0);
        e.start_flow(0.0, &[link], None, Ev::Flow(7));
        assert_eq!(e.next_event(), Some((0.0, Ev::Flow(7))));
    }

    #[test]
    fn run_drives_a_chain() {
        // A timer spawns a flow; the flow's completion spawns another timer.
        let mut e: Engine<Ev> = Engine::new();
        let link = e.add_resource("link", 10.0);
        e.schedule(1.0, Ev::Timer(1));
        let end = e.run(move |eng, _t, ev| match ev {
            Ev::Timer(1) => {
                eng.start_flow(50.0, &[link], None, Ev::Flow(1));
            }
            Ev::Flow(1) => {
                eng.schedule(0.5, Ev::Timer(99));
            }
            _ => {}
        });
        // 1.0 + 5.0 + 0.5
        assert!((end - 6.5).abs() < 1e-9);
    }

    #[test]
    fn trace_records_schedule() {
        let mut e: Engine<Ev> = Engine::new();
        e.enable_trace();
        let link = e.add_resource("link", 10.0);
        let flow = e.start_flow(20.0, &[link], None, Ev::Flow(1));
        let timer = e.schedule(1.0, Ev::Timer(1));
        while e.next_event().is_some() {}
        let kinds: Vec<_> = e.trace().iter().map(|ev| ev.kind.clone()).collect();
        assert_eq!(
            kinds,
            vec![
                TraceKind::FlowStarted {
                    id: flow,
                    work: 20.0,
                    path: vec![link],
                },
                TraceKind::TimerFired { id: timer },
                TraceKind::FlowCompleted { id: flow },
            ]
        );
        assert!((e.trace()[2].at - 2.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_integrates_allocated_rates() {
        let mut e: Engine<Ev> = Engine::new();
        let link = e.add_resource("link", 10.0);
        e.start_flow(20.0, &[link], None, Ev::Flow(1)); // busy 2 s at 10 MB/s
        while e.next_event().is_some() {}
        assert!((e.resource_work(link) - 20.0).abs() < 1e-9);
        assert!((e.resource_utilization(link) - 1.0).abs() < 1e-9);
        // Idle afterwards: schedule a timer to extend virtual time.
        e.schedule(2.0, Ev::Timer(1));
        while e.next_event().is_some() {}
        assert!((e.resource_utilization(link) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn trace_disabled_by_default() {
        let mut e: Engine<Ev> = Engine::new();
        let link = e.add_resource("link", 10.0);
        e.start_flow(5.0, &[link], None, Ev::Flow(1));
        while e.next_event().is_some() {}
        assert!(e.trace().is_empty());
    }

    #[test]
    fn simultaneous_flow_completions_all_fire() {
        let mut e: Engine<Ev> = Engine::new();
        let a = e.add_resource("a", 10.0);
        let b = e.add_resource("b", 10.0);
        e.start_flow(20.0, &[a], None, Ev::Flow(1));
        e.start_flow(20.0, &[b], None, Ev::Flow(2));
        let mut got = Vec::new();
        while let Some((t, ev)) = e.next_event() {
            assert!((t - 2.0).abs() < 1e-9);
            got.push(ev);
        }
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn cancel_mid_flight_reallocates_bandwidth() {
        let mut e: Engine<Ev> = Engine::new();
        let link = e.add_resource("link", 10.0);
        let f1 = e.start_flow(10.0, &[link], None, Ev::Flow(1));
        let _f2 = e.start_flow(10.0, &[link], None, Ev::Flow(2));
        assert!((e.flow_rate(f1) - 5.0).abs() < 1e-9);
        // Cancel f1 at t=0: f2 gets the whole link and finishes at t=1.
        assert_eq!(e.cancel_flow(f1), Some(Ev::Flow(1)));
        let (t, ev) = e.next_event().unwrap();
        assert_eq!(ev, Ev::Flow(2));
        assert!((t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cpu_pool_with_core_caps() {
        // 2 cores, 3 tasks of 4 core-seconds each at max 1 core: two run at
        // 1.0, one waits... actually max-min gives each 2/3 core -> all
        // finish at t = 6. This matches processor sharing with more tasks
        // than cores.
        let mut e: Engine<Ev> = Engine::new();
        let cpu = e.add_resource("cpu", 2.0);
        for i in 0..3 {
            e.start_flow(4.0, &[cpu], Some(1.0), Ev::Flow(i));
        }
        let mut times = Vec::new();
        while let Some((t, _)) = e.next_event() {
            times.push(t);
        }
        assert_eq!(times.len(), 3);
        for t in times {
            assert!((t - 6.0).abs() < 1e-9);
        }
    }
}
