//! Executable repair plans.
//!
//! A [`RepairPlan`] captures the reconstruction protocol of paper §IV/§VI:
//! every helper multiplies its block by a small matrix (producing `β` units
//! — one `1/α` fraction of a block for MSR-family codes, the whole block for
//! RS), ships the result to the newcomer, and the newcomer linearly combines
//! the received units into the lost block. Because the plan is *executed*,
//! repair network traffic is measured by counting the bytes that actually
//! cross the helper→newcomer boundary, not asserted from a formula.

use std::sync::LazyLock;

use gf256::Matrix;

use crate::error::CodeError;

static REPAIRS: LazyLock<&'static telemetry::Counter> =
    LazyLock::new(|| telemetry::counter("erasure.repair.ops"));
static REPAIR_TRAFFIC: LazyLock<&'static telemetry::Counter> =
    LazyLock::new(|| telemetry::counter("erasure.repair.traffic_bytes"));

/// One helper's part of a repair: read the local block, compress it to `β`
/// units with `coeffs`, send the result.
#[derive(Debug, Clone)]
pub struct HelperTask {
    /// Which block this helper holds.
    pub node: usize,
    /// `β × sub` compression matrix applied to the local block.
    pub coeffs: Matrix,
}

impl HelperTask {
    /// Units this helper sends.
    pub fn beta(&self) -> usize {
        self.coeffs.rows()
    }

    /// Executes the helper-side computation on a local block of `sub·w`
    /// bytes, returning the `β·w`-byte payload to send.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::BlockSizeMismatch`] if the block length is not a
    /// multiple of `sub`.
    pub fn run(&self, block: &[u8]) -> Result<Vec<u8>, CodeError> {
        let sub = self.coeffs.cols();
        if !block.len().is_multiple_of(sub) {
            return Err(CodeError::BlockSizeMismatch {
                expected: block.len().next_multiple_of(sub),
                actual: block.len(),
            });
        }
        let w = block.len() / sub;
        let kernel = gf256::kernel();
        let mut out = vec![0u8; self.beta() * w];
        let mut terms = Vec::with_capacity(sub);
        for (r, chunk) in out.chunks_exact_mut(w).enumerate() {
            terms.clear();
            terms.extend(
                self.coeffs
                    .row(r)
                    .iter()
                    .enumerate()
                    .map(|(u, &c)| (c, &block[u * w..(u + 1) * w])),
            );
            kernel.mul_acc_rows(&terms, chunk);
        }
        Ok(out)
    }
}

/// A full repair plan for one failed block.
///
/// # Examples
///
/// ```
/// use erasure::ErasureCode;
/// use rs_code::ReedSolomon;
///
/// let code = ReedSolomon::new(5, 3)?;
/// let stripe = code.linear().encode(b"some striped data")?;
/// let plan = code.repair_plan(0, &[1, 2, 4])?;
/// let blocks: Vec<&[u8]> = [1, 2, 4].iter().map(|&i| &stripe.blocks[i][..]).collect();
/// let (rebuilt, traffic) = plan.run(&blocks)?;
/// assert_eq!(rebuilt, stripe.blocks[0]);
/// assert_eq!(traffic, 3 * stripe.block_bytes()); // RS repair moves k blocks
/// # Ok::<(), erasure::CodeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RepairPlan {
    /// Index of the block being reconstructed.
    pub failed: usize,
    /// Helper tasks, in the order their payloads must be concatenated.
    pub helpers: Vec<HelperTask>,
    /// `sub × (Σ β_i)` matrix combining the received units into the lost
    /// block.
    pub combine: Matrix,
}

impl RepairPlan {
    /// Number of helpers (`d`).
    pub fn d(&self) -> usize {
        self.helpers.len()
    }

    /// Total units transferred over the network.
    pub fn traffic_units(&self) -> usize {
        self.helpers.iter().map(HelperTask::beta).sum()
    }

    /// Network traffic in multiples of one block size (`sub` units), the
    /// quantity plotted in the paper's Fig. 7. Optimal MSR repair gives
    /// `d / (d − k + 1)`; RS repair-by-decode gives `k`.
    pub fn traffic_blocks(&self, sub: usize) -> f64 {
        self.traffic_units() as f64 / sub as f64
    }

    /// Bytes transferred when blocks are `block_bytes` long.
    pub fn traffic_bytes(&self, sub: usize, block_bytes: usize) -> usize {
        debug_assert_eq!(block_bytes % sub, 0);
        self.traffic_units() * (block_bytes / sub)
    }

    /// Newcomer-side computation: combines helper payloads (in helper order)
    /// into the reconstructed block of `sub·w` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InsufficientData`] on a payload-count mismatch
    /// and [`CodeError::BlockSizeMismatch`] on inconsistent widths.
    pub fn combine_payloads(&self, payloads: &[Vec<u8>]) -> Result<Vec<u8>, CodeError> {
        if payloads.len() != self.helpers.len() {
            return Err(CodeError::InsufficientData {
                needed: self.helpers.len(),
                got: payloads.len(),
            });
        }
        // Infer w from the first helper.
        let beta0 = self.helpers[0].beta();
        if beta0 == 0 || !payloads[0].len().is_multiple_of(beta0) {
            return Err(CodeError::BlockSizeMismatch {
                expected: beta0,
                actual: payloads[0].len(),
            });
        }
        let w = payloads[0].len() / beta0;
        let mut unit_slices = Vec::with_capacity(self.combine.cols());
        for (task, payload) in self.helpers.iter().zip(payloads) {
            if payload.len() != task.beta() * w {
                return Err(CodeError::BlockSizeMismatch {
                    expected: task.beta() * w,
                    actual: payload.len(),
                });
            }
            for u in 0..task.beta() {
                unit_slices.push(&payload[u * w..(u + 1) * w]);
            }
        }
        debug_assert_eq!(unit_slices.len(), self.combine.cols());
        let sub = self.combine.rows();
        let kernel = gf256::kernel();
        let mut out = vec![0u8; sub * w];
        let mut terms = Vec::with_capacity(unit_slices.len());
        for (r, chunk) in out.chunks_exact_mut(w).enumerate() {
            terms.clear();
            terms.extend(
                self.combine
                    .row(r)
                    .iter()
                    .zip(&unit_slices)
                    .map(|(&c, &src)| (c, src)),
            );
            kernel.mul_acc_rows(&terms, chunk);
        }
        Ok(out)
    }

    /// End-to-end repair: runs every helper task against its block and
    /// combines. `helper_blocks[i]` must belong to `helpers[i].node`.
    ///
    /// Returns the reconstructed block and the number of bytes that crossed
    /// the network (helper payload bytes).
    ///
    /// # Errors
    ///
    /// Propagates helper and combine failures.
    pub fn run(&self, helper_blocks: &[&[u8]]) -> Result<(Vec<u8>, usize), CodeError> {
        if helper_blocks.len() != self.helpers.len() {
            return Err(CodeError::InsufficientData {
                needed: self.helpers.len(),
                got: helper_blocks.len(),
            });
        }
        let _timer = if telemetry::ENABLED {
            Some(telemetry::span("erasure.repair.ns"))
        } else {
            None
        };
        let payloads: Vec<Vec<u8>> = self
            .helpers
            .iter()
            .zip(helper_blocks)
            .map(|(task, block)| task.run(block))
            .collect::<Result<_, _>>()?;
        let traffic = payloads.iter().map(Vec::len).sum();
        let block = self.combine_payloads(&payloads)?;
        if telemetry::ENABLED {
            REPAIRS.inc();
            REPAIR_TRAFFIC.add(traffic as u64);
        }
        Ok((block, traffic))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf256::Gf256;

    // A trivial "repair" for a 2-unit replication-like scheme to exercise the
    // plumbing: two helpers each send their whole 1-unit block; the newcomer
    // XORs them.
    fn xor_plan() -> RepairPlan {
        RepairPlan {
            failed: 2,
            helpers: vec![
                HelperTask {
                    node: 0,
                    coeffs: Matrix::identity(1),
                },
                HelperTask {
                    node: 1,
                    coeffs: Matrix::identity(1),
                },
            ],
            combine: Matrix::from_fn(1, 2, |_, _| Gf256::ONE),
        }
    }

    #[test]
    fn xor_repair_works() {
        let plan = xor_plan();
        let a = vec![0b1010u8; 8];
        let b = vec![0b0110u8; 8];
        let (out, traffic) = plan.run(&[&a, &b]).unwrap();
        assert_eq!(out, vec![0b1100u8; 8]);
        assert_eq!(traffic, 16);
        assert_eq!(plan.traffic_units(), 2);
        assert!((plan.traffic_blocks(1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn helper_compression_reduces_payload() {
        // Helper holds 4 units, sends 1: beta/sub = 1/4 of the block.
        let task = HelperTask {
            node: 0,
            coeffs: Matrix::from_fn(1, 4, |_, c| Gf256::new([1, 2, 3, 4][c])),
        };
        let w = 16;
        let block: Vec<u8> = (0..4 * w).map(|i| (i * 7) as u8).collect();
        let payload = task.run(&block).unwrap();
        assert_eq!(payload.len(), w);
        // Check one byte by hand.
        let col = 3;
        let expect = (0..4).fold(Gf256::ZERO, |acc, u| {
            acc + Gf256::new([1u8, 2, 3, 4][u]) * Gf256::new(block[u * w + col])
        });
        assert_eq!(payload[col], expect.value());
    }

    #[test]
    fn wrong_payload_count_rejected() {
        let plan = xor_plan();
        let a = vec![0u8; 4];
        assert!(matches!(
            plan.run(&[&a]),
            Err(CodeError::InsufficientData { .. })
        ));
    }

    #[test]
    fn ragged_payloads_rejected() {
        let plan = xor_plan();
        let payloads = vec![vec![0u8; 4], vec![0u8; 8]];
        assert!(matches!(
            plan.combine_payloads(&payloads),
            Err(CodeError::BlockSizeMismatch { .. })
        ));
    }

    #[test]
    fn traffic_bytes_scales_with_block_size() {
        let plan = xor_plan();
        assert_eq!(plan.traffic_bytes(1, 512), 1024);
    }
}
