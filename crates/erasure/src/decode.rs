//! Decoding: recover the original message from any sufficient set of units.
//!
//! This implements equation (1) of the paper: stack the generator rows of
//! the available units, invert, and multiply. A [`DecodePlan`] caches the
//! inverse so that decoding many stripes (or many byte columns) pays the
//! Gauss-Jordan cost once.

use std::sync::LazyLock;

use gf256::Matrix;

use crate::error::CodeError;
use crate::linear::LinearCode;
use crate::{check_indices, stack_node_rows};

static DECODE_OPS: LazyLock<&'static telemetry::Counter> =
    LazyLock::new(|| telemetry::counter("erasure.decode.ops"));
static DECODE_BYTES: LazyLock<&'static telemetry::Counter> =
    LazyLock::new(|| telemetry::counter("erasure.decode.bytes"));

/// A precomputed decoding: `message = inverse · selected units`.
///
/// Build one with [`DecodePlan::for_nodes`] (whole blocks, the common case)
/// or [`DecodePlan::for_units`] (arbitrary unit selection, used by the
/// Carousel parallel reader when mixing data units and parity units).
#[derive(Debug, Clone)]
pub struct DecodePlan {
    /// `(node, unit)` sources in the order the inverse expects them.
    sources: Vec<(usize, usize)>,
    /// The node order [`DecodePlan::decode`] expects blocks in (empty for
    /// unit-level plans).
    nodes: Vec<usize>,
    /// `b × b` matrix mapping selected units to message units.
    inverse: Matrix,
    sub: usize,
    message_units: usize,
}

impl DecodePlan {
    /// Plans a decode from `k` (or more) full blocks.
    ///
    /// Exactly `k` blocks are required for an exact-size system; supplying
    /// more is an error here — use [`DecodePlan::for_units`] to cherry-pick
    /// units from a wider set.
    ///
    /// # Errors
    ///
    /// * [`CodeError::InsufficientData`] if fewer than `k` blocks are given
    ///   (or more, which over-determines the square system);
    /// * [`CodeError::SingularSelection`] if the blocks cannot decode (never
    ///   for an MDS code with distinct blocks);
    /// * index errors for duplicate/out-of-range nodes.
    pub fn for_nodes(code: &LinearCode, nodes: &[usize]) -> Result<Self, CodeError> {
        check_indices(code.n(), nodes)?;
        if nodes.len() != code.k() {
            return Err(CodeError::InsufficientData {
                needed: code.k(),
                got: nodes.len(),
            });
        }
        let stacked = stack_node_rows(code, nodes);
        let b = code.message_units();
        // MDS-shaped codes give a square system; MBR-shaped codes are
        // over-determined, so select a spanning row subset first.
        let (rows, system) = if stacked.rows() == b {
            ((0..stacked.rows()).collect::<Vec<_>>(), stacked)
        } else {
            let rows = stacked
                .independent_rows(b)
                .ok_or(CodeError::SingularSelection)?;
            let sel = stacked.select_rows(&rows);
            (rows, sel)
        };
        let inverse = system.inverse().ok_or(CodeError::SingularSelection)?;
        let sub = code.sub();
        let sources = rows.iter().map(|&r| (nodes[r / sub], r % sub)).collect();
        Ok(DecodePlan {
            sources,
            nodes: nodes.to_vec(),
            inverse,
            sub,
            message_units: b,
        })
    }

    /// Plans a decode from an explicit set of `b` units.
    ///
    /// # Errors
    ///
    /// * [`CodeError::InsufficientData`] unless exactly `b` units are given;
    /// * [`CodeError::NodeOutOfRange`] / [`CodeError::DuplicateNode`] for bad
    ///   unit references;
    /// * [`CodeError::SingularSelection`] if the chosen units do not span the
    ///   message space.
    pub fn for_units(code: &LinearCode, units: &[(usize, usize)]) -> Result<Self, CodeError> {
        let b = code.message_units();
        if units.len() != b {
            return Err(CodeError::InsufficientData {
                needed: b,
                got: units.len(),
            });
        }
        let mut rows = Vec::with_capacity(b);
        for (i, &(node, unit)) in units.iter().enumerate() {
            if node >= code.n() || unit >= code.sub() {
                return Err(CodeError::NodeOutOfRange { node, n: code.n() });
            }
            if units[i + 1..].contains(&(node, unit)) {
                return Err(CodeError::DuplicateNode { node });
            }
            rows.push(node * code.sub() + unit);
        }
        let stacked = code.generator().select_rows(&rows);
        let inverse = stacked.inverse().ok_or(CodeError::SingularSelection)?;
        Ok(DecodePlan {
            sources: units.to_vec(),
            nodes: Vec::new(),
            inverse,
            sub: code.sub(),
            message_units: b,
        })
    }

    /// The `(node, unit)` sources this plan consumes, in order.
    pub fn sources(&self) -> &[(usize, usize)] {
        &self.sources
    }

    /// Decodes from full blocks laid out in the same node order the plan was
    /// built with (only valid for plans from [`DecodePlan::for_nodes`]).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::BlockSizeMismatch`] if block lengths disagree or
    /// are not a multiple of `sub`.
    pub fn decode(&self, blocks: &[&[u8]]) -> Result<Vec<u8>, CodeError> {
        if blocks.len() != self.nodes.len() {
            return Err(CodeError::InsufficientData {
                needed: self.nodes.len(),
                got: blocks.len(),
            });
        }
        let block_len = blocks[0].len();
        if !block_len.is_multiple_of(self.sub) {
            return Err(CodeError::BlockSizeMismatch {
                expected: block_len.next_multiple_of(self.sub),
                actual: block_len,
            });
        }
        let w = block_len / self.sub;
        let mut unit_slices = Vec::with_capacity(self.sources.len());
        for &(node, unit) in &self.sources {
            let pos = self
                .nodes
                .iter()
                .position(|&nd| nd == node)
                .expect("source node is in the plan's node list");
            let block = blocks[pos];
            if block.len() != block_len {
                return Err(CodeError::BlockSizeMismatch {
                    expected: block_len,
                    actual: block.len(),
                });
            }
            unit_slices.push(&block[unit * w..(unit + 1) * w]);
        }
        Ok(self.combine(&unit_slices, w))
    }

    /// Decodes from individual unit slices, one per planned source, each of
    /// the same width.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InsufficientData`] on a count mismatch and
    /// [`CodeError::BlockSizeMismatch`] on ragged widths.
    pub fn decode_units(&self, units: &[&[u8]]) -> Result<Vec<u8>, CodeError> {
        if units.len() != self.sources.len() {
            return Err(CodeError::InsufficientData {
                needed: self.sources.len(),
                got: units.len(),
            });
        }
        let w = units[0].len();
        for u in units {
            if u.len() != w {
                return Err(CodeError::BlockSizeMismatch {
                    expected: w,
                    actual: u.len(),
                });
            }
        }
        Ok(self.combine(units, w))
    }

    fn combine(&self, unit_slices: &[&[u8]], w: usize) -> Vec<u8> {
        let _timer = if telemetry::ENABLED {
            DECODE_OPS.inc();
            DECODE_BYTES.add((self.message_units * w) as u64);
            Some(telemetry::span("erasure.decode.ns"))
        } else {
            None
        };
        let kernel = gf256::kernel();
        let mut out = vec![0u8; self.message_units * w];
        let mut terms = Vec::with_capacity(unit_slices.len());
        for (r, chunk) in out.chunks_exact_mut(w).enumerate() {
            let row = self.inverse.row(r);
            terms.clear();
            terms.extend(row.iter().zip(unit_slices).map(|(&c, &src)| (c, src)));
            kernel.mul_acc_rows(&terms, chunk);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf256::builders::systematize;

    // A (6,3) code with sub = 2 built by treating a (12,6) MDS generator as
    // 6 nodes of 2 rows. Any 3 nodes stack 6 of the 12 Vandermonde-derived
    // rows, which are invertible.
    fn code2() -> LinearCode {
        let g = systematize(&Matrix::vandermonde(12, 6));
        LinearCode::new(6, 3, 2, g).unwrap()
    }

    #[test]
    fn for_nodes_rejects_wrong_count() {
        let code = code2();
        assert!(matches!(
            DecodePlan::for_nodes(&code, &[0, 1]),
            Err(CodeError::InsufficientData { .. })
        ));
        assert!(matches!(
            DecodePlan::for_nodes(&code, &[0, 1, 2, 3]),
            Err(CodeError::InsufficientData { .. })
        ));
    }

    #[test]
    fn decode_via_units_matches_decode_via_blocks() {
        let code = code2();
        let data: Vec<u8> = (0..60).map(|i| (i * 11 + 7) as u8).collect();
        let stripe = code.encode(&data).unwrap();
        let nodes = [1usize, 3, 5];
        let blocks: Vec<&[u8]> = nodes.iter().map(|&i| &stripe.blocks[i][..]).collect();
        let by_blocks = code.decode_nodes(&nodes, &blocks).unwrap();

        let units: Vec<(usize, usize)> = nodes.iter().flat_map(|&nd| [(nd, 0), (nd, 1)]).collect();
        let plan = DecodePlan::for_units(&code, &units).unwrap();
        let w = stripe.unit_bytes;
        let unit_slices: Vec<&[u8]> = plan
            .sources()
            .iter()
            .map(|&(nd, u)| &stripe.blocks[nd][u * w..(u + 1) * w])
            .collect();
        let by_units = plan.decode_units(&unit_slices).unwrap();
        assert_eq!(by_blocks, by_units);
        assert_eq!(&by_blocks[..data.len()], &data[..]);
    }

    #[test]
    fn mixed_unit_selection_decodes() {
        // Take unit 0 from four different nodes and unit 1 from two others.
        let code = code2();
        let data: Vec<u8> = (0..36).map(|i| (i * 5 + 1) as u8).collect();
        let stripe = code.encode(&data).unwrap();
        let units = [(0, 0), (1, 0), (2, 0), (3, 0), (4, 1), (5, 1)];
        let plan = DecodePlan::for_units(&code, &units).unwrap();
        let w = stripe.unit_bytes;
        let slices: Vec<&[u8]> = units
            .iter()
            .map(|&(nd, u)| &stripe.blocks[nd][u * w..(u + 1) * w])
            .collect();
        let out = plan.decode_units(&slices).unwrap();
        assert_eq!(&out[..data.len()], &data[..]);
    }

    #[test]
    fn for_units_rejects_duplicates_and_range() {
        let code = code2();
        let dup = [(0, 0), (0, 0), (1, 0), (1, 1), (2, 0), (2, 1)];
        assert!(matches!(
            DecodePlan::for_units(&code, &dup),
            Err(CodeError::DuplicateNode { .. })
        ));
        let oob = [(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (9, 0)];
        assert!(matches!(
            DecodePlan::for_units(&code, &oob),
            Err(CodeError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn ragged_unit_widths_rejected() {
        let code = code2();
        let units = [(0usize, 0usize), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)];
        let plan = DecodePlan::for_units(&code, &units).unwrap();
        let a = vec![0u8; 4];
        let b = vec![0u8; 5];
        let slices: Vec<&[u8]> = vec![&a, &a, &a, &a, &a, &b];
        assert!(matches!(
            plan.decode_units(&slices),
            Err(CodeError::BlockSizeMismatch { .. })
        ));
    }
}
