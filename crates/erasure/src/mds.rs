//! Verification of the MDS property: any `k` blocks must decode.

use crate::linear::LinearCode;

/// Outcome of an MDS verification sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MdsReport {
    /// Every checked `k`-subset of blocks had full rank.
    Mds {
        /// How many subsets were checked.
        subsets_checked: usize,
        /// Whether that covered *all* `C(n, k)` subsets.
        exhaustive: bool,
    },
    /// A counterexample subset that cannot decode.
    NotMds {
        /// The failing block subset.
        counterexample: Vec<usize>,
    },
}

impl MdsReport {
    /// `true` when no counterexample was found.
    pub fn is_mds(&self) -> bool {
        matches!(self, MdsReport::Mds { .. })
    }
}

/// Checks the MDS property by decoding-rank over `k`-subsets of blocks.
///
/// All `C(n,k)` subsets are checked if there are at most `max_subsets` of
/// them; otherwise a deterministic stratified sample of `max_subsets`
/// subsets is checked (every block participates).
///
/// # Examples
///
/// ```
/// use erasure::{mds::verify_mds, LinearCode};
/// use gf256::{builders::systematize, Matrix};
///
/// let code = LinearCode::new(6, 4, 1, systematize(&Matrix::vandermonde(6, 4)))?;
/// assert!(verify_mds(&code, 100).is_mds());
/// # Ok::<(), erasure::CodeError>(())
/// ```
pub fn verify_mds(code: &LinearCode, max_subsets: usize) -> MdsReport {
    let n = code.n();
    let k = code.k();
    let total = binomial(n, k);
    if total.is_some_and(|t| t <= max_subsets) {
        let mut checked = 0;
        let mut subset: Vec<usize> = (0..k).collect();
        loop {
            checked += 1;
            if !code.can_decode(&subset) {
                return MdsReport::NotMds {
                    counterexample: subset,
                };
            }
            if !next_combination(&mut subset, n) {
                break;
            }
        }
        MdsReport::Mds {
            subsets_checked: checked,
            exhaustive: true,
        }
    } else {
        // Deterministic LCG-driven sample; also always include the sliding
        // windows so every block appears in several subsets.
        let mut checked = 0;
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut subset = Vec::with_capacity(k);
        for start in 0..n {
            subset.clear();
            subset.extend((0..k).map(|j| (start + j) % n));
            subset.sort_unstable();
            checked += 1;
            if !code.can_decode(&subset) {
                return MdsReport::NotMds {
                    counterexample: subset,
                };
            }
        }
        while checked < max_subsets {
            subset.clear();
            let mut pool: Vec<usize> = (0..n).collect();
            for i in 0..k {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let j = i + (state >> 33) as usize % (n - i);
                pool.swap(i, j);
                subset.push(pool[i]);
            }
            subset.sort_unstable();
            checked += 1;
            if !code.can_decode(&subset) {
                return MdsReport::NotMds {
                    counterexample: subset,
                };
            }
        }
        MdsReport::Mds {
            subsets_checked: checked,
            exhaustive: false,
        }
    }
}

/// `C(n, k)` with overflow detection.
pub(crate) fn binomial(n: usize, k: usize) -> Option<usize> {
    let k = k.min(n - k);
    let mut acc: usize = 1;
    for i in 0..k {
        acc = acc.checked_mul(n - i)?;
        acc /= i + 1;
    }
    Some(acc)
}

/// Advances `subset` (sorted, values `< n`) to the next combination in
/// lexicographic order; returns `false` after the last one.
pub(crate) fn next_combination(subset: &mut [usize], n: usize) -> bool {
    let k = subset.len();
    let mut i = k;
    while i > 0 {
        i -= 1;
        if subset[i] < n - (k - i) {
            subset[i] += 1;
            for j in i + 1..k {
                subset[j] = subset[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf256::builders::systematize;
    use gf256::{Gf256, Matrix};

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(6, 3), Some(20));
        assert_eq!(binomial(12, 6), Some(924));
        assert_eq!(binomial(5, 0), Some(1));
        assert_eq!(binomial(5, 5), Some(1));
    }

    #[test]
    fn combinations_enumerate_all() {
        let mut c = vec![0, 1, 2];
        let mut count = 1;
        while next_combination(&mut c, 6) {
            count += 1;
        }
        assert_eq!(count, 20);
    }

    #[test]
    fn vandermonde_code_is_mds() {
        let code = LinearCode::new(8, 4, 1, systematize(&Matrix::vandermonde(8, 4))).unwrap();
        let report = verify_mds(&code, 1_000);
        assert_eq!(
            report,
            MdsReport::Mds {
                subsets_checked: 70,
                exhaustive: true
            }
        );
    }

    #[test]
    fn broken_code_is_detected() {
        // Duplicate a generator row: the subset containing both copies is
        // singular.
        let mut g = systematize(&Matrix::vandermonde(5, 3));
        for c in 0..3 {
            let v = g.get(0, c);
            g.set(4, c, v);
        }
        let code = LinearCode::new(5, 3, 1, g).unwrap();
        let report = verify_mds(&code, 1_000);
        assert!(!report.is_mds());
        if let MdsReport::NotMds { counterexample } = report {
            assert!(counterexample.contains(&0) && counterexample.contains(&4));
        }
    }

    #[test]
    fn sampled_mode_used_for_large_spaces() {
        let code = LinearCode::new(24, 12, 1, systematize(&Matrix::vandermonde(24, 12))).unwrap();
        let report = verify_mds(&code, 200);
        match report {
            MdsReport::Mds {
                subsets_checked,
                exhaustive,
            } => {
                assert!(!exhaustive);
                assert_eq!(subsets_checked, 200);
            }
            MdsReport::NotMds { .. } => panic!("vandermonde should be MDS"),
        }
    }

    #[test]
    fn all_zero_code_fails_fast() {
        let g = Matrix::from_fn(4, 2, |_, _| Gf256::ZERO);
        let code = LinearCode::new(4, 2, 1, g).unwrap();
        assert!(!verify_mds(&code, 10).is_mds());
    }
}
