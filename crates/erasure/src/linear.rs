//! The core [`LinearCode`] type: a generator matrix with shape metadata.

use gf256::{Gf256, Matrix};

use crate::codec::{EncodedStripe, SparseEncoder};
use crate::decode::DecodePlan;
use crate::error::CodeError;
use crate::{check_indices, stack_node_rows};

/// A linear code over GF(2⁸) described by its generator matrix.
///
/// The code maps a message of `b = k·sub` symbols to `n` blocks of `sub`
/// symbols each; block `i` is `g_i · m` where `g_i` is rows
/// `[i·sub, (i+1)·sub)` of the generator. At the byte level every symbol is
/// a row of `w` bytes, so a block is `sub·w` bytes (paper §IV).
///
/// `sub` is the number of *units* per block: 1 for plain RS, `α = d−k+1`
/// for MSR codes, and `α·N₀` for Carousel codes after expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearCode {
    n: usize,
    k: usize,
    sub: usize,
    message_units: usize,
    generator: Matrix,
}

impl LinearCode {
    /// Creates a linear code, validating the generator shape.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::ShapeMismatch`] if the generator is not
    /// `(n·sub) × (k·sub)`, and [`CodeError::InvalidParameters`] if
    /// `k > n` or any dimension is zero.
    pub fn new(n: usize, k: usize, sub: usize, generator: Matrix) -> Result<Self, CodeError> {
        if n == 0 || k == 0 || sub == 0 {
            return Err(CodeError::InvalidParameters {
                reason: "n, k and sub must all be positive".into(),
            });
        }
        if k > n {
            return Err(CodeError::InvalidParameters {
                reason: format!("k = {k} must not exceed n = {n}"),
            });
        }
        let expected = (n * sub, k * sub);
        let actual = (generator.rows(), generator.cols());
        if expected != actual {
            return Err(CodeError::ShapeMismatch { expected, actual });
        }
        Ok(LinearCode {
            n,
            k,
            sub,
            message_units: k * sub,
            generator,
        })
    }

    /// Creates a linear code whose message is *smaller* than `k·sub`
    /// units — the shape of minimum-bandwidth regenerating (MBR) codes,
    /// which trade extra per-node storage for single-block repair traffic.
    /// Any `k` blocks must still span the message space, but their stacked
    /// rows are over-determined rather than square.
    ///
    /// # Errors
    ///
    /// Returns shape/parameter errors as [`LinearCode::new`], plus
    /// [`CodeError::InvalidParameters`] unless `0 < message_units ≤ k·sub`.
    pub fn with_message_units(
        n: usize,
        k: usize,
        sub: usize,
        message_units: usize,
        generator: Matrix,
    ) -> Result<Self, CodeError> {
        if n == 0 || k == 0 || sub == 0 {
            return Err(CodeError::InvalidParameters {
                reason: "n, k and sub must all be positive".into(),
            });
        }
        if k > n {
            return Err(CodeError::InvalidParameters {
                reason: format!("k = {k} must not exceed n = {n}"),
            });
        }
        if message_units == 0 || message_units > k * sub {
            return Err(CodeError::InvalidParameters {
                reason: format!("message_units = {message_units} must be in 1..={}", k * sub),
            });
        }
        let expected = (n * sub, message_units);
        let actual = (generator.rows(), generator.cols());
        if expected != actual {
            return Err(CodeError::ShapeMismatch { expected, actual });
        }
        Ok(LinearCode {
            n,
            k,
            sub,
            message_units,
            generator,
        })
    }

    /// Number of encoded blocks.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of original blocks.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Units (symbol-rows) per block.
    pub fn sub(&self) -> usize {
        self.sub
    }

    /// Total message units (`k·sub` for MDS-shaped codes, fewer for MBR).
    pub fn message_units(&self) -> usize {
        self.message_units
    }

    /// The full generator matrix.
    pub fn generator(&self) -> &Matrix {
        &self.generator
    }

    /// The `sub × b` generator submatrix of block `i` (the paper's `g_i`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn node_generator(&self, i: usize) -> Matrix {
        assert!(i < self.n, "block index out of range");
        let rows: Vec<usize> = (i * self.sub..(i + 1) * self.sub).collect();
        self.generator.select_rows(&rows)
    }

    /// The global generator row of unit `u` of block `i`.
    pub fn unit_row(&self, node: usize, unit: usize) -> &[Gf256] {
        assert!(node < self.n && unit < self.sub, "unit out of range");
        self.generator.row(node * self.sub + unit)
    }

    /// Encodes `data` into `n` blocks, choosing the unit width `w` as
    /// `ceil(len / b)` and zero-padding.
    ///
    /// Equivalent to [`SparseEncoder::encode`] with a freshly built encoder;
    /// build the encoder once when encoding many stripes.
    ///
    /// # Errors
    ///
    /// Returns an error if `data` is empty.
    pub fn encode(&self, data: &[u8]) -> Result<EncodedStripe, CodeError> {
        SparseEncoder::new(self).encode(data)
    }

    /// Decodes the original message bytes from full blocks.
    ///
    /// `nodes[i]` is the block index of `blocks[i]`. Any set of nodes whose
    /// stacked generator rows span the message space works; for an MDS code
    /// any `k` distinct blocks do.
    ///
    /// # Errors
    ///
    /// Propagates the failures of [`DecodePlan::for_nodes`] plus block-size
    /// mismatches.
    pub fn decode_nodes(&self, nodes: &[usize], blocks: &[&[u8]]) -> Result<Vec<u8>, CodeError> {
        let plan = DecodePlan::for_nodes(self, nodes)?;
        plan.decode(blocks)
    }

    /// Applies a message-symbol level encode: `units[r] = G[r] · message`.
    ///
    /// This is the slow, obviously-correct reference used by tests; the fast
    /// path is [`SparseEncoder`].
    pub fn encode_symbols(&self, message: &[Gf256]) -> Result<Vec<Vec<Gf256>>, CodeError> {
        if message.len() != self.message_units() {
            return Err(CodeError::InsufficientData {
                needed: self.message_units(),
                got: message.len(),
            });
        }
        let mut all = vec![Gf256::ZERO; self.generator.rows()];
        self.generator.mul_vec_into(message, &mut all);
        Ok(all.chunks(self.sub).map(<[Gf256]>::to_vec).collect())
    }

    /// Checks that the given nodes can decode (their stacked rows have full
    /// column rank).
    pub fn can_decode(&self, nodes: &[usize]) -> bool {
        if check_indices(self.n, nodes).is_err() {
            return false;
        }
        stack_node_rows(self, nodes).rank() == self.message_units()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf256::builders::systematize;

    fn toy_code() -> LinearCode {
        let g = systematize(&Matrix::vandermonde(5, 3));
        LinearCode::new(5, 3, 1, g).unwrap()
    }

    #[test]
    fn new_validates_shape() {
        let g = Matrix::zeros(4, 2);
        let err = LinearCode::new(5, 2, 1, g).unwrap_err();
        assert!(matches!(err, CodeError::ShapeMismatch { .. }));
    }

    #[test]
    fn new_rejects_k_greater_than_n() {
        let g = Matrix::zeros(2, 3);
        let err = LinearCode::new(2, 3, 1, g).unwrap_err();
        assert!(matches!(err, CodeError::InvalidParameters { .. }));
    }

    #[test]
    fn new_rejects_zero_dims() {
        let g = Matrix::zeros(0, 0);
        assert!(LinearCode::new(0, 0, 1, g).is_err());
    }

    #[test]
    fn node_generator_extracts_rows() {
        let code = toy_code();
        let g1 = code.node_generator(1);
        assert_eq!(g1.rows(), 1);
        assert_eq!(g1.row(0), code.generator().row(1));
    }

    #[test]
    fn encode_then_decode_any_k() {
        let code = toy_code();
        let data = b"the quick brown fox jumps over";
        let stripe = code.encode(data).unwrap();
        assert_eq!(stripe.blocks.len(), 5);
        for nodes in [[0usize, 1, 2], [2, 3, 4], [0, 2, 4], [4, 1, 0]] {
            let blocks: Vec<&[u8]> = nodes.iter().map(|&i| &stripe.blocks[i][..]).collect();
            let out = code.decode_nodes(&nodes, &blocks).unwrap();
            assert_eq!(&out[..data.len()], &data[..]);
        }
    }

    #[test]
    fn decode_with_too_few_nodes_fails() {
        let code = toy_code();
        let stripe = code.encode(b"0123456789").unwrap();
        let err = code
            .decode_nodes(&[0, 1], &[&stripe.blocks[0], &stripe.blocks[1]])
            .unwrap_err();
        assert!(matches!(err, CodeError::InsufficientData { .. }));
    }

    #[test]
    fn can_decode_matches_rank() {
        let code = toy_code();
        assert!(code.can_decode(&[0, 1, 2]));
        assert!(code.can_decode(&[2, 3, 4]));
        assert!(!code.can_decode(&[0, 1]));
        assert!(!code.can_decode(&[0, 0, 1]));
        assert!(!code.can_decode(&[0, 1, 9]));
    }

    #[test]
    fn encode_symbols_matches_byte_encode() {
        let code = toy_code();
        let data: Vec<u8> = (0..3).collect(); // w = 1: one byte per symbol
        let stripe = code.encode(&data).unwrap();
        let msg: Vec<Gf256> = data.iter().map(|&b| Gf256::new(b)).collect();
        let sym = code.encode_symbols(&msg).unwrap();
        for (block, s) in stripe.blocks.iter().zip(&sym) {
            assert_eq!(*block, vec![s[0].value()]);
        }
    }

    #[test]
    fn systematic_blocks_hold_raw_data() {
        let code = toy_code();
        let data = b"abcdefghi"; // 9 bytes over b = 3 units -> w = 3
        let stripe = code.encode(data).unwrap();
        assert_eq!(&stripe.blocks[0][..], b"abc");
        assert_eq!(&stripe.blocks[1][..], b"def");
        assert_eq!(&stripe.blocks[2][..], b"ghi");
    }
}
