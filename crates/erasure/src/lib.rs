//! Generic generator-matrix erasure codes over GF(2⁸).
//!
//! The paper (§IV) models every code — Reed-Solomon, product-matrix MSR and
//! Carousel — the same way: a file is `k` blocks, each block is `sub`
//! symbol-rows of `w` bytes, and the `n` encoded blocks are
//! `g_i · F` for an `(n·sub) × (k·sub)` generating matrix `G` split into
//! per-node submatrices `g_i`. This crate implements that model once:
//!
//! * [`LinearCode`] — the generator matrix plus shape metadata;
//! * [`codec`] — byte-level striping and sparse-aware encoding;
//! * [`decode`] — decode the original data from any sufficient set of units;
//! * [`repair`] — executable repair plans whose network traffic is *counted*;
//! * [`layout`] — where the original data lives inside the encoded blocks
//!   (the `FileInputFormat` equivalent from the paper's Hadoop prototype);
//! * [`mds`] — exhaustive/sampled verification of the MDS property.
//!
//! Concrete constructions live in the `carousel-rs`, `carousel-msr` and
//! `carousel` crates.
//!
//! # Examples
//!
//! ```
//! use erasure::LinearCode;
//! use gf256::Matrix;
//!
//! // A (4, 2) MDS code from a systematized Vandermonde matrix.
//! let g = gf256::builders::systematize(&Matrix::vandermonde(4, 2));
//! let code = LinearCode::new(4, 2, 1, g)?;
//! let stripe = code.encode(b"hello world!")?;
//! let restored = code.decode_nodes(&[2, 3], &[&stripe.blocks[2], &stripe.blocks[3]])?;
//! assert_eq!(&restored[..12], b"hello world!");
//! # Ok::<(), erasure::CodeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod linear;

pub mod codec;
pub mod consistency;
pub mod decode;
pub mod layout;
pub mod mds;
pub mod repair;
pub mod sparsity;

pub use codec::{
    apply_block_delta, ColumnUpdater, EncodedStripe, NodeDeltaUpdate, SparseEncoder, StripeDelta,
};
pub use decode::DecodePlan;
pub use error::CodeError;
pub use layout::{DataLayout, UnitRef};
pub use linear::LinearCode;
pub use repair::{HelperTask, RepairPlan};

use gf256::Matrix;

/// Common interface of the erasure codes in this reproduction.
///
/// Implemented by systematic RS (`carousel-rs`), product-matrix MSR
/// (`carousel-msr`) and Carousel codes (`carousel`).
pub trait ErasureCode {
    /// Short human-readable name, e.g. `"RS(6,4)"`.
    fn name(&self) -> String;

    /// The underlying linear code (generator matrix + shape).
    fn linear(&self) -> &LinearCode;

    /// Number of encoded blocks per stripe.
    fn n(&self) -> usize {
        self.linear().n()
    }

    /// Number of original blocks per stripe.
    fn k(&self) -> usize {
        self.linear().k()
    }

    /// Number of helpers contacted to repair one block.
    fn d(&self) -> usize;

    /// Where original data lives inside the encoded blocks. Systematic RS
    /// puts all of it in the first `k` blocks; an `(n,k,d,p)` Carousel code
    /// spreads it over the first `p` blocks.
    fn data_layout(&self) -> DataLayout;

    /// Builds a repair plan for `failed` using the given helper blocks.
    ///
    /// # Errors
    ///
    /// Fails if the helper set is invalid for this code (wrong count,
    /// contains `failed`, out of range, or algebraically insufficient).
    fn repair_plan(&self, failed: usize, helpers: &[usize]) -> Result<RepairPlan, CodeError>;

    /// Number of blocks whose top region contains original data — the
    /// paper's *data parallelism* degree `p`.
    fn parallelism(&self) -> usize {
        self.data_layout().data_bearing_nodes()
    }
}

/// Validates that `indices` are unique and all less than `n`.
pub(crate) fn check_indices(n: usize, indices: &[usize]) -> Result<(), CodeError> {
    for (i, &a) in indices.iter().enumerate() {
        if a >= n {
            return Err(CodeError::NodeOutOfRange { node: a, n });
        }
        if indices[i + 1..].contains(&a) {
            return Err(CodeError::DuplicateNode { node: a });
        }
    }
    Ok(())
}

/// Stacks the per-node generator submatrices of the given nodes.
pub(crate) fn stack_node_rows(code: &LinearCode, nodes: &[usize]) -> Matrix {
    let sub = code.sub();
    let rows: Vec<usize> = nodes.iter().flat_map(|&i| i * sub..(i + 1) * sub).collect();
    code.generator().select_rows(&rows)
}
