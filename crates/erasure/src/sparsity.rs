//! Generator-matrix sparsity statistics and rendering (paper Fig. 5).
//!
//! The paper observes that although the Carousel generating matrix is
//! `N₀`-times larger than the RS matrix it came from, each parity row has
//! only `k` (or `k·α`) nonzero coefficients, so sparse-aware encoding costs
//! the same per output byte. These helpers quantify and visualize that.

use gf256::Matrix;

/// Summary statistics of a generator matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixStats {
    /// Matrix dimensions `(rows, cols)`.
    pub shape: (usize, usize),
    /// Count of nonzero coefficients.
    pub nonzeros: usize,
    /// Fraction of entries that are nonzero.
    pub density: f64,
    /// Maximum nonzeros in any single row.
    pub max_row_weight: usize,
    /// Mean nonzeros per row.
    pub avg_row_weight: f64,
    /// Number of rows that are unit vectors (systematic/data rows).
    pub identity_rows: usize,
}

/// Computes [`MatrixStats`] for a matrix.
pub fn stats(m: &Matrix) -> MatrixStats {
    let rows = m.rows();
    let cols = m.cols();
    let nonzeros = m.nonzeros();
    let mut max_row_weight = 0;
    let mut identity_rows = 0;
    for r in 0..rows {
        let w = m.row_weight(r);
        max_row_weight = max_row_weight.max(w);
        if w == 1 && m.row(r).contains(&gf256::Gf256::ONE) {
            identity_rows += 1;
        }
    }
    MatrixStats {
        shape: (rows, cols),
        nonzeros,
        density: nonzeros as f64 / (rows * cols).max(1) as f64,
        max_row_weight,
        avg_row_weight: nonzeros as f64 / rows.max(1) as f64,
        identity_rows,
    }
}

/// Renders the zero/nonzero pattern as ASCII art — `█` for a nonzero entry,
/// `·` for zero — the visual equivalent of the paper's Fig. 5.
pub fn render_pattern(m: &Matrix) -> String {
    let mut out = String::with_capacity(m.rows() * (2 * m.cols() + 1));
    for r in 0..m.rows() {
        for c in 0..m.cols() {
            out.push(if m.get(r, c).is_zero() { '·' } else { '█' });
            out.push(' ');
        }
        out.pop();
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf256::builders::systematize;

    #[test]
    fn stats_of_systematic_generator() {
        let g = systematize(&Matrix::vandermonde(5, 3));
        let s = stats(&g);
        assert_eq!(s.shape, (5, 3));
        assert_eq!(s.identity_rows, 3);
        assert_eq!(s.max_row_weight, 3);
        assert_eq!(s.nonzeros, 3 + 2 * 3);
        assert!((s.density - 9.0 / 15.0).abs() < 1e-12);
        assert!((s.avg_row_weight - 9.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn pattern_rendering() {
        let g = Matrix::identity(2);
        assert_eq!(render_pattern(&g), "█ ·\n· █\n");
    }

    #[test]
    fn stats_of_empty_ish_matrix() {
        let z = Matrix::zeros(3, 3);
        let s = stats(&z);
        assert_eq!(s.nonzeros, 0);
        assert_eq!(s.max_row_weight, 0);
        assert_eq!(s.identity_rows, 0);
    }
}
