//! Data layout: which units of which encoded blocks hold original data.
//!
//! This is the information the paper's Hadoop prototype exposes through its
//! custom `FileInputFormat` (§VIII-A): "the boundary between the original
//! data and parity data in each block", so map tasks and parallel readers
//! can consume original data straight from encoded blocks.

use core::fmt;

/// A reference to one unit (symbol-row) of one encoded block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UnitRef {
    /// Block index in `0..n`.
    pub node: usize,
    /// Unit index within the block, in `0..sub`.
    pub unit: usize,
}

/// Describes, for every block, which file units its leading units carry.
///
/// After the Carousel *reordering* step all data units sit at the top of
/// their block in file order, so the layout is fully described by one list
/// of file-unit indices per node: unit `u` of node `i` carries file unit
/// `node_data[i][u]` (and units beyond `node_data[i].len()` are parity).
///
/// # Examples
///
/// ```
/// use erasure::DataLayout;
///
/// // A systematic (5, 3) layout: data in blocks 0..3, parity in 3..5.
/// let layout = DataLayout::systematic(5, 3, 2);
/// assert_eq!(layout.data_bearing_nodes(), 3);
/// assert_eq!(layout.data_units_of(1), &[2, 3]);
/// assert_eq!(layout.data_fraction(4), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataLayout {
    sub: usize,
    file_units: usize,
    node_data: Vec<Vec<usize>>,
}

impl DataLayout {
    /// Creates a layout and validates it: each node lists at most `sub`
    /// units, and every file unit in `0..file_units` appears exactly once.
    ///
    /// # Panics
    ///
    /// Panics if the layout is inconsistent — layouts are produced by code
    /// constructions, so an inconsistency is a construction bug, not a
    /// recoverable condition.
    pub fn new(sub: usize, file_units: usize, node_data: Vec<Vec<usize>>) -> Self {
        let mut seen = vec![false; file_units];
        for (node, units) in node_data.iter().enumerate() {
            assert!(
                units.len() <= sub,
                "node {node} claims {} data units but blocks have only {sub}",
                units.len()
            );
            for &fu in units {
                assert!(fu < file_units, "file unit {fu} out of range");
                assert!(!seen[fu], "file unit {fu} mapped twice");
                seen[fu] = true;
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "some file units are not mapped to any block"
        );
        DataLayout {
            sub,
            file_units,
            node_data,
        }
    }

    /// The systematic layout: node `i < k` carries file units
    /// `[i·sub, (i+1)·sub)` and nodes `k..n` carry none.
    pub fn systematic(n: usize, k: usize, sub: usize) -> Self {
        let node_data = (0..n)
            .map(|i| {
                if i < k {
                    (i * sub..(i + 1) * sub).collect()
                } else {
                    Vec::new()
                }
            })
            .collect();
        DataLayout::new(sub, k * sub, node_data)
    }

    /// Units per block.
    pub fn sub(&self) -> usize {
        self.sub
    }

    /// Total number of file units (`k·sub`).
    pub fn file_units(&self) -> usize {
        self.file_units
    }

    /// Number of blocks described.
    pub fn nodes(&self) -> usize {
        self.node_data.len()
    }

    /// File units carried by the leading units of `node`, in unit order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn data_units_of(&self, node: usize) -> &[usize] {
        &self.node_data[node]
    }

    /// Number of blocks that carry at least one data unit — the data
    /// parallelism degree `p`.
    pub fn data_bearing_nodes(&self) -> usize {
        self.node_data.iter().filter(|u| !u.is_empty()).count()
    }

    /// Fraction of `node`'s block occupied by original data (`k/p` for a
    /// Carousel code, 1 for an RS data block, 0 for an RS parity block).
    pub fn data_fraction(&self, node: usize) -> f64 {
        self.node_data[node].len() as f64 / self.sub as f64
    }

    /// Finds where a file unit is stored.
    pub fn locate(&self, file_unit: usize) -> Option<UnitRef> {
        for (node, units) in self.node_data.iter().enumerate() {
            if let Some(unit) = units.iter().position(|&fu| fu == file_unit) {
                return Some(UnitRef { node, unit });
            }
        }
        None
    }

    /// `true` if every node's data units are a run of consecutive file units
    /// — the property that lets a map task read its share of the file as one
    /// contiguous range.
    pub fn is_contiguous_per_node(&self) -> bool {
        self.node_data
            .iter()
            .all(|units| units.windows(2).all(|w| w[1] == w[0] + 1))
    }

    /// The byte range of original data inside `node`'s block, given the unit
    /// width in bytes: always the leading `len·w` bytes.
    pub fn data_byte_range(&self, node: usize, unit_bytes: usize) -> core::ops::Range<usize> {
        0..self.node_data[node].len() * unit_bytes
    }

    /// The byte range in the *file* covered by `node`'s data region (valid
    /// when the layout is contiguous per node and this node is non-empty).
    pub fn file_byte_range(
        &self,
        node: usize,
        unit_bytes: usize,
    ) -> Option<core::ops::Range<usize>> {
        let units = &self.node_data[node];
        let first = *units.first()?;
        Some(first * unit_bytes..(first + units.len()) * unit_bytes)
    }
}

impl fmt::Display for DataLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (node, units) in self.node_data.iter().enumerate() {
            writeln!(
                f,
                "block {node}: {} data units / {} ({})",
                units.len(),
                self.sub,
                if units.is_empty() {
                    "parity only".to_string()
                } else {
                    format!("file units {:?}", units)
                }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn systematic_layout_properties() {
        let l = DataLayout::systematic(6, 4, 3);
        assert_eq!(l.data_bearing_nodes(), 4);
        assert_eq!(l.file_units(), 12);
        assert_eq!(l.data_units_of(1), &[3, 4, 5]);
        assert_eq!(l.data_units_of(5), &[] as &[usize]);
        assert_eq!(l.data_fraction(0), 1.0);
        assert_eq!(l.data_fraction(4), 0.0);
        assert!(l.is_contiguous_per_node());
        assert_eq!(l.locate(7), Some(UnitRef { node: 2, unit: 1 }));
        assert_eq!(l.locate(99), None);
    }

    #[test]
    fn byte_ranges() {
        let l = DataLayout::systematic(4, 2, 2);
        assert_eq!(l.data_byte_range(0, 100), 0..200);
        assert_eq!(l.data_byte_range(3, 100), 0..0);
        assert_eq!(l.file_byte_range(1, 100), Some(200..400));
        assert_eq!(l.file_byte_range(2, 100), None);
    }

    #[test]
    fn carousel_like_layout() {
        // 3 nodes, sub = 3, each node carries 2 of 6 file units: the paper's
        // Fig. 2 layout.
        let l = DataLayout::new(3, 6, vec![vec![0, 1], vec![2, 3], vec![4, 5]]);
        assert_eq!(l.data_bearing_nodes(), 3);
        assert!((l.data_fraction(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!(l.is_contiguous_per_node());
    }

    #[test]
    #[should_panic(expected = "mapped twice")]
    fn duplicate_file_unit_rejected() {
        let _ = DataLayout::new(2, 4, vec![vec![0, 1], vec![1, 2], vec![3]]);
    }

    #[test]
    #[should_panic(expected = "not mapped")]
    fn missing_file_unit_rejected() {
        let _ = DataLayout::new(2, 4, vec![vec![0, 1], vec![2]]);
    }

    #[test]
    #[should_panic(expected = "claims")]
    fn overfull_node_rejected() {
        let _ = DataLayout::new(1, 2, vec![vec![0, 1]]);
    }
}
