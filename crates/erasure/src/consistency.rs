//! Stripe consistency checking and corruption localization.
//!
//! Erasure codes recover *erasures* (blocks known to be missing); a block
//! that is present but silently corrupt poisons any decode that includes
//! it. With `n − k ≥ 2` there is enough redundancy to *locate* a small
//! number of corrupt blocks without checksums: decode candidate messages
//! from several `k`-subsets, take the message that the largest number of
//! subsets agree on, re-encode it, and flag the blocks that disagree with
//! the consensus encoding.
//!
//! This is a pragmatic consensus scheme (not full Berlekamp–Welch error
//! decoding): it is exact whenever the number of corrupt blocks is at most
//! `n − k − 1` and at least one sampled subset is corruption-free.

use crate::decode::DecodePlan;
use crate::error::CodeError;
use crate::linear::LinearCode;
use crate::SparseEncoder;

/// Outcome of a consistency check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StripeHealth {
    /// All blocks agree with the consensus encoding.
    Consistent,
    /// These block indices disagree with the consensus encoding.
    Corrupt(Vec<usize>),
    /// No consensus could be formed (too much disagreement).
    Undecidable,
}

/// Checks a full stripe for silent corruption.
///
/// `blocks` must contain all `n` blocks. Up to `n − k − 1` corrupt blocks
/// are located reliably; beyond that the result may be
/// [`StripeHealth::Undecidable`].
///
/// # Errors
///
/// Returns size-mismatch/decode errors for malformed inputs.
pub fn check_stripe(code: &LinearCode, blocks: &[&[u8]]) -> Result<StripeHealth, CodeError> {
    let n = code.n();
    let k = code.k();
    if blocks.len() != n {
        return Err(CodeError::InsufficientData {
            needed: n,
            got: blocks.len(),
        });
    }
    let len = blocks[0].len();
    for b in blocks {
        if b.len() != len {
            return Err(CodeError::BlockSizeMismatch {
                expected: len,
                actual: b.len(),
            });
        }
    }

    // Candidate messages voted by k-subsets: all C(n, k) of them when that
    // is small (every clean subset votes for the true message, and with at
    // most n - k - 1 corruptions the clean subsets form a large plurality),
    // otherwise a sliding window of n subsets (locates one corruption).
    let mut candidates: Vec<(Vec<u8>, usize)> = Vec::new();
    let vote = |nodes: &[usize], candidates: &mut Vec<(Vec<u8>, usize)>| -> Result<(), CodeError> {
        let plan = DecodePlan::for_nodes(code, nodes)?;
        let refs: Vec<&[u8]> = nodes.iter().map(|&i| blocks[i]).collect();
        let message = plan.decode(&refs)?;
        match candidates.iter_mut().find(|(m, _)| *m == message) {
            Some((_, votes)) => *votes += 1,
            None => candidates.push((message, 1)),
        }
        Ok(())
    };
    if crate::mds::binomial(n, k).is_some_and(|c| c <= 300) {
        let mut subset: Vec<usize> = (0..k).collect();
        loop {
            vote(&subset, &mut candidates)?;
            if !crate::mds::next_combination(&mut subset, n) {
                break;
            }
        }
    } else {
        for start in 0..n {
            let nodes: Vec<usize> = (0..k).map(|j| (start + j) % n).collect();
            vote(&nodes, &mut candidates)?;
        }
    }
    candidates.sort_by_key(|c| std::cmp::Reverse(c.1));
    let (consensus, votes) = &candidates[0];
    if *votes <= 1 && candidates.len() > 1 {
        return Ok(StripeHealth::Undecidable);
    }

    // Re-encode the consensus and diff against the stored blocks.
    let stripe = SparseEncoder::new(code).encode(consensus)?;
    let corrupt: Vec<usize> = (0..n).filter(|&i| stripe.blocks[i] != blocks[i]).collect();
    if corrupt.is_empty() {
        Ok(StripeHealth::Consistent)
    } else if corrupt.len() <= n - k {
        Ok(StripeHealth::Corrupt(corrupt))
    } else {
        Ok(StripeHealth::Undecidable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf256::builders::systematize;
    use gf256::Matrix;

    fn code(n: usize, k: usize) -> LinearCode {
        LinearCode::new(n, k, 1, systematize(&Matrix::vandermonde(n, k))).unwrap()
    }

    fn stripe(code: &LinearCode, bytes: usize) -> Vec<Vec<u8>> {
        let data: Vec<u8> = (0..bytes).map(|i| (i * 41 + 3) as u8).collect();
        code.encode(&data).unwrap().blocks
    }

    #[test]
    fn clean_stripe_is_consistent() {
        let code = code(8, 4);
        let blocks = stripe(&code, 64);
        let refs: Vec<&[u8]> = blocks.iter().map(|b| &b[..]).collect();
        assert_eq!(
            check_stripe(&code, &refs).unwrap(),
            StripeHealth::Consistent
        );
    }

    #[test]
    fn single_corruption_located_everywhere() {
        let code = code(8, 4);
        for victim in 0..8 {
            let mut blocks = stripe(&code, 64);
            blocks[victim][5] ^= 0x40;
            let refs: Vec<&[u8]> = blocks.iter().map(|b| &b[..]).collect();
            assert_eq!(
                check_stripe(&code, &refs).unwrap(),
                StripeHealth::Corrupt(vec![victim]),
                "victim {victim}"
            );
        }
    }

    #[test]
    fn double_corruption_located() {
        // n - k - 1 = 3 corruptions locatable for (8, 4).
        let code = code(8, 4);
        let mut blocks = stripe(&code, 32);
        blocks[1][0] ^= 1;
        blocks[6][3] ^= 2;
        let refs: Vec<&[u8]> = blocks.iter().map(|b| &b[..]).collect();
        assert_eq!(
            check_stripe(&code, &refs).unwrap(),
            StripeHealth::Corrupt(vec![1, 6])
        );
    }

    #[test]
    fn overwhelming_corruption_is_undecidable_or_detected() {
        let code = code(6, 4);
        let mut blocks = stripe(&code, 32);
        // Corrupt more than n - k blocks: cannot be reliably located.
        for b in blocks.iter_mut().take(3) {
            b[0] ^= 0xFF;
        }
        let refs: Vec<&[u8]> = blocks.iter().map(|b| &b[..]).collect();
        let health = check_stripe(&code, &refs).unwrap();
        assert_ne!(health, StripeHealth::Consistent);
    }

    #[test]
    fn input_validation() {
        let code = code(6, 4);
        let blocks = stripe(&code, 32);
        let refs: Vec<&[u8]> = blocks.iter().take(5).map(|b| &b[..]).collect();
        assert!(check_stripe(&code, &refs).is_err());
    }
}
