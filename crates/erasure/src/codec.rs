//! Byte-level encoding: striping, padding and the sparse-aware encoder.
//!
//! The encoder precomputes, for every output unit, the list of nonzero
//! `(message-unit, coefficient)` pairs and drives the GF(2⁸) slice kernels
//! with exactly those. This is the optimization described in paper §VIII-A:
//! the generating matrix of a Carousel code is large but *sparse* (each
//! parity unit combines at most `k·α` message units out of `k·α·N₀`), so
//! skipping zero coefficients keeps the per-output-byte cost identical to
//! the RS/MSR code the Carousel code was constructed from.

use std::borrow::Cow;
use std::sync::LazyLock;

use gf256::{Gf256, KernelHandle};

use crate::error::CodeError;
use crate::linear::LinearCode;

static ENCODE_STRIPES: LazyLock<&'static telemetry::Counter> =
    LazyLock::new(|| telemetry::counter("erasure.encode.stripes"));
static ENCODE_BYTES: LazyLock<&'static telemetry::Counter> =
    LazyLock::new(|| telemetry::counter("erasure.encode.bytes"));

/// The result of encoding one stripe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedStripe {
    /// The `n` encoded blocks, each `sub · w` bytes.
    pub blocks: Vec<Vec<u8>>,
    /// The unit width in bytes (symbols are rows of `w` bytes).
    pub unit_bytes: usize,
    /// Length of the original (unpadded) data.
    pub original_len: usize,
}

impl EncodedStripe {
    /// Block size in bytes.
    pub fn block_bytes(&self) -> usize {
        self.blocks.first().map_or(0, Vec::len)
    }
}

/// Zero-pads `data` to a multiple of `units` and returns the padded buffer
/// together with the resulting unit width `w`. Already-padded input is
/// borrowed rather than copied.
pub(crate) fn pad_message(data: &[u8], units: usize) -> (Cow<'_, [u8]>, usize) {
    let w = data.len().div_ceil(units).max(1);
    if data.len() == units * w {
        return (Cow::Borrowed(data), w);
    }
    let mut padded = data.to_vec();
    padded.resize(units * w, 0);
    (Cow::Owned(padded), w)
}

/// A reusable encoder that exploits generator-matrix sparsity.
///
/// # Examples
///
/// ```
/// use erasure::{LinearCode, SparseEncoder};
/// use gf256::{builders::systematize, Matrix};
///
/// let code = LinearCode::new(4, 2, 1, systematize(&Matrix::vandermonde(4, 2)))?;
/// let encoder = SparseEncoder::new(&code);
/// let stripe = encoder.encode(b"some file contents")?;
/// assert_eq!(stripe.blocks.len(), 4);
/// # Ok::<(), erasure::CodeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SparseEncoder {
    n: usize,
    sub: usize,
    units: usize,
    /// For each output row: the nonzero `(message unit, coefficient)` pairs.
    rows: Vec<Vec<(usize, Gf256)>>,
    /// The GF(2⁸) kernel driving the multiply-accumulate loops, captured at
    /// construction from the process default.
    kernel: KernelHandle,
}

impl SparseEncoder {
    /// Builds an encoder for `code`, scanning the generator once.
    pub fn new(code: &LinearCode) -> Self {
        let g = code.generator();
        let rows = g
            .iter_rows()
            .take(g.rows())
            .map(|row| {
                row.iter()
                    .enumerate()
                    .filter(|(_, c)| !c.is_zero())
                    .map(|(j, &c)| (j, c))
                    .collect()
            })
            .collect();
        SparseEncoder {
            n: code.n(),
            sub: code.sub(),
            units: code.message_units(),
            rows,
            kernel: gf256::kernel(),
        }
    }

    /// Total multiply-accumulate operations per stripe — the complexity
    /// measure behind the paper's Fig. 6 discussion.
    pub fn mul_ops(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Encodes `data` into `n` blocks with `w = ceil(len / b)`.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InsufficientData`] if `data` is empty.
    pub fn encode(&self, data: &[u8]) -> Result<EncodedStripe, CodeError> {
        if data.is_empty() {
            return Err(CodeError::InsufficientData { needed: 1, got: 0 });
        }
        let w = data.len().div_ceil(self.units).max(1);
        self.encode_with_unit_bytes(data, w)
    }

    /// Encodes `data` at an explicit unit width `w`, as a fixed-geometry
    /// file store does (`w = block_bytes / sub` regardless of how short the
    /// final chunk is). Trailing padding is implicit — no padded copy of
    /// `data` is ever made.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InsufficientData`] for empty input and
    /// [`CodeError::BlockSizeMismatch`] if `data` exceeds `units · w` bytes
    /// or `w` is zero.
    pub fn encode_with_unit_bytes(
        &self,
        data: &[u8],
        w: usize,
    ) -> Result<EncodedStripe, CodeError> {
        if data.is_empty() {
            return Err(CodeError::InsufficientData { needed: 1, got: 0 });
        }
        if w == 0 || data.len() > self.units * w {
            return Err(CodeError::BlockSizeMismatch {
                expected: self.units * w,
                actual: data.len(),
            });
        }
        let mut stripe = EncodedStripe {
            blocks: vec![vec![0u8; self.sub * w]; self.n],
            unit_bytes: w,
            original_len: data.len(),
        };
        self.encode_unpadded_into(data, w, &mut stripe);
        Ok(stripe)
    }

    /// The copy-free core: reads message units straight out of `data`,
    /// clamping the final (short) unit instead of materializing padding.
    fn encode_unpadded_into(&self, data: &[u8], w: usize, stripe: &mut EncodedStripe) {
        debug_assert!(data.len() <= self.units * w);
        let _timer = if telemetry::ENABLED {
            ENCODE_STRIPES.inc();
            ENCODE_BYTES.add((self.n * self.sub * w) as u64);
            Some(telemetry::span("erasure.encode.ns"))
        } else {
            None
        };
        for (node, block) in stripe.blocks.iter_mut().enumerate() {
            block.fill(0);
            for unit in 0..self.sub {
                let out = &mut block[unit * w..(unit + 1) * w];
                for &(j, c) in &self.rows[node * self.sub + unit] {
                    let start = j * w;
                    if start >= data.len() {
                        continue;
                    }
                    let end = (start + w).min(data.len());
                    self.kernel
                        .mul_acc(c, &data[start..end], &mut out[..end - start]);
                }
            }
        }
    }

    /// Encodes into an existing [`EncodedStripe`], reusing its buffers —
    /// the zero-allocation steady state of a storage server encoding many
    /// stripes of identical geometry.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InsufficientData`] for empty input and
    /// [`CodeError::BlockSizeMismatch`] if `data` does not fit the stripe's
    /// existing geometry exactly (`units · unit_bytes` bytes after padding).
    pub fn encode_into(&self, data: &[u8], stripe: &mut EncodedStripe) -> Result<(), CodeError> {
        if data.is_empty() {
            return Err(CodeError::InsufficientData { needed: 1, got: 0 });
        }
        let w = stripe.unit_bytes;
        if stripe.blocks.len() != self.n
            || stripe.blocks.iter().any(|b| b.len() != self.sub * w)
            || data.len() > self.units * w
        {
            return Err(CodeError::BlockSizeMismatch {
                expected: self.units * w,
                actual: data.len(),
            });
        }
        stripe.original_len = data.len();
        self.encode_unpadded_into(data, w, stripe);
        Ok(())
    }
}

/// Column-oriented view of the generator for *in-place updates*: when one
/// message unit changes by `Δ`, every encoded unit with a nonzero
/// coefficient on that column changes by `coeff · Δ` — the classic
/// delta-based parity update, which touches only the affected rows instead
/// of re-encoding the stripe.
///
/// # Examples
///
/// ```
/// use erasure::codec::ColumnUpdater;
/// use erasure::LinearCode;
/// use gf256::{builders::systematize, Matrix};
///
/// let code = LinearCode::new(4, 2, 1, systematize(&Matrix::vandermonde(4, 2)))?;
/// let mut stripe = code.encode(b"abcdef")?; // w = 3
/// let updater = ColumnUpdater::new(&code);
///
/// // Overwrite message unit 1 ("def" -> "DEF") via a delta.
/// let delta: Vec<u8> = b"def".iter().zip(b"DEF").map(|(a, b)| a ^ b).collect();
/// updater.apply(1, &delta, &mut stripe.blocks)?;
/// assert_eq!(&stripe.blocks[1][..], b"DEF");
/// // Parity stays consistent: any 2 blocks decode the updated message.
/// let out = code.decode_nodes(&[2, 3], &[&stripe.blocks[2], &stripe.blocks[3]])?;
/// assert_eq!(&out[..6], b"abcDEF");
/// # Ok::<(), erasure::CodeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ColumnUpdater {
    sub: usize,
    /// For each message unit: the `(output row, coefficient)` pairs.
    cols: Vec<Vec<(usize, Gf256)>>,
    kernel: KernelHandle,
}

impl ColumnUpdater {
    /// Builds the column view of `code`'s generator.
    pub fn new(code: &LinearCode) -> Self {
        let g = code.generator();
        let mut cols: Vec<Vec<(usize, Gf256)>> = vec![Vec::new(); code.message_units()];
        for (r, row) in g.iter_rows().take(g.rows()).enumerate() {
            for (j, &c) in row.iter().enumerate() {
                if !c.is_zero() {
                    cols[j].push((r, c));
                }
            }
        }
        ColumnUpdater {
            sub: code.sub(),
            cols,
            kernel: gf256::kernel(),
        }
    }

    /// Encoded units affected by a change to message unit `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn affected_rows(&self, j: usize) -> &[(usize, Gf256)] {
        &self.cols[j]
    }

    /// Applies `delta` (new XOR old bytes of message unit `j`) to every
    /// affected block in place.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::NodeOutOfRange`] for a bad unit index and
    /// [`CodeError::BlockSizeMismatch`] if `delta` does not match the
    /// blocks' unit width.
    pub fn apply(&self, j: usize, delta: &[u8], blocks: &mut [Vec<u8>]) -> Result<(), CodeError> {
        if j >= self.cols.len() {
            return Err(CodeError::NodeOutOfRange {
                node: j,
                n: self.cols.len(),
            });
        }
        let block_len = blocks.first().map_or(0, Vec::len);
        if !block_len.is_multiple_of(self.sub) || delta.len() != block_len / self.sub {
            return Err(CodeError::BlockSizeMismatch {
                expected: block_len / self.sub.max(1),
                actual: delta.len(),
            });
        }
        let w = delta.len();
        for &(row, coeff) in &self.cols[j] {
            let (node, unit) = (row / self.sub, row % self.sub);
            let block = &mut blocks[node];
            self.kernel
                .mul_acc(coeff, delta, &mut block[unit * w..(unit + 1) * w]);
        }
        Ok(())
    }

    /// The code's sub-packetization (units per block).
    pub fn sub(&self) -> usize {
        self.sub
    }

    /// Message units per stripe (`k · sub`).
    pub fn message_units(&self) -> usize {
        self.cols.len()
    }

    /// Builds the unit-aligned [`StripeDelta`] of an in-place edit:
    /// `new` replaces the bytes at `offset..offset + new.len()` of the
    /// stripe's message, whose previous contents were `old`. The edit is
    /// widened to unit boundaries with zero deltas, then trimmed of
    /// leading/trailing units whose delta is entirely zero — an edit
    /// that changes nothing yields an empty delta list.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InsufficientData`] when `old` and `new`
    /// differ in length or the edit is empty, and
    /// [`CodeError::BlockSizeMismatch`] when the span falls outside the
    /// stripe's `message_units() · unit_bytes` message bytes.
    pub fn stripe_delta(
        &self,
        unit_bytes: usize,
        offset: usize,
        old: &[u8],
        new: &[u8],
    ) -> Result<StripeDelta, CodeError> {
        if old.len() != new.len() || new.is_empty() {
            return Err(CodeError::InsufficientData {
                needed: new.len().max(1),
                got: old.len(),
            });
        }
        let message_bytes = self.cols.len() * unit_bytes;
        let end = offset.saturating_add(new.len());
        if unit_bytes == 0 || end > message_bytes {
            return Err(CodeError::BlockSizeMismatch {
                expected: message_bytes,
                actual: end,
            });
        }
        let mut first_unit = offset / unit_bytes;
        let last_unit = (end - 1) / unit_bytes;
        let mut deltas = vec![vec![0u8; unit_bytes]; last_unit - first_unit + 1];
        for (i, (&o, &n)) in old.iter().zip(new).enumerate() {
            let at = offset + i;
            deltas[at / unit_bytes - first_unit][at % unit_bytes] = o ^ n;
        }
        // Trim all-zero units from both ends: bytes rewritten with their
        // own value contribute nothing under XOR, and a fully unchanged
        // span ships nothing at all.
        while deltas.last().is_some_and(|d| d.iter().all(|&b| b == 0)) {
            deltas.pop();
        }
        while deltas.first().is_some_and(|d| d.iter().all(|&b| b == 0)) {
            deltas.remove(0);
            first_unit += 1;
        }
        Ok(StripeDelta {
            unit_bytes,
            first_unit,
            deltas,
        })
    }

    /// Splits a [`StripeDelta`] into per-node coefficient updates: the
    /// sender ships `delta.deltas` plus each node's rows, and the node
    /// applies them with [`apply_block_delta`] — parity' = parity ⊕ G·Δ
    /// without the node ever seeing the rest of the stripe. Nodes whose
    /// blocks are untouched by the edit are simply absent.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::NodeOutOfRange`] when the delta's unit span
    /// exceeds the code's message units.
    pub fn node_updates(&self, delta: &StripeDelta) -> Result<Vec<NodeDeltaUpdate>, CodeError> {
        let count = delta.deltas.len();
        let last = delta.first_unit + count;
        if last > self.cols.len() {
            return Err(CodeError::NodeOutOfRange {
                node: last,
                n: self.cols.len(),
            });
        }
        // (node, local unit) -> coefficient per delta, built by walking
        // the touched columns once.
        let mut by_row: std::collections::BTreeMap<usize, Vec<Gf256>> =
            std::collections::BTreeMap::new();
        for (d, j) in (delta.first_unit..last).enumerate() {
            for &(row, coeff) in &self.cols[j] {
                by_row
                    .entry(row)
                    .or_insert_with(|| vec![Gf256::ZERO; count])[d] = coeff;
            }
        }
        let mut out: Vec<NodeDeltaUpdate> = Vec::new();
        for (row, coeffs) in by_row {
            let (node, unit) = (row / self.sub, row % self.sub);
            match out.last_mut() {
                Some(u) if u.node == node => u.rows.push((unit, coeffs)),
                _ => out.push(NodeDeltaUpdate {
                    node,
                    rows: vec![(unit, coeffs)],
                }),
            }
        }
        Ok(out)
    }

    /// Applies an in-place edit of the stripe's message directly to its
    /// blocks: `new` replaces `old` at message byte `offset`, and every
    /// affected encoded unit (data and parity alike) is updated by
    /// `coeff · Δ` — byte-identical to re-encoding the edited message,
    /// at a cost proportional to the touched columns only.
    ///
    /// # Errors
    ///
    /// Propagates [`ColumnUpdater::stripe_delta`] validation and
    /// [`ColumnUpdater::apply`] geometry errors.
    pub fn delta_update(
        &self,
        blocks: &mut [Vec<u8>],
        offset: usize,
        old: &[u8],
        new: &[u8],
    ) -> Result<(), CodeError> {
        let block_len = blocks.first().map_or(0, Vec::len);
        if !block_len.is_multiple_of(self.sub.max(1)) || block_len == 0 {
            return Err(CodeError::BlockSizeMismatch {
                expected: self.sub,
                actual: block_len,
            });
        }
        let delta = self.stripe_delta(block_len / self.sub, offset, old, new)?;
        for (d, bytes) in delta.deltas.iter().enumerate() {
            self.apply(delta.first_unit + d, bytes, blocks)?;
        }
        Ok(())
    }
}

/// A unit-aligned description of an in-place edit to one stripe's
/// message: the XOR deltas of every touched message unit, ready to be
/// applied locally ([`ColumnUpdater::delta_update`]) or shipped to the
/// nodes holding the affected blocks ([`ColumnUpdater::node_updates`]).
///
/// The edit is widened to unit boundaries; bytes outside the edited span
/// carry a zero delta, which contributes nothing under GF(2⁸).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripeDelta {
    /// Unit width in bytes (`w`), the blocks' geometry.
    pub unit_bytes: usize,
    /// Index of the first touched message unit.
    pub first_unit: usize,
    /// One `w`-byte delta per touched message unit, contiguous from
    /// `first_unit`.
    pub deltas: Vec<Vec<u8>>,
}

impl StripeDelta {
    /// Total delta payload bytes (what a wire transport ships once,
    /// regardless of how many nodes consume it).
    pub fn payload_bytes(&self) -> usize {
        self.deltas.iter().map(Vec::len).sum()
    }
}

/// The per-node slice of a [`StripeDelta`]: for each local unit of the
/// node's block, the coefficient to apply to each message-unit delta.
/// `rows[i] = (local_unit, coeffs)` with `coeffs.len() == deltas.len()`;
/// zero coefficients mean "this delta does not touch this unit".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeDeltaUpdate {
    /// The block (node index within the stripe) this update targets.
    pub node: usize,
    /// `(local unit, coefficient per delta)` pairs, ascending by unit.
    pub rows: Vec<(usize, Vec<Gf256>)>,
}

/// Applies a shipped delta to one block in place: for every row,
/// `block[unit] += coeff_d · delta_d` over all deltas. This is the
/// *receiver* side of a delta update — it needs no generator matrix,
/// only the coefficients the sender derived, so a storage node can run
/// it against its local block without knowing the code.
///
/// # Errors
///
/// Returns [`CodeError::BlockSizeMismatch`] when a delta is not
/// `unit_bytes` wide or a row's unit falls outside the block, and
/// [`CodeError::InsufficientData`] when a row's coefficient list does
/// not match the delta count.
pub fn apply_block_delta(
    block: &mut [u8],
    unit_bytes: usize,
    rows: &[(usize, Vec<Gf256>)],
    deltas: &[Vec<u8>],
) -> Result<(), CodeError> {
    if unit_bytes == 0 || !block.len().is_multiple_of(unit_bytes) {
        return Err(CodeError::BlockSizeMismatch {
            expected: unit_bytes,
            actual: block.len(),
        });
    }
    if deltas.iter().any(|d| d.len() != unit_bytes) {
        return Err(CodeError::BlockSizeMismatch {
            expected: unit_bytes,
            actual: deltas.iter().map(Vec::len).max().unwrap_or(0),
        });
    }
    let sub = block.len() / unit_bytes;
    let kernel = gf256::kernel();
    for (unit, coeffs) in rows {
        if *unit >= sub {
            return Err(CodeError::BlockSizeMismatch {
                expected: sub,
                actual: *unit,
            });
        }
        if coeffs.len() != deltas.len() {
            return Err(CodeError::InsufficientData {
                needed: deltas.len(),
                got: coeffs.len(),
            });
        }
        let out = &mut block[unit * unit_bytes..(unit + 1) * unit_bytes];
        for (delta, &c) in deltas.iter().zip(coeffs) {
            if !c.is_zero() {
                kernel.mul_acc(c, delta, out);
            }
        }
    }
    Ok(())
}

/// A dense reference encoder that does *not* skip zero coefficients.
///
/// Exists to benchmark the value of the sparsity optimization (the ablation
/// in `carousel-bench`); never use it in real code paths.
#[derive(Debug, Clone)]
pub struct DenseEncoder {
    code: LinearCode,
}

impl DenseEncoder {
    /// Wraps the code for dense encoding.
    pub fn new(code: &LinearCode) -> Self {
        DenseEncoder { code: code.clone() }
    }

    /// Encodes without exploiting sparsity: every coefficient, zero or not,
    /// costs one slice multiply-accumulate.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InsufficientData`] if `data` is empty.
    pub fn encode(&self, data: &[u8]) -> Result<EncodedStripe, CodeError> {
        if data.is_empty() {
            return Err(CodeError::InsufficientData { needed: 1, got: 0 });
        }
        let units = self.code.message_units();
        let (padded, w) = pad_message(data, units);
        let sub = self.code.sub();
        let g = self.code.generator();
        let kernel = gf256::kernel();
        let mut blocks = vec![vec![0u8; sub * w]; self.code.n()];
        let mut scratch = vec![0u8; w];
        for (node, block) in blocks.iter_mut().enumerate() {
            for unit in 0..sub {
                let row = g.row(node * sub + unit);
                let out = &mut block[unit * w..(unit + 1) * w];
                for (j, &c) in row.iter().enumerate() {
                    // Deliberately do the multiply even for zero: this is the
                    // "no sparsity" baseline. Use a scratch buffer so zero
                    // coefficients still cost a full pass.
                    kernel.mul(c, &padded[j * w..(j + 1) * w], &mut scratch);
                    kernel.add_assign(out, &scratch);
                }
            }
        }
        Ok(EncodedStripe {
            blocks,
            unit_bytes: w,
            original_len: data.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf256::builders::systematize;
    use gf256::Matrix;
    use proptest::prelude::*;

    fn code(n: usize, k: usize) -> LinearCode {
        LinearCode::new(n, k, 1, systematize(&Matrix::vandermonde(n, k))).unwrap()
    }

    #[test]
    fn pad_message_widths() {
        assert_eq!(pad_message(b"abcd", 2).1, 2);
        assert_eq!(pad_message(b"abcde", 2).1, 3);
        assert_eq!(pad_message(b"", 4).1, 1);
        let (p, w) = pad_message(b"xyz", 4);
        assert_eq!(w, 1);
        assert_eq!(p.as_ref(), [b'x', b'y', b'z', 0]);
        assert!(matches!(p, Cow::Owned(_)));
        // Already-padded input is borrowed, not copied.
        let (p, w) = pad_message(b"abcd", 2);
        assert_eq!(w, 2);
        assert!(matches!(p, Cow::Borrowed(_)));
    }

    #[test]
    fn explicit_width_encode_matches_padded_encode() {
        let code = code(6, 4);
        let enc = SparseEncoder::new(&code);
        // A short final chunk at a fixed width encodes like its zero-padded
        // equivalent.
        let data: Vec<u8> = (0..23).map(|i| (i * 7 + 1) as u8).collect();
        let w = 8;
        let mut padded = data.clone();
        padded.resize(4 * w, 0);
        let a = enc.encode_with_unit_bytes(&data, w).unwrap();
        let b = enc.encode_with_unit_bytes(&padded, w).unwrap();
        assert_eq!(a.blocks, b.blocks);
        assert_eq!(a.unit_bytes, w);
        assert_eq!(a.original_len, data.len());
        // Oversized data and zero width are rejected.
        assert!(enc
            .encode_with_unit_bytes(&vec![0u8; 4 * w + 1], w)
            .is_err());
        assert!(enc.encode_with_unit_bytes(&data, 0).is_err());
    }

    #[test]
    fn sparse_matches_reference_symbol_encode() {
        let code = code(6, 4);
        let data: Vec<u8> = (0..64).map(|i| (i * 37 + 5) as u8).collect();
        let stripe = SparseEncoder::new(&code).encode(&data).unwrap();
        // Reference: per-column symbol arithmetic.
        let (padded, w) = pad_message(&data, 4);
        for col in 0..w {
            let msg: Vec<Gf256> = (0..4).map(|u| Gf256::new(padded[u * w + col])).collect();
            let units = code.encode_symbols(&msg).unwrap();
            for (block, unit) in stripe.blocks.iter().zip(&units) {
                assert_eq!(block[col], unit[0].value());
            }
        }
    }

    #[test]
    fn dense_and_sparse_agree() {
        let code = code(5, 3);
        let data: Vec<u8> = (0..100).map(|i| (i ^ 0x5A) as u8).collect();
        let a = SparseEncoder::new(&code).encode(&data).unwrap();
        let b = DenseEncoder::new(&code).encode(&data).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mul_ops_counts_nonzeros() {
        let code = code(6, 4);
        let enc = SparseEncoder::new(&code);
        assert_eq!(enc.mul_ops(), code.generator().nonzeros());
        // Systematic: 4 identity rows (1 op each) + 2 parity rows (4 ops each).
        assert_eq!(enc.mul_ops(), 4 + 2 * 4);
    }

    #[test]
    fn encode_into_reuses_buffers_and_matches() {
        let code = code(6, 4);
        let enc = SparseEncoder::new(&code);
        let a: Vec<u8> = (0..64).map(|i| i as u8).collect();
        let b: Vec<u8> = (0..64).map(|i| (i * 3) as u8).collect();
        let mut stripe = enc.encode(&a).unwrap();
        let ptr_before = stripe.blocks[0].as_ptr();
        enc.encode_into(&b, &mut stripe).unwrap();
        assert_eq!(stripe.blocks[0].as_ptr(), ptr_before, "no reallocation");
        assert_eq!(stripe, enc.encode(&b).unwrap());
        // Geometry mismatch is rejected.
        let too_big = vec![0u8; 1000];
        assert!(enc.encode_into(&too_big, &mut stripe).is_err());
        assert!(enc.encode_into(&[], &mut stripe).is_err());
    }

    #[test]
    fn empty_data_is_rejected() {
        let code = code(4, 2);
        assert!(SparseEncoder::new(&code).encode(b"").is_err());
        assert!(DenseEncoder::new(&code).encode(b"").is_err());
    }

    #[test]
    fn delta_update_matches_reencode() {
        let code = code(6, 4);
        let enc = SparseEncoder::new(&code);
        let upd = ColumnUpdater::new(&code);
        let old: Vec<u8> = (0..64).map(|i| (i * 11 + 3) as u8).collect();
        let mut new = old.clone();
        for (i, b) in new[13..29].iter_mut().enumerate() {
            *b = (i * 91 + 7) as u8;
        }
        let mut stripe = enc.encode(&old).unwrap();
        upd.delta_update(&mut stripe.blocks, 13, &old[13..29], &new[13..29])
            .unwrap();
        assert_eq!(stripe.blocks, enc.encode(&new).unwrap().blocks);
    }

    #[test]
    fn node_updates_reproduce_delta_update() {
        // Shipping (deltas, per-node rows) and applying them with
        // apply_block_delta — the wire path — lands on the same blocks
        // as the local delta_update and the full re-encode.
        let code = code(6, 4);
        let enc = SparseEncoder::new(&code);
        let upd = ColumnUpdater::new(&code);
        let old: Vec<u8> = (0..48).map(|i| (i * 5 + 1) as u8).collect();
        let mut new = old.clone();
        for b in &mut new[20..40] {
            *b ^= 0xA5;
        }
        let mut stripe = enc.encode(&old).unwrap();
        let w = stripe.unit_bytes;
        let delta = upd.stripe_delta(w, 20, &old[20..40], &new[20..40]).unwrap();
        let updates = upd.node_updates(&delta).unwrap();
        assert!(!updates.is_empty());
        for nu in &updates {
            apply_block_delta(&mut stripe.blocks[nu.node], w, &nu.rows, &delta.deltas).unwrap();
        }
        assert_eq!(stripe.blocks, enc.encode(&new).unwrap().blocks);
        // Untouched columns mean untouched data nodes: a systematic code
        // editing units 1..4 must not ship anything to data node 0.
        assert!(updates.iter().all(|u| u.node != 0));
    }

    #[test]
    fn delta_validation_rejects_bad_spans() {
        let code = code(4, 2);
        let upd = ColumnUpdater::new(&code);
        let mut stripe = SparseEncoder::new(&code).encode(&[7u8; 16]).unwrap();
        // Length mismatch between old and new.
        assert!(upd
            .delta_update(&mut stripe.blocks, 0, &[1, 2], &[3])
            .is_err());
        // Span past the end of the message.
        assert!(upd
            .delta_update(&mut stripe.blocks, 15, &[0, 0], &[1, 1])
            .is_err());
        // Empty edit.
        assert!(upd.delta_update(&mut stripe.blocks, 0, &[], &[]).is_err());
        // apply_block_delta geometry checks.
        let mut block = vec![0u8; 8];
        let rows = vec![(0usize, vec![Gf256::new(1)])];
        assert!(apply_block_delta(&mut block, 4, &rows, &[vec![0u8; 3]]).is_err());
        assert!(apply_block_delta(&mut block, 3, &rows, &[vec![0u8; 3]]).is_err());
        let bad_unit = vec![(5usize, vec![Gf256::new(1)])];
        assert!(apply_block_delta(&mut block, 4, &bad_unit, &[vec![0u8; 4]]).is_err());
    }

    proptest! {
        #[test]
        fn prop_delta_update_matches_reencode(
            data in proptest::collection::vec(any::<u8>(), 8..200),
            patch in proptest::collection::vec(any::<u8>(), 1..64),
            at in any::<u16>(),
        ) {
            let code = code(6, 4);
            let enc = SparseEncoder::new(&code);
            let upd = ColumnUpdater::new(&code);
            let offset = at as usize % data.len();
            let len = patch.len().min(data.len() - offset);
            let mut new = data.clone();
            new[offset..offset + len].copy_from_slice(&patch[..len]);
            let mut stripe = enc.encode(&data).unwrap();
            upd.delta_update(
                &mut stripe.blocks,
                offset,
                &data[offset..offset + len],
                &new[offset..offset + len],
            )
            .unwrap();
            prop_assert_eq!(stripe.blocks, enc.encode(&new).unwrap().blocks);
        }

        #[test]
        fn prop_encode_decode_round_trip(
            data in proptest::collection::vec(any::<u8>(), 1..300),
            pick in any::<u64>(),
        ) {
            let code = code(6, 4);
            let stripe = SparseEncoder::new(&code).encode(&data).unwrap();
            // Choose a pseudo-random 4-subset of the 6 blocks.
            let mut nodes: Vec<usize> = (0..6).collect();
            let mut s = pick;
            for i in (1..6).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                nodes.swap(i, (s >> 33) as usize % (i + 1));
            }
            nodes.truncate(4);
            let blocks: Vec<&[u8]> = nodes.iter().map(|&i| &stripe.blocks[i][..]).collect();
            let out = code.decode_nodes(&nodes, &blocks).unwrap();
            prop_assert_eq!(&out[..data.len()], &data[..]);
        }
    }
}
