//! Error type shared by all coding operations.

use core::fmt;

/// Errors produced by code construction, encoding, decoding and repair.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodeError {
    /// Parameters violate a structural requirement of the construction.
    InvalidParameters {
        /// Explanation of the violated requirement.
        reason: String,
    },
    /// The generator matrix does not match the declared `(n, k, sub)` shape.
    ShapeMismatch {
        /// Expected `(rows, cols)`.
        expected: (usize, usize),
        /// Actual `(rows, cols)`.
        actual: (usize, usize),
    },
    /// A block index was `>= n`.
    NodeOutOfRange {
        /// The offending index.
        node: usize,
        /// The number of blocks.
        n: usize,
    },
    /// The same block was supplied twice.
    DuplicateNode {
        /// The duplicated index.
        node: usize,
    },
    /// Not enough blocks/units were supplied to decode.
    InsufficientData {
        /// Units required.
        needed: usize,
        /// Units supplied.
        got: usize,
    },
    /// The selected rows of the generator are not invertible — the supplied
    /// set cannot decode (never happens for MDS codes with `k` full blocks).
    SingularSelection,
    /// A supplied block had the wrong length.
    BlockSizeMismatch {
        /// Expected length in bytes.
        expected: usize,
        /// Actual length in bytes.
        actual: usize,
    },
    /// The helper set is invalid for repair.
    BadHelperSet {
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::InvalidParameters { reason } => {
                write!(f, "invalid code parameters: {reason}")
            }
            CodeError::ShapeMismatch { expected, actual } => write!(
                f,
                "generator shape mismatch: expected {}x{}, got {}x{}",
                expected.0, expected.1, actual.0, actual.1
            ),
            CodeError::NodeOutOfRange { node, n } => {
                write!(f, "block index {node} out of range for n = {n}")
            }
            CodeError::DuplicateNode { node } => {
                write!(f, "block index {node} supplied more than once")
            }
            CodeError::InsufficientData { needed, got } => {
                write!(
                    f,
                    "insufficient data to decode: need {needed} units, got {got}"
                )
            }
            CodeError::SingularSelection => {
                write!(f, "selected units do not span the message space")
            }
            CodeError::BlockSizeMismatch { expected, actual } => {
                write!(
                    f,
                    "block size mismatch: expected {expected} bytes, got {actual}"
                )
            }
            CodeError::BadHelperSet { reason } => write!(f, "bad helper set: {reason}"),
        }
    }
}

impl std::error::Error for CodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = CodeError::InsufficientData { needed: 6, got: 4 };
        let s = e.to_string();
        assert!(s.contains("need 6"));
        assert!(s.contains("got 4"));
        assert!(s.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<CodeError>();
    }
}
