//! Hand-rolled JSON encoding (no serde — the build is offline and the
//! schema is small enough to write by hand).
//!
//! [`Obj`] builds one JSON object as a `String`; callers append the result
//! to a JSON-lines stream, one object per line.

/// Escapes `s` into `out` per RFC 8259 (without surrounding quotes).
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Formats an `f64` as a JSON number (`null` for NaN/infinity, which JSON
/// cannot represent).
pub fn number(v: f64, out: &mut String) {
    if v.is_finite() {
        // `{}` on f64 prints the shortest representation that round-trips.
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// An incremental JSON object builder.
#[derive(Debug)]
pub struct Obj {
    buf: String,
    first: bool,
}

impl Obj {
    /// Starts an empty object.
    pub fn new() -> Self {
        Obj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        escape_into(k, &mut self.buf);
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push('"');
        escape_into(v, &mut self.buf);
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a signed integer field.
    pub fn i64(mut self, k: &str, v: i64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a float field (`null` if not finite).
    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        number(v, &mut self.buf);
        self
    }

    /// Adds a pre-encoded JSON value verbatim (caller guarantees validity).
    pub fn raw(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Closes the object and returns the JSON text (no trailing newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for Obj {
    fn default() -> Self {
        Obj::new()
    }
}

/// Encodes `[[a, b], ...]` pairs as a JSON array of two-element arrays.
pub fn u64_pairs(pairs: &[(u64, u64)]) -> String {
    let mut out = String::from("[");
    for (i, (a, b)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{a},{b}]"));
    }
    out.push(']');
    out
}

/// A recursive-descent JSON syntax checker for the writer half above:
/// validates one complete value (RFC 8259 grammar) and extracts top-level
/// string fields, so the JSONL schema smoke check in `scripts/check.sh`
/// needs no external parser.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos -= usize::from(self.pos > 0);
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    /// Parses a string token, returning its unescaped content.
    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = self
                            .bytes
                            .get(self.pos..self.pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| self.err("bad \\u escape"))?;
                        self.pos += 4;
                        // Surrogates are accepted but replaced: the writer
                        // above never emits them.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control char in string")),
                Some(b) if b < 0x80 => out.push(b as char),
                Some(_) => {
                    // Multi-byte UTF-8: the input is a &str, so the
                    // sequence is valid; copy it through.
                    let start = self.pos - 1;
                    while matches!(self.peek(), Some(c) if c & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected fraction digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected exponent digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        Ok(())
    }

    fn value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => {
                self.object(|_, _| {})?;
                Ok(())
            }
            Some(b'[') => {
                self.pos += 1;
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(());
                }
                loop {
                    self.value()?;
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(()),
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'"') => self.string().map(|_| ()),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(_) => self.number(),
            None => Err(self.err("expected value")),
        }
    }

    /// Parses an object, handing each `(key, value_text_start)` member to
    /// `on_member` after the key is read and before the value is parsed.
    fn object(&mut self, mut on_member: impl FnMut(&str, usize)) -> Result<(), String> {
        self.skip_ws();
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            on_member(&key, self.pos);
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(()),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn finish(&mut self) -> Result<(), String> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(self.err("trailing garbage"))
        }
    }
}

/// Validates that `s` is exactly one syntactically well-formed JSON value.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn validate(s: &str) -> Result<(), String> {
    let mut p = Parser::new(s);
    p.value()?;
    p.finish()
}

/// If `s` is a JSON object whose top-level member `key` is a string,
/// returns its (unescaped) value. `None` for absent keys, non-string
/// values, or malformed input — callers wanting a syntax diagnosis run
/// [`validate`] first.
pub fn top_level_str(s: &str, key: &str) -> Option<String> {
    let mut p = Parser::new(s);
    let mut hits: Vec<usize> = Vec::new();
    p.object(|k, value_at| {
        if k == key {
            hits.push(value_at);
        }
    })
    .ok()?;
    let at = *hits.first()?;
    let mut v = Parser::new(s);
    v.pos = at;
    v.string().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quotes() {
        let mut s = String::new();
        escape_into("a\"b\\c\nd\u{1}", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn object_round_trip_shape() {
        let o = Obj::new()
            .str("type", "counter")
            .u64("value", 42)
            .i64("delta", -3)
            .f64("rate", 1.5)
            .raw("buckets", "[[1,2]]")
            .finish();
        assert_eq!(
            o,
            r#"{"type":"counter","value":42,"delta":-3,"rate":1.5,"buckets":[[1,2]]}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let o = Obj::new()
            .f64("x", f64::NAN)
            .f64("y", f64::INFINITY)
            .finish();
        assert_eq!(o, r#"{"x":null,"y":null}"#);
    }

    #[test]
    fn pair_array_encoding() {
        assert_eq!(u64_pairs(&[(1, 2), (3, 4)]), "[[1,2],[3,4]]");
        assert_eq!(u64_pairs(&[]), "[]");
    }

    #[test]
    fn validator_accepts_everything_the_writer_emits() {
        let line = Obj::new()
            .str("type", "histogram")
            .str("name", "a \"quoted\"\nname")
            .u64("count", 42)
            .i64("delta", -3)
            .f64("rate", 1.5e-3)
            .f64("nan", f64::NAN)
            .raw("buckets", &u64_pairs(&[(16, 2), (17, 1)]))
            .finish();
        validate(&line).unwrap();
        assert_eq!(top_level_str(&line, "type").as_deref(), Some("histogram"));
        assert_eq!(
            top_level_str(&line, "name").as_deref(),
            Some("a \"quoted\"\nname")
        );
        // Non-string / absent members yield None, not a panic.
        assert_eq!(top_level_str(&line, "count"), None);
        assert_eq!(top_level_str(&line, "missing"), None);
        // Nested keys are not top-level keys.
        let nested = r#"{"outer":{"type":"inner"},"type":"real"}"#;
        validate(nested).unwrap();
        assert_eq!(top_level_str(nested, "type").as_deref(), Some("real"));
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "{}}",
            r#"{"a":}"#,
            r#"{"a":1,}"#,
            r#"{"a" 1}"#,
            r#"{"a":01}"#,
            r#"{"a":+1}"#,
            r#"{"a":1.}"#,
            r#"{"a":"unterminated}"#,
            r#"{"a":truth}"#,
            r#"[1,2"#,
            r#"{"a":1} extra"#,
            "{\"a\":\"raw\tcontrol\"}",
        ] {
            assert!(validate(bad).is_err(), "accepted malformed: {bad:?}");
        }
        // Scalars and arrays are valid JSON values in their own right.
        validate("true").unwrap();
        validate("-12.5e2").unwrap();
        validate(" [1, [2, {\"x\": null}]] ").unwrap();
    }
}
