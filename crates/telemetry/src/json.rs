//! Hand-rolled JSON encoding (no serde — the build is offline and the
//! schema is small enough to write by hand).
//!
//! [`Obj`] builds one JSON object as a `String`; callers append the result
//! to a JSON-lines stream, one object per line.

/// Escapes `s` into `out` per RFC 8259 (without surrounding quotes).
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Formats an `f64` as a JSON number (`null` for NaN/infinity, which JSON
/// cannot represent).
pub fn number(v: f64, out: &mut String) {
    if v.is_finite() {
        // `{}` on f64 prints the shortest representation that round-trips.
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// An incremental JSON object builder.
#[derive(Debug)]
pub struct Obj {
    buf: String,
    first: bool,
}

impl Obj {
    /// Starts an empty object.
    pub fn new() -> Self {
        Obj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        escape_into(k, &mut self.buf);
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push('"');
        escape_into(v, &mut self.buf);
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a signed integer field.
    pub fn i64(mut self, k: &str, v: i64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a float field (`null` if not finite).
    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        number(v, &mut self.buf);
        self
    }

    /// Adds a pre-encoded JSON value verbatim (caller guarantees validity).
    pub fn raw(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Closes the object and returns the JSON text (no trailing newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for Obj {
    fn default() -> Self {
        Obj::new()
    }
}

/// Encodes `[[a, b], ...]` pairs as a JSON array of two-element arrays.
pub fn u64_pairs(pairs: &[(u64, u64)]) -> String {
    let mut out = String::from("[");
    for (i, (a, b)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{a},{b}]"));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quotes() {
        let mut s = String::new();
        escape_into("a\"b\\c\nd\u{1}", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn object_round_trip_shape() {
        let o = Obj::new()
            .str("type", "counter")
            .u64("value", 42)
            .i64("delta", -3)
            .f64("rate", 1.5)
            .raw("buckets", "[[1,2]]")
            .finish();
        assert_eq!(
            o,
            r#"{"type":"counter","value":42,"delta":-3,"rate":1.5,"buckets":[[1,2]]}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let o = Obj::new()
            .f64("x", f64::NAN)
            .f64("y", f64::INFINITY)
            .finish();
        assert_eq!(o, r#"{"x":null,"y":null}"#);
    }

    #[test]
    fn pair_array_encoding() {
        assert_eq!(u64_pairs(&[(1, 2), (3, 4)]), "[[1,2],[3,4]]");
        assert_eq!(u64_pairs(&[]), "[]");
    }
}
