//! `carousel-telemetry` — zero-dependency metrics and structured tracing.
//!
//! The paper this workspace reproduces makes *quantitative* claims (repair
//! traffic `d/(d−k+1)`, read parallelism `p` vs `k`, degraded-read
//! penalties); this crate gives every layer of the reproduction one uniform
//! way to report what it actually did:
//!
//! * [`Counter`] / [`Gauge`] — relaxed atomics, saturating adds;
//! * [`Histogram`] — lock-free log-bucketed samples with p50/p95/p99
//!   snapshots (relative error ≤ 1/16);
//! * [`Span`] — RAII wall-clock timers that feed histograms and, when a
//!   sink is installed, stream span-tree JSON lines;
//! * [`trace`] — distributed request tracing: process-unique ids and a
//!   by-value [`trace::TraceCtx`] whose child spans link across the wire;
//! * [`Registry`] — the process-wide name → metric table; hot paths cache
//!   the `&'static` handles it returns;
//! * [`Snapshot`] — a point-in-time copy serializable to JSON-lines by a
//!   hand-rolled writer ([`json`], no serde).
//!
//! # Feature `telemetry`
//!
//! On by default. When disabled (`--no-default-features`), every handle
//! type is a zero-sized no-op — verified by a test — so library crates can
//! instrument hot kernels unconditionally and still offer an untelemetered
//! build with zero overhead.
//!
//! ```
//! let c = telemetry::counter("demo.bytes");
//! c.add(4096);
//! let snap = telemetry::Registry::global().snapshot();
//! let mut out = Vec::new();
//! snap.write_jsonl("demo", &mut out).unwrap();
//! assert!(out.starts_with(b"{\"type\":\"meta\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod snapshot;
pub mod trace;

#[cfg(feature = "telemetry")]
mod enabled;
#[cfg(feature = "telemetry")]
pub use enabled::{
    clear_event_sink, counter, emit_event, event_sink_installed, gauge, histogram, set_event_sink,
    span, Counter, Gauge, Histogram, Registry, Span,
};

#[cfg(not(feature = "telemetry"))]
mod noop;
#[cfg(not(feature = "telemetry"))]
pub use noop::{
    clear_event_sink, counter, emit_event, event_sink_installed, gauge, histogram, set_event_sink,
    span, Counter, Gauge, Histogram, Registry, Span,
};

pub use snapshot::{HistogramSnapshot, Snapshot};

/// True when this build records metrics (the `telemetry` feature is on).
pub const ENABLED: bool = cfg!(feature = "telemetry");

#[cfg(test)]
mod tests {
    #[cfg(not(feature = "telemetry"))]
    use super::*;

    // ------------------------------------------------------------------
    // Feature-independent: the disabled path must be zero-sized.
    // ------------------------------------------------------------------

    #[cfg(not(feature = "telemetry"))]
    #[test]
    // `assert!(!ENABLED)` is deliberately constant: it pins the const to
    // this cfg so the two can never drift apart.
    #[allow(clippy::assertions_on_constants)]
    fn zero_sized_when_disabled() {
        assert_eq!(std::mem::size_of::<Counter>(), 0);
        assert_eq!(std::mem::size_of::<Gauge>(), 0);
        assert_eq!(std::mem::size_of::<Histogram>(), 0);
        assert_eq!(std::mem::size_of::<Span>(), 0);
        assert_eq!(std::mem::size_of::<Registry>(), 0);
        assert_eq!(std::mem::size_of::<trace::TraceId>(), 0);
        assert_eq!(std::mem::size_of::<trace::SpanId>(), 0);
        assert_eq!(std::mem::size_of::<trace::TraceCtx>(), 0);
        assert_eq!(std::mem::size_of::<trace::TraceSpan>(), 0);
        // And the API is callable with no effect.
        let c = counter("disabled.counter");
        c.add(10);
        assert_eq!(c.get(), 0);
        histogram("disabled.hist").record(5);
        assert!(Registry::global().snapshot().counters.is_empty());
        // Tracing neither allocates ids nor extends the wire format.
        let ctx = trace::TraceCtx::root();
        assert_eq!(ctx.wire(), None, "no-op builds never extend a frame");
        let sp = ctx.child("disabled.trace_us");
        assert_eq!(sp.ctx().trace_id().as_u64(), 0);
        let _ = sp;
        // Histogram snapshots merge into a no-op histogram silently.
        let mut donor = HistogramSnapshot::new();
        donor.count = 3;
        histogram("disabled.hist").merge_from(&donor);
        assert_eq!(histogram("disabled.hist").count(), 0);
        assert!(!ENABLED);
    }

    #[cfg(feature = "telemetry")]
    mod live {
        use super::super::*;
        use crate::snapshot::{bucket_index, bucket_lower_bound};

        #[test]
        fn counters_accumulate_and_saturate() {
            let c = Counter::new();
            c.add(5);
            c.inc();
            assert_eq!(c.get(), 6);
            // Saturation: near-max adds pin at u64::MAX, never wrap.
            c.add(u64::MAX);
            assert_eq!(c.get(), u64::MAX);
            c.add(1);
            assert_eq!(c.get(), u64::MAX, "saturated counter must not wrap");
            c.reset();
            assert_eq!(c.get(), 0);
        }

        #[test]
        fn gauges_track_deltas() {
            let g = Gauge::new();
            g.add(3);
            g.add(-5);
            assert_eq!(g.get(), -2);
            g.set(7);
            assert_eq!(g.get(), 7);
        }

        #[test]
        fn histogram_exact_small_values() {
            let h = Histogram::new();
            for v in [0u64, 1, 2, 3, 15] {
                h.record(v);
            }
            let s = h.snapshot();
            assert_eq!(s.count, 5);
            assert_eq!(s.sum, 21);
            assert_eq!(s.min, 0);
            assert_eq!(s.max, 15);
            // Values below 16 have exact buckets: quantiles are exact.
            assert_eq!(s.quantile(0.0), 0);
            assert_eq!(s.p50(), 2);
            assert_eq!(s.quantile(1.0), 15);
        }

        #[test]
        fn histogram_quantiles_match_exact_within_bucket_error() {
            // A known distribution: 1..=10_000 once each. Exact q-quantile
            // of that set is ceil(q * 10_000).
            let h = Histogram::new();
            for v in 1..=10_000u64 {
                h.record(v);
            }
            let s = h.snapshot();
            for (q, exact) in [(0.50, 5_000.0), (0.95, 9_500.0), (0.99, 9_900.0)] {
                let est = s.quantile(q) as f64;
                let rel = (est - exact).abs() / exact;
                assert!(
                    rel <= 1.0 / 16.0,
                    "q={q}: estimate {est} vs exact {exact} (rel err {rel:.4})"
                );
            }
            // A heavily skewed distribution: 99 fast ops, 1 slow outlier.
            let h2 = Histogram::new();
            for _ in 0..99 {
                h2.record(10);
            }
            h2.record(1_000_000);
            let s2 = h2.snapshot();
            assert_eq!(s2.p50(), 10);
            assert_eq!(s2.p95(), 10);
            // p99 of 100 samples is the 99th-ranked value = 10; the outlier
            // only surfaces at p100.
            assert_eq!(s2.p99(), 10);
            assert!(s2.quantile(1.0) > 900_000, "top quantile sees the outlier");
            assert_eq!(s2.max, 1_000_000);
        }

        #[test]
        fn histogram_bucket_boundaries() {
            // Recording exactly at bucket lower bounds keeps them separable.
            let h = Histogram::new();
            h.record(16);
            h.record(17);
            let s = h.snapshot();
            assert_eq!(s.buckets.len(), 2, "16 and 17 are distinct buckets");
            // Boundary arithmetic is consistent both directions.
            for v in [15u64, 16, 31, 32, 33, 1023, 1024, u64::MAX / 2] {
                let i = bucket_index(v);
                assert!(bucket_lower_bound(i) <= v);
                assert!(i + 1 >= crate::snapshot::BUCKETS || bucket_lower_bound(i + 1) > v);
            }
        }

        #[test]
        fn snapshot_merge_is_associative_with_identity() {
            let mk = |values: &[u64]| {
                let h = Histogram::new();
                for &v in values {
                    h.record(v);
                }
                h.snapshot()
            };
            let a = mk(&[1, 2, 3, 500]);
            let b = mk(&[4, 4, 4, 9_000_000]);
            let c = mk(&[77; 10]);
            let ab_c = a.merge(&b).merge(&c);
            let a_bc = a.merge(&b.merge(&c));
            assert_eq!(ab_c, a_bc, "merge must be associative");
            let id = HistogramSnapshot::new();
            assert_eq!(a.merge(&id), a, "empty snapshot is the identity");
            assert_eq!(id.merge(&a), a);
            assert_eq!(ab_c.count, 18);
            assert_eq!(ab_c.min, 1);
            assert_eq!(ab_c.max, 9_000_000);
            // Merging equals recording the union directly.
            let union = mk(&[1, 2, 3, 500, 77, 77, 77, 77, 77, 77, 77, 77, 77, 77]);
            assert_eq!(a.merge(&c), union);
        }

        #[test]
        fn merge_from_matches_snapshot_merge() {
            let a = Histogram::new();
            for v in [1u64, 2, 3, 500, 9_000_000] {
                a.record(v);
            }
            let b = Histogram::new();
            for v in [4u64, 4, 77, 1_000_000_000] {
                b.record(v);
            }
            let expected = a.snapshot().merge(&b.snapshot());
            a.merge_from(&b.snapshot());
            assert_eq!(a.snapshot(), expected, "merge_from == snapshot merge");
            assert_eq!(a.snapshot().p99(), expected.p99());
            // Hostile bucket indices are dropped, the rest still folds in.
            let bogus = HistogramSnapshot {
                count: 1,
                sum: 5,
                min: 5,
                max: 5,
                buckets: vec![(1_000_000, 1)],
            };
            a.merge_from(&bogus);
            let s = a.snapshot();
            assert_eq!(s.count, expected.count + 1);
            let in_buckets: u64 = s.buckets.iter().map(|&(_, c)| c).sum();
            assert_eq!(in_buckets, expected.count, "out-of-range bucket ignored");
        }

        #[test]
        fn registry_returns_stable_handles() {
            let r = Registry::new();
            let c1 = r.counter("stable.counter") as *const Counter;
            let c2 = r.counter("stable.counter") as *const Counter;
            assert_eq!(c1, c2, "same name, same handle");
            r.counter("stable.counter").add(2);
            r.gauge("stable.gauge").set(-4);
            r.histogram("stable.hist").record(100);
            let s = r.snapshot();
            assert_eq!(s.counter("stable.counter"), Some(2));
            assert_eq!(s.gauge("stable.gauge"), Some(-4));
            assert_eq!(s.histogram("stable.hist").unwrap().count, 1);
            r.reset();
            let s = r.snapshot();
            assert_eq!(s.counter("stable.counter"), Some(0));
            assert!(s.histogram("stable.hist").unwrap().is_empty());
        }

        #[test]
        fn jsonl_snapshot_is_parseable_shape() {
            let r = Registry::new();
            r.counter("j.count").add(3);
            r.histogram("j.hist").record(42);
            let mut out = Vec::new();
            r.snapshot().write_jsonl("unit-test", &mut out).unwrap();
            let text = String::from_utf8(out).unwrap();
            let lines: Vec<&str> = text.lines().collect();
            assert_eq!(lines.len(), 3);
            assert!(lines[0].contains(r#""type":"meta""#));
            assert!(lines[0].contains(r#""run":"unit-test""#));
            assert!(lines[1].contains(r#""name":"j.count""#) && lines[1].contains(r#""value":3"#));
            assert!(lines[2].contains(r#""type":"histogram""#));
            assert!(lines[2].contains(r#""count":1"#));
            for l in &lines {
                assert!(l.starts_with('{') && l.ends_with('}'));
            }
        }

        #[test]
        fn counters_since_subtracts_baseline() {
            let r = Registry::new();
            r.counter("d.bytes").add(100);
            let base = r.snapshot();
            r.counter("d.bytes").add(50);
            let now = r.snapshot();
            let deltas = now.counters_since(&base);
            assert_eq!(deltas, vec![("d.bytes".to_string(), 50)]);
        }

        #[test]
        fn spans_record_into_histograms_and_nest() {
            {
                let _outer = span("test.span.outer.ns");
                let _inner = span("test.span.inner.ns");
            }
            let s = Registry::global().snapshot();
            assert_eq!(s.histogram("test.span.outer.ns").unwrap().count, 1);
            assert_eq!(s.histogram("test.span.inner.ns").unwrap().count, 1);
        }

        #[test]
        fn event_sink_streams_span_lines() {
            use std::sync::{Arc, Mutex};

            #[derive(Clone)]
            struct Shared(Arc<Mutex<Vec<u8>>>);
            impl std::io::Write for Shared {
                fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                    self.0.lock().unwrap().extend_from_slice(buf);
                    Ok(buf.len())
                }
                fn flush(&mut self) -> std::io::Result<()> {
                    Ok(())
                }
            }

            let buf = Shared(Arc::new(Mutex::new(Vec::new())));
            set_event_sink(buf.clone());
            {
                let _sp = span("test.sink.span.ns");
            }
            emit_event(json::Obj::new().str("type", "custom").u64("x", 1));
            clear_event_sink();
            let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
            assert!(text.contains(r#""type":"span""#), "{text}");
            assert!(text.contains(r#""name":"test.sink.span.ns""#));
            assert!(text.contains(r#""type":"custom""#));
            // After clearing, events go nowhere.
            let before = buf.0.lock().unwrap().len();
            emit_event(json::Obj::new().str("type", "late"));
            assert_eq!(buf.0.lock().unwrap().len(), before);
        }

        #[test]
        fn f64_recording_clamps_garbage() {
            let h = Histogram::new();
            h.record_f64(-5.0);
            h.record_f64(f64::NAN);
            h.record_f64(2.6);
            let s = h.snapshot();
            assert_eq!(s.count, 3);
            assert_eq!(s.max, 3);
        }
    }
}
