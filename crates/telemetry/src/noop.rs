//! Zero-sized no-op twins, compiled when the `telemetry` feature is off.
//!
//! Every type here is a unit struct and every method an empty inline body,
//! so instrumentation in dependent crates compiles down to nothing. The
//! test `zero_sized_when_disabled` in `lib.rs` pins this property.

use std::io::Write;

use crate::json::Obj;
use crate::snapshot::{HistogramSnapshot, Snapshot};

/// No-op stand-in for the atomic counter.
#[derive(Debug, Default, Clone, Copy)]
pub struct Counter;

impl Counter {
    /// A fresh counter.
    pub const fn new() -> Self {
        Counter
    }
    /// Does nothing.
    #[inline(always)]
    pub fn add(&self, _n: u64) {}
    /// Does nothing.
    #[inline(always)]
    pub fn inc(&self) {}
    /// Always zero.
    #[inline(always)]
    pub fn get(&self) -> u64 {
        0
    }
    /// Does nothing.
    #[inline(always)]
    pub fn reset(&self) {}
}

/// No-op stand-in for the atomic gauge.
#[derive(Debug, Default, Clone, Copy)]
pub struct Gauge;

impl Gauge {
    /// A fresh gauge.
    pub const fn new() -> Self {
        Gauge
    }
    /// Does nothing.
    #[inline(always)]
    pub fn set(&self, _v: i64) {}
    /// Does nothing.
    #[inline(always)]
    pub fn add(&self, _delta: i64) {}
    /// Always zero.
    #[inline(always)]
    pub fn get(&self) -> i64 {
        0
    }
    /// Does nothing.
    #[inline(always)]
    pub fn reset(&self) {}
}

/// No-op stand-in for the histogram.
#[derive(Debug, Default, Clone, Copy)]
pub struct Histogram;

impl Histogram {
    /// A fresh histogram.
    pub const fn new() -> Self {
        Histogram
    }
    /// Does nothing.
    #[inline(always)]
    pub fn record(&self, _v: u64) {}
    /// Does nothing.
    #[inline(always)]
    pub fn record_f64(&self, _v: f64) {}
    /// Always zero.
    #[inline(always)]
    pub fn count(&self) -> u64 {
        0
    }
    /// Always empty.
    #[inline(always)]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot::new()
    }
    /// Does nothing.
    #[inline(always)]
    pub fn merge_from(&self, _snap: &HistogramSnapshot) {}
    /// Does nothing.
    #[inline(always)]
    pub fn reset(&self) {}
}

/// No-op stand-in for the registry.
#[derive(Debug, Default)]
pub struct Registry;

impl Registry {
    /// A fresh registry.
    pub fn new() -> Self {
        Registry
    }
    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: Registry = Registry;
        &GLOBAL
    }
    /// A shared no-op counter.
    pub fn counter(&self, _name: &'static str) -> &'static Counter {
        static NOOP: Counter = Counter;
        &NOOP
    }
    /// A shared no-op gauge.
    pub fn gauge(&self, _name: &'static str) -> &'static Gauge {
        static NOOP: Gauge = Gauge;
        &NOOP
    }
    /// A shared no-op histogram.
    pub fn histogram(&self, _name: &'static str) -> &'static Histogram {
        static NOOP: Histogram = Histogram;
        &NOOP
    }
    /// Always empty.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::new()
    }
    /// Does nothing.
    pub fn reset(&self) {}
}

/// A shared no-op counter.
pub fn counter(_name: &'static str) -> &'static Counter {
    Registry::global().counter(_name)
}

/// A shared no-op gauge.
pub fn gauge(_name: &'static str) -> &'static Gauge {
    Registry::global().gauge(_name)
}

/// A shared no-op histogram.
pub fn histogram(_name: &'static str) -> &'static Histogram {
    Registry::global().histogram(_name)
}

/// Accepts and drops the sink: no events are produced in this build.
pub fn set_event_sink(_w: impl Write + Send + 'static) {}

/// Does nothing.
pub fn clear_event_sink() {}

/// Always false.
pub fn event_sink_installed() -> bool {
    false
}

/// Drops the object unwritten.
pub fn emit_event(_obj: Obj) {}

/// No-op stand-in for the RAII span timer.
#[derive(Debug, Default, Clone, Copy)]
pub struct Span;

impl Span {
    /// Opens a no-op span.
    pub fn enter(_name: &'static str) -> Span {
        Span
    }
    /// Always the empty string.
    pub fn name(&self) -> &'static str {
        ""
    }
    /// Always zero.
    pub fn elapsed_ns(&self) -> u64 {
        0
    }
}

/// Opens a no-op span.
pub fn span(_name: &'static str) -> Span {
    Span
}
