//! The real implementation, compiled when the `telemetry` feature is on.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::Obj;
use crate::snapshot::{bucket_index, HistogramSnapshot, Snapshot, BUCKETS};

/// A monotonically increasing, saturating atomic counter.
///
/// All operations use relaxed ordering: metrics need atomicity, not
/// inter-thread happens-before edges.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero (usable in `static` items).
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n`, saturating at `u64::MAX` instead of wrapping.
    pub fn add(&self, n: u64) {
        if n == 0 {
            return;
        }
        let mut cur = self.value.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(n);
            match self
                .value
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero (used between bench repetitions).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

/// A settable signed atomic gauge.
#[derive(Debug)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub const fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

/// A lock-free log-bucketed histogram of `u64` samples (see
/// [`crate::snapshot`] for the bucketing scheme).
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: Box<[AtomicU64; BUCKETS]>,
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: Box::new([const { AtomicU64::new(0) }; BUCKETS]),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating sum: a wrapped total is worse than a pinned one.
        let mut sum = self.sum.load(Ordering::Relaxed);
        loop {
            let next = sum.saturating_add(v);
            match self
                .sum
                .compare_exchange_weak(sum, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => sum = seen,
            }
        }
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records an `f64` sample, clamping negatives/NaN to 0 and rounding.
    pub fn record_f64(&self, v: f64) {
        let v = if v.is_finite() && v > 0.0 {
            v.round() as u64
        } else {
            0
        };
        self.record(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies the current state into an immutable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u32, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let c = c.load(Ordering::Relaxed);
                (c > 0).then_some((i as u32, c))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Folds a [`HistogramSnapshot`] into this live histogram bucket-wise.
    ///
    /// Counts land in the exact buckets they came from, so merging remote
    /// snapshots (e.g. several nodes' `Stats` replies) into one histogram
    /// keeps the same ≤ 1/16 relative quantile error as recording locally
    /// — p99 resolution survives aggregation. Bucket indices outside the
    /// scheme are ignored rather than trusted.
    pub fn merge_from(&self, snap: &HistogramSnapshot) {
        if snap.count == 0 {
            return;
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        let mut sum = self.sum.load(Ordering::Relaxed);
        loop {
            let next = sum.saturating_add(snap.sum);
            match self
                .sum
                .compare_exchange_weak(sum, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => sum = seen,
            }
        }
        self.min.fetch_min(snap.min, Ordering::Relaxed);
        self.max.fetch_max(snap.max, Ordering::Relaxed);
        for &(i, c) in &snap.buckets {
            if let Some(b) = self.buckets.get(i as usize) {
                b.fetch_add(c, Ordering::Relaxed);
            }
        }
    }

    /// Clears all samples.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .finish()
    }
}

/// The process-wide collection of named metrics.
///
/// Handles are `&'static`: the registry leaks one small allocation per
/// distinct metric name, so hot paths can cache the reference (e.g. in a
/// `LazyLock`) and pay only an atomic op per update.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
}

impl Registry {
    /// A fresh registry (tests; production code uses [`Registry::global`]).
    pub fn new() -> Self {
        Registry::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        let mut map = self.counters.lock().expect("registry poisoned");
        map.entry(name)
            .or_insert_with(|| Box::leak(Box::new(Counter::new())))
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &'static str) -> &'static Gauge {
        let mut map = self.gauges.lock().expect("registry poisoned");
        map.entry(name)
            .or_insert_with(|| Box::leak(Box::new(Gauge::new())))
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &'static str) -> &'static Histogram {
        let mut map = self.histograms.lock().expect("registry poisoned");
        map.entry(name)
            .or_insert_with(|| Box::leak(Box::new(Histogram::new())))
    }

    /// Copies every metric into a [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(n, c)| (n.to_string(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(n, g)| (n.to_string(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(n, h)| (n.to_string(), h.snapshot()))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Resets every metric to its initial state (names stay registered).
    pub fn reset(&self) {
        for c in self.counters.lock().expect("registry poisoned").values() {
            c.reset();
        }
        for g in self.gauges.lock().expect("registry poisoned").values() {
            g.reset();
        }
        for h in self.histograms.lock().expect("registry poisoned").values() {
            h.reset();
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

/// The counter named `name` in the global registry.
pub fn counter(name: &'static str) -> &'static Counter {
    Registry::global().counter(name)
}

/// The gauge named `name` in the global registry.
pub fn gauge(name: &'static str) -> &'static Gauge {
    Registry::global().gauge(name)
}

/// The histogram named `name` in the global registry.
pub fn histogram(name: &'static str) -> &'static Histogram {
    Registry::global().histogram(name)
}

// ---------------------------------------------------------------------------
// Structured event sink (JSON-lines) and span timers.
// ---------------------------------------------------------------------------

static SINK: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);

/// Installs a process-wide JSON-lines event sink. Span completions and
/// [`emit_event`] lines stream here until [`clear_event_sink`] runs.
pub fn set_event_sink(w: impl Write + Send + 'static) {
    *SINK.lock().expect("sink poisoned") = Some(Box::new(w));
}

/// Removes and flushes the process-wide event sink.
pub fn clear_event_sink() {
    if let Some(mut w) = SINK.lock().expect("sink poisoned").take() {
        let _ = w.flush();
    }
}

/// True if an event sink is currently installed.
pub fn event_sink_installed() -> bool {
    SINK.lock().expect("sink poisoned").is_some()
}

/// Writes one pre-built JSON object as a line to the sink, if installed.
/// Write errors are swallowed: telemetry must never fail the workload.
pub fn emit_event(obj: Obj) {
    let mut guard = SINK.lock().expect("sink poisoned");
    if let Some(w) = guard.as_mut() {
        let _ = writeln!(w, "{}", obj.finish());
    }
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// A lightweight RAII span timer.
///
/// On drop it records its wall-clock duration (in nanoseconds) into the
/// global histogram of the same name and, when an event sink is installed,
/// emits a `span` JSON line carrying its position in the per-thread span
/// tree (`depth` and `parent`).
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Instant,
    depth: usize,
    parent: Option<&'static str>,
}

impl Span {
    /// Opens a span; prefer the free function [`span`].
    pub fn enter(name: &'static str) -> Span {
        let (depth, parent) = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied();
            s.push(name);
            (s.len() - 1, parent)
        });
        Span {
            name,
            start: Instant::now(),
            depth,
            parent,
        }
    }

    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Nanoseconds elapsed so far.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let ns = self.elapsed_ns();
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Pop our own frame; defensive about unbalanced drops.
            if s.last() == Some(&self.name) {
                s.pop();
            }
        });
        histogram(self.name).record(ns);
        if event_sink_installed() {
            let mut obj = Obj::new()
                .str("type", "span")
                .str("name", self.name)
                .u64("dur_ns", ns)
                .u64("depth", self.depth as u64);
            if let Some(p) = self.parent {
                obj = obj.str("parent", p);
            }
            emit_event(obj);
        }
    }
}

/// Opens a span timer recording into histogram `name` (unit: nanoseconds).
pub fn span(name: &'static str) -> Span {
    Span::enter(name)
}
