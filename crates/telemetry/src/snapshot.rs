//! Point-in-time views of metrics: histogram snapshots with quantile
//! estimation, and whole-registry snapshots serializable to JSON-lines.
//!
//! These types are real in **both** feature configurations — a build with
//! telemetry disabled still compiles code that writes snapshots; the
//! snapshots are simply empty.

use std::io::{self, Write};

use crate::json::{u64_pairs, Obj};

/// Log-linear bucketing scheme shared by [`crate::Histogram`] and
/// [`HistogramSnapshot`]:
///
/// * values `0..16` land in their own exact bucket;
/// * every power-of-two range `[2^e, 2^(e+1))` with `e >= 4` is split into
///   16 equal sub-buckets, bounding the relative quantile error by 1/16.
pub const BUCKETS: usize = 16 + (64 - 4) * 16;

/// The bucket index a value lands in.
pub fn bucket_index(v: u64) -> usize {
    if v < 16 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as usize; // 2^exp <= v < 2^(exp+1)
        let sub = ((v >> (exp - 4)) & 15) as usize;
        16 + (exp - 4) * 16 + sub
    }
}

/// The smallest value that lands in bucket `i`.
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i < 16 {
        i as u64
    } else {
        let exp = 4 + (i - 16) / 16;
        let sub = ((i - 16) % 16) as u64;
        (1u64 << exp) + sub * (1u64 << (exp - 4))
    }
}

/// The midpoint of bucket `i`, used as its representative value in
/// quantile estimates.
fn bucket_midpoint(i: usize) -> u64 {
    let lo = bucket_lower_bound(i);
    if i < 16 {
        lo
    } else {
        let width = 1u64 << (4 + (i - 16) / 16 - 4);
        lo + width / 2
    }
}

/// An immutable copy of a histogram's state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Per-bucket counts as `(bucket_index, count)`, nonzero entries only,
    /// sorted by index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: Vec::new(),
        }
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) from the buckets.
    ///
    /// The estimate is the midpoint of the bucket holding the rank-`⌈q·n⌉`
    /// value, clamped to the observed `[min, max]`, so the relative error
    /// is bounded by the bucket width (≤ 1/16 above 16).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(i, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return bucket_midpoint(i as usize).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merges two snapshots (e.g. from different shards or runs). This is
    /// associative and commutative, with [`HistogramSnapshot::new`] as the
    /// identity.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets: Vec<(u32, u64)> =
            Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (None, None) => break,
                (Some(&&(i, c)), None) => {
                    buckets.push((i, c));
                    a.next();
                }
                (None, Some(&&(i, c))) => {
                    buckets.push((i, c));
                    b.next();
                }
                (Some(&&(ia, ca)), Some(&&(ib, cb))) => {
                    if ia < ib {
                        buckets.push((ia, ca));
                        a.next();
                    } else if ib < ia {
                        buckets.push((ib, cb));
                        b.next();
                    } else {
                        buckets.push((ia, ca.saturating_add(cb)));
                        a.next();
                        b.next();
                    }
                }
            }
        }
        HistogramSnapshot {
            count: self.count.saturating_add(other.count),
            sum: self.sum.saturating_add(other.sum),
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            buckets,
        }
    }

    /// Encodes this snapshot's fields into an [`Obj`] under way.
    fn encode_into(&self, obj: Obj) -> Obj {
        let pairs: Vec<(u64, u64)> = self
            .buckets
            .iter()
            .map(|&(i, c)| (bucket_lower_bound(i as usize), c))
            .collect();
        obj.u64("count", self.count)
            .u64("sum", self.sum)
            .u64("min", if self.count == 0 { 0 } else { self.min })
            .u64("max", self.max)
            .f64("mean", self.mean())
            .u64("p50", self.p50())
            .u64("p95", self.p95())
            .u64("p99", self.p99())
            .raw("buckets", &u64_pairs(&pairs))
    }
}

/// A point-in-time copy of every metric in a registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Named counters.
    pub counters: Vec<(String, u64)>,
    /// Named gauges.
    pub gauges: Vec<(String, i64)>,
    /// Named histograms.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Snapshot::default()
    }

    /// Looks up a counter by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge by exact name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a histogram by exact name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Counter deltas of `self` relative to `baseline` (counters absent
    /// from the baseline count from zero). Gauges and histograms are taken
    /// from `self` unchanged; histogram *counts* cannot be subtracted
    /// bucket-wise without losing min/max, so diffing histograms means
    /// comparing two snapshot files side by side.
    pub fn counters_since(&self, baseline: &Snapshot) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .map(|(n, v)| {
                let before = baseline.counter(n).unwrap_or(0);
                (n.clone(), v.saturating_sub(before))
            })
            .collect()
    }

    /// Merges another registry snapshot into this one: counters and
    /// gauges are summed by name, histograms merged bucket-wise via
    /// [`HistogramSnapshot::merge`] — so several nodes' `Stats` replies
    /// aggregate into one cluster-wide view without losing p99
    /// resolution. Associative and commutative, with [`Snapshot::new`]
    /// as the identity (up to ordering, which is normalized by name).
    pub fn merge(&self, other: &Snapshot) -> Snapshot {
        use std::collections::BTreeMap;
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        for (n, v) in self.counters.iter().chain(&other.counters) {
            let e = counters.entry(n.clone()).or_insert(0);
            *e = e.saturating_add(*v);
        }
        let mut gauges: BTreeMap<String, i64> = BTreeMap::new();
        for (n, v) in self.gauges.iter().chain(&other.gauges) {
            let e = gauges.entry(n.clone()).or_insert(0);
            *e = e.saturating_add(*v);
        }
        let mut histograms: BTreeMap<String, HistogramSnapshot> = BTreeMap::new();
        for (n, h) in self.histograms.iter().chain(&other.histograms) {
            let merged = match histograms.get(n.as_str()) {
                Some(e) => e.merge(h),
                None => h.clone(),
            };
            histograms.insert(n.clone(), merged);
        }
        Snapshot {
            counters: counters.into_iter().collect(),
            gauges: gauges.into_iter().collect(),
            histograms: histograms.into_iter().collect(),
        }
    }

    /// Writes the snapshot as JSON-lines: one `meta` line, then one line
    /// per metric. `run` labels the emitting program (e.g. `"fig9"`).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_jsonl(&self, run: &str, w: &mut impl Write) -> io::Result<()> {
        let ts = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let meta = Obj::new()
            .str("type", "meta")
            .str("run", run)
            .u64("schema", 1)
            .u64("ts_unix", ts)
            .u64(
                "metrics",
                (self.counters.len() + self.gauges.len() + self.histograms.len()) as u64,
            )
            .finish();
        writeln!(w, "{meta}")?;
        for (name, v) in &self.counters {
            let line = Obj::new()
                .str("type", "counter")
                .str("name", name)
                .u64("value", *v)
                .finish();
            writeln!(w, "{line}")?;
        }
        for (name, v) in &self.gauges {
            let line = Obj::new()
                .str("type", "gauge")
                .str("name", name)
                .i64("value", *v)
                .finish();
            writeln!(w, "{line}")?;
        }
        for (name, h) in &self.histograms {
            let obj = Obj::new().str("type", "histogram").str("name", name);
            writeln!(w, "{}", h.encode_into(obj).finish())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_is_exhaustive_and_monotone() {
        // Exact buckets below 16.
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower_bound(v as usize), v);
        }
        // Lower bounds are the first value mapping into each bucket, and
        // indices are monotone in the value.
        let mut prev = 0;
        for i in 0..BUCKETS {
            let lo = bucket_lower_bound(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            assert!(i == 0 || lo > prev);
            prev = lo;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn registry_snapshots_merge_by_name() {
        let h = |values: &[u64]| {
            let mut s = HistogramSnapshot::new();
            for &v in values {
                s = s.merge(&HistogramSnapshot {
                    count: 1,
                    sum: v,
                    min: v,
                    max: v,
                    buckets: vec![(bucket_index(v) as u32, 1)],
                });
            }
            s
        };
        let a = Snapshot {
            counters: vec![("bytes".into(), 100), ("only.a".into(), 7)],
            gauges: vec![("inflight".into(), 3)],
            histograms: vec![("lat_us".into(), h(&[10, 2_000]))],
        };
        let b = Snapshot {
            counters: vec![("bytes".into(), 50)],
            gauges: vec![("inflight".into(), -1), ("only.b".into(), 4)],
            histograms: vec![("lat_us".into(), h(&[30_000])), ("other".into(), h(&[1]))],
        };
        let m = a.merge(&b);
        assert_eq!(m.counter("bytes"), Some(150));
        assert_eq!(m.counter("only.a"), Some(7));
        assert_eq!(m.gauge("inflight"), Some(2));
        assert_eq!(m.gauge("only.b"), Some(4));
        let lat = m.histogram("lat_us").unwrap();
        assert_eq!(lat.count, 3);
        assert_eq!(lat.min, 10);
        assert_eq!(lat.max, 30_000);
        assert_eq!(m.histogram("other").unwrap().count, 1);
        // Commutative, and the empty snapshot is the identity (merge
        // normalizes ordering by name, so direct equality holds).
        assert_eq!(m, b.merge(&a));
        assert_eq!(
            a.merge(&Snapshot::new()),
            a.merge(&Snapshot::new()).merge(&Snapshot::new())
        );
        // min of an all-empty histogram merge stays the identity, not 0.
        let empty = Snapshot {
            histograms: vec![("lat_us".into(), HistogramSnapshot::new())],
            ..Snapshot::new()
        };
        assert_eq!(
            empty.merge(&empty).histogram("lat_us").unwrap().min,
            u64::MAX
        );
    }

    #[test]
    fn boundary_values_fall_in_the_right_bucket() {
        // 2^e boundaries open a new bucket; 2^e - 1 closes the previous one.
        for e in 5..63 {
            let at = bucket_index(1u64 << e);
            let below = bucket_index((1u64 << e) - 1);
            assert_eq!(at, below + 1, "boundary at 2^{e}");
            assert_eq!(bucket_lower_bound(at), 1u64 << e);
        }
        // Sub-bucket boundaries within [32, 64): width 2.
        assert_eq!(bucket_index(32), bucket_index(33));
        assert_ne!(bucket_index(33), bucket_index(34));
    }
}
