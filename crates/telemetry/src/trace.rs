//! Distributed request tracing: process-unique ids, a by-value
//! [`TraceCtx`], and RAII child spans that emit `{"type":"trace",...}`
//! JSON lines with parent links into the event sink.
//!
//! Unlike [`crate::Span`] (whose parent links are *names* on a per-thread
//! stack), trace spans carry numeric ids that survive a trip over the
//! wire: a client threads its `TraceCtx` into each request frame, the
//! serving node adopts it, and the node's spans land in the same trace so
//! a whole `get_file` can be reassembled from the JSON-lines stream.
//!
//! Ids are `(pid << 32) | seq` from a process-local counter — unique
//! across the processes of a loopback cluster without any global
//! randomness. With the `telemetry` feature off every type here is a
//! zero-sized no-op and [`TraceCtx::wire`] returns `None`, so frames are
//! never extended (pinned by `zero_sized_when_disabled`).

#[cfg(feature = "telemetry")]
mod real {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{Duration, Instant};

    use crate::json::Obj;
    use crate::{emit_event, event_sink_installed, histogram};

    /// A fresh process-unique nonzero id: high 32 bits are the PID, low
    /// 32 bits a sequence number (0 is reserved for "absent").
    fn next_id() -> u64 {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        loop {
            let seq = NEXT.fetch_add(1, Ordering::Relaxed);
            let id = ((std::process::id() as u64) << 32) ^ seq;
            if id != 0 {
                return id;
            }
        }
    }

    /// Identifies one end-to-end request across every process it touches.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub struct TraceId(pub u64);

    impl TraceId {
        /// The raw id (nonzero for a live trace).
        pub fn as_u64(self) -> u64 {
            self.0
        }
    }

    /// Identifies one timed span within a trace.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub struct SpanId(pub u64);

    impl SpanId {
        /// The raw id (0 means "no span": the root of a trace).
        pub fn as_u64(self) -> u64 {
            self.0
        }
    }

    /// A by-value trace context: which trace we are in and which span is
    /// the current parent. `Copy`, 16 bytes — thread it through calls and
    /// closures freely.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct TraceCtx {
        trace: u64,
        span: u64,
    }

    impl TraceCtx {
        /// Starts a brand-new trace with no parent span.
        pub fn root() -> TraceCtx {
            TraceCtx {
                trace: next_id(),
                span: 0,
            }
        }

        /// Adopts a context received over the wire as `(trace, span)`
        /// raw ids; `None` (or a zero trace id) starts a fresh root —
        /// requests from peers too old to propagate a context still get
        /// locally coherent spans.
        pub fn adopt(wire: Option<(u64, u64)>) -> TraceCtx {
            match wire {
                Some((trace, span)) if trace != 0 => TraceCtx { trace, span },
                _ => TraceCtx::root(),
            }
        }

        /// The raw `(trace, span)` pair to stamp on an outgoing frame.
        /// `None` when this build does not trace (feature off).
        pub fn wire(&self) -> Option<(u64, u64)> {
            Some((self.trace, self.span))
        }

        /// The trace id.
        pub fn trace_id(&self) -> TraceId {
            TraceId(self.trace)
        }

        /// The current parent span id (0 at the root).
        pub fn span_id(&self) -> SpanId {
            SpanId(self.span)
        }

        /// Opens a timed child span. On drop it records its duration in
        /// **microseconds** into the global histogram `name` and, when an
        /// event sink is installed, emits a `trace` JSON line linking it
        /// to this context's span.
        pub fn child(&self, name: &'static str) -> TraceSpan {
            TraceSpan {
                name,
                trace: self.trace,
                span: next_id(),
                parent: self.span,
                start: Instant::now(),
            }
        }

        /// Records an already-measured child span (e.g. queue wait timed
        /// retroactively once service starts): histogram `name` gets the
        /// duration in microseconds and a completed `trace` line is
        /// emitted under this context.
        pub fn span_with(&self, name: &'static str, dur: Duration) {
            emit_trace(name, self.trace, next_id(), self.span, dur);
        }
    }

    /// An RAII timed span inside a trace; created by [`TraceCtx::child`].
    #[derive(Debug)]
    pub struct TraceSpan {
        name: &'static str,
        trace: u64,
        span: u64,
        parent: u64,
        start: Instant,
    }

    impl TraceSpan {
        /// The context for work nested under this span: same trace, this
        /// span as the parent. Also the value to send over the wire so a
        /// remote peer's spans link here.
        pub fn ctx(&self) -> TraceCtx {
            TraceCtx {
                trace: self.trace,
                span: self.span,
            }
        }

        /// The span's histogram name.
        pub fn name(&self) -> &'static str {
            self.name
        }
    }

    impl Drop for TraceSpan {
        fn drop(&mut self) {
            emit_trace(
                self.name,
                self.trace,
                self.span,
                self.parent,
                self.start.elapsed(),
            );
        }
    }

    fn emit_trace(name: &'static str, trace: u64, span: u64, parent: u64, dur: Duration) {
        let us = dur.as_micros().min(u64::MAX as u128) as u64;
        histogram(name).record(us);
        if event_sink_installed() {
            let mut obj = Obj::new()
                .str("type", "trace")
                .str("name", name)
                .u64("trace", trace)
                .u64("span", span)
                .u64("dur_us", us);
            if parent != 0 {
                obj = obj.u64("parent", parent);
            }
            emit_event(obj);
        }
    }
}

#[cfg(feature = "telemetry")]
pub use real::{SpanId, TraceCtx, TraceId, TraceSpan};

#[cfg(not(feature = "telemetry"))]
mod disabled {
    use std::time::Duration;

    /// No-op stand-in for the trace id.
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
    pub struct TraceId;

    impl TraceId {
        /// Always zero.
        #[inline(always)]
        pub fn as_u64(self) -> u64 {
            0
        }
    }

    /// No-op stand-in for the span id.
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
    pub struct SpanId;

    impl SpanId {
        /// Always zero.
        #[inline(always)]
        pub fn as_u64(self) -> u64 {
            0
        }
    }

    /// No-op stand-in for the trace context.
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    pub struct TraceCtx;

    impl TraceCtx {
        /// A no-op context.
        #[inline(always)]
        pub fn root() -> TraceCtx {
            TraceCtx
        }
        /// Ignores the wire value.
        #[inline(always)]
        pub fn adopt(_wire: Option<(u64, u64)>) -> TraceCtx {
            TraceCtx
        }
        /// Always `None`: untraced builds never extend a frame.
        #[inline(always)]
        pub fn wire(&self) -> Option<(u64, u64)> {
            None
        }
        /// A no-op id.
        #[inline(always)]
        pub fn trace_id(&self) -> TraceId {
            TraceId
        }
        /// A no-op id.
        #[inline(always)]
        pub fn span_id(&self) -> SpanId {
            SpanId
        }
        /// A no-op span.
        #[inline(always)]
        pub fn child(&self, _name: &'static str) -> TraceSpan {
            TraceSpan
        }
        /// Does nothing.
        #[inline(always)]
        pub fn span_with(&self, _name: &'static str, _dur: Duration) {}
    }

    /// No-op stand-in for the RAII trace span.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct TraceSpan;

    impl TraceSpan {
        /// A no-op context.
        #[inline(always)]
        pub fn ctx(&self) -> TraceCtx {
            TraceCtx
        }
        /// Always the empty string.
        #[inline(always)]
        pub fn name(&self) -> &'static str {
            ""
        }
    }
}

#[cfg(not(feature = "telemetry"))]
pub use disabled::{SpanId, TraceCtx, TraceId, TraceSpan};

#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let ctx = TraceCtx::root();
            let id = ctx.trace_id().as_u64();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "trace ids must be unique");
        }
    }

    #[test]
    fn wire_roundtrip_preserves_ids() {
        let root = TraceCtx::root();
        let span = root.child("trace.test.child_us");
        let sent = span.ctx().wire().expect("enabled builds carry a ctx");
        let adopted = TraceCtx::adopt(Some(sent));
        assert_eq!(adopted.trace_id(), root.trace_id());
        assert_eq!(adopted.span_id().as_u64(), sent.1);
        // A zero trace id on the wire falls back to a fresh root.
        let fresh = TraceCtx::adopt(Some((0, 77)));
        assert_ne!(fresh.trace_id().as_u64(), 0);
        assert_eq!(fresh.span_id().as_u64(), 0);
    }

    #[test]
    fn child_spans_emit_parent_links_and_feed_histograms() {
        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = Shared(Arc::new(Mutex::new(Vec::new())));
        crate::set_event_sink(buf.clone());
        let root = TraceCtx::root();
        let outer = root.child("trace.test.outer_us");
        let outer_id = outer.ctx().span_id().as_u64();
        {
            let _inner = outer.ctx().child("trace.test.inner_us");
        }
        outer
            .ctx()
            .span_with("trace.test.queue_us", std::time::Duration::from_micros(25));
        drop(outer);
        crate::clear_event_sink();

        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let trace_key = format!("\"trace\":{}", root.trace_id().as_u64());
        let parent_key = format!("\"parent\":{outer_id}");
        for name in [
            "trace.test.outer_us",
            "trace.test.inner_us",
            "trace.test.queue_us",
        ] {
            let line = text
                .lines()
                .find(|l| l.contains(&format!("\"name\":\"{name}\"")))
                .unwrap_or_else(|| panic!("no trace line for {name} in {text}"));
            assert!(line.contains("\"type\":\"trace\""), "{line}");
            assert!(line.contains(&trace_key), "{line}");
        }
        // Children link to the outer span; the outer span is a trace root.
        for name in ["trace.test.inner_us", "trace.test.queue_us"] {
            let line = text
                .lines()
                .find(|l| l.contains(&format!("\"name\":\"{name}\"")))
                .unwrap();
            assert!(line.contains(&parent_key), "{line}");
        }
        let outer_line = text
            .lines()
            .find(|l| l.contains("\"name\":\"trace.test.outer_us\""))
            .unwrap();
        assert!(!outer_line.contains("\"parent\":"), "{outer_line}");
        // Durations also landed in the same-named histograms; the
        // retroactive span recorded its given 25 µs.
        let snap = crate::Registry::global().snapshot();
        assert_eq!(snap.histogram("trace.test.outer_us").unwrap().count, 1);
        assert_eq!(snap.histogram("trace.test.inner_us").unwrap().count, 1);
        let queued = snap.histogram("trace.test.queue_us").unwrap();
        assert_eq!(queued.count, 1);
        assert_eq!(queued.sum, 25);
    }
}
