//! The transport abstraction: everything the executor needs from a place
//! that holds encoded blocks.
//!
//! A [`BlockSource`] serves one stripe. Implementations in this workspace:
//! [`MemorySource`] (blocks in RAM — the `filestore` backend), the
//! simulated datanode store in `dfs`, and the TCP client in `cluster`.
//! The contract that makes replanning work: *expected* failures (a dead
//! node, a missing block, a truncated payload) are reported as
//! [`Fetch::Unavailable`], not as `Err` — `Err` is reserved for faults the
//! executor cannot route around (protocol violations, local I/O errors).
//!
//! Fetches come in two shapes: the scalar [`BlockSource::fetch_units`] /
//! [`BlockSource::repair_read`] calls, and the batched
//! [`BlockSource::fetch_batch`], which hands a transport *every* request
//! of one plan at once so it can fan them out to distinct nodes
//! concurrently. The default batch implementation loops over the scalar
//! calls, so the two shapes are semantically interchangeable — a property
//! the consistency proptests pin down.

use erasure::HelperTask;

/// Result of asking a source for bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fetch {
    /// The requested payload, exactly as long as requested.
    Data(Vec<u8>),
    /// The node could not serve the request (dead, missing block…); the
    /// executor will drop it from the availability set and replan.
    Unavailable,
}

/// One request of a batched fetch — the unit the executor hands to
/// [`BlockSource::fetch_batch`]. Each request targets one node; a plan's
/// batch never addresses the same node twice, so a transport may serve
/// every request of a batch concurrently.
#[derive(Debug, Clone)]
pub enum BatchRequest<'a> {
    /// Fetch the listed stored units of `node`, concatenated in order —
    /// the batched form of [`BlockSource::fetch_units`].
    Units {
        /// The node (block slot) to read from.
        node: usize,
        /// Stored unit indices, in the order wanted back.
        units: Vec<usize>,
    },
    /// Helper-side repair read of `node` under `task` — the batched form
    /// of [`BlockSource::repair_read`].
    Repair {
        /// The helper node to read from.
        node: usize,
        /// The helper's `β × sub` coefficient task.
        task: &'a HelperTask,
    },
}

impl BatchRequest<'_> {
    /// The node this request targets.
    pub fn node(&self) -> usize {
        match self {
            BatchRequest::Units { node, .. } | BatchRequest::Repair { node, .. } => *node,
        }
    }
}

/// One stripe's worth of remotely (or locally) stored blocks.
pub trait BlockSource {
    /// Transport-fatal error type (never used for a merely-dead node).
    type Error;

    /// Number of block slots in the stripe (`n`).
    fn block_count(&self) -> usize;

    /// Width of one stored unit in bytes (`block_bytes / sub`).
    fn unit_bytes(&self) -> usize;

    /// Blocks currently believed readable. The executor plans against this
    /// set and shrinks it as fetches fail.
    fn available(&mut self) -> Vec<usize>;

    /// Fetches the given stored units of `node`, concatenated in order;
    /// each unit is [`BlockSource::unit_bytes`] long.
    ///
    /// # Errors
    ///
    /// Only for transport-fatal faults; an unreachable node is
    /// `Ok(Fetch::Unavailable)`.
    fn fetch_units(&mut self, node: usize, units: &[usize]) -> Result<Fetch, Self::Error>;

    /// Helper-side repair read: applies `task`'s `β × sub` coefficient
    /// matrix to `node`'s block and returns the `β·w`-byte payload. The
    /// default fetches the whole block and combines locally; transports
    /// with compute at the node (the cluster's `RepairRead`) push the
    /// matrix down so only `β·w` bytes cross the wire.
    ///
    /// # Errors
    ///
    /// Only for transport-fatal faults.
    fn repair_read(&mut self, node: usize, task: &HelperTask) -> Result<Fetch, Self::Error> {
        let sub = task.coeffs.cols();
        let units: Vec<usize> = (0..sub).collect();
        match self.fetch_units(node, &units)? {
            Fetch::Data(block) => Ok(task.run(&block).map_or(Fetch::Unavailable, Fetch::Data)),
            Fetch::Unavailable => Ok(Fetch::Unavailable),
        }
    }

    /// Serves every request of one plan in a single call.
    ///
    /// The contract, which the default sequential loop realizes trivially
    /// and which every override must preserve:
    ///
    /// * **ordering** — the result has exactly one [`Fetch`] per request,
    ///   at the request's index;
    /// * **partial failure** — a node that cannot serve yields
    ///   [`Fetch::Unavailable`] *at its slot* without disturbing the other
    ///   requests; the executor collects every failed slot of the batch
    ///   and replans once around all of them;
    /// * **fatal failure** — `Err` aborts the whole batch, exactly as a
    ///   scalar `Err` aborts the operation.
    ///
    /// Transports whose requests leave the process (the TCP cluster)
    /// override this to fan the batch out to all nodes concurrently —
    /// that is where planned parallelism becomes wall-clock parallelism.
    ///
    /// # Errors
    ///
    /// Only for transport-fatal faults.
    fn fetch_batch(&mut self, requests: &[BatchRequest<'_>]) -> Result<Vec<Fetch>, Self::Error> {
        requests
            .iter()
            .map(|request| match request {
                BatchRequest::Units { node, units } => self.fetch_units(*node, units),
                BatchRequest::Repair { node, task } => self.repair_read(*node, task),
            })
            .collect()
    }
}

/// A [`BlockSource`] over blocks already in memory — the `filestore`
/// transport, and the reference implementation the consistency proptests
/// compare the real transports against.
#[derive(Debug)]
pub struct MemorySource<'a> {
    blocks: Vec<Option<&'a [u8]>>,
    sub: usize,
    unit_bytes: usize,
}

impl<'a> MemorySource<'a> {
    /// Wraps one stripe's blocks (`None` = lost) with sub-packetization
    /// `sub`. All present blocks must share one length divisible by `sub`.
    pub fn new(blocks: Vec<Option<&'a [u8]>>, sub: usize) -> Self {
        let block_bytes = blocks.iter().flatten().next().map_or(0, |b| b.len());
        MemorySource {
            blocks,
            sub,
            unit_bytes: block_bytes / sub.max(1),
        }
    }

    /// The stored block at `node`, if present and well-formed.
    fn whole_block(&self, node: usize) -> Option<&'a [u8]> {
        let block = self.blocks.get(node).copied().flatten()?;
        (block.len() == self.sub * self.unit_bytes).then_some(block)
    }

    /// Serves one unit-fetch request without going through `&mut self`.
    fn serve_units(&self, node: usize, units: &[usize]) -> Fetch {
        let Some(block) = self.whole_block(node) else {
            return Fetch::Unavailable;
        };
        let w = self.unit_bytes;
        let mut out = Vec::with_capacity(units.len() * w);
        for &u in units {
            if u >= self.sub {
                return Fetch::Unavailable;
            }
            out.extend_from_slice(&block[u * w..(u + 1) * w]);
        }
        Fetch::Data(out)
    }
}

impl BlockSource for MemorySource<'_> {
    type Error = std::convert::Infallible;

    fn block_count(&self) -> usize {
        self.blocks.len()
    }

    fn unit_bytes(&self) -> usize {
        self.unit_bytes
    }

    fn available(&mut self) -> Vec<usize> {
        (0..self.blocks.len())
            .filter(|&i| self.blocks[i].is_some())
            .collect()
    }

    fn fetch_units(&mut self, node: usize, units: &[usize]) -> Result<Fetch, Self::Error> {
        Ok(self.serve_units(node, units))
    }

    /// Native batch entry: every block is already in memory, so the whole
    /// batch is answered in one pass with no per-request dispatch. Repair
    /// requests run the helper task directly on the stored block slice,
    /// skipping the default path's intermediate block copy.
    fn fetch_batch(&mut self, requests: &[BatchRequest<'_>]) -> Result<Vec<Fetch>, Self::Error> {
        Ok(requests
            .iter()
            .map(|request| match request {
                BatchRequest::Units { node, units } => self.serve_units(*node, units),
                BatchRequest::Repair { node, task } => match self.whole_block(*node) {
                    Some(block) => task.run(block).map_or(Fetch::Unavailable, Fetch::Data),
                    None => Fetch::Unavailable,
                },
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_source_serves_units_and_reports_losses() {
        let a = [1u8, 2, 3, 4];
        let b = [5u8, 6, 7, 8];
        let mut src = MemorySource::new(vec![Some(&a[..]), None, Some(&b[..])], 2);
        assert_eq!(src.block_count(), 3);
        assert_eq!(src.unit_bytes(), 2);
        assert_eq!(src.available(), vec![0, 2]);
        assert_eq!(
            src.fetch_units(0, &[1, 0]).unwrap(),
            Fetch::Data(vec![3, 4, 1, 2])
        );
        assert_eq!(src.fetch_units(1, &[0]).unwrap(), Fetch::Unavailable);
        assert_eq!(src.fetch_units(2, &[7]).unwrap(), Fetch::Unavailable);
    }

    #[test]
    fn batch_preserves_order_and_isolates_failures() {
        let a = [1u8, 2, 3, 4];
        let b = [5u8, 6, 7, 8];
        let mut src = MemorySource::new(vec![Some(&a[..]), None, Some(&b[..])], 2);
        let requests = vec![
            BatchRequest::Units {
                node: 2,
                units: vec![0],
            },
            BatchRequest::Units {
                node: 1,
                units: vec![0],
            },
            BatchRequest::Units {
                node: 0,
                units: vec![1, 0],
            },
        ];
        assert_eq!(requests[1].node(), 1);
        let fetches = src.fetch_batch(&requests).unwrap();
        assert_eq!(
            fetches,
            vec![
                Fetch::Data(vec![5, 6]),
                Fetch::Unavailable,
                Fetch::Data(vec![3, 4, 1, 2]),
            ]
        );
    }
}
