//! The transport abstraction: everything the executor needs from a place
//! that holds encoded blocks.
//!
//! A [`BlockSource`] serves one stripe. Implementations in this workspace:
//! [`MemorySource`] (blocks in RAM — the `filestore` backend), the
//! simulated datanode store in `dfs`, and the TCP client in `cluster`.
//! The contract that makes replanning work: *expected* failures (a dead
//! node, a missing block, a truncated payload) are reported as
//! [`Fetch::Unavailable`], not as `Err` — `Err` is reserved for faults the
//! executor cannot route around (protocol violations, local I/O errors).

use erasure::HelperTask;

/// Result of asking a source for bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fetch {
    /// The requested payload, exactly as long as requested.
    Data(Vec<u8>),
    /// The node could not serve the request (dead, missing block…); the
    /// executor will drop it from the availability set and replan.
    Unavailable,
}

/// One stripe's worth of remotely (or locally) stored blocks.
pub trait BlockSource {
    /// Transport-fatal error type (never used for a merely-dead node).
    type Error;

    /// Number of block slots in the stripe (`n`).
    fn block_count(&self) -> usize;

    /// Width of one stored unit in bytes (`block_bytes / sub`).
    fn unit_bytes(&self) -> usize;

    /// Blocks currently believed readable. The executor plans against this
    /// set and shrinks it as fetches fail.
    fn available(&mut self) -> Vec<usize>;

    /// Fetches the given stored units of `node`, concatenated in order;
    /// each unit is [`BlockSource::unit_bytes`] long.
    ///
    /// # Errors
    ///
    /// Only for transport-fatal faults; an unreachable node is
    /// `Ok(Fetch::Unavailable)`.
    fn fetch_units(&mut self, node: usize, units: &[usize]) -> Result<Fetch, Self::Error>;

    /// Helper-side repair read: applies `task`'s `β × sub` coefficient
    /// matrix to `node`'s block and returns the `β·w`-byte payload. The
    /// default fetches the whole block and combines locally; transports
    /// with compute at the node (the cluster's `RepairRead`) push the
    /// matrix down so only `β·w` bytes cross the wire.
    ///
    /// # Errors
    ///
    /// Only for transport-fatal faults.
    fn repair_read(&mut self, node: usize, task: &HelperTask) -> Result<Fetch, Self::Error> {
        let sub = task.coeffs.cols();
        let units: Vec<usize> = (0..sub).collect();
        match self.fetch_units(node, &units)? {
            Fetch::Data(block) => Ok(task.run(&block).map_or(Fetch::Unavailable, Fetch::Data)),
            Fetch::Unavailable => Ok(Fetch::Unavailable),
        }
    }
}

/// A [`BlockSource`] over blocks already in memory — the `filestore`
/// transport, and the reference implementation the consistency proptests
/// compare the real transports against.
#[derive(Debug)]
pub struct MemorySource<'a> {
    blocks: Vec<Option<&'a [u8]>>,
    sub: usize,
    unit_bytes: usize,
}

impl<'a> MemorySource<'a> {
    /// Wraps one stripe's blocks (`None` = lost) with sub-packetization
    /// `sub`. All present blocks must share one length divisible by `sub`.
    pub fn new(blocks: Vec<Option<&'a [u8]>>, sub: usize) -> Self {
        let block_bytes = blocks.iter().flatten().next().map_or(0, |b| b.len());
        MemorySource {
            blocks,
            sub,
            unit_bytes: block_bytes / sub.max(1),
        }
    }
}

impl BlockSource for MemorySource<'_> {
    type Error = std::convert::Infallible;

    fn block_count(&self) -> usize {
        self.blocks.len()
    }

    fn unit_bytes(&self) -> usize {
        self.unit_bytes
    }

    fn available(&mut self) -> Vec<usize> {
        (0..self.blocks.len())
            .filter(|&i| self.blocks[i].is_some())
            .collect()
    }

    fn fetch_units(&mut self, node: usize, units: &[usize]) -> Result<Fetch, Self::Error> {
        let Some(block) = self.blocks.get(node).copied().flatten() else {
            return Ok(Fetch::Unavailable);
        };
        let w = self.unit_bytes;
        if block.len() != self.sub * w {
            return Ok(Fetch::Unavailable);
        }
        let mut out = Vec::with_capacity(units.len() * w);
        for &u in units {
            if u >= self.sub {
                return Ok(Fetch::Unavailable);
            }
            out.extend_from_slice(&block[u * w..(u + 1) * w]);
        }
        Ok(Fetch::Data(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_source_serves_units_and_reports_losses() {
        let a = [1u8, 2, 3, 4];
        let b = [5u8, 6, 7, 8];
        let mut src = MemorySource::new(vec![Some(&a[..]), None, Some(&b[..])], 2);
        assert_eq!(src.block_count(), 3);
        assert_eq!(src.unit_bytes(), 2);
        assert_eq!(src.available(), vec![0, 2]);
        assert_eq!(
            src.fetch_units(0, &[1, 0]).unwrap(),
            Fetch::Data(vec![3, 4, 1, 2])
        );
        assert_eq!(src.fetch_units(1, &[0]).unwrap(), Fetch::Unavailable);
        assert_eq!(src.fetch_units(2, &[7]).unwrap(), Fetch::Unavailable);
    }
}
