//! Memoized plans keyed by availability pattern.
//!
//! Building a decode or repair plan runs a Gaussian elimination; a
//! 1000-stripe degraded file read under one failure pattern needs exactly
//! one. The cache is availability-keyed (order-insensitive), FIFO-evicting —
//! degraded clusters see a handful of live-set combinations, so anything
//! smarter buys little — and shared behind `Arc` so parallel decode workers
//! hit the same entries.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, LazyLock, Mutex};

use erasure::CodeError;

use crate::plan::{DegradedPlan, ReadPlan, RepairPlan};
use crate::AccessCode;

static CACHE_HITS: LazyLock<&'static telemetry::Counter> =
    LazyLock::new(|| telemetry::counter("access.plan.cache.hit"));
static CACHE_MISSES: LazyLock<&'static telemetry::Counter> =
    LazyLock::new(|| telemetry::counter("access.plan.cache.miss"));

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Read,
    Degraded,
    Repair,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Key {
    code: String,
    kind: Kind,
    /// Sorted availability (read/degraded) or helper (repair) set.
    nodes: Vec<usize>,
    /// Degraded target or repair failed index; unused for reads.
    extra: usize,
}

#[derive(Debug, Clone)]
enum Entry {
    Read(Arc<ReadPlan>),
    Degraded(Arc<DegradedPlan>),
    Repair(Arc<RepairPlan>),
}

/// A bounded, thread-safe store of access plans keyed by
/// `(code, availability pattern)`.
///
/// Hit/miss totals are tracked both as local counters (always available,
/// even with telemetry compiled out) and as the `access.plan.cache.hit` /
/// `access.plan.cache.miss` telemetry counters.
///
/// # Examples
///
/// ```
/// use access::PlanCache;
/// use carousel::Carousel;
///
/// let code = Carousel::new(6, 3, 3, 6)?;
/// let cache = PlanCache::new(8);
/// let available: Vec<usize> = (1..6).collect();
/// let a = cache.read_plan(&code, &available)?;
/// let b = cache.read_plan(&code, &[5, 4, 3, 2, 1])?; // same set, cached
/// assert_eq!(a.sources(), b.sources());
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// # Ok::<(), erasure::CodeError>(())
/// ```
#[derive(Debug)]
pub struct PlanCache {
    /// Zero means pass-through: every call builds a fresh plan.
    capacity: usize,
    entries: Mutex<VecDeque<(Key, Entry)>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` plans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — use [`PlanCache::disabled`] for a
    /// pass-through cache.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        PlanCache {
            capacity,
            entries: Mutex::new(VecDeque::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A cache that never stores anything: every request builds a fresh
    /// plan (and counts as a miss). The baseline for cache-equivalence
    /// tests.
    pub fn disabled() -> Self {
        PlanCache {
            capacity: 0,
            entries: Mutex::new(VecDeque::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// `false` for a [`PlanCache::disabled`] pass-through cache.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("plan cache poisoned").len()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Requests served from cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that built a fresh plan.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Fraction of requests served from cache (0.0 when untouched).
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits(), self.misses());
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// The stripe-read plan for this availability set, built on a miss.
    ///
    /// # Errors
    ///
    /// Propagates [`ReadPlan::plan`] failures (never cached).
    pub fn read_plan(
        &self,
        code: &dyn AccessCode,
        available: &[usize],
    ) -> Result<Arc<ReadPlan>, CodeError> {
        let key = self.key(code, Kind::Read, available, 0);
        let entry = self.lookup_or(key, || {
            Ok(Entry::Read(Arc::new(ReadPlan::plan(code, available)?)))
        })?;
        match entry {
            Entry::Read(plan) => Ok(plan),
            _ => unreachable!("read key maps to read entry"),
        }
    }

    /// The degraded block-region plan for `(target, availability)`, built on
    /// a miss.
    ///
    /// # Errors
    ///
    /// Propagates [`DegradedPlan::plan`] failures (never cached).
    pub fn degraded_plan(
        &self,
        code: &dyn AccessCode,
        target: usize,
        available: &[usize],
    ) -> Result<Arc<DegradedPlan>, CodeError> {
        let key = self.key(code, Kind::Degraded, available, target);
        let entry = self.lookup_or(key, || {
            Ok(Entry::Degraded(Arc::new(DegradedPlan::plan(
                code, target, available,
            )?)))
        })?;
        match entry {
            Entry::Degraded(plan) => Ok(plan),
            _ => unreachable!("degraded key maps to degraded entry"),
        }
    }

    /// The repair plan for `(failed, helper set)`, built on a miss. The
    /// helper set is canonicalized to ascending order — the plan's tasks
    /// come back sorted by helper index regardless of input order.
    ///
    /// # Errors
    ///
    /// Propagates [`RepairPlan::plan`] failures (never cached).
    pub fn repair_plan(
        &self,
        code: &dyn AccessCode,
        failed: usize,
        helpers: &[usize],
    ) -> Result<Arc<RepairPlan>, CodeError> {
        let mut sorted = helpers.to_vec();
        sorted.sort_unstable();
        let key = self.key(code, Kind::Repair, &sorted, failed);
        let entry = self.lookup_or(key, || {
            Ok(Entry::Repair(Arc::new(RepairPlan::plan(
                code, failed, &sorted,
            )?)))
        })?;
        match entry {
            Entry::Repair(plan) => Ok(plan),
            _ => unreachable!("repair key maps to repair entry"),
        }
    }

    fn key(&self, code: &dyn AccessCode, kind: Kind, nodes: &[usize], extra: usize) -> Key {
        let mut sorted = nodes.to_vec();
        sorted.sort_unstable();
        Key {
            code: code.name(),
            kind,
            nodes: sorted,
            extra,
        }
    }

    fn lookup_or<F>(&self, key: Key, build: F) -> Result<Entry, CodeError>
    where
        F: FnOnce() -> Result<Entry, CodeError>,
    {
        if self.capacity > 0 {
            let entries = self.entries.lock().expect("plan cache poisoned");
            if let Some((_, entry)) = entries.iter().find(|(k, _)| *k == key) {
                let entry = entry.clone();
                drop(entries);
                self.hits.fetch_add(1, Ordering::Relaxed);
                if telemetry::ENABLED {
                    CACHE_HITS.inc();
                }
                return Ok(entry);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if telemetry::ENABLED {
            CACHE_MISSES.inc();
        }
        let entry = build()?;
        if self.capacity > 0 {
            let mut entries = self.entries.lock().expect("plan cache poisoned");
            if entries.len() == self.capacity {
                entries.pop_front();
            }
            entries.push_back((key, entry.clone()));
        }
        Ok(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carousel::Carousel;

    #[test]
    fn hits_evicts_and_counts() {
        let code = Carousel::new(6, 3, 3, 6).unwrap();
        let cache = PlanCache::new(2);
        cache.read_plan(&code, &[0, 1, 2, 3, 4]).unwrap();
        cache.read_plan(&code, &[4, 3, 2, 1, 0]).unwrap(); // same set
        assert_eq!(cache.len(), 1);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        cache.read_plan(&code, &[1, 2, 3, 4, 5]).unwrap();
        cache.read_plan(&code, &[0, 2, 3, 4, 5]).unwrap(); // evicts the first
        assert_eq!(cache.len(), 2);
        cache.read_plan(&code, &[0, 1, 2, 3, 4]).unwrap(); // rebuilt
        assert_eq!(cache.misses(), 4);
        // Failures are not cached.
        assert!(cache.read_plan(&code, &[0, 1]).is_err());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn kinds_do_not_collide() {
        let code = Carousel::new(6, 3, 3, 6).unwrap();
        let cache = PlanCache::new(8);
        let available: Vec<usize> = (1..6).collect();
        cache.read_plan(&code, &available).unwrap();
        cache.degraded_plan(&code, 0, &available).unwrap();
        cache.repair_plan(&code, 0, &[1, 2, 3]).unwrap();
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.misses(), 3);
        // Degraded plans for different targets are distinct entries.
        cache
            .degraded_plan(&code, 1, &(0..5).collect::<Vec<_>>())
            .unwrap();
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn disabled_cache_always_rebuilds() {
        let code = Carousel::new(6, 3, 3, 6).unwrap();
        let cache = PlanCache::disabled();
        assert!(!cache.is_enabled());
        let available: Vec<usize> = (0..6).collect();
        cache.read_plan(&code, &available).unwrap();
        cache.read_plan(&code, &available).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        assert!(cache.is_empty());
    }

    #[test]
    fn repair_helpers_are_canonicalized() {
        let code = Carousel::new(8, 4, 6, 8).unwrap();
        let cache = PlanCache::new(4);
        let a = cache.repair_plan(&code, 0, &[6, 2, 4, 1, 5, 3]).unwrap();
        let b = cache.repair_plan(&code, 0, &[1, 2, 3, 4, 5, 6]).unwrap();
        assert_eq!(cache.hits(), 1);
        let nodes_a: Vec<usize> = a.helpers().iter().map(|t| t.node).collect();
        let nodes_b: Vec<usize> = b.helpers().iter().map(|t| t.node).collect();
        assert_eq!(nodes_a, nodes_b);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = PlanCache::new(0);
    }
}
