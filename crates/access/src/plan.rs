//! Plans as pure data: which `(node, unit)` payloads to fetch and how to
//! combine them, independent of any transport.
//!
//! Each plan wraps the algebraic kernel that fits the code: Carousel codes
//! get their direct/degraded/fallback stripe reads and per-copy block-region
//! solves from `carousel`, every other linear code gets the generic
//! any-`k`-blocks machinery from `erasure`. Callers never branch on the
//! code — they ask for `sources()`, hand back payloads, and call
//! `decode_units`.

use carousel::ReadMode;
use erasure::{CodeError, DecodePlan, HelperTask};

use crate::AccessCode;

/// A plan to read one whole stripe's original data.
#[derive(Debug, Clone)]
pub struct ReadPlan {
    mode: ReadMode,
    inner: ReadInner,
}

#[derive(Debug, Clone)]
enum ReadInner {
    Carousel(carousel::ReadPlan),
    Generic(DecodePlan),
}

impl ReadPlan {
    /// Plans a stripe read over the `available` blocks (order-insensitive).
    ///
    /// For Carousel codes this is the paper's three-tier ladder: direct
    /// `p`-way parallel read, degraded read with parity stand-ins, generic
    /// `k`-block fallback. For other codes: the first `k` data blocks when
    /// all are available (direct), otherwise any `k` live blocks (fallback).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InsufficientData`] when fewer than `k` blocks
    /// are available, and index errors for malformed availability lists.
    pub fn plan(code: &dyn AccessCode, available: &[usize]) -> Result<Self, CodeError> {
        if let Some(carousel) = code.as_carousel() {
            let plan = carousel.plan_read(available)?;
            return Ok(ReadPlan {
                mode: plan.mode(),
                inner: ReadInner::Carousel(plan),
            });
        }
        let k = code.k();
        check_indices(code.n(), available)?;
        let direct = (0..k).all(|i| available.contains(&i));
        let nodes: Vec<usize> = if direct {
            (0..k).collect()
        } else {
            let mut live = available.to_vec();
            live.sort_unstable();
            live.truncate(k);
            live
        };
        if nodes.len() < k {
            return Err(CodeError::InsufficientData {
                needed: k,
                got: nodes.len(),
            });
        }
        let plan = DecodePlan::for_nodes(code.linear(), &nodes)?;
        Ok(ReadPlan {
            mode: if direct {
                ReadMode::Direct
            } else {
                ReadMode::Fallback
            },
            inner: ReadInner::Generic(plan),
        })
    }

    /// How the stripe is served (the paper's read ladder).
    pub fn mode(&self) -> ReadMode {
        self.mode
    }

    /// Every `(node, stored unit)` to fetch, in the order
    /// [`ReadPlan::decode_units`] expects.
    pub fn sources(&self) -> &[(usize, usize)] {
        match &self.inner {
            ReadInner::Carousel(plan) => plan.sources(),
            ReadInner::Generic(plan) => plan.sources(),
        }
    }

    /// Sources grouped per node: `(node, units fetched)`.
    pub fn units_per_node(&self) -> Vec<(usize, usize)> {
        match &self.inner {
            ReadInner::Carousel(plan) => plan.units_per_node().to_vec(),
            ReadInner::Generic(plan) => group_units(plan.sources()),
        }
    }

    /// Number of distinct blocks read in parallel.
    pub fn parallelism(&self) -> usize {
        self.units_per_node().len()
    }

    /// Total units fetched.
    pub fn traffic_units(&self) -> usize {
        self.sources().len()
    }

    /// Combines fetched unit payloads (`units[i]` is `sources()[i]`, all of
    /// equal width) into the stripe's original data, padding included.
    ///
    /// # Errors
    ///
    /// Count and width mismatches surface as [`CodeError`]s.
    pub fn decode_units(&self, units: &[&[u8]]) -> Result<Vec<u8>, CodeError> {
        match &self.inner {
            ReadInner::Carousel(plan) => plan.decode_units(units),
            ReadInner::Generic(plan) => plan.decode_units(units),
        }
    }
}

/// A plan to rebuild one block's *data region* (its contiguous file chunk)
/// without decoding the whole stripe.
#[derive(Debug, Clone)]
pub struct DegradedPlan {
    target: usize,
    inner: DegradedInner,
}

#[derive(Debug, Clone)]
enum DegradedInner {
    Carousel(carousel::BlockReadPlan),
    Generic {
        plan: DecodePlan,
        /// File units of the target's data region, in stored order.
        region_units: Vec<usize>,
    },
}

impl DegradedPlan {
    /// Plans the reconstruction of `target`'s data region from the
    /// `available` blocks (`target` itself is ignored if listed).
    ///
    /// Carousel codes decode only the affected carousel copies
    /// (`k·(k/p)` block-sizes of traffic); other codes decode the stripe
    /// message from any `k` live blocks and slice the region out.
    ///
    /// # Errors
    ///
    /// * [`CodeError::InvalidParameters`] if `target` carries no data;
    /// * [`CodeError::InsufficientData`] if fewer than `k` other blocks are
    ///   available.
    pub fn plan(
        code: &dyn AccessCode,
        target: usize,
        available: &[usize],
    ) -> Result<Self, CodeError> {
        if let Some(carousel) = code.as_carousel() {
            let pool: Vec<usize> = available.iter().copied().filter(|&a| a != target).collect();
            return Ok(DegradedPlan {
                target,
                inner: DegradedInner::Carousel(carousel.plan_block_read(target, &pool)?),
            });
        }
        check_indices(code.n(), available)?;
        let layout = code.data_layout();
        let region_units = layout.data_units_of(target).to_vec();
        if region_units.is_empty() {
            return Err(CodeError::InvalidParameters {
                reason: format!("block {target} carries no original data"),
            });
        }
        let k = code.k();
        let mut pool: Vec<usize> = available.iter().copied().filter(|&a| a != target).collect();
        pool.sort_unstable();
        if pool.len() < k {
            return Err(CodeError::InsufficientData {
                needed: k,
                got: pool.len(),
            });
        }
        pool.truncate(k);
        let plan = DecodePlan::for_nodes(code.linear(), &pool)?;
        Ok(DegradedPlan {
            target,
            inner: DegradedInner::Generic { plan, region_units },
        })
    }

    /// The block whose region this plan rebuilds.
    pub fn target(&self) -> usize {
        self.target
    }

    /// Every `(node, stored unit)` to fetch, in the order
    /// [`DegradedPlan::decode_units`] expects.
    pub fn sources(&self) -> Vec<(usize, usize)> {
        match &self.inner {
            DegradedInner::Carousel(plan) => plan.sources(),
            DegradedInner::Generic { plan, .. } => plan.sources().to_vec(),
        }
    }

    /// Sources grouped per node: `(node, units fetched)`.
    pub fn units_per_node(&self) -> Vec<(usize, usize)> {
        match &self.inner {
            DegradedInner::Carousel(plan) => plan.units_per_node(),
            DegradedInner::Generic { plan, .. } => group_units(plan.sources()),
        }
    }

    /// Total units fetched.
    pub fn traffic_units(&self) -> usize {
        self.sources().len()
    }

    /// Combines fetched unit payloads into the target's data region, in the
    /// same unit order the block itself stores (so `locate()` offsets apply
    /// unchanged).
    ///
    /// # Errors
    ///
    /// Count and width mismatches surface as [`CodeError`]s.
    pub fn decode_units(&self, units: &[&[u8]]) -> Result<Vec<u8>, CodeError> {
        match &self.inner {
            DegradedInner::Carousel(plan) => plan.decode_units(units),
            DegradedInner::Generic { plan, region_units } => {
                let message = plan.decode_units(units)?;
                let w = units.first().map_or(0, |u| u.len());
                let mut region = Vec::with_capacity(region_units.len() * w);
                for &fu in region_units {
                    region.extend_from_slice(&message[fu * w..(fu + 1) * w]);
                }
                Ok(region)
            }
        }
    }
}

/// A plan to rebuild one lost block from `d` helper blocks.
///
/// A thin wrapper over [`erasure::RepairPlan`] that remembers the code's
/// sub-packetization so traffic can be quoted in block-sizes without
/// re-asking the code.
#[derive(Debug, Clone)]
pub struct RepairPlan {
    inner: erasure::RepairPlan,
    sub: usize,
}

impl RepairPlan {
    /// Plans the repair of `failed` using exactly the blocks in `helpers`.
    ///
    /// # Errors
    ///
    /// Fails if the helper set is invalid for this code (wrong count,
    /// contains `failed`, out of range, or algebraically insufficient).
    pub fn plan(
        code: &dyn AccessCode,
        failed: usize,
        helpers: &[usize],
    ) -> Result<Self, CodeError> {
        Ok(RepairPlan {
            inner: code.repair_plan(failed, helpers)?,
            sub: code.linear().sub(),
        })
    }

    /// The block being reconstructed.
    pub fn failed(&self) -> usize {
        self.inner.failed
    }

    /// Helper tasks, in the order their payloads must be concatenated.
    pub fn helpers(&self) -> &[HelperTask] {
        &self.inner.helpers
    }

    /// Number of helpers (`d`).
    pub fn d(&self) -> usize {
        self.inner.d()
    }

    /// Total sub-units moved.
    pub fn traffic_units(&self) -> usize {
        self.inner.traffic_units()
    }

    /// Repair traffic in block-sizes — the paper's `d/(d−k+1)` for MSR-regime
    /// Carousel codes, `k` for RS.
    pub fn traffic_blocks(&self) -> f64 {
        self.inner.traffic_blocks(self.sub)
    }

    /// Combines helper payloads (each `β·w` bytes, in helper order) into the
    /// lost block.
    ///
    /// # Errors
    ///
    /// Count and width mismatches surface as [`CodeError`]s.
    pub fn combine_payloads(&self, payloads: &[Vec<u8>]) -> Result<Vec<u8>, CodeError> {
        self.inner.combine_payloads(payloads)
    }
}

/// Validates that `indices` are unique and all less than `n`.
fn check_indices(n: usize, indices: &[usize]) -> Result<(), CodeError> {
    for (i, &a) in indices.iter().enumerate() {
        if a >= n {
            return Err(CodeError::NodeOutOfRange { node: a, n });
        }
        if indices[i + 1..].contains(&a) {
            return Err(CodeError::DuplicateNode { node: a });
        }
    }
    Ok(())
}

/// Groups `(node, unit)` sources into per-node fetch counts, preserving
/// first-appearance node order.
fn group_units(sources: &[(usize, usize)]) -> Vec<(usize, usize)> {
    let mut per: Vec<(usize, usize)> = Vec::new();
    for &(node, _) in sources {
        match per.iter_mut().find(|(nd, _)| *nd == node) {
            Some((_, c)) => *c += 1,
            None => per.push((node, 1)),
        }
    }
    per
}

#[cfg(test)]
mod tests {
    use super::*;
    use carousel::Carousel;
    use erasure::ErasureCode as _;
    use rs_code::ReedSolomon;

    fn fetch<'a>(blocks: &'a [Vec<u8>], sources: &[(usize, usize)], w: usize) -> Vec<&'a [u8]> {
        sources
            .iter()
            .map(|&(nd, u)| &blocks[nd][u * w..(u + 1) * w])
            .collect()
    }

    #[test]
    fn generic_read_direct_and_fallback() {
        let code = ReedSolomon::new(6, 4).unwrap();
        let data: Vec<u8> = (0..64).map(|i| (i * 7 + 3) as u8).collect();
        let stripe = code.linear().encode(&data).unwrap();
        let w = stripe.unit_bytes;

        let direct = ReadPlan::plan(&code, &[0, 1, 2, 3, 4, 5]).unwrap();
        assert_eq!(direct.mode(), ReadMode::Direct);
        assert_eq!(direct.parallelism(), 4);
        let units = fetch(&stripe.blocks, direct.sources(), w);
        assert_eq!(
            &direct.decode_units(&units).unwrap()[..data.len()],
            &data[..]
        );

        let degraded = ReadPlan::plan(&code, &[5, 1, 2, 4]).unwrap();
        assert_eq!(degraded.mode(), ReadMode::Fallback);
        let units = fetch(&stripe.blocks, degraded.sources(), w);
        assert_eq!(
            &degraded.decode_units(&units).unwrap()[..data.len()],
            &data[..]
        );

        assert!(matches!(
            ReadPlan::plan(&code, &[0, 1, 2]),
            Err(CodeError::InsufficientData { needed: 4, got: 3 })
        ));
    }

    #[test]
    fn carousel_read_delegates_to_core_planner() {
        let code = Carousel::new(6, 3, 3, 6).unwrap();
        let b = code.linear().message_units();
        let data: Vec<u8> = (0..b * 4).map(|i| (i * 5 + 1) as u8).collect();
        let stripe = code.linear().encode(&data).unwrap();
        let w = stripe.unit_bytes;
        let plan = ReadPlan::plan(&code, &(0..6).collect::<Vec<_>>()).unwrap();
        assert_eq!(plan.mode(), ReadMode::Direct);
        assert_eq!(plan.parallelism(), 6);
        let units = fetch(&stripe.blocks, plan.sources(), w);
        assert_eq!(&plan.decode_units(&units).unwrap()[..data.len()], &data[..]);
    }

    #[test]
    fn generic_degraded_region_matches_block() {
        let code = ReedSolomon::new(6, 4).unwrap();
        let data: Vec<u8> = (0..60).map(|i| (i * 11 + 5) as u8).collect();
        let stripe = code.linear().encode(&data).unwrap();
        let w = stripe.unit_bytes;
        let layout = code.data_layout();
        for target in 0..4 {
            let available: Vec<usize> = (0..6).filter(|&i| i != target).collect();
            let plan = DegradedPlan::plan(&code, target, &available).unwrap();
            assert_eq!(plan.target(), target);
            let units = fetch(&stripe.blocks, &plan.sources(), w);
            let region = plan.decode_units(&units).unwrap();
            assert_eq!(
                region,
                stripe.blocks[target][layout.data_byte_range(target, w)]
            );
        }
        // Parity-only targets are rejected.
        assert!(matches!(
            DegradedPlan::plan(&code, 5, &(0..5).collect::<Vec<_>>()),
            Err(CodeError::InvalidParameters { .. })
        ));
    }

    #[test]
    fn carousel_degraded_region_matches_block() {
        let code = Carousel::new(6, 3, 3, 6).unwrap();
        let b = code.linear().message_units();
        let data: Vec<u8> = (0..b * 4).map(|i| (i * 3 + 7) as u8).collect();
        let stripe = code.linear().encode(&data).unwrap();
        let w = stripe.unit_bytes;
        let layout = code.data_layout();
        let plan = DegradedPlan::plan(&code, 2, &(0..6).collect::<Vec<_>>()).unwrap();
        let units = fetch(&stripe.blocks, &plan.sources(), w);
        let region = plan.decode_units(&units).unwrap();
        assert_eq!(region, stripe.blocks[2][layout.data_byte_range(2, w)]);
    }

    #[test]
    fn repair_plan_quotes_traffic_in_blocks() {
        let code = Carousel::new(8, 4, 6, 8).unwrap();
        let helpers: Vec<usize> = (1..7).collect();
        let plan = RepairPlan::plan(&code, 0, &helpers).unwrap();
        assert_eq!(plan.failed(), 0);
        assert_eq!(plan.d(), 6);
        // MSR regime: d/(d−k+1) = 6/3 = 2 block-sizes.
        assert!((plan.traffic_blocks() - 2.0).abs() < 1e-9);
    }
}
