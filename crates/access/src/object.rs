//! The unified mutable-object API: one trait for every storage stack.
//!
//! The repo grew three ad-hoc surfaces for "store bytes under a name" —
//! the in-memory filestore, the simulated DFS, and the TCP cluster
//! client each had their own `put`/`get` shapes. [`ObjectStore`] folds
//! them into one contract covering the full mutable-data lifecycle:
//! whole-object put/get, byte-range reads, **in-place `write_range`**
//! (delta parity updates — cost proportional to the touched region, not
//! the stripe), **`append`** (growing the object, adding stripes as
//! needed) and `delete`. The tri-stack equivalence tests drive all
//! three implementations through this trait, so a mutation path that
//! works on one stack is byte-identical on the others.
//!
//! [`PutOptions`] is the builder for per-put knobs. It is deliberately
//! transport-agnostic: the code is named by its *spec string* (e.g.
//! `"rs(8,4)"`, `"carousel(6,3,3,6)"`) so this crate does not depend on
//! any particular spec parser; stores that fix their code at
//! construction simply ignore it.

/// Per-put options, builder style.
///
/// # Examples
///
/// ```
/// use access::PutOptions;
///
/// let opts = PutOptions::new().code("rs(6,4)").block_bytes(4096).pack(true);
/// assert_eq!(opts.code_spec(), Some("rs(6,4)"));
/// assert_eq!(opts.block_bytes_hint(), Some(4096));
/// assert!(opts.packed());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PutOptions {
    code: Option<String>,
    block_bytes: Option<usize>,
    pack: bool,
}

impl PutOptions {
    /// Default options: the store's default code and block size, no
    /// packing.
    pub fn new() -> PutOptions {
        PutOptions::default()
    }

    /// Selects the erasure code by spec string (e.g. `"rs(6,4)"`).
    /// Stores whose code is fixed at construction ignore this.
    #[must_use]
    pub fn code(mut self, spec: &str) -> PutOptions {
        self.code = Some(spec.to_string());
        self
    }

    /// Overrides the per-block byte size.
    #[must_use]
    pub fn block_bytes(mut self, bytes: usize) -> PutOptions {
        self.block_bytes = Some(bytes);
        self
    }

    /// Packs this (small) object into a shared stripe: the store
    /// appends its bytes to an open *pack* and records only a
    /// per-object extent, instead of dedicating whole stripes to it.
    #[must_use]
    pub fn pack(mut self, pack: bool) -> PutOptions {
        self.pack = pack;
        self
    }

    /// The requested code spec string, if any.
    pub fn code_spec(&self) -> Option<&str> {
        self.code.as_deref()
    }

    /// The requested block size, if any.
    pub fn block_bytes_hint(&self) -> Option<usize> {
        self.block_bytes
    }

    /// Whether this put asked to be packed into a shared stripe.
    pub fn packed(&self) -> bool {
        self.pack
    }
}

/// A named store of erasure-coded mutable objects.
///
/// Methods take `&mut self` because every in-tree implementation keeps
/// per-connection or per-cache mutable state; a shared store wraps the
/// implementation in its own synchronization.
///
/// Contract highlights every implementation upholds (and the tri-stack
/// tests verify):
///
/// * `get(name)` after `put(name, data)` returns exactly `data`;
/// * `write_range(name, off, patch)` only overwrites — `off +
///   patch.len()` must not exceed the current length (use `append` to
///   grow), and afterwards `get` reflects the edit byte-for-byte;
/// * `append(name, tail)` returns the new length and behaves like
///   `put(name, old ++ tail)` would have;
/// * `delete(name)` returns whether the object existed; a deleted name
///   can be re-`put`;
/// * parity stays consistent under every mutation: degraded reads and
///   repairs after a `write_range`/`append` see the updated bytes.
pub trait ObjectStore {
    /// The implementation's error type.
    type Error: std::error::Error;

    /// Stores `data` under `name` with explicit options.
    ///
    /// # Errors
    ///
    /// Implementation-defined; storing under an existing name is an
    /// error (delete first).
    fn put_opts(&mut self, name: &str, data: &[u8], opts: &PutOptions) -> Result<(), Self::Error>;

    /// Stores `data` under `name` with default options.
    ///
    /// # Errors
    ///
    /// See [`ObjectStore::put_opts`].
    fn put(&mut self, name: &str, data: &[u8]) -> Result<(), Self::Error> {
        self.put_opts(name, data, &PutOptions::new())
    }

    /// Reads the whole object back.
    ///
    /// # Errors
    ///
    /// Implementation-defined; unknown names are an error.
    fn get(&mut self, name: &str) -> Result<Vec<u8>, Self::Error>;

    /// Reads `len` bytes at byte `offset`.
    ///
    /// # Errors
    ///
    /// Implementation-defined; ranges past the object's end are an
    /// error.
    fn get_range(&mut self, name: &str, offset: u64, len: u64) -> Result<Vec<u8>, Self::Error>;

    /// Overwrites the object's bytes at `offset` with `data` in place,
    /// updating parity by delta. The range must lie within the current
    /// length.
    ///
    /// # Errors
    ///
    /// Implementation-defined; out-of-bounds ranges are an error.
    fn write_range(&mut self, name: &str, offset: u64, data: &[u8]) -> Result<(), Self::Error>;

    /// Appends `data` to the object, returning its new length.
    ///
    /// # Errors
    ///
    /// Implementation-defined.
    fn append(&mut self, name: &str, data: &[u8]) -> Result<u64, Self::Error>;

    /// Deletes the object. Returns `false` when it did not exist.
    ///
    /// # Errors
    ///
    /// Implementation-defined (transport failures, not absence).
    fn delete(&mut self, name: &str) -> Result<bool, Self::Error>;

    /// The object's current length in bytes.
    ///
    /// # Errors
    ///
    /// Implementation-defined; unknown names are an error.
    fn object_len(&mut self, name: &str) -> Result<u64, Self::Error>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let opts = PutOptions::new();
        assert_eq!(opts.code_spec(), None);
        assert_eq!(opts.block_bytes_hint(), None);
        assert!(!opts.packed());
        let opts = opts.code("carousel(6,3,3,6)").block_bytes(120).pack(true);
        assert_eq!(opts.code_spec(), Some("carousel(6,3,3,6)"));
        assert_eq!(opts.block_bytes_hint(), Some(120));
        assert!(opts.packed());
    }
}
