//! The one replanning loop.
//!
//! Every transport used to hand-roll the same state machine: plan against
//! believed availability, fetch, and when a node dies mid-read drop it and
//! replan. [`PlanExecutor`] is that machine, written once, bounded (a
//! cluster where nodes keep failing mid-read must not livelock), and generic
//! over [`BlockSource`] — so the in-memory store, the simulator and the TCP
//! client cannot diverge from each other or from the paper's math.
//!
//! Every fetch of a plan — the per-node unit reads of a stripe read, and
//! all `d` helper reads of a repair — is issued as *one*
//! [`BlockSource::fetch_batch`] call, so a transport can fan the requests
//! out to distinct nodes concurrently. Failures are collected per batch:
//! one replan routes around *every* node that failed in the round, not one
//! node at a time.

use std::sync::{Arc, LazyLock};

use erasure::CodeError;

use crate::cache::PlanCache;
use crate::plan::ReadPlan;
use crate::source::{BatchRequest, BlockSource, Fetch};
use crate::{AccessCode, ReadMode};

static FETCH_FANOUT: LazyLock<&'static telemetry::Histogram> =
    LazyLock::new(|| telemetry::histogram("access.fetch.fanout"));
static REPAIR_DECODE: LazyLock<&'static telemetry::Histogram> =
    LazyLock::new(|| telemetry::histogram("access.phase.decode_us"));

/// Default bound on mid-operation replans before giving up.
pub const DEFAULT_MAX_REPLANS: usize = 8;

/// Why an executor-driven operation failed.
#[derive(Debug)]
pub enum ExecError<E> {
    /// The transport hit a fault the executor cannot route around.
    Source(E),
    /// Planning or combining failed (most commonly
    /// [`CodeError::InsufficientData`]: too few blocks left).
    Code(CodeError),
    /// Nodes kept failing mid-operation until the replan budget ran out.
    ReplansExhausted {
        /// Replans attempted before giving up.
        attempts: usize,
    },
}

impl<E: std::fmt::Display> std::fmt::Display for ExecError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Source(e) => write!(f, "block source error: {e}"),
            ExecError::Code(e) => write!(f, "planning error: {e}"),
            ExecError::ReplansExhausted { attempts } => {
                write!(f, "gave up after {attempts} mid-operation replans")
            }
        }
    }
}

impl<E: std::error::Error + 'static> std::error::Error for ExecError<E> {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Source(e) => Some(e),
            ExecError::Code(e) => Some(e),
            ExecError::ReplansExhausted { .. } => None,
        }
    }
}

impl<E> From<CodeError> for ExecError<E> {
    fn from(e: CodeError) -> Self {
        ExecError::Code(e)
    }
}

/// A decoded stripe, with how it was obtained.
#[derive(Debug, Clone)]
pub struct StripeRead {
    /// The stripe's original data (padding included).
    pub data: Vec<u8>,
    /// The read mode of the plan that finally succeeded.
    pub mode: ReadMode,
    /// Mid-read replans that were needed (0 = first plan worked).
    pub replans: usize,
}

/// A fetched-but-not-yet-decoded stripe: the payloads of a successful
/// plan, still attached to the plan that knows how to decode them.
///
/// Splitting the fetch from the decode is what makes stripe pipelining
/// possible: the fetch half runs on a worker while the caller decodes the
/// previous stripe. The struct is pure data (the plan is `Arc`-shared pure
/// data too), so it crosses threads freely.
#[derive(Debug, Clone)]
pub struct FetchedStripe {
    plan: Arc<ReadPlan>,
    units: Vec<Vec<u8>>,
    replans: usize,
}

impl FetchedStripe {
    /// The read mode of the plan that succeeded.
    pub fn mode(&self) -> ReadMode {
        self.plan.mode()
    }

    /// Mid-read replans that were needed (0 = first plan worked).
    pub fn replans(&self) -> usize {
        self.replans
    }

    /// Decodes the fetched units into the stripe's original data
    /// (padding included) — the deferred half of
    /// [`PlanExecutor::read_stripe`].
    ///
    /// # Errors
    ///
    /// Propagates decode failures from the plan.
    pub fn decode(&self) -> Result<Vec<u8>, CodeError> {
        let slices: Vec<&[u8]> = self.units.iter().map(Vec::as_slice).collect();
        self.plan.decode_units(&slices)
    }
}

/// A reconstructed block data region, with how it was obtained.
#[derive(Debug, Clone)]
pub struct RegionRead {
    /// The target block's data region bytes.
    pub data: Vec<u8>,
    /// Mid-read replans that were needed.
    pub replans: usize,
}

/// A repaired block, with how it was obtained.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// The rebuilt block, bit-identical to the lost one.
    pub block: Vec<u8>,
    /// Total helper payload bytes consumed by the successful plan — the
    /// paper's repair traffic (excludes payloads of abandoned attempts).
    pub payload_bytes: usize,
    /// Mid-repair replans that were needed.
    pub replans: usize,
}

/// Drives plans from a [`PlanCache`] against a [`BlockSource`], replanning
/// around mid-operation failures.
#[derive(Debug, Clone, Copy)]
pub struct PlanExecutor<'a> {
    cache: &'a PlanCache,
    max_replans: usize,
}

impl<'a> PlanExecutor<'a> {
    /// An executor planning through `cache` with the default replan budget.
    pub fn new(cache: &'a PlanCache) -> Self {
        PlanExecutor {
            cache,
            max_replans: DEFAULT_MAX_REPLANS,
        }
    }

    /// Overrides the replan budget.
    pub fn with_max_replans(mut self, max_replans: usize) -> Self {
        self.max_replans = max_replans;
        self
    }

    /// Fetches one stripe's units without decoding them: the plan and its
    /// payloads come back as a [`FetchedStripe`] whose
    /// [`decode`](FetchedStripe::decode) can run later, on another thread,
    /// overlapped with the next stripe's fetch.
    ///
    /// # Errors
    ///
    /// [`ExecError::Code`] when too few blocks remain, [`ExecError::Source`]
    /// on transport faults, [`ExecError::ReplansExhausted`] when the budget
    /// runs out.
    pub fn fetch_stripe<S: BlockSource>(
        &self,
        code: &dyn AccessCode,
        source: &mut S,
    ) -> Result<FetchedStripe, ExecError<S::Error>> {
        let mut available = source.available();
        available.sort_unstable();
        let w = source.unit_bytes();
        let mut replans = 0;
        loop {
            let plan = self.cache.read_plan(code, &available)?;
            match batch_units(plan.sources(), w, source).map_err(ExecError::Source)? {
                Ok(units) => {
                    return Ok(FetchedStripe {
                        plan,
                        units,
                        replans,
                    })
                }
                Err(dead) => {
                    available.retain(|n| !dead.contains(n));
                    replans += 1;
                    if replans > self.max_replans {
                        return Err(ExecError::ReplansExhausted { attempts: replans });
                    }
                }
            }
        }
    }

    /// Reads one stripe's original data, degrading and replanning as nodes
    /// fail.
    ///
    /// # Errors
    ///
    /// As for [`PlanExecutor::fetch_stripe`].
    pub fn read_stripe<S: BlockSource>(
        &self,
        code: &dyn AccessCode,
        source: &mut S,
    ) -> Result<StripeRead, ExecError<S::Error>> {
        let fetched = self.fetch_stripe(code, source)?;
        Ok(StripeRead {
            data: fetched.decode()?,
            mode: fetched.mode(),
            replans: fetched.replans(),
        })
    }

    /// Rebuilds the data region of block `target` (typically lost) without
    /// reading the whole stripe.
    ///
    /// # Errors
    ///
    /// As for [`PlanExecutor::fetch_stripe`].
    pub fn read_block_region<S: BlockSource>(
        &self,
        code: &dyn AccessCode,
        target: usize,
        source: &mut S,
    ) -> Result<RegionRead, ExecError<S::Error>> {
        let mut available = source.available();
        available.sort_unstable();
        available.retain(|&n| n != target);
        let w = source.unit_bytes();
        let mut replans = 0;
        loop {
            let plan = self.cache.degraded_plan(code, target, &available)?;
            match batch_units(&plan.sources(), w, source).map_err(ExecError::Source)? {
                Ok(units) => {
                    let slices: Vec<&[u8]> = units.iter().map(Vec::as_slice).collect();
                    let data = plan.decode_units(&slices)?;
                    return Ok(RegionRead { data, replans });
                }
                Err(dead) => {
                    available.retain(|n| !dead.contains(n));
                    replans += 1;
                    if replans > self.max_replans {
                        return Err(ExecError::ReplansExhausted { attempts: replans });
                    }
                }
            }
        }
    }

    /// Repairs block `failed` from `d` helpers, swapping in fresh helpers
    /// (and re-deriving coefficients) when one dies mid-repair. All `d`
    /// helper reads of a plan go out as one batch.
    ///
    /// # Errors
    ///
    /// As for [`PlanExecutor::fetch_stripe`].
    pub fn repair_block<S: BlockSource>(
        &self,
        code: &dyn AccessCode,
        failed: usize,
        source: &mut S,
    ) -> Result<RepairOutcome, ExecError<S::Error>> {
        let d = code.d();
        let mut available = source.available();
        available.sort_unstable();
        available.retain(|&n| n != failed);
        let w = source.unit_bytes();
        let mut replans = 0;
        loop {
            if available.len() < d {
                return Err(ExecError::Code(CodeError::InsufficientData {
                    needed: d,
                    got: available.len(),
                }));
            }
            let helpers: Vec<usize> = available.iter().copied().take(d).collect();
            let plan = self.cache.repair_plan(code, failed, &helpers)?;
            let requests: Vec<BatchRequest<'_>> = plan
                .helpers()
                .iter()
                .map(|task| BatchRequest::Repair {
                    node: task.node,
                    task,
                })
                .collect();
            record_fanout(requests.len());
            let fetches = source.fetch_batch(&requests).map_err(ExecError::Source)?;
            let mut payloads = Vec::with_capacity(d);
            let mut dead = Vec::new();
            for (task, fetch) in plan.helpers().iter().zip(fetches) {
                match fetch {
                    Fetch::Data(bytes) if bytes.len() == task.beta() * w => payloads.push(bytes),
                    _ => dead.push(task.node),
                }
            }
            if dead.is_empty() && payloads.len() == plan.helpers().len() {
                let payload_bytes = payloads.iter().map(Vec::len).sum();
                let combined_at = telemetry::ENABLED.then(std::time::Instant::now);
                let block = plan.combine_payloads(&payloads)?;
                if let Some(t) = combined_at {
                    REPAIR_DECODE.record(t.elapsed().as_micros() as u64);
                }
                return Ok(RepairOutcome {
                    block,
                    payload_bytes,
                    replans,
                });
            }
            // A short batch result (a source violating the contract) with
            // no named dead node cannot make progress; treat every helper
            // as suspect rather than loop forever.
            if dead.is_empty() {
                dead = helpers;
            }
            available.retain(|n| !dead.contains(n));
            replans += 1;
            if replans > self.max_replans {
                return Err(ExecError::ReplansExhausted { attempts: replans });
            }
        }
    }
}

fn record_fanout(requests: usize) {
    if telemetry::ENABLED {
        FETCH_FANOUT.record(requests as u64);
    }
}

/// Issues every `(node, unit)` source of a plan as one batch, grouping
/// per-node requests into one [`BatchRequest::Units`] each.
/// `Ok(Ok(units))` has payloads in source order; `Ok(Err(nodes))` lists
/// *every* node that failed to serve this round (including wrong-length
/// payloads, which are treated as the node lying and therefore dying);
/// `Err` is transport-fatal.
#[allow(clippy::type_complexity)]
fn batch_units<S: BlockSource>(
    sources: &[(usize, usize)],
    w: usize,
    source: &mut S,
) -> Result<Result<Vec<Vec<u8>>, Vec<usize>>, S::Error> {
    // Group per-node runs, remembering each unit's position in the plan.
    let mut requests: Vec<BatchRequest<'static>> = Vec::new();
    let mut positions: Vec<Vec<usize>> = Vec::new();
    for (pos, &(node, unit)) in sources.iter().enumerate() {
        match requests.iter().position(|r| r.node() == node) {
            Some(i) => {
                let BatchRequest::Units { units, .. } = &mut requests[i] else {
                    unreachable!("unit batches hold only unit requests");
                };
                units.push(unit);
                positions[i].push(pos);
            }
            None => {
                requests.push(BatchRequest::Units {
                    node,
                    units: vec![unit],
                });
                positions.push(vec![pos]);
            }
        }
    }
    record_fanout(requests.len());
    let fetches = source.fetch_batch(&requests)?;
    let mut out: Vec<Vec<u8>> = vec![Vec::new(); sources.len()];
    let mut failed = Vec::new();
    for (i, request) in requests.iter().enumerate() {
        match fetches.get(i) {
            Some(Fetch::Data(bytes)) if bytes.len() == positions[i].len() * w => {
                for (j, &pos) in positions[i].iter().enumerate() {
                    out[pos] = bytes[j * w..(j + 1) * w].to_vec();
                }
            }
            _ => failed.push(request.node()),
        }
    }
    if failed.is_empty() {
        Ok(Ok(out))
    } else {
        Ok(Err(failed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::MemorySource;
    use carousel::Carousel;
    use erasure::ErasureCode as _;

    fn encoded(code: &Carousel, stripes_of: usize) -> (Vec<u8>, Vec<Vec<u8>>) {
        let b = code.linear().message_units();
        let data: Vec<u8> = (0..b * stripes_of).map(|i| (i * 37 + 11) as u8).collect();
        let stripe = code.linear().encode(&data).unwrap();
        (data, stripe.blocks)
    }

    /// A source that silently drops nodes after their first successful
    /// serve — the kill-mid-read scenario, batched.
    struct FlakySource<'a> {
        inner: MemorySource<'a>,
        dies_after_serving: Vec<usize>,
        served: bool,
    }

    impl BlockSource for FlakySource<'_> {
        type Error = std::convert::Infallible;
        fn block_count(&self) -> usize {
            self.inner.block_count()
        }
        fn unit_bytes(&self) -> usize {
            self.inner.unit_bytes()
        }
        fn available(&mut self) -> Vec<usize> {
            self.inner.available()
        }
        fn fetch_units(&mut self, node: usize, units: &[usize]) -> Result<Fetch, Self::Error> {
            if self.dies_after_serving.contains(&node) {
                if self.served {
                    return Ok(Fetch::Unavailable);
                }
                self.served = true;
            }
            self.inner.fetch_units(node, units)
        }
    }

    #[test]
    fn reads_degrade_and_replan() {
        let code = Carousel::new(6, 3, 3, 6).unwrap();
        let (data, blocks) = encoded(&code, 8);
        let cache = PlanCache::new(8);
        let executor = PlanExecutor::new(&cache);

        // All blocks live: direct read.
        let refs: Vec<Option<&[u8]>> = blocks.iter().map(|b| Some(&b[..])).collect();
        let read = executor
            .read_stripe(&code, &mut MemorySource::new(refs, code.sub()))
            .unwrap();
        assert_eq!(read.mode, ReadMode::Direct);
        assert_eq!(read.replans, 0);
        assert_eq!(&read.data[..data.len()], &data[..]);

        // One block lost: degraded, still byte-identical.
        let refs: Vec<Option<&[u8]>> = blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (i != 2).then_some(&b[..]))
            .collect();
        let read = executor
            .read_stripe(&code, &mut MemorySource::new(refs, code.sub()))
            .unwrap();
        assert_ne!(read.mode, ReadMode::Direct);
        assert_eq!(&read.data[..data.len()], &data[..]);
    }

    #[test]
    fn mid_read_failure_triggers_replan() {
        let code = Carousel::new(6, 3, 3, 6).unwrap();
        let (data, blocks) = encoded(&code, 8);
        let cache = PlanCache::new(8);
        let executor = PlanExecutor::new(&cache);
        let refs: Vec<Option<&[u8]>> = blocks.iter().map(|b| Some(&b[..])).collect();
        let mut source = FlakySource {
            inner: MemorySource::new(refs, code.sub()),
            dies_after_serving: vec![0],
            served: true, // dead from the start, but still listed available
        };
        let read = executor.read_stripe(&code, &mut source).unwrap();
        assert!(read.replans >= 1);
        assert_eq!(&read.data[..data.len()], &data[..]);
    }

    /// Batched replanning routes around *all* of a round's failures at
    /// once: two nodes dead-but-listed cost one replan, not two.
    #[test]
    fn batch_failures_share_one_replan() {
        let code = Carousel::new(6, 3, 3, 6).unwrap();
        let (data, blocks) = encoded(&code, 8);
        let cache = PlanCache::new(8);
        let executor = PlanExecutor::new(&cache);
        let refs: Vec<Option<&[u8]>> = blocks.iter().map(|b| Some(&b[..])).collect();
        let mut source = FlakySource {
            inner: MemorySource::new(refs, code.sub()),
            dies_after_serving: vec![0, 3],
            served: true, // both dead from the start, still listed available
        };
        let read = executor.read_stripe(&code, &mut source).unwrap();
        assert_eq!(read.replans, 1, "both failures handled in one replan");
        assert_eq!(&read.data[..data.len()], &data[..]);
    }

    #[test]
    fn fetch_decode_split_matches_read_stripe() {
        let code = Carousel::new(6, 3, 3, 6).unwrap();
        let (data, blocks) = encoded(&code, 8);
        let cache = PlanCache::new(8);
        let executor = PlanExecutor::new(&cache);
        let refs: Vec<Option<&[u8]>> = blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (i != 1).then_some(&b[..]))
            .collect();
        let fetched = executor
            .fetch_stripe(&code, &mut MemorySource::new(refs, code.sub()))
            .unwrap();
        assert_ne!(fetched.mode(), ReadMode::Direct);
        assert_eq!(fetched.replans(), 0);
        assert_eq!(&fetched.decode().unwrap()[..data.len()], &data[..]);
    }

    #[test]
    fn replan_budget_is_enforced() {
        let code = Carousel::new(6, 3, 3, 6).unwrap();
        let (_, blocks) = encoded(&code, 4);

        /// Fails exactly the first request of every batch, so each round
        /// loses one more node and the budget, not the availability set,
        /// is what runs out.
        struct FirstRequestFails<'a> {
            inner: MemorySource<'a>,
        }
        impl BlockSource for FirstRequestFails<'_> {
            type Error = std::convert::Infallible;
            fn block_count(&self) -> usize {
                self.inner.block_count()
            }
            fn unit_bytes(&self) -> usize {
                self.inner.unit_bytes()
            }
            fn available(&mut self) -> Vec<usize> {
                self.inner.available()
            }
            fn fetch_units(&mut self, node: usize, units: &[usize]) -> Result<Fetch, Self::Error> {
                self.inner.fetch_units(node, units)
            }
            fn fetch_batch(
                &mut self,
                requests: &[BatchRequest<'_>],
            ) -> Result<Vec<Fetch>, Self::Error> {
                let mut fetches = self.inner.fetch_batch(requests)?;
                if let Some(first) = fetches.first_mut() {
                    *first = Fetch::Unavailable;
                }
                Ok(fetches)
            }
        }

        let cache = PlanCache::new(8);
        let executor = PlanExecutor::new(&cache).with_max_replans(2);
        let refs: Vec<Option<&[u8]>> = blocks.iter().map(|b| Some(&b[..])).collect();
        let mut source = FirstRequestFails {
            inner: MemorySource::new(refs, code.sub()),
        };
        match executor.read_stripe(&code, &mut source) {
            Err(ExecError::ReplansExhausted { attempts }) => assert_eq!(attempts, 3),
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn block_region_read_matches_stored_block() {
        let code = Carousel::new(6, 3, 3, 6).unwrap();
        let (_, blocks) = encoded(&code, 8);
        let layout = code.data_layout();
        let w = blocks[0].len() / code.sub();
        let cache = PlanCache::new(8);
        let executor = PlanExecutor::new(&cache);
        let refs: Vec<Option<&[u8]>> = blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (i != 1).then_some(&b[..]))
            .collect();
        let region = executor
            .read_block_region(&code, 1, &mut MemorySource::new(refs, code.sub()))
            .unwrap();
        assert_eq!(region.data, blocks[1][layout.data_byte_range(1, w)]);
    }

    #[test]
    fn repair_rebuilds_bit_identical_blocks() {
        for (n, k, d, p) in [(6, 3, 3, 6), (8, 4, 6, 8)] {
            let code = Carousel::new(n, k, d, p).unwrap();
            let (_, blocks) = encoded(&code, 8);
            let cache = PlanCache::new(8);
            let executor = PlanExecutor::new(&cache);
            let refs: Vec<Option<&[u8]>> = blocks
                .iter()
                .enumerate()
                .map(|(i, b)| (i != 0).then_some(&b[..]))
                .collect();
            let outcome = executor
                .repair_block(&code, 0, &mut MemorySource::new(refs, code.sub()))
                .unwrap();
            assert_eq!(outcome.block, blocks[0], "({n},{k},{d},{p})");
            let w = blocks[0].len() / code.sub();
            let expect_units: usize = code
                .repair_plan(0, &(1..=d).collect::<Vec<_>>())
                .unwrap()
                .traffic_units();
            assert_eq!(outcome.payload_bytes, expect_units * w);
        }
    }

    #[test]
    fn repeated_degraded_reads_hit_the_cache() {
        let code = Carousel::new(6, 3, 3, 6).unwrap();
        let cache = PlanCache::new(8);
        let executor = PlanExecutor::new(&cache);
        for _ in 0..10 {
            let (d, blocks) = encoded(&code, 8);
            let refs: Vec<Option<&[u8]>> = blocks
                .iter()
                .enumerate()
                .map(|(i, b)| (i != 4).then_some(&b[..]))
                .collect();
            let read = executor
                .read_stripe(&code, &mut MemorySource::new(refs, code.sub()))
                .unwrap();
            assert_eq!(&read.data[..d.len()], &d[..]);
        }
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 9);
        assert!(cache.hit_rate() >= 0.9);
    }
}
