//! The transport-agnostic *access layer*: plans as pure data, execution as
//! a generic state machine.
//!
//! The paper's central claims (§IV, §VII) are about access: a Carousel code
//! lets any of `p ≥ k` servers serve original data, degrades gracefully when
//! blocks are lost, and repairs with `d/(d−k+1)` traffic. Those behaviors
//! must be *identical* whether blocks sit in memory, behind a discrete-event
//! simulator, or across TCP — so the planning and replanning logic lives
//! here, once, and every transport implements a single small trait:
//!
//! * [`ReadPlan`] / [`DegradedPlan`] / [`RepairPlan`] — pure-data plans
//!   wrapping the algebraic kernels in `carousel` and `erasure`;
//! * [`BlockSource`] — what a transport must provide: availability, unit
//!   fetches, and (optionally pushed-down) helper-side repair reads;
//! * [`PlanExecutor`] — the one replanning loop: plan against believed
//!   availability, fetch, and on mid-read failure shrink the availability
//!   set and replan, up to a bounded number of attempts;
//! * [`PlanCache`] — memoizes the Gaussian eliminations behind decode and
//!   repair plans, keyed by the availability pattern, with
//!   `access.plan.cache.{hit,miss}` telemetry counters;
//! * [`ObjectStore`] / [`PutOptions`] — the unified mutable-object API
//!   (put/get/get_range/write_range/append/delete) every stack
//!   implements, so whole-object reads, in-place delta writes, appends
//!   and small-object packing behave identically across transports.
//!
//! The three in-tree transports are `filestore` (in-memory blocks, via
//! [`MemorySource`]), `dfs` (simulated datanodes) and `cluster` (real TCP
//! datanodes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod executor;
mod object;
mod plan;
mod source;

pub use cache::PlanCache;
pub use carousel::ReadMode;
pub use executor::{
    ExecError, FetchedStripe, PlanExecutor, RegionRead, RepairOutcome, StripeRead,
    DEFAULT_MAX_REPLANS,
};
pub use object::{ObjectStore, PutOptions};
pub use plan::{DegradedPlan, ReadPlan, RepairPlan};
pub use source::{BatchRequest, BlockSource, Fetch, MemorySource};

use carousel::Carousel;
use erasure::ErasureCode;

/// An erasure code the access layer can plan for.
///
/// Planning is generic over [`ErasureCode`] — any `k` available blocks
/// decode, any valid helper set repairs — but Carousel codes additionally
/// carry the carousel-specific degraded machinery (parity stand-ins at the
/// chosen rows, per-copy block-region solves). `as_carousel` is the hook
/// that lets the shared planner use those cheaper plans when they exist
/// without the transports knowing which code they serve.
pub trait AccessCode: ErasureCode {
    /// The concrete Carousel code, if this is one. The default (`None`)
    /// routes planning through the generic any-`k` paths.
    fn as_carousel(&self) -> Option<&Carousel> {
        None
    }
}

impl AccessCode for Carousel {
    fn as_carousel(&self) -> Option<&Carousel> {
        Some(self)
    }
}

impl AccessCode for rs_code::ReedSolomon {}

impl AccessCode for msr::ProductMatrixMsr {}

impl AccessCode for msr::ProductMatrixMbr {}
