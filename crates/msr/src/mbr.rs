//! Product-matrix minimum-bandwidth regenerating (MBR) codes.
//!
//! The other extreme of the storage/repair-bandwidth trade-off from the
//! same Rashmi–Shah–Kumar construction the paper builds Carousel codes on:
//! where MSR codes store the minimum (`file/k` per block) and repair with
//! `d/(d−k+1)` blocks of traffic, MBR codes store *more* per block
//! (`α = d` units against a message of `B = k(k+1)/2 + k(d−k)` units) and
//! repair any lost block with **exactly one block** of traffic — the
//! information-theoretic minimum bandwidth. Included as a comparison
//! point; it exercises the engine's non-MDS shape support
//! (`LinearCode::with_message_units`).
//!
//! Construction: the message fills a `d × d` symmetric matrix
//! `M = [[S, T], [Tᵀ, 0]]` (`S` symmetric `k × k`, `T` arbitrary
//! `k × (d−k)`); node `i` stores `ψᵢᵀM` for Vandermonde rows `ψᵢ`. Repair
//! of node `f`: helper `j` sends the single symbol `(ψⱼᵀM)·ψ_f`; stacking
//! `d` helpers gives `Ψ_R(Mψ_f)`, and by symmetry `ψ_fᵀM = (Mψ_f)ᵀ` — the
//! newcomer's combine matrix is just `Ψ_R⁻¹`.

use erasure::{CodeError, DataLayout, ErasureCode, HelperTask, LinearCode, RepairPlan};
use gf256::builders::upper_index;
use gf256::{Gf256, Matrix};

/// A systematic-remapped `(n, k, d)` product-matrix MBR code, `k ≤ d < n`.
///
/// # Examples
///
/// ```
/// use erasure::ErasureCode;
/// use msr::ProductMatrixMbr;
///
/// let code = ProductMatrixMbr::new(12, 6, 10)?;
/// let plan = code.repair_plan(0, &(1..=10).collect::<Vec<_>>())?;
/// // Exactly one block of repair traffic — the minimum possible.
/// assert!((plan.traffic_blocks(code.linear().sub()) - 1.0).abs() < 1e-9);
/// # Ok::<(), erasure::CodeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ProductMatrixMbr {
    n: usize,
    k: usize,
    d: usize,
    code: LinearCode,
    layout: DataLayout,
    /// Per-node unit permutation: `perms[i][stored] = pre-reorder unit`.
    perms: Vec<Vec<usize>>,
    /// Evaluation points of the Vandermonde `Ψ`.
    points: Vec<Gf256>,
}

impl ProductMatrixMbr {
    /// Constructs the code.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParameters`] unless `0 < k ≤ d < n ≤ 255`.
    pub fn new(n: usize, k: usize, d: usize) -> Result<Self, CodeError> {
        if k == 0 || k > d || d >= n {
            return Err(CodeError::InvalidParameters {
                reason: format!("require 0 < k <= d < n, got ({n}, {k}, {d})"),
            });
        }
        if n > 255 {
            return Err(CodeError::InvalidParameters {
                reason: format!("n = {n} exceeds the GF(2^8) limit of 255 blocks"),
            });
        }
        let b = Self::message_units_for(k, d);
        let points: Vec<Gf256> = (0..n).map(|i| Gf256::exp(i as u32)).collect();
        let raw = Self::raw_generator(n, k, d, &points, b);

        // Systematic remapping: greedily pick B independent rows (they come
        // from the first k nodes) and right-multiply by their inverse.
        let data_rows = raw
            .independent_rows(b)
            .ok_or(CodeError::SingularSelection)?;
        let sel_inv = raw
            .select_rows(&data_rows)
            .inverse()
            .ok_or(CodeError::SingularSelection)?;
        let remapped = &raw * &sel_inv;

        // Reorder: data units to the top of each node, in selection order.
        let mut perms: Vec<Vec<usize>> = Vec::with_capacity(n);
        let mut node_data: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (file_unit, &row) in data_rows.iter().enumerate() {
            node_data[row / d].push(file_unit);
        }
        for node in 0..n {
            let chosen: Vec<usize> = data_rows
                .iter()
                .filter(|&&r| r / d == node)
                .map(|&r| r % d)
                .collect();
            let mut perm = chosen.clone();
            perm.extend((0..d).filter(|u| !chosen.contains(u)));
            perms.push(perm);
        }
        let global: Vec<usize> = perms
            .iter()
            .enumerate()
            .flat_map(|(i, pm)| pm.iter().map(move |&u| i * d + u))
            .collect();
        let generator = remapped.permute_rows(&global);
        let code = LinearCode::with_message_units(n, k, d, b, generator)?;
        let layout = DataLayout::new(d, b, node_data);
        Ok(ProductMatrixMbr {
            n,
            k,
            d,
            code,
            layout,
            perms,
            points,
        })
    }

    /// Message units `B = k(k+1)/2 + k(d−k)`.
    pub fn message_units_for(k: usize, d: usize) -> usize {
        k * (k + 1) / 2 + k * (d - k)
    }

    /// Per-block storage in multiples of `file/k` (the MDS optimum is 1.0):
    /// `k·d / B ≥ 1`, the price paid for 1-block repairs.
    pub fn storage_expansion(&self) -> f64 {
        (self.k * self.d) as f64 / self.code.message_units() as f64
    }

    fn psi(points: &[Gf256], i: usize, d: usize) -> Vec<Gf256> {
        (0..d).map(|t| points[i].pow(t as u32)).collect()
    }

    /// `M[t][j]` as a message-symbol column index (`None` for the zero
    /// block).
    fn symbol_index(k: usize, d: usize, t: usize, j: usize) -> Option<usize> {
        let b1 = k * (k + 1) / 2;
        match (t < k, j < k) {
            (true, true) => Some(upper_index(k, t.min(j), t.max(j))),
            (true, false) => Some(b1 + t * (d - k) + (j - k)),
            (false, true) => Some(b1 + j * (d - k) + (t - k)),
            (false, false) => None,
        }
    }

    fn raw_generator(n: usize, k: usize, d: usize, points: &[Gf256], b: usize) -> Matrix {
        let mut g = Matrix::zeros(n * d, b);
        for i in 0..n {
            let psi = Self::psi(points, i, d);
            for j in 0..d {
                let row = i * d + j;
                for (t, &coeff) in psi.iter().enumerate() {
                    if let Some(col) = Self::symbol_index(k, d, t, j) {
                        let v = g.get(row, col) + coeff;
                        g.set(row, col, v);
                    }
                }
            }
        }
        g
    }
}

impl ErasureCode for ProductMatrixMbr {
    fn name(&self) -> String {
        format!("MBR({},{},{})", self.n, self.k, self.d)
    }

    fn linear(&self) -> &LinearCode {
        &self.code
    }

    fn d(&self) -> usize {
        self.d
    }

    fn data_layout(&self) -> DataLayout {
        self.layout.clone()
    }

    fn repair_plan(&self, failed: usize, helpers: &[usize]) -> Result<RepairPlan, CodeError> {
        if failed >= self.n {
            return Err(CodeError::NodeOutOfRange {
                node: failed,
                n: self.n,
            });
        }
        if helpers.contains(&failed) {
            return Err(CodeError::BadHelperSet {
                reason: format!("helper set contains the failed block {failed}"),
            });
        }
        if helpers.len() != self.d {
            return Err(CodeError::BadHelperSet {
                reason: format!(
                    "MBR repair needs exactly d = {} helpers, got {}",
                    self.d,
                    helpers.len()
                ),
            });
        }
        for (idx, &h) in helpers.iter().enumerate() {
            if h >= self.n {
                return Err(CodeError::NodeOutOfRange { node: h, n: self.n });
            }
            if helpers[idx + 1..].contains(&h) {
                return Err(CodeError::DuplicateNode { node: h });
            }
        }
        let psi_f = Self::psi(&self.points, failed, self.d);
        // Helper h computes psi_f . (pre-reorder block) from its stored
        // (reordered) block.
        let tasks: Vec<HelperTask> = helpers
            .iter()
            .map(|&h| {
                let perm = &self.perms[h];
                let mut coeffs = Matrix::zeros(1, self.d);
                for (stored, &orig) in perm.iter().enumerate() {
                    coeffs.set(0, stored, psi_f[orig]);
                }
                HelperTask { node: h, coeffs }
            })
            .collect();
        // Newcomer: pre-reorder block f = Psi_R^{-1} . payload (symmetry of
        // M); stored block applies f's permutation to the rows.
        let mut psi_r = Matrix::zeros(self.d, self.d);
        for (r, &h) in helpers.iter().enumerate() {
            for (c, &v) in Self::psi(&self.points, h, self.d).iter().enumerate() {
                psi_r.set(r, c, v);
            }
        }
        let inv = psi_r.inverse().ok_or(CodeError::SingularSelection)?;
        let perm_f = &self.perms[failed];
        let combine = Matrix::from_fn(self.d, self.d, |q, c| inv.get(perm_f[q], c));
        Ok(RepairPlan {
            failed,
            helpers: tasks,
            combine,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    #[test]
    fn parameter_validation() {
        assert!(ProductMatrixMbr::new(5, 0, 3).is_err());
        assert!(ProductMatrixMbr::new(5, 4, 3).is_err()); // k > d
        assert!(ProductMatrixMbr::new(5, 3, 5).is_err()); // d >= n
        assert!(ProductMatrixMbr::new(5, 3, 4).is_ok());
    }

    #[test]
    fn message_size_formula() {
        assert_eq!(ProductMatrixMbr::message_units_for(3, 4), 6 + 3);
        assert_eq!(ProductMatrixMbr::message_units_for(6, 10), 21 + 24);
        let code = ProductMatrixMbr::new(12, 6, 10).unwrap();
        assert_eq!(code.linear().message_units(), 45);
        assert!(code.storage_expansion() > 1.0, "MBR stores extra");
        assert!((code.storage_expansion() - 60.0 / 45.0).abs() < 1e-12);
    }

    #[test]
    fn systematic_layout_covers_first_k_nodes() {
        let code = ProductMatrixMbr::new(8, 4, 6).unwrap();
        let layout = code.data_layout();
        assert_eq!(layout.data_bearing_nodes(), 4);
        // Node 0 carries d = 6 data units; node k-1 carries d - k + 1 = 3.
        assert_eq!(layout.data_units_of(0).len(), 6);
        assert_eq!(layout.data_units_of(3).len(), 3);
        assert!(layout.data_units_of(4).is_empty());
    }

    #[test]
    fn data_regions_hold_raw_file_bytes() {
        let code = ProductMatrixMbr::new(8, 4, 6).unwrap();
        let b = code.linear().message_units();
        let data: Vec<u8> = (0..b * 8).map(|i| (i * 19 + 5) as u8).collect();
        let stripe = code.linear().encode(&data).unwrap();
        let layout = code.data_layout();
        let w = stripe.unit_bytes;
        for node in 0..4 {
            for (unit, &fu) in layout.data_units_of(node).iter().enumerate() {
                assert_eq!(
                    &stripe.blocks[node][unit * w..(unit + 1) * w],
                    &data[fu * w..(fu + 1) * w],
                    "node {node} unit {unit}"
                );
            }
        }
    }

    #[test]
    fn any_k_nodes_decode() {
        let code = ProductMatrixMbr::new(7, 3, 5).unwrap();
        let b = code.linear().message_units();
        let data: Vec<u8> = (0..b * 4).map(|i| (i * 7 + 1) as u8).collect();
        let stripe = code.linear().encode(&data).unwrap();
        for nodes in [[0usize, 1, 2], [4, 5, 6], [0, 3, 6], [6, 2, 4]] {
            let blocks: Vec<&[u8]> = nodes.iter().map(|&i| &stripe.blocks[i][..]).collect();
            let out = code.linear().decode_nodes(&nodes, &blocks).unwrap();
            assert_eq!(&out[..data.len()], &data[..], "{nodes:?}");
        }
    }

    #[test]
    fn repair_traffic_is_exactly_one_block() {
        for (n, k, d) in [(5, 3, 4), (8, 4, 6), (12, 6, 10), (6, 3, 3)] {
            let code = ProductMatrixMbr::new(n, k, d).unwrap();
            let b = code.linear().message_units();
            let data: Vec<u8> = (0..b * 4).map(|i| (i * 13 + 3) as u8).collect();
            let stripe = code.linear().encode(&data).unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(9);
            for failed in 0..n {
                let mut pool: Vec<usize> = (0..n).filter(|&i| i != failed).collect();
                pool.shuffle(&mut rng);
                let helpers: Vec<usize> = pool.into_iter().take(d).collect();
                let plan = code.repair_plan(failed, &helpers).unwrap();
                let blocks: Vec<&[u8]> = helpers.iter().map(|&i| &stripe.blocks[i][..]).collect();
                let (rebuilt, traffic) = plan.run(&blocks).unwrap();
                assert_eq!(rebuilt, stripe.blocks[failed], "({n},{k},{d}) f={failed}");
                assert_eq!(
                    traffic,
                    stripe.block_bytes(),
                    "({n},{k},{d}): MBR repair moves exactly one block"
                );
            }
        }
    }

    #[test]
    fn repair_validates_helper_sets() {
        let code = ProductMatrixMbr::new(8, 4, 6).unwrap();
        assert!(code.repair_plan(0, &[1, 2, 3, 4, 5]).is_err());
        assert!(code.repair_plan(0, &[0, 1, 2, 3, 4, 5]).is_err());
        assert!(code.repair_plan(0, &[1, 1, 2, 3, 4, 5]).is_err());
        assert!(code.repair_plan(9, &[1, 2, 3, 4, 5, 6]).is_err());
    }

    #[test]
    fn mbr_vs_msr_tradeoff() {
        // Same (n, k, d): MSR repairs with d/(d-k+1) blocks at 1.0x storage;
        // MBR repairs with 1 block at k*d/B x storage.
        let msr = crate::ProductMatrixMsr::new(12, 6, 10).unwrap();
        let mbr = ProductMatrixMbr::new(12, 6, 10).unwrap();
        assert!((msr.optimal_repair_blocks() - 2.0).abs() < 1e-12);
        let helpers: Vec<usize> = (1..=10).collect();
        let t = mbr
            .repair_plan(0, &helpers)
            .unwrap()
            .traffic_blocks(mbr.linear().sub());
        assert!((t - 1.0).abs() < 1e-12);
        assert!(mbr.storage_expansion() > 1.0);
    }
}
