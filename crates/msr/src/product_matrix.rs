//! The native product-matrix MSR construction at the point `d = 2k − 2`.
//!
//! Following Rashmi et al.: with `α = k − 1` and `B = kα` message symbols,
//! the message is arranged as `M = [S₁; S₂]` where `S₁, S₂` are symmetric
//! `α × α` matrices each filled from `α(α+1)/2` symbols. The encoding matrix
//! is `Ψ = [Φ  ΛΦ]` with `Φ` Vandermonde and `Λ = diag(λ_i)`, `λ_i = x_i^α`,
//! so `ψ_i = [1, x_i, …, x_i^{d−1}]` — any `d` rows of `Ψ` are linearly
//! independent, any `α` rows of `Φ` are linearly independent, and the `λ_i`
//! are chosen distinct. Block `i` stores the `α` symbols `ψ_iᵀ M`.
//!
//! Repair of block `f`: helper `j` sends the single symbol
//! `(ψ_jᵀ M)·φ_f`; stacking `d` of those gives `Ψ_R (M φ_f)`, the newcomer
//! inverts `Ψ_R`, recovers `M φ_f = [S₁φ_f; S₂φ_f]`, and by symmetry of
//! `S₁, S₂` reassembles `ψ_fᵀ M = (S₁φ_f)ᵀ + λ_f (S₂φ_f)ᵀ`.

use erasure::CodeError;
use gf256::builders::{distinct_points_with_distinct_powers, upper_index};
use gf256::{Gf256, Matrix};

/// The raw (non-systematic) product-matrix MSR code at `d = 2k − 2`.
#[derive(Debug, Clone)]
pub struct RawMsr {
    n: usize,
    k: usize,
    /// Evaluation points `x_i`, one per block.
    points: Vec<Gf256>,
}

impl RawMsr {
    /// Builds the raw construction for `n` blocks and dimension `k ≥ 2` at
    /// the native point `d = 2k − 2`.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParameters`] if `k < 2`, if `d ≥ n` fails,
    /// or if GF(2⁸) cannot supply `n` points with distinct `α`-th powers.
    pub fn new(n: usize, k: usize) -> Result<Self, CodeError> {
        if k < 2 {
            return Err(CodeError::InvalidParameters {
                reason: "product-matrix MSR requires k >= 2".into(),
            });
        }
        let d = 2 * k - 2;
        if d >= n {
            return Err(CodeError::InvalidParameters {
                reason: format!("require d = 2k - 2 = {d} < n = {n}"),
            });
        }
        let alpha = k - 1;
        let points = distinct_points_with_distinct_powers(n, alpha as u32).ok_or_else(|| {
            CodeError::InvalidParameters {
                reason: format!(
                    "GF(2^8) lacks {n} evaluation points with distinct {alpha}-th powers"
                ),
            }
        })?;
        Ok(RawMsr { n, k, points })
    }

    /// Number of blocks.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Code dimension.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Helpers per repair, `d = 2k − 2`.
    pub fn d(&self) -> usize {
        2 * self.k - 2
    }

    /// Segments per block, `α = k − 1`.
    pub fn alpha(&self) -> usize {
        self.k - 1
    }

    /// Message symbols, `B = kα`.
    pub fn message_symbols(&self) -> usize {
        self.k * self.alpha()
    }

    /// The repair vector `ψ_i = [1, x_i, …, x_i^{d−1}]` of block `i`.
    pub fn psi(&self, i: usize) -> Vec<Gf256> {
        let x = self.points[i];
        (0..self.d()).map(|t| x.pow(t as u32)).collect()
    }

    /// The projection vector `φ_i = [1, x_i, …, x_i^{α−1}]` of block `i`.
    pub fn phi(&self, i: usize) -> Vec<Gf256> {
        let x = self.points[i];
        (0..self.alpha()).map(|t| x.pow(t as u32)).collect()
    }

    /// `λ_i = x_i^α`.
    pub fn lambda(&self, i: usize) -> Gf256 {
        self.points[i].pow(self.alpha() as u32)
    }

    /// Builds the `(n·α) × B` generator matrix.
    ///
    /// Message columns are ordered: the `α(α+1)/2` upper-triangle symbols of
    /// `S₁`, then those of `S₂`. Generator row `(i, j)` expresses segment `j`
    /// of block `i`, i.e. `Σ_t ψ_i[t] · M[t][j]`.
    pub fn generator(&self) -> Matrix {
        let alpha = self.alpha();
        let d = self.d();
        let b1 = alpha * (alpha + 1) / 2;
        let b = self.message_symbols();
        let mut g = Matrix::zeros(self.n * alpha, b);
        for i in 0..self.n {
            let psi = self.psi(i);
            for j in 0..alpha {
                let row = i * alpha + j;
                for (t, &coeff) in psi.iter().enumerate().take(d) {
                    let (s_row, offset) = if t < alpha { (t, 0) } else { (t - alpha, b1) };
                    let (lo, hi) = if s_row <= j { (s_row, j) } else { (j, s_row) };
                    let col = offset + upper_index(alpha, lo, hi);
                    let v = g.get(row, col) + coeff;
                    g.set(row, col, v);
                }
            }
        }
        g
    }

    /// The `d × d` repair matrix `Ψ_R` whose rows are `ψ_j` for the given
    /// helper blocks, in order.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::BadHelperSet`] if the count is not `d`.
    pub fn psi_stack(&self, helpers: &[usize]) -> Result<Matrix, CodeError> {
        if helpers.len() != self.d() {
            return Err(CodeError::BadHelperSet {
                reason: format!("need {} helpers, got {}", self.d(), helpers.len()),
            });
        }
        let d = self.d();
        let mut m = Matrix::zeros(d, d);
        for (r, &h) in helpers.iter().enumerate() {
            let psi = self.psi(h);
            for (c, &v) in psi.iter().enumerate() {
                m.set(r, c, v);
            }
        }
        Ok(m)
    }

    /// Newcomer combine matrix for repairing block `failed` from the given
    /// helpers (in order): `[I_α | λ_f I_α] · Ψ_R⁻¹`, of shape `α × d`.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::BadHelperSet`] for a wrong-size helper set and
    /// [`CodeError::SingularSelection`] if `Ψ_R` is singular (cannot happen
    /// with distinct evaluation points).
    pub fn repair_combine(&self, failed: usize, helpers: &[usize]) -> Result<Matrix, CodeError> {
        let psi_r = self.psi_stack(helpers)?;
        let inv = psi_r.inverse().ok_or(CodeError::SingularSelection)?;
        let alpha = self.alpha();
        let lambda = self.lambda(failed);
        // Selector [I | λI] picks (S1 φ_f)[j] + λ_f (S2 φ_f)[j].
        let selector = Matrix::from_fn(alpha, self.d(), |r, c| {
            if c == r {
                Gf256::ONE
            } else if c == r + alpha {
                lambda
            } else {
                Gf256::ZERO
            }
        });
        Ok(&selector * &inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validations() {
        assert!(RawMsr::new(5, 1).is_err());
        assert!(RawMsr::new(4, 3).is_err()); // d = 4 >= n = 4
        assert!(RawMsr::new(5, 3).is_ok()); // d = 4 < 5
    }

    #[test]
    fn generator_shape_and_rank() {
        let raw = RawMsr::new(6, 3).unwrap();
        let g = raw.generator();
        assert_eq!((g.rows(), g.cols()), (12, 6));
        assert_eq!(g.rank(), 6, "generator must have full column rank");
    }

    #[test]
    fn psi_is_geometric_progression() {
        let raw = RawMsr::new(6, 3).unwrap();
        let psi = raw.psi(2);
        assert_eq!(psi[0], Gf256::ONE);
        for t in 1..psi.len() {
            assert_eq!(psi[t], psi[1].pow(t as u32));
        }
        // phi is the prefix of psi, and lambda the next power.
        let phi = raw.phi(2);
        assert_eq!(&psi[..phi.len()], &phi[..]);
        assert_eq!(raw.lambda(2), psi[1].pow(raw.alpha() as u32));
    }

    #[test]
    fn any_d_psi_rows_invertible() {
        let raw = RawMsr::new(7, 3).unwrap();
        // d = 4; check a few subsets including adversarial ones.
        for helpers in [[0usize, 1, 2, 3], [3, 4, 5, 6], [0, 2, 4, 6], [6, 0, 5, 1]] {
            assert!(raw.psi_stack(&helpers).unwrap().is_invertible());
        }
    }

    #[test]
    fn repair_algebra_identity() {
        // Verify symbolically: for every failed node f and helper set H,
        // combine · [ψ_j M φ_f]_j == ψ_f M for random symmetric S1, S2.
        let raw = RawMsr::new(6, 3).unwrap();
        let alpha = raw.alpha();
        // Random-ish symmetric matrices.
        let s1 = gf256::builders::symmetric_from_upper(
            alpha,
            &[Gf256::new(7), Gf256::new(19), Gf256::new(42)],
        );
        let s2 = gf256::builders::symmetric_from_upper(
            alpha,
            &[Gf256::new(3), Gf256::new(88), Gf256::new(201)],
        );
        let m = s1.vstack(&s2); // d x alpha
        for failed in 0..6 {
            let helpers: Vec<usize> = (0..6).filter(|&i| i != failed).take(raw.d()).collect();
            let phi_f = raw.phi(failed);
            // Helper payload: psi_j^T M phi_f.
            let payloads: Vec<Gf256> = helpers
                .iter()
                .map(|&j| {
                    let row = Matrix::from_fn(1, raw.d(), |_, c| raw.psi(j)[c]);
                    let col = Matrix::from_fn(alpha, 1, |r, _| phi_f[r]);
                    (&(&row * &m) * &col).get(0, 0)
                })
                .collect();
            let combine = raw.repair_combine(failed, &helpers).unwrap();
            let payload_col = Matrix::from_fn(raw.d(), 1, |r, _| payloads[r]);
            let rebuilt = &combine * &payload_col;
            // Expected: psi_f^T M.
            let psi_row = Matrix::from_fn(1, raw.d(), |_, c| raw.psi(failed)[c]);
            let expected = &psi_row * &m; // 1 x alpha
            for j in 0..alpha {
                assert_eq!(rebuilt.get(j, 0), expected.get(0, j), "f={failed} seg={j}");
            }
        }
    }
}
