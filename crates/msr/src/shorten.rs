//! Shortening: product-matrix MSR codes for `d > 2k − 2`.
//!
//! The native product-matrix construction exists only at `d = 2k − 2`, but
//! the paper's evaluation uses `d = 2k − 1`. The standard lift is
//! *shortening*: to build `(n, k, d)` with `i = d − 2k + 2 > 0`,
//!
//! 1. build the auxiliary `(n+i, k+i, d+i)` code, which sits at its native
//!    point (`d+i = 2(k+i) − 2`) and has the same `α = d − k + 1`;
//! 2. remap it to systematic form (Rashmi et al., Theorem 1): right-multiply
//!    the generator by the inverse of its first `(k+i)·α` rows;
//! 3. fix the first `i` blocks' data to zero and drop those blocks and the
//!    corresponding message columns.
//!
//! The dropped blocks are systematic blocks storing all-zero data, so during
//! repair they would contribute all-zero segments: the newcomer can simply
//! skip them, which is why `d` real helpers suffice and the repair traffic
//! stays at the optimal `d/(d−k+1)` blocks. When `i = 0` only the
//! systematic remapping is applied.

use erasure::{CodeError, LinearCode};
use gf256::{Gf256, Matrix};

use crate::product_matrix::RawMsr;

/// An `(n, k, d)` systematic MSR code realized by shortening an auxiliary
/// native-point product-matrix code by `i = d − 2k + 2` blocks.
#[derive(Debug, Clone)]
pub struct ShortenedMsr {
    n: usize,
    k: usize,
    d: usize,
    /// Shortening amount.
    i: usize,
    /// The auxiliary `(n+i, k+i)` native-point construction.
    raw: RawMsr,
    /// Final `n·α × k·α` generator (systematic in the first `k` blocks).
    generator: Matrix,
}

impl ShortenedMsr {
    /// Builds the shortened construction.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParameters`] unless `k ≥ 2` and
    /// `2k − 2 ≤ d < n` and the auxiliary construction is realizable in
    /// GF(2⁸).
    pub fn new(n: usize, k: usize, d: usize) -> Result<Self, CodeError> {
        if k < 2 {
            return Err(CodeError::InvalidParameters {
                reason: "MSR codes require k >= 2 (use RS for k < 2 or d = k)".into(),
            });
        }
        if d < 2 * k - 2 {
            return Err(CodeError::InvalidParameters {
                reason: format!("product-matrix MSR requires d >= 2k - 2 (got d = {d}, k = {k})"),
            });
        }
        if d >= n {
            return Err(CodeError::InvalidParameters {
                reason: format!("require d = {d} < n = {n}"),
            });
        }
        let i = d - (2 * k - 2);
        let raw = RawMsr::new(n + i, k + i)?;
        debug_assert_eq!(raw.d(), d + i);
        debug_assert_eq!(raw.alpha(), d - k + 1);
        let alpha = raw.alpha();
        let kb = k + i;

        // Systematic remapping: G_sys = G_aux · (top (k+i)·α rows)⁻¹.
        let g_aux = raw.generator();
        let top_rows: Vec<usize> = (0..kb * alpha).collect();
        let top_inv =
            g_aux
                .select_rows(&top_rows)
                .inverse()
                .ok_or_else(|| CodeError::InvalidParameters {
                    reason: "auxiliary MSR generator's systematic block is singular".into(),
                })?;
        let g_sys = &g_aux * &top_inv;

        // Shorten: drop the first i blocks (rows) and their zeroed message
        // symbols (columns).
        let rows: Vec<usize> = (i * alpha..(n + i) * alpha).collect();
        let cols: Vec<usize> = (i * alpha..kb * alpha).collect();
        let generator = g_sys.select(&rows, &cols);

        Ok(ShortenedMsr {
            n,
            k,
            d,
            i,
            raw,
            generator,
        })
    }

    /// Helpers per repair.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Segments per block.
    pub fn alpha(&self) -> usize {
        self.d - self.k + 1
    }

    /// The shortening amount `i = d − 2k + 2`.
    pub fn shortening(&self) -> usize {
        self.i
    }

    /// Wraps the generator as a [`LinearCode`].
    ///
    /// # Errors
    ///
    /// Never fails for a successfully constructed `ShortenedMsr`; the
    /// `Result` mirrors [`LinearCode::new`].
    pub fn linear_code(&self) -> Result<LinearCode, CodeError> {
        LinearCode::new(self.n, self.k, self.alpha(), self.generator.clone())
    }

    /// Repair matrices for `failed` given `d` distinct real helpers: the
    /// per-helper compression rows (each helper projects its `α` segments
    /// onto `φ_f`) and the `α × d` newcomer combine matrix.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::BadHelperSet`] / [`CodeError::NodeOutOfRange`]
    /// for malformed helper sets.
    pub fn repair_matrices(
        &self,
        failed: usize,
        helpers: &[usize],
    ) -> Result<(Vec<Vec<Gf256>>, Matrix), CodeError> {
        for (idx, &h) in helpers.iter().enumerate() {
            if h >= self.n {
                return Err(CodeError::NodeOutOfRange { node: h, n: self.n });
            }
            if helpers[idx + 1..].contains(&h) {
                return Err(CodeError::DuplicateNode { node: h });
            }
        }
        let aux_failed = failed + self.i;
        // Auxiliary helper set: the i dropped (all-zero) blocks, then the
        // real helpers shifted by i.
        let mut aux_helpers: Vec<usize> = (0..self.i).collect();
        aux_helpers.extend(helpers.iter().map(|&h| h + self.i));
        let combine_full = self.raw.repair_combine(aux_failed, &aux_helpers)?;
        // Dropped helpers contribute all-zero payloads; drop their columns.
        let rows: Vec<usize> = (0..combine_full.rows()).collect();
        let cols: Vec<usize> = (self.i..combine_full.cols()).collect();
        let combine = combine_full.select(&rows, &cols);
        let phi_f = self.raw.phi(aux_failed);
        let helper_rows = vec![phi_f; helpers.len()];
        Ok((helper_rows, combine))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shortening_amounts() {
        assert_eq!(ShortenedMsr::new(6, 3, 4).unwrap().shortening(), 0);
        assert_eq!(ShortenedMsr::new(6, 3, 5).unwrap().shortening(), 1);
        assert_eq!(ShortenedMsr::new(10, 3, 7).unwrap().shortening(), 3);
    }

    #[test]
    fn generator_is_systematic() {
        let s = ShortenedMsr::new(8, 4, 7).unwrap();
        let code = s.linear_code().unwrap();
        let b = code.message_units();
        let top: Vec<usize> = (0..b).collect();
        assert!(code.generator().select_rows(&top).is_identity());
    }

    #[test]
    fn alpha_matches_definition() {
        for (n, k, d) in [(6, 3, 4), (8, 4, 7), (12, 6, 10), (12, 6, 11)] {
            let s = ShortenedMsr::new(n, k, d).unwrap();
            assert_eq!(s.alpha(), d - k + 1);
        }
    }

    #[test]
    fn repair_matrices_shapes() {
        let s = ShortenedMsr::new(8, 4, 7).unwrap();
        let helpers: Vec<usize> = (1..8).collect();
        let (rows, combine) = s.repair_matrices(0, &helpers).unwrap();
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[0].len(), s.alpha());
        assert_eq!((combine.rows(), combine.cols()), (s.alpha(), 7));
    }

    #[test]
    fn repair_matrices_validate() {
        let s = ShortenedMsr::new(6, 3, 5).unwrap();
        assert!(s.repair_matrices(0, &[1, 2, 3, 4, 9]).is_err());
        assert!(s.repair_matrices(0, &[1, 1, 2, 3, 4]).is_err());
    }

    #[test]
    fn deep_shortening_still_decodes() {
        // i = 3: exercises multi-block shortening.
        let s = ShortenedMsr::new(10, 3, 7).unwrap();
        let code = s.linear_code().unwrap();
        let data: Vec<u8> = (0..s.alpha() * 3 * 2).map(|i| (i * 3 + 1) as u8).collect();
        let stripe = code.encode(&data).unwrap();
        let nodes = [9usize, 4, 0];
        let blocks: Vec<&[u8]> = nodes.iter().map(|&i| &stripe.blocks[i][..]).collect();
        let out = code.decode_nodes(&nodes, &blocks).unwrap();
        assert_eq!(&out[..data.len()], &data[..]);
    }
}
