//! Product-matrix minimum-storage regenerating (MSR) codes.
//!
//! Implements the construction of Rashmi, Shah and Kumar ("Optimal
//! Exact-Regenerating Codes … via a Product-Matrix Construction", IEEE
//! Trans. IT 2011), which the paper uses as the base of Carousel codes for
//! `d ≥ 2k − 2` (§VI, footnote 2). An `(n, k, d)` MSR code stores `α =
//! d − k + 1` segments per block and repairs a lost block by downloading
//! **one** segment from each of `d` helpers — `d/(d−k+1)` block-sizes of
//! traffic, the information-theoretic optimum proved by Dimakis et al.
//!
//! * [`product_matrix`] builds the native `d = 2k − 2` code;
//! * [`shorten`] lifts it to any `d > 2k − 2` (the paper's evaluation uses
//!   `d = 2k − 1`) by constructing an `(n+i, k+i, d+i)` code, remapping it
//!   systematic and zeroing/dropping the first `i` blocks;
//! * [`ProductMatrixMsr`] is the resulting systematic code with repair plans.
//!
//! # Examples
//!
//! ```
//! use erasure::ErasureCode;
//! use msr::ProductMatrixMsr;
//!
//! // The paper's Fig 6 setting for k = 4: n = 2k, d = 2k - 1.
//! let code = ProductMatrixMsr::new(8, 4, 7)?;
//! assert_eq!(code.alpha(), 4);
//! let plan = code.repair_plan(0, &[1, 2, 3, 4, 5, 6, 7])?;
//! // 7 helpers send one of 4 segments each: 7/4 blocks instead of 4.
//! assert!((plan.traffic_blocks(code.alpha()) - 7.0 / 4.0).abs() < 1e-9);
//! # Ok::<(), erasure::CodeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mbr;
pub mod product_matrix;
pub mod shorten;

use erasure::{CodeError, DataLayout, ErasureCode, HelperTask, LinearCode, RepairPlan};
use gf256::{Gf256, Matrix};

use shorten::ShortenedMsr;

pub use mbr::ProductMatrixMbr;

/// A systematic `(n, k, d)` product-matrix MSR code, `d ≥ 2k − 2`.
///
/// Blocks consist of `α = d − k + 1` segments. The first `k` blocks hold the
/// original data verbatim; any `k` blocks decode it (MDS); any `d` surviving
/// blocks repair a lost one with `d/α` blocks of network traffic.
#[derive(Debug, Clone)]
pub struct ProductMatrixMsr {
    inner: ShortenedMsr,
    code: LinearCode,
}

impl ProductMatrixMsr {
    /// Constructs the code.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParameters`] unless `2 ≤ k`,
    /// `max(k, 2k − 2) ≤ d < n`, and GF(2⁸) has enough suitable evaluation
    /// points for the auxiliary `(n+i, k+i, d+i)` construction.
    pub fn new(n: usize, k: usize, d: usize) -> Result<Self, CodeError> {
        let inner = ShortenedMsr::new(n, k, d)?;
        let code = inner.linear_code()?;
        Ok(ProductMatrixMsr { inner, code })
    }

    /// Segments per block, `α = d − k + 1`.
    pub fn alpha(&self) -> usize {
        self.inner.alpha()
    }

    /// The optimal repair traffic in block-sizes, `d / (d − k + 1)`.
    pub fn optimal_repair_blocks(&self) -> f64 {
        self.inner.d() as f64 / self.alpha() as f64
    }
}

impl ErasureCode for ProductMatrixMsr {
    fn name(&self) -> String {
        format!("MSR({},{},{})", self.n(), self.k(), self.inner.d())
    }

    fn linear(&self) -> &LinearCode {
        &self.code
    }

    fn d(&self) -> usize {
        self.inner.d()
    }

    fn data_layout(&self) -> DataLayout {
        DataLayout::systematic(self.n(), self.k(), self.alpha())
    }

    fn repair_plan(&self, failed: usize, helpers: &[usize]) -> Result<RepairPlan, CodeError> {
        let n = self.n();
        if failed >= n {
            return Err(CodeError::NodeOutOfRange { node: failed, n });
        }
        if helpers.contains(&failed) {
            return Err(CodeError::BadHelperSet {
                reason: format!("helper set contains the failed block {failed}"),
            });
        }
        if helpers.len() != self.inner.d() {
            return Err(CodeError::BadHelperSet {
                reason: format!(
                    "MSR repair needs exactly d = {} helpers, got {}",
                    self.inner.d(),
                    helpers.len()
                ),
            });
        }
        let (helper_rows, combine) = self.inner.repair_matrices(failed, helpers)?;
        let tasks = helpers
            .iter()
            .zip(helper_rows)
            .map(|(&node, row)| HelperTask {
                node,
                coeffs: row_matrix(&row),
            })
            .collect();
        Ok(RepairPlan {
            failed,
            helpers: tasks,
            combine,
        })
    }
}

/// Wraps a coefficient vector as a `1 × len` matrix.
fn row_matrix(row: &[Gf256]) -> Matrix {
    Matrix::from_fn(1, row.len(), |_, c| row[c])
}

#[cfg(test)]
mod tests {
    use super::*;
    use erasure::mds::verify_mds;
    use proptest::prelude::*;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid_parameters() {
        // d below 2k-2.
        assert!(ProductMatrixMsr::new(8, 4, 5).is_err());
        // d >= n.
        assert!(ProductMatrixMsr::new(6, 3, 6).is_err());
        // k < 2 has no MSR regime.
        assert!(ProductMatrixMsr::new(4, 1, 2).is_err());
    }

    #[test]
    fn native_point_d_equals_2k_minus_2() {
        let code = ProductMatrixMsr::new(6, 3, 4).unwrap();
        assert_eq!(code.alpha(), 2);
        assert_eq!(code.linear().sub(), 2);
        assert!(verify_mds(code.linear(), 200).is_mds());
    }

    #[test]
    fn shortened_point_d_equals_2k_minus_1() {
        // The paper's evaluation setting.
        let code = ProductMatrixMsr::new(8, 4, 7).unwrap();
        assert_eq!(code.alpha(), 4);
        assert!(verify_mds(code.linear(), 200).is_mds());
    }

    #[test]
    fn systematic_property_bytes() {
        let code = ProductMatrixMsr::new(6, 3, 5).unwrap();
        let data: Vec<u8> = (0..90).map(|i| (i * 17 + 1) as u8).collect();
        let stripe = code.linear().encode(&data).unwrap();
        let per_block = data.len() / 3;
        for i in 0..3 {
            assert_eq!(
                &stripe.blocks[i][..per_block],
                &data[i * per_block..(i + 1) * per_block],
                "block {i} should be systematic"
            );
        }
    }

    #[test]
    fn decode_from_any_k_blocks() {
        let code = ProductMatrixMsr::new(6, 3, 4).unwrap();
        let data: Vec<u8> = (0..66).map(|i| (i * 7 + 2) as u8).collect();
        let stripe = code.linear().encode(&data).unwrap();
        for nodes in [[3usize, 4, 5], [0, 2, 4], [5, 1, 0]] {
            let blocks: Vec<&[u8]> = nodes.iter().map(|&i| &stripe.blocks[i][..]).collect();
            let out = code.linear().decode_nodes(&nodes, &blocks).unwrap();
            assert_eq!(&out[..data.len()], &data[..]);
        }
    }

    #[test]
    fn repair_all_blocks_optimal_traffic() {
        for (n, k, d) in [(6, 3, 4), (6, 3, 5), (8, 4, 6), (8, 4, 7), (12, 6, 10)] {
            let code = ProductMatrixMsr::new(n, k, d).unwrap();
            let alpha = code.alpha();
            let data: Vec<u8> = (0..k * alpha * 8).map(|i| (i * 13 + 5) as u8).collect();
            let stripe = code.linear().encode(&data).unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(42);
            for failed in 0..n {
                let mut pool: Vec<usize> = (0..n).filter(|&i| i != failed).collect();
                pool.shuffle(&mut rng);
                let helpers: Vec<usize> = pool.into_iter().take(d).collect();
                let plan = code.repair_plan(failed, &helpers).unwrap();
                let blocks: Vec<&[u8]> = helpers.iter().map(|&i| &stripe.blocks[i][..]).collect();
                let (rebuilt, traffic) = plan.run(&blocks).unwrap();
                assert_eq!(
                    rebuilt, stripe.blocks[failed],
                    "({n},{k},{d}) block {failed}"
                );
                // Optimal: d segments of block_bytes / alpha each.
                assert_eq!(traffic, d * stripe.block_bytes() / alpha);
                let expect = d as f64 / alpha as f64;
                assert!((plan.traffic_blocks(alpha) - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn repair_validates_helper_sets() {
        let code = ProductMatrixMsr::new(8, 4, 7).unwrap();
        assert!(code.repair_plan(0, &[1, 2, 3, 4, 5, 6]).is_err());
        assert!(code.repair_plan(0, &[0, 1, 2, 3, 4, 5, 6]).is_err());
        assert!(code.repair_plan(0, &[1, 1, 2, 3, 4, 5, 6]).is_err());
        assert!(code.repair_plan(0, &[1, 2, 3, 4, 5, 6, 9]).is_err());
    }

    #[test]
    fn name_reports_parameters() {
        let code = ProductMatrixMsr::new(8, 4, 7).unwrap();
        assert_eq!(code.name(), "MSR(8,4,7)");
        assert_eq!(code.parallelism(), 4);
        assert!((code.optimal_repair_blocks() - 1.75).abs() < 1e-12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn prop_mds_and_repair_random(
            k in 2usize..5,
            d_off in 0usize..2,
            extra in 1usize..4,
            seed in any::<u64>(),
        ) {
            let d = (2 * k - 2 + d_off).max(k);
            let n = d + extra;
            let code = ProductMatrixMsr::new(n, k, d).unwrap();
            prop_assert!(verify_mds(code.linear(), 100).is_mds());
            let alpha = code.alpha();
            let data: Vec<u8> = (0..k * alpha * 4).map(|i| (i * 31) as u8).collect();
            let stripe = code.linear().encode(&data).unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let failed = (seed as usize) % n;
            let mut pool: Vec<usize> = (0..n).filter(|&i| i != failed).collect();
            pool.shuffle(&mut rng);
            let helpers: Vec<usize> = pool.into_iter().take(d).collect();
            let plan = code.repair_plan(failed, &helpers).unwrap();
            let blocks: Vec<&[u8]> = helpers.iter().map(|&i| &stripe.blocks[i][..]).collect();
            let (rebuilt, _) = plan.run(&blocks).unwrap();
            prop_assert_eq!(rebuilt, stripe.blocks[failed].clone());
        }
    }
}
