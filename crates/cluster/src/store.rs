//! Per-datanode persistent block storage.
//!
//! One directory per datanode; one file per stored block, named
//! `<file>.s<stripe>.b<block>.blk`, holding the block bytes followed by a
//! 4-byte CRC-32 trailer (the same IEEE CRC as `filestore::checksum`).
//! Reads verify the trailer and *quarantine* corrupt files — they are
//! reported as missing so the erasure code repairs them, mirroring the
//! `filestore::format` loader's behavior.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use filestore::checksum::crc32;

use crate::error::ClusterError;
use crate::protocol::BlockId;

/// A datanode's on-disk block store.
#[derive(Debug)]
pub struct BlockStore {
    root: PathBuf,
}

impl BlockStore {
    /// Opens (creating if absent) a block store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, ClusterError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(BlockStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_for(&self, id: &BlockId) -> Result<PathBuf, ClusterError> {
        id.validate()?;
        Ok(self.root.join(format!(
            "{}.s{:05}.b{:03}.blk",
            id.file, id.stripe, id.block
        )))
    }

    /// Stores a block, overwriting any previous version. The write goes to
    /// a temporary file first and is renamed into place, so a crashed
    /// datanode never leaves a half-written block behind.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Protocol`] for invalid ids and
    /// [`ClusterError::Io`] for filesystem failures.
    pub fn put(&self, id: &BlockId, data: &[u8]) -> Result<(), ClusterError> {
        let path = self.path_for(id)?;
        let tmp = path.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(data)?;
            f.write_all(&crc32(data).to_le_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        Ok(())
    }

    /// Fetches a block's bytes. Returns `None` when the block is absent
    /// *or* fails its CRC trailer (quarantined: the caller treats it as
    /// lost and lets the code recover it).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Protocol`] for invalid ids and
    /// [`ClusterError::Io`] for filesystem failures other than absence.
    pub fn get(&self, id: &BlockId) -> Result<Option<Vec<u8>>, ClusterError> {
        let path = self.path_for(id)?;
        let mut bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        if bytes.len() < 4 {
            return Ok(None);
        }
        let crc_pos = bytes.len() - 4;
        let stored = u32::from_le_bytes([
            bytes[crc_pos],
            bytes[crc_pos + 1],
            bytes[crc_pos + 2],
            bytes[crc_pos + 3],
        ]);
        bytes.truncate(crc_pos);
        if crc32(&bytes) != stored {
            return Ok(None);
        }
        Ok(Some(bytes))
    }

    /// Reports a block's presence as `(length, crc32)` without reading it
    /// back in full for the caller. Quarantined blocks report as absent.
    ///
    /// # Errors
    ///
    /// Same as [`BlockStore::get`].
    pub fn stat(&self, id: &BlockId) -> Result<Option<(u32, u32)>, ClusterError> {
        Ok(self
            .get(id)?
            .map(|bytes| (bytes.len() as u32, crc32(&bytes))))
    }

    /// Removes a block if present.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Protocol`] for invalid ids and
    /// [`ClusterError::Io`] for filesystem failures other than absence.
    pub fn delete(&self, id: &BlockId) -> Result<(), ClusterError> {
        let path = self.path_for(id)?;
        match fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> BlockStore {
        let dir = std::env::temp_dir().join(format!("cluster-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        BlockStore::open(dir).unwrap()
    }

    fn id(file: &str, stripe: u32, block: u32) -> BlockId {
        BlockId {
            file: file.into(),
            stripe,
            block,
        }
    }

    #[test]
    fn put_get_stat_delete_roundtrip() {
        let store = temp_store("roundtrip");
        let a = id("f.bin", 0, 3);
        assert!(store.get(&a).unwrap().is_none());
        store.put(&a, b"hello block").unwrap();
        assert_eq!(store.get(&a).unwrap().unwrap(), b"hello block");
        let (len, crc) = store.stat(&a).unwrap().unwrap();
        assert_eq!(len, 11);
        assert_eq!(crc, crc32(b"hello block"));
        // Overwrite wins.
        store.put(&a, b"v2").unwrap();
        assert_eq!(store.get(&a).unwrap().unwrap(), b"v2");
        store.delete(&a).unwrap();
        assert!(store.get(&a).unwrap().is_none());
        store.delete(&a).unwrap(); // idempotent
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupt_blocks_are_quarantined() {
        let store = temp_store("corrupt");
        let a = id("f", 1, 2);
        store.put(&a, &[7u8; 64]).unwrap();
        let path = store.root().join("f.s00001.b002.blk");
        let mut bytes = fs::read(&path).unwrap();
        bytes[10] ^= 0x40;
        fs::write(&path, bytes).unwrap();
        assert!(store.get(&a).unwrap().is_none(), "bit rot must quarantine");
        assert!(store.stat(&a).unwrap().is_none());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn hostile_ids_rejected() {
        let store = temp_store("hostile");
        for name in ["../escape", "a/b", "", ".."] {
            let bad = id(name, 0, 0);
            assert!(store.put(&bad, b"x").is_err(), "{name:?}");
            assert!(store.get(&bad).is_err());
        }
        let _ = fs::remove_dir_all(store.root());
    }
}
